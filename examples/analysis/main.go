// Analysis: the static guarantees of §4. Because AIGs are a limited
// specification language (unlike Turing-complete XQuery/XSLT), useful
// properties are decidable: this example analyzes termination and
// reachability for the hospital grammar σ0, a variant whose recursion is
// cut by an unsatisfiable query, and a pathological grammar that can
// never terminate; it also reports the CSR/QSR rule classification and
// the copy chains that copy elimination inlines.
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/static"
)

func report(name string, a *aig.AIG) *static.Analysis {
	an, err := static.Analyze(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  terminates on all instances:  %v\n", an.MustTerminate)
	fmt.Printf("  terminates on some instance:  %v\n", an.MayTerminate)
	var can, must []string
	for e, ok := range an.CanReach {
		if ok {
			can = append(can, e)
		}
	}
	for e, ok := range an.MustReach {
		if ok {
			must = append(must, e)
		}
	}
	sort.Strings(can)
	sort.Strings(must)
	fmt.Printf("  reachable on some instance:   %v\n", can)
	fmt.Printf("  reached on every instance:    %v\n", must)
	if len(an.UnsatisfiableQueries) > 0 {
		fmt.Printf("  unsatisfiable queries:        %v\n", an.UnsatisfiableQueries)
	}
	fmt.Println()
	return an
}

func main() {
	// σ0: recursive, data-driven — terminates on some but not all
	// instances (cyclic procedure data would diverge).
	report("hospital σ0", hospital.Sigma0(false))

	// σ0 with the recursion-driving query made unsatisfiable: the cycle
	// can never expand, so termination is guaranteed.
	cut := hospital.Sigma0(false)
	cut.Rules["procedure"].Inh["treatment"].Query = sqlmini.MustParse(
		`select p.trId2 as trId, t.tname from DB4:procedure p, DB4:treatment t
		 where p.trId1 = $v.trId and t.trId = p.trId2 and p.trId1 = 'a' and p.trId1 = 'b'`)
	report("σ0 with recursion cut by an unsatisfiable query", cut)

	// A grammar that cannot terminate even on the empty instance: the
	// root requires itself as a child.
	d := dtd.New("loop")
	d.DefineSeq("loop", "loop")
	report("loop -> (loop)", aig.New(d))

	// Rule classification and copy chains (§4).
	a := hospital.Sigma0(false)
	classes := static.Classify(a)
	var keys []string
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("rule classification (copy rules are inlined by copy elimination):")
	for _, k := range keys {
		fmt.Printf("  %-22s %s\n", k, classes[k])
	}
	fmt.Println("\ncopy chains feeding queries (origin -> ... -> consumer):")
	for _, chain := range static.CopyChains(a) {
		fmt.Printf("  %v\n", chain)
	}
}
