// Quickstart: build a minimal Attribute Integration Grammar in Go,
// evaluate it over one in-memory relational source, and print the
// DTD-conforming XML it produces.
//
// The grammar publishes a product catalog:
//
//	catalog -> product*        one product element per catalog row
//	product -> name, price     text leaves bound from the row
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func main() {
	// 1. A relational source: one database with one table.
	db := relstore.NewDatabase("shop")
	products := db.CreateTable("products", relstore.MustSchema("name:string", "price:int", "stocked:string"))
	for _, row := range [][]any{
		{"espresso machine", 450, "yes"},
		{"grinder", 120, "yes"},
		{"dripper", 15, "no"},
		{"kettle", 60, "yes"},
	} {
		if err := products.InsertValues(row...); err != nil {
			log.Fatal(err)
		}
	}
	cat := relstore.NewCatalog()
	cat.Add(db)

	// 2. The target DTD.
	d := dtd.MustParse(`
		<!ELEMENT catalog (product*)>
		<!ELEMENT product (name, price)>
		<!ELEMENT name (#PCDATA)>
		<!ELEMENT price (#PCDATA)>
	`)

	// 3. The AIG: attributes plus semantic rules. The star rule's query
	// drives one product element per qualifying row.
	a := aig.New(d)
	a.Inh["product"] = aig.Attr(aig.StringMember("name"), aig.ScalarMember("price", relstore.KindInt))
	a.Inh["name"] = aig.Attr(aig.StringMember("val"))
	a.Inh["price"] = aig.Attr(aig.ScalarMember("val", relstore.KindInt))

	a.Rules["catalog"] = &aig.Rule{
		Elem: "catalog",
		Inh: map[string]*aig.InhRule{
			"product": {
				Child: "product",
				Query: sqlmini.MustParse(`select name, price from shop:products where stocked = 'yes'`),
			},
		},
	}
	a.Rules["product"] = &aig.Rule{
		Elem: "product",
		Inh: map[string]*aig.InhRule{
			"name":  {Child: "name", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("product", "name"))}},
			"price": {Child: "price", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("product", "price"))}},
		},
	}
	a.Rules["name"] = &aig.Rule{Elem: "name", TextSrc: aig.InhOf("name", "val")}
	a.Rules["price"] = &aig.Rule{Elem: "price", TextSrc: aig.InhOf("price", "val")}

	// 4. Validate statically, then evaluate.
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		log.Fatal(err)
	}
	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	doc, err := a.Eval(env, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 5. The output conforms to the DTD by construction.
	if err := dtd.Conforms(d, doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated catalog:")
	if err := doc.WriteIndented(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
