// Multisource: distributed integration over four TCP sources. Each of
// the hospital databases DB1..DB4 (generated at the Table 1 "small"
// scale) is served by its own TCP engine; the mediator connects to all
// four, decomposes the multi-source query Q2 so every sub-query executes
// at exactly one engine, merges and schedules the resulting query
// dependency graph, and integrates one day's report — comparing the plan
// with and without query merging (the Figure 10 experiment, one cell).
//
// Run with: go run ./examples/multisource
package main

import (
	"fmt"
	"log"

	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func main() {
	catalog := datagen.Generate(datagen.Small, 42)

	// Serve each database on its own TCP port and dial it back — four
	// genuinely separate engines.
	reg := source.NewRegistry()
	for _, name := range catalog.DatabaseNames() {
		db, err := catalog.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		srv := remote.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		client, err := remote.Dial(name, addr)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		fmt.Printf("source %s listening on %s\n", name, addr)
		reg.Add(client)
	}

	// Specialize σ0 against the remote schemas and statistics.
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		log.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa, reg, reg, sqlmini.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sa, err = specialize.Unfold(sa, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := sa.Validate(reg); err != nil {
		log.Fatal(err)
	}

	date := datagen.Date(0)
	for _, merge := range []bool{false, true} {
		opts := mediator.DefaultOptions()
		opts.Merge = merge
		m := mediator.New(reg, opts)
		res, err := m.Evaluate(sa, hospital.RootInh(sa, date))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmerge=%v:\n", merge)
		fmt.Printf("  source queries issued: %d (merged groups: %d)\n",
			res.Report.SourceQueryCount, res.Report.MergedGroups)
		fmt.Printf("  dependency graph: %d nodes, %d edges\n", res.Report.NodeCount, res.Report.EdgeCount)
		fmt.Printf("  simulated communication: %d KB\n", res.Report.ShippedBytes/1024)
		fmt.Printf("  simulated response time (1 Mbps): %.3fs\n", res.Report.ResponseTimeSec)
		fmt.Printf("  document: %d patients, %d nodes\n",
			len(res.Doc.Descendants("patient")), res.Doc.CountNodes())
	}
}
