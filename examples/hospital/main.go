// Hospital: the paper's running example end to end. The AIG σ0 of Fig. 2
// is parsed from its textual specification, specialized (constraints
// compiled into guards, the multi-source query Q2 decomposed into
// single-source steps), and evaluated two ways — by the conceptual
// tuple-at-a-time evaluator of §3.2 and by the optimized mediator of §5 —
// over the four source databases DB1..DB4. The example then corrupts the
// billing source to show a constraint guard aborting the integration.
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

func main() {
	// Parse σ0 from its specification text.
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		log.Fatal(err)
	}
	cat := hospital.TinyCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		log.Fatal(err)
	}

	// Specialize: constraints become guards, Q2 becomes a chain of
	// single-source queries.
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		log.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa,
		sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	chain := sa.Rules["treatments"].Inh["treatment"].Chain
	fmt.Printf("Q2 decomposed into %d single-source steps:\n", len(chain))
	for i, q := range chain {
		fmt.Printf("  St%d (%s): %s\n", i+1, q.Sources()[0], q)
	}
	fmt.Println()

	// Conceptual evaluation (§3.2).
	doc, err := sa.Eval(hospital.EnvFor(cat), hospital.RootInh(sa, "d1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("report for d1 (conceptual evaluator):")
	if err := doc.WriteIndented(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The output provably conforms to the DTD and the constraints.
	if err := dtd.Conforms(a.DTD, doc); err != nil {
		log.Fatal(err)
	}
	if v := xconstraint.CheckAll(a.Constraints, doc); len(v) != 0 {
		log.Fatalf("constraints violated: %v", v)
	}
	fmt.Println("\nDTD conformance and both XML constraints verified independently.")

	// Mediator evaluation (§5): recursion unfolds adaptively, queries are
	// merged and scheduled, and the same document comes out.
	m := mediator.New(source.RegistryFromCatalog(cat), mediator.DefaultOptions())
	res, depth, err := m.EvaluateRecursive(sa, hospital.RootInh(sa, "d1"), 2, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmediator evaluation: unfolded to depth %d, %d source queries (%d merged groups)\n",
		depth, res.Report.SourceQueryCount, res.Report.MergedGroups)
	fmt.Printf("simulated response time at 1 Mbps: %.3fs\n", res.Report.ResponseTimeSec)
	if res.Doc.Equal(doc) {
		fmt.Println("mediator and conceptual evaluator produced identical documents.")
	} else {
		log.Fatal("evaluator outputs diverged!")
	}

	// Now violate the key constraint: bill treatment t1 twice.
	billing, err := cat.Table("DB3", "billing")
	if err != nil {
		log.Fatal(err)
	}
	billing.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(999)})
	_, err = sa.Eval(hospital.EnvFor(cat), hospital.RootInh(sa, "d1"))
	if err == nil {
		log.Fatal("expected the key guard to abort")
	}
	fmt.Printf("\nafter duplicating a billing row, the compiled guard aborts generation:\n  %v\n", err)
}
