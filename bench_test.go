// Package repro holds the benchmark harness that regenerates the paper's
// evaluation (§6): one benchmark per table and figure, plus ablation
// benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Simulated response times are reported as custom metrics
// (sim-response-sec); cmd/aigbench prints the same numbers as the paper's
// tables.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// fixture caches generated datasets and prepared grammars across
// benchmarks.
type fixture struct {
	cat *relstore.Catalog
	reg *source.Registry
	sa  *aig.AIG // compiled + decomposed, still recursive
	unf map[int]*aig.AIG
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[string]*fixture{}
)

func getFixture(b *testing.B, size datagen.Size) *fixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[size.Name]; ok {
		return f
	}
	cat := datagen.Generate(size, 42)
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		b.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa,
		sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{cat: cat, reg: source.RegistryFromCatalog(cat), sa: sa, unf: map[int]*aig.AIG{}}
	fixtures[size.Name] = f
	return f
}

func (f *fixture) unfolded(b *testing.B, depth int) *aig.AIG {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if u, ok := f.unf[depth]; ok {
		return u
	}
	u, err := specialize.Unfold(f.sa, depth)
	if err != nil {
		b.Fatal(err)
	}
	f.unf[depth] = u
	return u
}

// BenchmarkTable1 regenerates Table 1: dataset generation at each scale,
// verifying the exact cardinalities.
func BenchmarkTable1(b *testing.B) {
	want := map[string][6]int{
		"small":  {2500, 11371, 2224, 175, 175, 441},
		"medium": {3300, 14887, 3762, 250, 250, 718},
		"large":  {5000, 22496, 8996, 350, 350, 923},
	}
	for _, size := range datagen.Sizes {
		b.Run(size.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cat := datagen.Generate(size, 42)
				w := want[size.Name]
				got := [6]int{
					tableLen(b, cat, "DB1", "patient"),
					tableLen(b, cat, "DB1", "visitInfo"),
					tableLen(b, cat, "DB2", "cover"),
					tableLen(b, cat, "DB3", "billing"),
					tableLen(b, cat, "DB4", "treatment"),
					tableLen(b, cat, "DB4", "procedure"),
				}
				if got != w {
					b.Fatalf("Table 1 mismatch for %s: %v != %v", size.Name, got, w)
				}
			}
		})
	}
}

func tableLen(b *testing.B, cat *relstore.Catalog, db, table string) int {
	b.Helper()
	t, err := cat.Table(db, table)
	if err != nil {
		b.Fatal(err)
	}
	return t.Len()
}

// benchEvaluate runs one mediator evaluation and reports the simulated
// response time (the quantity Figure 10 is built from).
func benchEvaluate(b *testing.B, f *fixture, depth int, opts mediator.Options) float64 {
	b.Helper()
	unf := f.unfolded(b, depth)
	m := mediator.New(f.reg, opts)
	var resp float64
	for i := 0; i < b.N; i++ {
		res, err := m.Evaluate(unf, hospital.RootInh(unf, datagen.Date(0)))
		if err != nil {
			b.Fatal(err)
		}
		resp = res.Report.ResponseTimeSec
	}
	b.ReportMetric(resp, "sim-response-sec")
	return resp
}

// BenchmarkFig10 regenerates Figure 10: for each dataset size and
// unfolding level, the ratio of the simulated evaluation time without
// query merging to that with merging. The ratio is reported as the
// merge-ratio metric of the "merged" sub-benchmark.
func BenchmarkFig10(b *testing.B) {
	sizes := []datagen.Size{datagen.Small}
	levels := []int{2, 4, 7}
	if !testing.Short() {
		sizes = datagen.Sizes
		levels = []int{2, 3, 4, 5, 6, 7}
	}
	for _, size := range sizes {
		f := getFixture(b, size)
		for _, level := range levels {
			name := fmt.Sprintf("%s/levels=%d", size.Name, level)
			var without float64
			b.Run(name+"/unmerged", func(b *testing.B) {
				opts := mediator.DefaultOptions()
				opts.Merge = false
				without = benchEvaluate(b, f, level, opts)
			})
			b.Run(name+"/merged", func(b *testing.B) {
				with := benchEvaluate(b, f, level, mediator.DefaultOptions())
				if without > 0 && with > 0 {
					b.ReportMetric(without/with, "merge-ratio")
				}
			})
		}
	}
}

// BenchmarkAblationScheduling compares Algorithm Schedule (§5.3 level
// priorities) against the FIFO baseline.
func BenchmarkAblationScheduling(b *testing.B) {
	f := getFixture(b, datagen.Small)
	for _, tc := range []struct {
		name string
		algo mediator.ScheduleAlgo
	}{
		{"level", mediator.ScheduleLevel},
		{"fifo", mediator.ScheduleFIFO},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := mediator.DefaultOptions()
			opts.Merge = false // isolate scheduling from merge decisions
			opts.Schedule = tc.algo
			benchEvaluate(b, f, 4, opts)
		})
	}
}

// BenchmarkAblationCopyElim compares evaluation with and without copy
// elimination (§4).
func BenchmarkAblationCopyElim(b *testing.B) {
	f := getFixture(b, datagen.Small)
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := mediator.DefaultOptions()
			opts.CopyElim = on
			benchEvaluate(b, f, 4, opts)
		})
	}
}

// tinySize is a reduced dataset for the tuple-at-a-time (conceptual)
// ablations, which run one query per node and would take tens of seconds
// per iteration at Table 1 scale.
var tinySize = datagen.Size{
	Name: "tiny", Patient: 250, VisitInfo: 1100, Cover: 450,
	Billing: 60, Treatment: 60, Procedure: 90,
	Policies: 10, Dates: 30, Levels: 8,
}

// BenchmarkAblationConstraints compares generation with compiled
// constraint guards (§3.3, incremental checking during generation)
// against generation without constraints plus a post-hoc whole-tree
// validation.
func BenchmarkAblationConstraints(b *testing.B) {
	cat := datagen.Generate(tinySize, 42)
	env := hospital.EnvFor(cat)
	plain := hospital.Sigma0(true)
	guarded, err := specialize.CompileConstraints(plain)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("guards-during-generation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := guarded.Eval(env, hospital.RootInh(guarded, datagen.Date(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("posthoc-tree-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc, err := plain.Eval(env, hospital.RootInh(plain, datagen.Date(0)))
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range plain.Constraints {
				if v := c.Check(doc); len(v) != 0 {
					b.Fatal("unexpected violation")
				}
			}
		}
	})
}

// BenchmarkAblationDecomposition compares tuple-at-a-time evaluation with
// the original multi-source Q2 against the decomposed single-source
// chain (§3.4), both in the conceptual evaluator.
func BenchmarkAblationDecomposition(b *testing.B) {
	cat := datagen.Generate(tinySize, 42)
	env := hospital.EnvFor(cat)
	multi := hospital.Sigma0(false)
	dec, err := specialize.DecomposeQueries(multi,
		sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		a    *aig.AIG
	}{
		{"multi-source", multi},
		{"decomposed-chain", dec},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.a.Eval(env, hospital.RootInh(tc.a, datagen.Date(0))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluators compares the conceptual evaluator (§3.2, one query
// per node) against the mediator (§5, set-oriented) on wall-clock time —
// the architectural gap the middleware exists to close.
func BenchmarkEvaluators(b *testing.B) {
	f := getFixture(b, datagen.Small)
	env := hospital.EnvFor(f.cat)
	unf := f.unfolded(b, 4)
	b.Run("conceptual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := unf.Eval(env, hospital.RootInh(unf, datagen.Date(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mediator", func(b *testing.B) {
		benchEvaluate(b, f, 4, mediator.DefaultOptions())
	})
}
