#!/usr/bin/env bash
# Benchmark what static certification buys on the serving path: boot the
# demo daemon and drive the same cache-off request mix with aigload
# (every request pays a full evaluation, so the per-request verify pass
# is the only difference between the phases) —
#
#   always:    aigd -verify=always — each evaluated document is
#              re-checked against the DTD and both XML constraints,
#              even though the view is statically certified;
#   certified: aigd -verify — the certifier proved every declared
#              constraint (must-hold), so the verify pass is skipped.
#
# The verify pass is a few percent of an evaluation, so the phases
# alternate for AIG_VERIFY_TRIALS rounds (daemon restarted each time)
# and each phase is scored by its best trial — the standard low-noise
# throughput estimator. The combined report lands in BENCH_verify.json;
# the script fails unless the demo view actually reports
# certified:true and certified-skip throughput is at least
# AIG_VERIFY_MIN_SPEEDUP (default 1.0) times verify-always.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18094}"
REQUESTS="${AIG_VERIFY_REQUESTS:-2000}"
WORKERS="${AIG_VERIFY_WORKERS:-8}"
TRIALS="${AIG_VERIFY_TRIALS:-3}"
MIN_SPEEDUP="${AIG_VERIFY_MIN_SPEEDUP:-1.0}"
OUT="${AIG_VERIFY_JSON:-BENCH_verify.json}"

tmpdir="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload

start_daemon() { # verify-flag
    "$tmpdir/aigd" -demo -addr "$ADDR" "$1" >"$tmpdir/aigd.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 50); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=""
}

run_phase() { # phase-label verify-flag trial
    echo "== $1 (trial $3) =="
    start_daemon "$2"
    "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1,d2,d3 \
        -c "$WORKERS" -n "$REQUESTS" -no-store -json "$tmpdir/$1.$3.json"
    stop_daemon
}

field() { # json-file field-name
    awk -F': *' -v k="\"$2\"" '$1 ~ k {gsub(/,$/, "", $2); print $2; exit}' "$1"
}

# The comparison is only meaningful if plain -verify has something to
# skip: the demo view must certify.
start_daemon -verify
if ! curl -fsS "http://$ADDR/views" | grep -q '"certified": *true'; then
    echo "bench_verify: demo view does not report certified:true" >&2
    exit 1
fi
stop_daemon

for t in $(seq "$TRIALS"); do
    run_phase always -verify=always "$t"
    run_phase certified -verify "$t"
done

best() { # phase-label -> prints best rps and remembers the trial file
    local label="$1" best_rps=0 rps file
    for t in $(seq "$TRIALS"); do
        file="$tmpdir/$label.$t.json"
        rps="$(field "$file" throughput_rps)"
        if awk -v a="$rps" -v b="$best_rps" 'BEGIN { exit !(a > b) }'; then
            best_rps="$rps"
            cp "$file" "$tmpdir/$label.best.json"
        fi
    done
    echo "$best_rps"
}

always_rps="$(best always)"
cert_rps="$(best certified)"
speedup="$(awk -v c="$cert_rps" -v a="$always_rps" 'BEGIN { printf "%.3f", c/a }')"

trials_json() { # phase-label -> JSON array of per-trial rps
    local label="$1" sep="" out="["
    for t in $(seq "$TRIALS"); do
        out="$out$sep$(field "$tmpdir/$label.$t.json" throughput_rps)"
        sep=", "
    done
    echo "$out]"
}

{
    printf '{\n  "min_speedup": %s,\n  "speedup": %s,\n  "trials": %s,\n' \
        "$MIN_SPEEDUP" "$speedup" "$TRIALS"
    printf '  "always_trials_rps": %s,\n' "$(trials_json always)"
    printf '  "certified_trials_rps": %s,\n' "$(trials_json certified)"
    printf '  "verify_always": '
    cat "$tmpdir/always.best.json"
    printf ',\n  "certified_skip": '
    cat "$tmpdir/certified.best.json"
    printf '\n}\n'
} >"$OUT"

echo "bench_verify: verify-always ${always_rps} rps, certified-skip ${cert_rps} rps, speedup ${speedup}x -> $OUT"

if ! awk -v s="$speedup" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }'; then
    echo "bench_verify: speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
    exit 1
fi
echo "bench_verify: OK"
