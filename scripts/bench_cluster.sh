#!/usr/bin/env bash
# Benchmark horizontal scaling through the cluster tier: the same warm
# read workload (with a 50 writes/s mutation stream at the origin) is
# driven through aigrouter twice — fronting one aigd replica, then
# fronting four — and the fleet must deliver at least
# AIG_CLUSTER_MIN_SCALE (default 3) times the single-replica throughput.
#
# The host this runs on may have a single CPU, where four replicas buy
# no real parallel compute. Each replica therefore runs with
# -sim-work 40ms -max-concurrent 4: every request holds an admission
# slot for a simulated 40ms service-time floor (cache hits included),
# which caps one replica at ~100 req/s regardless of CPU count. That
# makes the thing under test — the router spreading keyspace shards
# over independent admission capacity — measurable and honest:
# BENCH_cluster.json records the simulated floor so nobody mistakes
# the absolute numbers for evaluation speed.
#
# All replicas mirror one origin aigsource over the delta subscription
# stream while its HTTP sidecar takes the writes, so the mutation load
# exercises push-based invalidation on every replica at once.
set -euo pipefail

ROUTER1_ADDR="${AIG_CLUSTER_BENCH_ROUTER1:-127.0.0.1:18110}"
ROUTER4_ADDR="${AIG_CLUSTER_BENCH_ROUTER4:-127.0.0.1:18111}"
REP_BASE_PORT="${AIG_CLUSTER_BENCH_REP_PORT:-18112}" # replicas take 4 consecutive ports
SRC_ADDR="${AIG_CLUSTER_BENCH_SRC:-127.0.0.1:18117}"
SRC_HTTP="${AIG_CLUSTER_BENCH_SRC_HTTP:-127.0.0.1:18118}"
DURATION="${AIG_CLUSTER_BENCH_DURATION:-10s}"
WORKERS="${AIG_CLUSTER_BENCH_WORKERS:-40}"
MUTATE_RATE="${AIG_CLUSTER_BENCH_MUTATE_RATE:-50}"
SIM_WORK="${AIG_CLUSTER_BENCH_SIM_WORK:-40ms}"
SLOTS="${AIG_CLUSTER_BENCH_SLOTS:-4}"
MIN_SCALE="${AIG_CLUSTER_MIN_SCALE:-3}"
OUT="${AIG_CLUSTER_JSON:-BENCH_cluster.json}"

tmpdir="$(mktemp -d)"
pids=()
cleanup() { for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmpdir"; }
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigrouter" ./cmd/aigrouter
go build -o "$tmpdir/aigsource" ./cmd/aigsource
go build -o "$tmpdir/aigload" ./cmd/aigload
go build -o "$tmpdir/aiggen" ./cmd/aiggen

"$tmpdir/aiggen" -size tiny -seed 42 -out "$tmpdir/data" >/dev/null
mv "$tmpdir/data/DB1" "$tmpdir/DB1"

wait_healthy() { # URL
    for _ in $(seq 100); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "bench_cluster: $1 did not become healthy" >&2
    cat "$tmpdir"/*.log >&2 || true
    exit 1
}

echo "== start origin + 4 subscribed replicas + 2 routers"
"$tmpdir/aigsource" -name DB1 -data "$tmpdir/DB1" -listen "$SRC_ADDR" \
    -http "$SRC_HTTP" >"$tmpdir/aigsource.log" 2>&1 &
pids+=($!)
sleep 0.3

rep_urls=()
for i in 0 1 2 3; do
    addr="127.0.0.1:$((REP_BASE_PORT + i))"
    rep_urls+=("http://$addr")
    "$tmpdir/aigd" -addr "$addr" -view report=examples/hospital/report.aig \
        -data "$tmpdir/data" -source "DB1=$SRC_ADDR" -subscribe \
        -refresh-interval 200ms -sim-work "$SIM_WORK" -max-concurrent "$SLOTS" \
        >"$tmpdir/rep$i.log" 2>&1 &
    pids+=($!)
done
for u in "${rep_urls[@]}"; do wait_healthy "$u"; done

"$tmpdir/aigrouter" -addr "$ROUTER1_ADDR" -replica "${rep_urls[0]}" \
    -health-interval 200ms >"$tmpdir/router1.log" 2>&1 &
pids+=($!)
"$tmpdir/aigrouter" -addr "$ROUTER4_ADDR" \
    -replica "$(IFS=,; echo "${rep_urls[*]}")" \
    -health-interval 200ms >"$tmpdir/router4.log" 2>&1 &
pids+=($!)
wait_healthy "http://$ROUTER1_ADDR"
wait_healthy "http://$ROUTER4_ADDR"

DATES="date=d001,d002,d003,d004,d005,d006,d007,d008,d009,d010"

# Warm every replica's cache shard before the writes start. Under the
# mutation stream a loaded replica cannot cache a fresh evaluation (the
# stamp recheck sees the write that landed while the request queued, a
# stale-skip every time), but entries cached in the quiet window stay
# warm forever after: each applied delta kicks the refresher, the delta
# judge proves the probe row (visitInfo on the never-served date d999)
# affects no served view, and the entries are restamped instead of
# evicted.
echo "== warm-up (no writes)"
"$tmpdir/aigload" -url "http://$ROUTER1_ADDR" -view report -param "$DATES" \
    -c 8 -n 100 >/dev/null
"$tmpdir/aigload" -url "http://$ROUTER4_ADDR" -view report -param "$DATES" \
    -c 8 -n 400 >/dev/null

load() { # label router-url json-file metrics-args...
    local label="$1" router="$2" out="$3"
    shift 3
    echo "== $label ($DURATION, $WORKERS workers, ${MUTATE_RATE} writes/s)"
    "$tmpdir/aigload" -url "http://$router" "$@" \
        -view report -param "$DATES" \
        -c "$WORKERS" -n 100000000 -duration "$DURATION" \
        -mutate DB1:visitInfo=s999998,t999999,d999 \
        -mutate-rate "$MUTATE_RATE" -mutate-url "http://$SRC_HTTP" \
        -check -json "$out"
}

load "single replica" "$ROUTER1_ADDR" "$tmpdir/single.json" \
    -metrics-url "${rep_urls[0]}"
metrics_args=()
for u in "${rep_urls[@]}"; do metrics_args+=(-metrics-url "$u"); done
load "four replicas" "$ROUTER4_ADDR" "$tmpdir/fleet.json" "${metrics_args[@]}"

field() { # json-file field-name
    awk -F': *' -v k="\"$2\"" '$1 ~ k {gsub(/,$/, "", $2); print $2; exit}' "$1"
}

t1="$(field "$tmpdir/single.json" throughput_rps)"
t4="$(field "$tmpdir/fleet.json" throughput_rps)"
scale="$(awk -v a="$t4" -v b="$t1" 'BEGIN { printf "%.2f", a/b }')"

{
    printf '{\n  "min_scale": %s,\n  "scale": %s,\n' "$MIN_SCALE" "$scale"
    printf '  "replica_sim_work": "%s",\n  "replica_slots": %s,\n' "$SIM_WORK" "$SLOTS"
    printf '  "note": "each replica admission-caps at slots/sim_work req/s by construction; scale measures router spreading, not evaluation speed",\n'
    printf '  "single": '
    cat "$tmpdir/single.json"
    printf ',\n  "fleet": '
    cat "$tmpdir/fleet.json"
    printf '\n}\n'
} >"$OUT"

echo "bench_cluster: 1 replica ${t1} rps, 4 replicas ${t4} rps, scale ${scale}x -> $OUT"
awk -v s="$scale" -v min="$MIN_SCALE" 'BEGIN { exit !(s >= min) }' || {
    echo "bench_cluster: scale ${scale}x below required ${MIN_SCALE}x" >&2
    exit 1
}
echo "bench_cluster: OK"
