#!/usr/bin/env bash
# Benchmark what fragment serving buys: boot aigd on a generated
# Table 1 small-scale hospital catalog (a ~26 MB document that takes
# seconds to evaluate) and compare a small fragment against the full
# document with aigload —
#
#   cold:  one mixed no-store phase, workers alternating full-document
#          and fragment requests, so both shapes pay a fresh evaluation
#          under identical load. The fragment must cut client-measured
#          first-byte latency by AIG_FRAG_MIN_TTFB_SPEEDUP (default 5x;
#          the partial evaluator binds only the scans the path can
#          reach and streams its first match while the full document
#          would still be being built) and response bytes by
#          AIG_FRAG_MIN_BYTES_RATIO (default 10x). Kept to a handful of
#          requests — every full-document one is a full evaluation.
#   warm:  full-document throughput measured (after a prewarm, so the
#          one-off evaluation cost stays out of both phases) before and
#          after a fragment-only warm phase; serving fragments must not
#          regress the full-document path by more than
#          AIG_FRAG_MAX_REGRESS (default 5%).
#
# The combined report lands in BENCH_fragment.json. Used by
# `make bench-fragment` and CI.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18109}"
SIZE="${AIG_FRAG_SIZE:-small}"
DATE="${AIG_FRAG_DATE:-d001}"
COLD_REQUESTS="${AIG_FRAG_COLD_REQUESTS:-4}"
COLD_WORKERS="${AIG_FRAG_COLD_WORKERS:-2}"
WARM_REQUESTS="${AIG_FRAG_WARM_REQUESTS:-200}"
WORKERS="${AIG_FRAG_WORKERS:-4}"
FRAG_PATH="${AIG_FRAG_PATH:-//patient[1]/SSN}"
MIN_TTFB_SPEEDUP="${AIG_FRAG_MIN_TTFB_SPEEDUP:-5}"
MIN_BYTES_RATIO="${AIG_FRAG_MIN_BYTES_RATIO:-10}"
MAX_REGRESS="${AIG_FRAG_MAX_REGRESS:-0.05}"
OUT="${AIG_FRAG_JSON:-BENCH_fragment.json}"

tmpdir="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload

"$tmpdir/aigd" -demo -demo-size "$SIZE" -addr "$ADDR" >"$tmpdir/aigd.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null || {
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

load() { # json-file workers extra-args...
    local out="$1" c="$2"
    shift 2
    "$tmpdir/aigload" -url "http://$ADDR" -view report -param "date=$DATE" \
        -c "$c" -json "$out" "$@"
}

# field file key [occurrence]: the Nth (default first) value of a key in
# MarshalIndent output. In mixed-shape reports the paths array lists the
# full-document shape ("") first, then each -path shape in flag order.
field() {
    awk -F': *' -v k="\"$2\"" -v n="${3:-1}" \
        '$1 ~ k { c++; if (c == n) { gsub(/,$/, "", $2); print $2; exit } }' "$1"
}

echo "== cold: mixed full-document + fragment, no-store ($SIZE catalog)"
load "$tmpdir/cold.json" "$COLD_WORKERS" -n "$COLD_REQUESTS" -no-store -path "$FRAG_PATH"

full_ttfb="$(field "$tmpdir/cold.json" ttfb_p50_ms 1)"
frag_ttfb="$(field "$tmpdir/cold.json" ttfb_p50_ms 2)"
full_bytes="$(field "$tmpdir/cold.json" bytes_per_request 1)"
frag_bytes="$(field "$tmpdir/cold.json" bytes_per_request 2)"

echo "== warm: full-document baseline, then fragment-only, then full-document again"
curl -fsS -o /dev/null "http://$ADDR/views/report?date=$DATE" # prewarm the cache entry
load "$tmpdir/warm_before.json" "$WORKERS" -n "$WARM_REQUESTS"
load "$tmpdir/warm_frag.json" "$WORKERS" -n "$WARM_REQUESTS" -path "$FRAG_PATH" -fragment-only
load "$tmpdir/warm_after.json" "$WORKERS" -n "$WARM_REQUESTS"

before_rps="$(field "$tmpdir/warm_before.json" throughput_rps)"
after_rps="$(field "$tmpdir/warm_after.json" throughput_rps)"
frag_rps="$(field "$tmpdir/warm_frag.json" throughput_rps)"

ttfb_speedup="$(awk -v f="$full_ttfb" -v g="$frag_ttfb" 'BEGIN { printf "%.2f", (g > 0) ? f/g : 0 }')"
bytes_ratio="$(awk -v f="$full_bytes" -v g="$frag_bytes" 'BEGIN { printf "%.2f", (g > 0) ? f/g : 0 }')"
regress="$(awk -v b="$before_rps" -v a="$after_rps" 'BEGIN { printf "%.4f", (b > 0) ? (b-a)/b : 1 }')"

{
    printf '{\n'
    printf '  "size": "%s",\n  "fragment_path": "%s",\n' "$SIZE" "$FRAG_PATH"
    printf '  "min_ttfb_speedup": %s,\n  "ttfb_speedup": %s,\n' "$MIN_TTFB_SPEEDUP" "$ttfb_speedup"
    printf '  "min_bytes_ratio": %s,\n  "bytes_ratio": %s,\n' "$MIN_BYTES_RATIO" "$bytes_ratio"
    printf '  "max_full_regression": %s,\n  "full_regression": %s,\n' "$MAX_REGRESS" "$regress"
    printf '  "warm_fragment_rps": %s,\n' "$frag_rps"
    printf '  "cold": '
    cat "$tmpdir/cold.json"
    printf ',\n  "warm_full_before": '
    cat "$tmpdir/warm_before.json"
    printf ',\n  "warm_fragment": '
    cat "$tmpdir/warm_frag.json"
    printf ',\n  "warm_full_after": '
    cat "$tmpdir/warm_after.json"
    printf '\n}\n'
} >"$OUT"

echo "bench_fragment: cold ttfb ${full_ttfb}ms full vs ${frag_ttfb}ms fragment (${ttfb_speedup}x), bytes ${full_bytes} vs ${frag_bytes} (${bytes_ratio}x), warm full ${before_rps} -> ${after_rps} rps (regression ${regress}) -> $OUT"

fail=0
awk -v s="$ttfb_speedup" -v min="$MIN_TTFB_SPEEDUP" 'BEGIN { exit !(s >= min) }' || {
    echo "bench_fragment: first-byte speedup ${ttfb_speedup}x below required ${MIN_TTFB_SPEEDUP}x" >&2
    fail=1
}
awk -v r="$bytes_ratio" -v min="$MIN_BYTES_RATIO" 'BEGIN { exit !(r >= min) }' || {
    echo "bench_fragment: bytes ratio ${bytes_ratio}x below required ${MIN_BYTES_RATIO}x" >&2
    fail=1
}
awk -v r="$regress" -v max="$MAX_REGRESS" 'BEGIN { exit !(r <= max) }' || {
    echo "bench_fragment: full-document throughput regressed ${regress} (limit ${MAX_REGRESS})" >&2
    fail=1
}
[ "$fail" -eq 0 ] && echo "bench_fragment: OK"
exit "$fail"
