#!/usr/bin/env bash
# Smoke-test the serving daemon end to end: boot aigd on the built-in
# hospital catalog, drive it with aigload, and require a clean run
# (zero failed requests, cache hits observed). Used by `make smoke-serve`
# and CI; finishes in well under 20 seconds.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18091}"
REQUESTS="${AIGD_SMOKE_REQUESTS:-2000}"
WORKERS="${AIGD_SMOKE_WORKERS:-8}"
BENCH_OUT="${AIGD_SMOKE_JSON:-}"

tmpdir="$(mktemp -d)"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload

"$tmpdir/aigd" -demo -addr "$ADDR" >"$tmpdir/aigd.log" 2>&1 &
daemon_pid=$!

# Wait for the daemon to come up (at most ~5s).
for _ in $(seq 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null || {
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

load_args=(-url "http://$ADDR" -view report -param date=d1,d2,d3 \
    -c "$WORKERS" -n "$REQUESTS" -check)
if [ -n "$BENCH_OUT" ]; then
    load_args+=(-json "$BENCH_OUT")
fi
"$tmpdir/aigload" "${load_args[@]}"

# Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
echo "smoke_serve: OK"
