#!/usr/bin/env bash
# Benchmark warm-cache serving under a mutating workload: boot aigd with
# the background refresher and the /mutate endpoint enabled, then drive
# the same request mix twice with aigload while a writer mutates a
# source row 50 times a second —
#
#   baseline: every request carries Cache-Control: no-store, so each one
#             pays a full evaluation (cache-off behaviour);
#   warm:     the cache serves, and the refresher keeps entries warm by
#             restamping views the delta judge proves unaffected.
#
# The daemon is restarted between phases so the scraped cache counters
# are per-phase. The combined report lands in BENCH_ivm.json and the
# script fails unless the warm phase is at least AIG_IVM_MIN_SPEEDUP
# (default 5) times the baseline throughput, saw successful mutations,
# delta refreshes, and exposes the refresh metrics on /metrics.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18093}"
BASE_REQUESTS="${AIG_IVM_BASE_REQUESTS:-800}"
WARM_REQUESTS="${AIG_IVM_WARM_REQUESTS:-8000}"
WORKERS="${AIG_IVM_WORKERS:-8}"
MUTATE_RATE="${AIG_IVM_MUTATE_RATE:-50}"
MIN_SPEEDUP="${AIG_IVM_MIN_SPEEDUP:-5}"
OUT="${AIG_IVM_JSON:-BENCH_ivm.json}"

tmpdir="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload

start_daemon() {
    "$tmpdir/aigd" -demo -addr "$ADDR" -allow-mutate -refresh-interval 2ms \
        >"$tmpdir/aigd.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 50); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=""
}

load() { # phase-label json-file extra-args...
    local label="$1" out="$2"
    shift 2
    echo "== $label =="
    "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1,d2,d3 \
        -c "$WORKERS" -mutate DB1:visitInfo=s9,t9,d9 -mutate-rate "$MUTATE_RATE" \
        -json "$out" "$@"
}

start_daemon
load baseline "$tmpdir/base.json" -n "$BASE_REQUESTS" -no-store
stop_daemon

start_daemon
load warm "$tmpdir/warm.json" -n "$WARM_REQUESTS"

# The refresh metrics must be live on /metrics while the daemon serves.
metrics="$(curl -fsS "http://$ADDR/metrics")"
for m in aig_serve_refresh_cycles_total aig_serve_refresh_delta_total \
         aig_serve_refresh_dirty_queue aig_serve_refresh_lag_seconds_count; do
    if ! grep -q "^$m" <<<"$metrics"; then
        echo "bench_ivm: metric $m missing from /metrics" >&2
        exit 1
    fi
done
stop_daemon

field() { # json-file field-name
    awk -F': *' -v k="\"$2\"" '$1 ~ k {gsub(/,$/, "", $2); print $2; exit}' "$1"
}

base_rps="$(field "$tmpdir/base.json" throughput_rps)"
warm_rps="$(field "$tmpdir/warm.json" throughput_rps)"
mutations="$(field "$tmpdir/warm.json" mutations)"
delta="$(field "$tmpdir/warm.json" refresh_delta)"
speedup="$(awk -v w="$warm_rps" -v b="$base_rps" 'BEGIN { printf "%.2f", w/b }')"

{
    printf '{\n  "min_speedup": %s,\n  "speedup": %s,\n  "baseline": ' \
        "$MIN_SPEEDUP" "$speedup"
    cat "$tmpdir/base.json"
    printf ',\n  "warm": '
    cat "$tmpdir/warm.json"
    printf '\n}\n'
} >"$OUT"

echo "bench_ivm: baseline ${base_rps} rps, warm ${warm_rps} rps, speedup ${speedup}x -> $OUT"

fail=0
awk -v s="$speedup" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }' || {
    echo "bench_ivm: speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
    fail=1
}
if [ "${mutations:-0}" -le 0 ]; then
    echo "bench_ivm: warm phase saw no successful mutations" >&2
    fail=1
fi
if [ "${delta:-0}" -le 0 ]; then
    echo "bench_ivm: refresher performed no delta restamps" >&2
    fail=1
fi
[ "$fail" -eq 0 ] && echo "bench_ivm: OK"
exit "$fail"
