#!/usr/bin/env bash
# Smoke-test fragment serving end to end through the router: boot aigd
# on the built-in hospital catalog with the refresher and /mutate
# enabled, front it with aigrouter, and require —
#
#  1. A fragment request for the document root (path=/report) served
#     through the router byte-equals the full-document response, and a
#     predicate fragment selects exactly the matching subtree.
#  2. A mutation outside the fragment's scans (a DB3 billing insert;
#     the /report/patient/SSN fragment reads only DB1) leaves the
#     fragment entry warm: the next request is still a cache hit with
#     identical bytes, and the refresher metered a delta restamp.
#  3. A mutation inside the fragment's scans (a new DB1 patient with a
#     visit) invalidates it: the next response contains the new row.
#
# Used by `make smoke-fragment` and CI; finishes in well under 20s.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18107}"
ROUTER_ADDR="${AIG_FRAG_ROUTER_ADDR:-127.0.0.1:18108}"
FRAG_PATH='/report/patient/SSN'

tmpdir="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigrouter" ./cmd/aigrouter

wait_healthy() { # base-url
    for _ in $(seq 50); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke_fragment: $1 did not become healthy" >&2
    cat "$tmpdir"/*.log >&2 || true
    exit 1
}

echo "== start aigd + aigrouter"
"$tmpdir/aigd" -demo -addr "$ADDR" -allow-mutate -refresh-interval 25ms \
    >"$tmpdir/aigd.log" 2>&1 &
pids+=($!)
wait_healthy "http://$ADDR"
"$tmpdir/aigrouter" -addr "$ROUTER_ADDR" -replica "http://$ADDR" \
    -health-interval 100ms >"$tmpdir/router.log" 2>&1 &
pids+=($!)
wait_healthy "http://$ROUTER_ADDR"

frag() { # path outfile headerfile
    curl -fsS -G "http://$ROUTER_ADDR/views/report" \
        --data-urlencode "date=d1" --data-urlencode "path=$1" \
        -o "$2" -D "$3"
}
cache_state() { # headerfile
    tr -d '\r' <"$1" | awk -F': ' 'tolower($1)=="x-aig-cache"{print $2}' | tail -1
}
metric() { # name
    curl -fsS "http://$ADDR/metrics" \
        | awk -v m="$1" '$1 == m { print $2 }' | head -1
}

echo "== phase 1: fragments match the full document through the router"
curl -fsS "http://$ROUTER_ADDR/views/report?date=d1" -o "$tmpdir/full.b"
frag "/report" "$tmpdir/root.b" "$tmpdir/root.h"
cmp -s "$tmpdir/full.b" "$tmpdir/root.b" || {
    echo "smoke_fragment: path=/report fragment differs from the full document" >&2
    diff "$tmpdir/full.b" "$tmpdir/root.b" | head >&2
    exit 1
}
frag "//patient[pname='alice']" "$tmpdir/alice.b" "$tmpdir/alice.h"
grep -q "alice" "$tmpdir/alice.b" || {
    echo "smoke_fragment: predicate fragment is missing its own match" >&2; exit 1; }
if grep -q "bob" "$tmpdir/alice.b"; then
    echo "smoke_fragment: predicate fragment leaked a non-matching patient" >&2
    exit 1
fi

echo "== phase 2: mutation outside the fragment's scans keeps it warm"
frag "$FRAG_PATH" "$tmpdir/ssn1.b" "$tmpdir/ssn1.h"
frag "$FRAG_PATH" "$tmpdir/ssn2.b" "$tmpdir/ssn2.h"
state="$(cache_state "$tmpdir/ssn2.h")"
[ "$state" = "hit" ] || {
    echo "smoke_fragment: repeat fragment request was '$state', want hit" >&2; exit 1; }
delta_before="$(metric aig_serve_refresh_delta_total)"
curl -fsS -X POST "http://$ADDR/mutate?source=DB3&table=billing&op=insert&values=t1,999" >/dev/null
sleep 0.6
frag "$FRAG_PATH" "$tmpdir/ssn3.b" "$tmpdir/ssn3.h"
state="$(cache_state "$tmpdir/ssn3.h")"
[ "$state" = "hit" ] || {
    echo "smoke_fragment: fragment went cold on an unrelated mutation (state '$state')" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}
cmp -s "$tmpdir/ssn2.b" "$tmpdir/ssn3.b" || {
    echo "smoke_fragment: unrelated mutation changed the fragment bytes" >&2; exit 1; }
delta_after="$(metric aig_serve_refresh_delta_total)"
awk -v a="${delta_after:-0}" -v b="${delta_before:-0}" 'BEGIN { exit !(a > b) }' || {
    echo "smoke_fragment: refresher metered no delta restamp across the billing insert" >&2
    exit 1
}

echo "== phase 3: mutation inside the fragment's scans invalidates it"
curl -fsS -X POST "http://$ADDR/mutate?source=DB1&table=patient&op=insert&values=s9,zed,gold" >/dev/null
curl -fsS -X POST "http://$ADDR/mutate?source=DB1&table=visitInfo&op=insert&values=s9,t1,d1" >/dev/null
ok=0
for _ in $(seq 40); do
    sleep 0.1
    frag "$FRAG_PATH" "$tmpdir/ssn4.b" "$tmpdir/ssn4.h"
    if grep -q "s9" "$tmpdir/ssn4.b"; then ok=1; break; fi
done
[ "$ok" -eq 1 ] || {
    echo "smoke_fragment: fragment never picked up the in-scope mutation" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

echo "smoke_fragment: OK (subtree match, warm across unrelated mutation, invalidated in scope)"
