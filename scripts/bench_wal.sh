#!/usr/bin/env bash
# Benchmark what durability costs, twice over:
#
#  1. Microbenchmarks: ns per insert against a bare table, a journaled
#     table without flushing (the -fsync never default), and a journaled
#     table fsyncing every record.
#  2. The serving write path: the BENCH_ivm warm workload (cached reads
#     with a 50/s mutator) against aigd -demo with and without durable
#     source state. With -fsync never the durable daemon must stay
#     within AIG_WAL_TOLERANCE (default 0.90, i.e. <=10% overhead) of
#     the in-memory daemon's throughput, best rep of AIG_WAL_REPS each.
#
# The combined report lands in BENCH_wal.json. Used by `make bench-wal`.
set -euo pipefail

ADDR="${AIGD_ADDR:-127.0.0.1:18096}"
REQUESTS="${AIG_WAL_REQUESTS:-8000}"
WORKERS="${AIG_WAL_WORKERS:-8}"
MUTATE_RATE="${AIG_WAL_MUTATE_RATE:-50}"
TOLERANCE="${AIG_WAL_TOLERANCE:-0.90}"
REPS="${AIG_WAL_REPS:-3}"
OUT="${AIG_WAL_JSON:-BENCH_wal.json}"

tmpdir="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload

echo "== microbenchmarks (insert cost: bare / WAL no-fsync / WAL fsync-always)"
go test -run '^$' -bench 'BenchmarkInsert' -benchtime "${AIG_WAL_BENCHTIME:-1s}" \
    ./internal/relstore/ | tee "$tmpdir/micro.txt"
ns() { awk -v b="$1" '$1 ~ b { print $3; exit }' "$tmpdir/micro.txt" | grep . || echo 0; }
ns_bare="$(ns BenchmarkInsertNoWAL)"
ns_wal="$(ns BenchmarkInsertWALNoFsync)"
ns_fsync="$(ns BenchmarkInsertWALFsyncAll)"

start_daemon() { # extra flags...
    "$tmpdir/aigd" -demo -addr "$ADDR" -allow-mutate -refresh-interval 2ms "$@" \
        >"$tmpdir/aigd.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 50); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=""
}

phase() { # label json-prefix daemon-flags...
    local label="$1" prefix="$2"
    shift 2
    echo "== $label"
    start_daemon "$@"
    # Warmup fills the cache; the measured reps ride the warm path while
    # the mutator exercises the (possibly journaled) write path.
    "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1,d2,d3 \
        -c "$WORKERS" -n 1000 -check >/dev/null
    for i in $(seq "$REPS"); do
        "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1,d2,d3 \
            -c "$WORKERS" -n "$REQUESTS" \
            -mutate DB1:visitInfo=s9,t9,d9 -mutate-rate "$MUTATE_RATE" \
            -json "$prefix$i.json" >/dev/null
    done
    # (scrape into a variable first: awk exiting at the first match would
    # SIGPIPE curl mid-body under pipefail)
    local metrics
    metrics="$(curl -fsS "http://$ADDR/metrics" || true)"
    awk '$1 == "aig_relstore_wal_appends_total" { print $2; exit }' \
        <<<"$metrics" >"$prefix.appends"
    stop_daemon
}

phase "write path, in-memory sources" "$tmpdir/mem"
phase "write path, durable sources (-fsync never)" "$tmpdir/wal" \
    -state-dir "$tmpdir/state" -fsync never

best() { # json-prefix -> best throughput_rps
    local prefix="$1" i v bestv=0
    for i in $(seq "$REPS"); do
        v="$(awk -F': *' '$1 ~ /"throughput_rps"/ {gsub(/,$/, "", $2); print $2; exit}' "$prefix$i.json")"
        bestv="$(awk -v a="$bestv" -v b="$v" 'BEGIN { print (b > a) ? b : a }')"
    done
    echo "$bestv"
}
mem_rps="$(best "$tmpdir/mem")"
wal_rps="$(best "$tmpdir/wal")"
ratio="$(awk -v w="$wal_rps" -v m="$mem_rps" 'BEGIN { printf "%.3f", w/m }')"

# WAL activity must actually have happened in the durable phase: the
# mutator's writes journal records, visible as the appends counter.
appends="$(cat "$tmpdir/wal.appends" 2>/dev/null | grep . || echo 0)"
if [ "${appends%%.*}" -le 0 ]; then
    echo "bench_wal: durable phase journaled nothing (aig_relstore_wal_appends_total=$appends)" >&2
    exit 1
fi

cat >"$OUT" <<EOF
{
  "insert_ns": {
    "bare": $ns_bare,
    "wal_no_fsync": $ns_wal,
    "wal_fsync_always": $ns_fsync
  },
  "write_path": {
    "requests": $REQUESTS,
    "mutate_rate": $MUTATE_RATE,
    "in_memory_rps": $mem_rps,
    "durable_rps": $wal_rps,
    "wal_appends": ${appends%%.*},
    "ratio": $ratio,
    "min_ratio": $TOLERANCE
  }
}
EOF

echo "bench_wal: insert ${ns_bare}ns bare / ${ns_wal}ns wal / ${ns_fsync}ns fsync-always;" \
    "write path ${mem_rps} rps in-memory vs ${wal_rps} rps durable (ratio ${ratio}) -> $OUT"
awk -v r="$ratio" -v min="$TOLERANCE" 'BEGIN { exit !(r >= min) }' || {
    echo "bench_wal: durable write path ratio ${ratio} below ${TOLERANCE}" >&2
    exit 1
}
echo "bench_wal: OK"
