#!/usr/bin/env bash
# Smoke-test request tracing end to end, two phases:
#
#  1. Correctness under the race detector: aigd (race-built, flight
#     recorder on, DB1 behind a race-built aigsource over TCP) serves a
#     traced workload; a kept trace fetched from /debug/traces must
#     stitch daemon-side spans (request, evaluate, node:*) together with
#     remote-side spans shipped over the wire (rpc:*, scan:DB1.*).
#
#  2. Overhead guard: with normal builds, warm-path throughput with the
#     flight recorder on but sampling off must stay within
#     AIGD_TRACE_TOLERANCE (default 5%) of the recorder-off baseline,
#     measured back to back on the same machine.
#
# Used by `make smoke-trace` and CI.
set -euo pipefail

ADDR="${AIGD_TRACE_ADDR:-127.0.0.1:18092}"
SRC_ADDR="${AIGD_TRACE_SRC_ADDR:-127.0.0.1:18093}"
TOLERANCE="${AIGD_TRACE_TOLERANCE:-0.95}"
BENCH_REQUESTS="${AIGD_TRACE_BENCH_REQUESTS:-20000}"
BENCH_REPS="${AIGD_TRACE_BENCH_REPS:-5}"

tmpdir="$(mktemp -d)"
daemon_pid=""
source_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$source_pid" ] && kill "$source_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 100); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon at $1 did not become healthy" >&2
    return 1
}

stop_daemon() {
    if [ -n "$daemon_pid" ]; then
        kill -TERM "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" || true
        daemon_pid=""
    fi
}

echo "== building (race-instrumented daemon + source, plain load driver)"
go build -race -o "$tmpdir/aigd.race" ./cmd/aigd
go build -race -o "$tmpdir/aigsource.race" ./cmd/aigsource
go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigload" ./cmd/aigload
go build -o "$tmpdir/aiggen" ./cmd/aiggen

# tiny keeps race-instrumented evaluation over the TCP remote fast
# enough for CI while still touching every table.
"$tmpdir/aiggen" -size tiny -seed 42 -out "$tmpdir/data"
mkdir -p "$tmpdir/remote"
mv "$tmpdir/data/DB1" "$tmpdir/remote/DB1"

echo "== phase 1: stitched traces under -race (DB1 remote over TCP)"
"$tmpdir/aigsource.race" -name DB1 -data "$tmpdir/remote/DB1" -listen "$SRC_ADDR" \
    >"$tmpdir/aigsource.log" 2>&1 &
source_pid=$!
sleep 0.3

"$tmpdir/aigd.race" -addr "$ADDR" \
    -view report=examples/hospital/report.aig \
    -data "$tmpdir/data" -source "DB1=$SRC_ADDR" \
    -trace -trace-sample 1 -debug -log-format json \
    >"$tmpdir/aigd_race.log" 2>&1 &
daemon_pid=$!
wait_healthy "$ADDR" || { cat "$tmpdir/aigd_race.log" >&2; exit 1; }

"$tmpdir/aigload" -url "http://$ADDR" -view report \
    -param date=d001,d002,d003 -c 4 -n 200 -check -trace-header -slowest 3

# A kept cache-miss trace must exist (hits never reach the mediator, so
# only a miss carries evaluation and remote spans) and stitch daemon-side
# and remote-side spans.
trace_id="$(curl -fsS "http://$ADDR/debug/traces?view=report&limit=1000" \
    | python3 -c 'import json,sys
ids = [t["id"] for t in json.load(sys.stdin)["traces"] if t.get("cache") == "miss"]
print(ids[0] if ids else "")')"
if [ -z "$trace_id" ]; then
    echo "smoke_trace: no kept cache-miss trace at /debug/traces" >&2
    exit 1
fi
tree="$(curl -fsS "http://$ADDR/debug/traces/$trace_id?format=text")"
for span in "request" "evaluate" "node:" "call:DB1." "rpc:" "scan:DB1."; do
    if ! grep -qF "$span" <<<"$tree"; then
        echo "smoke_trace: trace $trace_id missing span \"$span\":" >&2
        echo "$tree" >&2
        exit 1
    fi
done
echo "trace $trace_id stitches daemon- and remote-side spans"

# Guarded debug endpoints answer while enabled. (grep without -q: with
# pipefail, -q exiting at the first match would SIGPIPE curl mid-body.)
curl -fsS "http://$ADDR/debug/vars" >/dev/null
curl -fsS "http://$ADDR/metrics" | grep 'trace_id=' >/dev/null \
    || { echo "smoke_trace: no exemplar on /metrics" >&2; exit 1; }

stop_daemon
kill "$source_pid" 2>/dev/null || true
wait "$source_pid" 2>/dev/null || true
source_pid=""
if grep -q "WARNING: DATA RACE" "$tmpdir/aigd_race.log" "$tmpdir/aigsource.log"; then
    echo "smoke_trace: race detected" >&2
    exit 1
fi

echo "== phase 2: warm-path overhead guard (recorder on, sampling off)"
# Methodology: boot one daemon per mode and run the load several times
# against it, keeping each side's best rep. A freshly started process
# spends its first runs growing the heap and faulting pages, and
# same-machine throughput drifts ±10% run to run (shared CI boxes
# especially), so single fresh-boot runs routinely swamp the 5% signal
# this guard is after. The best warmed-up rep on each side is the
# stable capability number. Correctness stays covered: the warmup pass
# runs -check; the measured reps skip it so client-side verification
# CPU does not share the box with the daemon being measured.
throughput() { # $1: extra daemon flags  $2: output prefix
    # shellcheck disable=SC2086
    "$tmpdir/aigd" -demo -addr "$ADDR" $1 >"$tmpdir/aigd_bench.log" 2>&1 &
    daemon_pid=$!
    wait_healthy "$ADDR" || { cat "$tmpdir/aigd_bench.log" >&2; exit 1; }
    "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1 \
        -c 8 -n 2000 -check >/dev/null
    for i in $(seq "$BENCH_REPS"); do
        "$tmpdir/aigload" -url "http://$ADDR" -view report -param date=d1 \
            -c 8 -n "$BENCH_REQUESTS" -json "$2$i.json" >/dev/null
    done
    stop_daemon
}

measure() {
    throughput "" "$tmpdir/off"
    throughput "-trace -trace-sample 0 -trace-slow 0" "$tmpdir/on"
    read -r rps_off rps_on ratio ok <<<"$(python3 - "$tmpdir" "$TOLERANCE" "$BENCH_REPS" <<'EOF'
import json, sys
dir, tol, reps = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
rps = lambda f: json.load(open(f"{dir}/{f}.json"))["throughput_rps"]
off = max(rps(f"off{i}") for i in range(1, reps + 1))
on = max(rps(f"on{i}") for i in range(1, reps + 1))
ratio = on / off if off else 0.0
print(f"{off:.0f} {on:.0f} {ratio:.3f} {'yes' if ratio >= tol else 'no'}")
EOF
)"
    echo "throughput: recorder-off ${rps_off} rps, recorder-on(sampling-off) ${rps_on} rps, ratio ${ratio}"
}

measure
if [ "$ok" != "yes" ]; then
    echo "ratio ${ratio} < ${TOLERANCE}; remeasuring once (transient load?)" >&2
    measure
fi
if [ "$ok" != "yes" ]; then
    echo "smoke_trace: tracing overhead too high (ratio ${ratio} < ${TOLERANCE})" >&2
    exit 1
fi
echo "smoke_trace: OK"
