#!/usr/bin/env bash
# Smoke-test the cluster tier end to end, race-built: one TCP origin
# source (aigsource, with its HTTP mutation sidecar), two aigd replicas
# mirroring it by delta subscription (-subscribe), and aigrouter
# fronting both.
#
#  1. Steady load through the router must see zero failed requests and
#     warm cache hits, even though one replica is SIGKILLed mid-load:
#     the router's health probes and retry-on-next-replica mask the
#     death completely.
#  2. While the replica is down, a mutation lands at the origin. The
#     restarted replica must catch up over the subscription stream (the
#     probe row appears in its served document — never a stale answer)
#     and serve warm hits again.
#
# Used by `make smoke-cluster` and CI; finishes in well under a minute.
set -euo pipefail

ROUTER_ADDR="${AIG_CLUSTER_ROUTER_ADDR:-127.0.0.1:18100}"
REP1_ADDR="${AIG_CLUSTER_REP1_ADDR:-127.0.0.1:18101}"
REP2_ADDR="${AIG_CLUSTER_REP2_ADDR:-127.0.0.1:18102}"
SRC_ADDR="${AIG_CLUSTER_SRC_ADDR:-127.0.0.1:18105}"
SRC_HTTP="${AIG_CLUSTER_SRC_HTTP:-127.0.0.1:18106}"
PROBE_SSN="s999999"
PROBE_NAME="zzz-cluster-probe"

tmpdir="$(mktemp -d)"
pids=()
rep2_pid=""
cleanup() {
    for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done
    [ -n "$rep2_pid" ] && kill "$rep2_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== build (race detector on)"
go build -race -o "$tmpdir/aigd" ./cmd/aigd
go build -race -o "$tmpdir/aigrouter" ./cmd/aigrouter
go build -race -o "$tmpdir/aigsource" ./cmd/aigsource
go build -o "$tmpdir/aigload" ./cmd/aigload
go build -o "$tmpdir/aiggen" ./cmd/aiggen

"$tmpdir/aiggen" -size tiny -seed 42 -out "$tmpdir/data"
mv "$tmpdir/data/DB1" "$tmpdir/DB1"

wait_healthy() { # URL [tries]
    for _ in $(seq "${2:-100}"); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke_cluster: $1 did not become healthy" >&2
    cat "$tmpdir"/*.log >&2 || true
    exit 1
}

echo "== start origin source + 2 subscribed replicas + router"
"$tmpdir/aigsource" -name DB1 -data "$tmpdir/DB1" -listen "$SRC_ADDR" \
    -http "$SRC_HTTP" >>"$tmpdir/aigsource.log" 2>&1 &
pids+=($!)
sleep 0.3

start_replica() { # addr logfile
    "$tmpdir/aigd" -addr "$1" -view report=examples/hospital/report.aig \
        -data "$tmpdir/data" -source "DB1=$SRC_ADDR" -subscribe \
        -refresh-interval 150ms \
        >>"$tmpdir/$2" 2>&1 &
}
start_replica "$REP1_ADDR" rep1.log; pids+=($!)
start_replica "$REP2_ADDR" rep2.log; rep2_pid=$!
wait_healthy "http://$REP1_ADDR"
wait_healthy "http://$REP2_ADDR"

"$tmpdir/aigrouter" -addr "$ROUTER_ADDR" \
    -replica "http://$REP1_ADDR,http://$REP2_ADDR" \
    -health-interval 100ms >>"$tmpdir/router.log" 2>&1 &
pids+=($!)
wait_healthy "http://$ROUTER_ADDR"

echo "== phase 1: kill a replica mid-load; clients must not notice"
"$tmpdir/aigload" -url "http://$ROUTER_ADDR" \
    -metrics-url "http://$REP1_ADDR" -metrics-url "http://$REP2_ADDR" \
    -view report -param date=d001,d002,d003,d004 \
    -c 6 -n 1000000 -duration 5s -check \
    -json "$tmpdir/load.json" >"$tmpdir/load.out" 2>&1 &
load_pid=$!
sleep 1.5
kill -KILL "$rep2_pid"
echo "   (killed replica 2, pid $rep2_pid)"
rep2_pid=""
if ! wait "$load_pid"; then
    echo "smoke_cluster: load through the router saw failures during the kill" >&2
    cat "$tmpdir/load.out" >&2
    cat "$tmpdir/router.log" >&2
    exit 1
fi
grep -E 'requests=|throughput' "$tmpdir/load.out" | head -2
curl -fsS "http://$ROUTER_ADDR/healthz" >/dev/null || {
    echo "smoke_cluster: router unhealthy with one live replica" >&2; exit 1; }

echo "== phase 2: mutate the origin while the replica is down, then restart it"
curl -fsS -X POST "http://$SRC_HTTP/mutate?table=patient&op=insert&values=$PROBE_SSN,$PROBE_NAME,p000001" >/dev/null
curl -fsS -X POST "http://$SRC_HTTP/mutate?table=visitInfo&op=insert&values=$PROBE_SSN,t000001,d001" >/dev/null

start_replica "$REP2_ADDR" rep2.log; rep2_pid=$!
wait_healthy "http://$REP2_ADDR"

# The restarted replica subscribed from scratch: its catch-up snapshot
# must already include the offline mutation.
curl -fsS "http://$REP2_ADDR/views/report?date=d001" -o "$tmpdir/caught-up.b" -D "$tmpdir/caught-up.h"
grep -q "$PROBE_NAME" "$tmpdir/caught-up.b" || {
    echo "smoke_cluster: restarted replica served a document without the offline mutation" >&2
    cat "$tmpdir/rep2.log" >&2
    exit 1
}
catchups="$(curl -fsS "http://$REP2_ADDR/metrics" \
    | awk '$1 ~ /^aig_mirror_catchup_/ { sum += $2 } END { print sum+0 }')"
[ "${catchups%%.*}" -ge 1 ] || {
    echo "smoke_cluster: restarted replica metered no catch-up (got $catchups)" >&2; exit 1; }

# And it serves warm: the same request again is a cache hit.
state="$(curl -fsS -D - -o /dev/null "http://$REP2_ADDR/views/report?date=d001" \
    | tr -d '\r' | awk -F': ' 'tolower($1)=="x-aig-cache"{print $2}')"
[ "$state" = "hit" ] || {
    echo "smoke_cluster: restarted replica repeat request was '$state', want hit" >&2; exit 1; }

# Routed traffic reaches it again once the prober notices.
sleep 0.5
curl -fsS "http://$ROUTER_ADDR/replicas" | grep -q '"healthy":true' || {
    echo "smoke_cluster: router never saw the restarted replica healthy" >&2; exit 1; }

echo "smoke_cluster: OK (kill masked, catch-up=$catchups, warm hit after restart)"
