#!/usr/bin/env bash
# Smoke-test durability end to end: a TCP remote source (aigsource with
# -data-dir) and the mediator (aigd with -state-dir for its local CSV
# sources and -cache-dir for the result cache) are warmed, stopped and
# restarted twice:
#
#  1. Warm restart, nothing changed: before any request the restarted
#     daemon must report restored cache entries on /metrics, and the
#     first request must be a cache hit with the byte-identical body —
#     zero evaluations paid.
#  2. Restart with a mutation landed while everything was down (via
#     `aigsource -apply` against the source's durable state): the
#     persisted entry must be dropped, the first request must be a miss,
#     and its body must reflect the mutation — stale bytes are never
#     served.
#
# Used by `make smoke-restart` and CI; finishes in well under a minute.
set -euo pipefail

ADDR="${AIGD_RESTART_ADDR:-127.0.0.1:18094}"
SRC_ADDR="${AIGD_RESTART_SRC_ADDR:-127.0.0.1:18095}"
PROBE_SSN="s999999"
PROBE_NAME="zzz-restart-probe"

tmpdir="$(mktemp -d)"
daemon_pid=""
source_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$source_pid" ] && kill "$source_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

go build -o "$tmpdir/aigd" ./cmd/aigd
go build -o "$tmpdir/aigsource" ./cmd/aigsource
go build -o "$tmpdir/aiggen" ./cmd/aiggen

"$tmpdir/aiggen" -size tiny -seed 42 -out "$tmpdir/data"
mkdir -p "$tmpdir/remote" "$tmpdir/state" "$tmpdir/cache"
mv "$tmpdir/data/DB1" "$tmpdir/remote/DB1"

start_source() { # after the first call the CSV seed is ignored: state recovers
    "$tmpdir/aigsource" -name DB1 -data "$tmpdir/remote/DB1" \
        -data-dir "$tmpdir/state/DB1" -fsync always -listen "$SRC_ADDR" \
        >>"$tmpdir/aigsource.log" 2>&1 &
    source_pid=$!
    sleep 0.3
}

start_daemon() {
    "$tmpdir/aigd" -addr "$ADDR" \
        -view report=examples/hospital/report.aig \
        -data "$tmpdir/data" -state-dir "$tmpdir/state" \
        -source "DB1=$SRC_ADDR" -cache-dir "$tmpdir/cache" \
        >>"$tmpdir/aigd.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "aigd did not become healthy; log:" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
}

stop_all() { # graceful: aigd drains (saving the cache), source snapshots
    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=""
    kill -TERM "$source_pid"
    wait "$source_pid" 2>/dev/null || true
    source_pid=""
}

metric() { # name -> value (0 when absent)
    curl -fsS "http://$ADDR/metrics" \
        | awk -v m="$1" '$1 == m { print $2; exit }' \
        | grep . || echo 0
}

fetch() { # writes headers to $1.h and body to $1.b
    curl -fsS -D "$1.h" -o "$1.b" "http://$ADDR/views/report?date=d001"
}
cache_state() { tr -d '\r' <"$1.h" | awk -F': ' 'tolower($1)=="x-aig-cache"{print $2}'; }

echo "== warm the daemon, then stop everything gracefully"
start_source
start_daemon
fetch "$tmpdir/first"
[ "$(cache_state "$tmpdir/first")" = "miss" ] || {
    echo "smoke_restart: expected a cold miss" >&2; exit 1; }
fetch "$tmpdir/warm"
[ "$(cache_state "$tmpdir/warm")" = "hit" ] || {
    echo "smoke_restart: expected a warm hit before the restart" >&2; exit 1; }
stop_all

echo "== phase 1: warm restart, nothing changed"
start_source
start_daemon
restored="$(metric aig_serve_cache_persist_restored_total)"
if [ "${restored%%.*}" -lt 1 ]; then
    echo "smoke_restart: no restored cache entries after restart (got $restored)" >&2
    cat "$tmpdir/aigd.log" >&2
    exit 1
fi
fetch "$tmpdir/restart"
[ "$(cache_state "$tmpdir/restart")" = "hit" ] || {
    echo "smoke_restart: first post-restart request was not a cache hit" >&2; exit 1; }
cmp -s "$tmpdir/warm.b" "$tmpdir/restart.b" || {
    echo "smoke_restart: restored entry served different bytes" >&2; exit 1; }
evals="$(metric aig_serve_evaluations_total)"
if [ "${evals%%.*}" -ne 0 ]; then
    echo "smoke_restart: warm restart paid $evals evaluations, want 0" >&2
    exit 1
fi
echo "warm restart: $restored entries restored, first request hit, 0 evaluations"
stop_all

echo "== phase 2: mutation lands while everything is down"
"$tmpdir/aigsource" -name DB1 -data-dir "$tmpdir/state/DB1" -fsync always \
    -apply "patient:insert:$PROBE_SSN,$PROBE_NAME,p000001"
"$tmpdir/aigsource" -name DB1 -data-dir "$tmpdir/state/DB1" -fsync always \
    -apply "visitInfo:insert:$PROBE_SSN,t000001,d001"
start_source
start_daemon
dropped="$(metric aig_serve_cache_persist_dropped_total)"
if [ "${dropped%%.*}" -lt 1 ]; then
    echo "smoke_restart: stale entry was not dropped on load (got $dropped)" >&2
    exit 1
fi
fetch "$tmpdir/mutated"
[ "$(cache_state "$tmpdir/mutated")" = "miss" ] || {
    echo "smoke_restart: post-mutation request served from a stale cache" >&2; exit 1; }
grep -q "$PROBE_NAME" "$tmpdir/mutated.b" || {
    echo "smoke_restart: mutation applied while down is missing from the document" >&2
    exit 1
}
grep -q "$PROBE_NAME" "$tmpdir/warm.b" && {
    echo "smoke_restart: probe name present before the mutation; test is vacuous" >&2
    exit 1
}
echo "mutation restart: entry dropped, fresh evaluation reflects the offline write"
stop_all
echo "smoke_restart: OK"
