// Command aigd serves AIG-defined XML views over HTTP.
//
// At startup every view named with -view is parsed, validated against
// the sources, constraint-compiled, query-decomposed and planned once;
// requests then only bind the view's root parameters and evaluate:
//
//	aigd -addr :8080 -view report=report.aig -data ./data
//	aigd -addr :8080 -view report=report.aig -source DB1=host1:7001 -source DB2=host2:7001
//	aigd -demo        # built-in hospital view over the in-memory catalog
//
// With -subscribe each -source is consumed as a delta subscription
// instead of per-request RPCs: the daemon keeps a local mirror of the
// source's tables, the source engine pushes row deltas as they happen
// (snapshot catch-up when the mirror is cold or fell past the change
// log's horizon), and queries run against the mirror at local-memory
// speed. Mirror applies kick the background refresher immediately, so
// cached views go warm again one refresh cycle after a remote write —
// push-based invalidation instead of interval polling. /healthz then
// reports 503 until every mirror has completed its initial sync (and
// again if its feed goes stale), so a fleet router routes around
// replicas that are still catching up.
//
// Endpoints:
//
//	GET  /views                       list prepared views
//	GET  /views/{name}?p=v&...        evaluate (or serve from cache)
//	POST /views/{name}                same, parameters as form or JSON body
//	GET  /views/{name}/explain        the prepared plan, no evaluation
//	GET  /views/{name}/trace          span tree of the last traced evaluation
//	GET  /metrics                     Prometheus text format
//	GET  /healthz                     200 while ready (views prepared, sources healthy), 503 otherwise
//	POST /mutate                      row-level writes (-allow-mutate only)
//	GET  /debug/traces                flight-recorder trace summaries (-trace only)
//	GET  /debug/traces/{id}           one kept trace's full span tree (-trace only)
//	GET  /debug/pprof/  /debug/vars   runtime profiling and expvar (-debug only)
//
// With -trace every request runs under a W3C-compatible trace context:
// an incoming Traceparent header is adopted (so a caller's trace ID
// groups the daemon's spans), responses carry X-Aig-Trace-Id, and the
// flight recorder tail-samples completed traces — errors and slow
// requests always kept, a -trace-sample fraction of the rest — into a
// bounded in-memory store served at /debug/traces.
//
// Results are cached per (view, parameters, source data versions);
// mutating a source invalidates automatically. With -refresh-interval
// a background refresher re-validates cached entries after mutations —
// provably unaffected entries are restamped in place, the rest are
// re-evaluated — so hot views stay warm instead of paying a miss on
// the next request. Identical concurrent requests are coalesced into
// one evaluation, and -max-concurrent / -max-queue / -queue-timeout
// bound the work the daemon accepts: beyond them clients get 429 or
// 503 instead of unbounded queuing. SIGINT or SIGTERM drains in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/serve"
	"github.com/aigrepro/aig/internal/source"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

// verifyMode is the tri-state -verify flag: off (default), on (skip
// verification for statically certified views), or always (verify even
// certified views — the escape hatch for distrusting the certifier).
// IsBoolFlag keeps plain `-verify` working as "on".
type verifyMode struct{ on, always bool }

func (v *verifyMode) String() string {
	switch {
	case v.always:
		return "always"
	case v.on:
		return "true"
	default:
		return "false"
	}
}

func (v *verifyMode) Set(s string) error {
	switch strings.ToLower(s) {
	case "true", "on", "1", "auto":
		v.on, v.always = true, false
	case "false", "off", "0":
		v.on, v.always = false, false
	case "always":
		v.on, v.always = true, true
	default:
		return fmt.Errorf("want off, on or always, got %q", s)
	}
	return nil
}

func (v *verifyMode) IsBoolFlag() bool { return true }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	var views, sources repeated
	flag.Var(&views, "view", "view as NAME=SPECFILE (repeatable)")
	flag.Var(&sources, "source", "remote source as NAME=ADDR (repeatable)")
	dataDir := flag.String("data", "", "directory of CSV source databases (one subdirectory per DB)")
	demo := flag.Bool("demo", false, "serve the built-in hospital view over the in-memory catalog")
	demoSize := flag.String("demo-size", "tiny", "demo catalog scale: tiny (the paper's Example 1.1 rows) or a generated small, medium or large dataset")
	demoSeed := flag.Int64("demo-seed", 1, "random seed for generated demo catalogs (sizes other than tiny)")
	maxConcurrent := flag.Int("max-concurrent", 8, "maximum concurrent evaluations")
	maxQueue := flag.Int("max-queue", 64, "maximum requests waiting for an evaluation slot")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "longest a request may wait for a slot")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (0 disables caching)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache here across restarts (saved on drain, re-validated on startup)")
	stateDir := flag.String("state-dir", "", "durable local-source state directory, one subdirectory per DB (WAL + snapshots)")
	fsyncMode := flag.String("fsync", "never", "durable-state WAL flushing policy: never or always")
	refreshInterval := flag.Duration("refresh-interval", 0, "background cache refresh interval (0 disables the refresher)")
	allowMutate := flag.Bool("allow-mutate", false, "serve POST /mutate for row-level writes against local sources")
	unfold := flag.Int("unfold", 4, "initial recursion unfolding depth")
	maxUnfold := flag.Int("maxunfold", 64, "maximum unfolding depth")
	srcTimeout := flag.Duration("source-timeout", 0, "connect/read/write timeout for remote sources (0 disables)")
	subscribe := flag.Bool("subscribe", false, "mirror remote sources by delta subscription instead of per-request RPCs")
	syncTimeout := flag.Duration("sync-timeout", 30*time.Second, "longest to wait for mirrors' initial sync before serving (with -subscribe)")
	simWork := flag.Duration("sim-work", 0, "simulated per-request service-time floor held under the admission semaphore (capacity benchmarking; 0 disables)")
	var verify verifyMode
	flag.Var(&verify, "verify", "check evaluated documents against the DTD and constraints: off, on (skips statically certified views) or always")
	traceReqs := flag.Bool("trace-requests", false, "record a span tree per evaluation, served at /views/{name}/trace")
	trace := flag.Bool("trace", false, "enable the flight recorder: per-request traces with tail sampling, served at /debug/traces")
	traceCapacity := flag.Int("trace-capacity", 256, "kept traces before the oldest is evicted")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "requests at least this slow are always kept (0 disables the slow rule)")
	traceSample := flag.Float64("trace-sample", 0.01, "fraction of fast, healthy requests kept, 0 keeps none (errors and slow requests are always kept)")
	debug := flag.Bool("debug", false, "serve /debug/pprof and /debug/vars (exposes runtime internals; trusted listeners only)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "longest to wait for in-flight requests on shutdown")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	if *demo == (len(views) != 0) {
		return fmt.Errorf("pass either -demo or at least one -view NAME=SPECFILE")
	}

	fsync, err := relstore.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	// The refresher (and so the server) does not exist yet when mirrors
	// start applying deltas; route their kicks through an indirection
	// installed right after the server is built.
	var kickFn atomic.Value // func()
	onApply := func() {
		if f, ok := kickFn.Load().(func()); ok {
			f()
		}
	}
	reg, persisters, mirrors, err := buildRegistry(*dataDir, *stateDir, fsync, sources, *srcTimeout, *demo, *demoSize, *demoSeed, *subscribe, onApply)
	if err != nil {
		return err
	}
	defer func() {
		for _, m := range mirrors {
			m.Close()
		}
	}()

	// In serve.Config zero means "default"; the flag's 0 means "off".
	if *cacheEntries == 0 {
		*cacheEntries = -1
	}
	cfg := serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTimeout,
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		Unfold:          *unfold,
		MaxUnfold:       *maxUnfold,
		VerifyOutput:    verify.on,
		VerifyAlways:    verify.always,
		TraceRequests:   *traceReqs,
		RefreshInterval: *refreshInterval,
		AllowMutate:     *allowMutate,
		SimWork:         *simWork,

		FlightRecorder:     *trace,
		TraceCapacity:      *traceCapacity,
		TraceSlowThreshold: cliDisabled(*traceSlow == 0, *traceSlow),
		TraceSampleRate:    cliDisabled(*traceSample == 0, *traceSample),
		EnableDebug:        *debug,
		Logger:             logger,
	}
	srv := serve.NewServer(reg, cfg)
	kickFn.Store(func() { srv.KickRefresh() })

	// View preparation reads schemas and statistics from the sources;
	// a mirror can answer those only after its initial sync.
	if len(mirrors) > 0 {
		wctx, cancel := context.WithTimeout(context.Background(), *syncTimeout)
		for _, m := range mirrors {
			if err := m.WaitReady(wctx); err != nil {
				cancel()
				return fmt.Errorf("waiting for mirror sync: %w", err)
			}
		}
		cancel()
		slog.Info("mirrors synced", "count", len(mirrors))
	}

	if *demo {
		v, err := srv.AddSpec("report", hospital.SpecText)
		if err != nil {
			return fmt.Errorf("preparing demo view: %w", err)
		}
		slog.Info("prepared demo view", "view", "report", "catalog", "hospital", "certified", v.Certified())
	}
	for _, spec := range views {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-view needs NAME=SPECFILE, got %q", spec)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		v, err := srv.AddSpec(name, string(text))
		if err != nil {
			return fmt.Errorf("preparing view %s: %w", name, err)
		}
		slog.Info("prepared view", "view", name, "params", fmt.Sprint(v.Params()), "sources", fmt.Sprint(v.Sources()), "certified", v.Certified())
	}

	// With every view registered, a persisted cache can be re-validated:
	// entries whose stamps still match the (possibly just-recovered)
	// sources serve without re-evaluation; provably unaffected ones are
	// restamped; the rest are dropped — never served stale.
	if *cacheDir != "" {
		n, err := srv.LoadCache(*cacheDir)
		if err != nil {
			slog.Warn("cache load failed; starting cold", "dir", *cacheDir, "err", err)
		} else {
			slog.Info("cache warmed", "dir", *cacheDir, "entries", n)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		slog.Info("aigd listening", "addr", *addr, "flight_recorder", *trace, "debug", *debug)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	slog.Info("draining", "timeout", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		slog.Warn("drain did not finish cleanly", "err", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Close journals last: a final snapshot per durable source makes the
	// next start replay-free.
	for _, p := range persisters {
		if err := p.Close(); err != nil {
			slog.Warn("closing source journal", "err", err)
		}
	}
	slog.Info("aigd stopped")
	return nil
}

// cliDisabled translates flag semantics into serve.Config semantics for
// the tail-sampling knobs: on the command line 0 means "off", while in
// Config 0 means "use the default" and negative means off.
func cliDisabled[T time.Duration | float64](off bool, v T) T {
	if off {
		return -1
	}
	return v
}

// buildLogger makes the process-wide structured logger from the
// -log-format / -log-level flags. Request logs carry trace_id and
// request_id attributes, so `-log-format json` pipes straight into log
// search keyed by the same IDs /debug/traces serves.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q (want text or json)", format)
	}
}

// buildRegistry assembles the source registry. With stateDir every
// local source (demo catalog databases and -data CSV directories alike)
// is opened durably under stateDir/<name>: first start seeds the WAL
// from the in-memory or CSV content, later starts recover tuples, table
// versions and change logs from disk — so cache stamps and delta
// watermarks taken before a restart still validate. The returned
// persisters must be closed on shutdown.
// With subscribe, remote sources are consumed as delta-subscription
// mirrors (returned so the caller can wait for their initial sync and
// close them on shutdown); onApply fires after every batch of mirror
// deltas lands.
func buildRegistry(dataDir, stateDir string, fsync relstore.FsyncMode, sources []string, timeout time.Duration, demo bool, demoSize string, demoSeed int64, subscribe bool, onApply func()) (*source.Registry, []*relstore.Persister, []*remote.Mirror, error) {
	var persisters []*relstore.Persister
	var mirrors []*remote.Mirror
	addLocal := func(name string, seed func() (*relstore.Database, error), reg *source.Registry) error {
		if stateDir == "" {
			db, err := seed()
			if err != nil {
				return err
			}
			reg.Add(source.NewLocal(db))
			return nil
		}
		db, p, err := source.OpenDurable(name, source.DurableOptions{
			Dir:   filepath.Join(stateDir, name),
			Fsync: fsync,
		}, seed)
		if err != nil {
			return err
		}
		slog.Info("durable source open", "db", name, "version", db.Version(), "seq", p.Seq())
		reg.Add(source.NewLocal(db))
		persisters = append(persisters, p)
		return nil
	}

	reg := source.NewRegistry()
	n := 0
	if demo {
		// The tiny scale is the paper's worked example; anything larger is
		// generated deterministically at the Table 1 cardinalities, the
		// substrate for fragment-vs-full-document benchmarks.
		var cat *relstore.Catalog
		if demoSize == "" || demoSize == "tiny" {
			cat = hospital.TinyCatalog()
		} else {
			size, err := datagen.SizeByName(demoSize)
			if err != nil {
				return nil, nil, nil, err
			}
			cat = datagen.Generate(size, demoSeed)
			slog.Info("generated demo catalog", "size", size.Name, "seed", demoSeed)
		}
		for _, name := range cat.DatabaseNames() {
			name := name
			err := addLocal(name, func() (*relstore.Database, error) { return cat.Database(name) }, reg)
			if err != nil {
				return nil, nil, nil, err
			}
			n++
		}
	}
	if dataDir != "" {
		entries, err := os.ReadDir(dataDir)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			name := e.Name()
			err := addLocal(name, func() (*relstore.Database, error) {
				return relstore.LoadDir(name, filepath.Join(dataDir, name))
			}, reg)
			if err != nil {
				return nil, nil, nil, err
			}
			n++
		}
	}
	for _, s := range sources {
		name, addr, ok := strings.Cut(s, "=")
		if !ok {
			return nil, nil, nil, fmt.Errorf("-source needs NAME=ADDR, got %q", s)
		}
		if subscribe {
			// The subscription's read deadline bounds the gap between pushed
			// frames; it must exceed the origin's heartbeat cadence (1s) or
			// an idle stream looks dead and reconnects forever.
			readTO := timeout
			if readTO > 0 && readTO < 3*time.Second {
				readTO = 3 * time.Second
			}
			m := remote.OpenMirror(name, addr, remote.MirrorOptions{
				Timeouts: remote.Timeouts{Dial: timeout, Read: readTO, Write: timeout},
				OnApply:  onApply,
				Logger:   slog.Default(),
			})
			mirrors = append(mirrors, m)
			reg.Add(m.Source())
			n++
			continue
		}
		client, err := remote.DialTimeouts(name, addr,
			remote.Timeouts{Dial: timeout, Read: timeout, Write: timeout})
		if err != nil {
			return nil, nil, nil, err
		}
		reg.Add(client)
		n++
	}
	if n == 0 {
		return nil, nil, nil, fmt.Errorf("no sources: pass -data or -source")
	}
	return reg, persisters, mirrors, nil
}
