// Command aigload drives a running aigd (or a fleet of them) with a
// closed loop of concurrent clients and reports throughput, latency
// percentiles and the daemon's cache behaviour:
//
//	aigload -url http://localhost:8080 -view report -param date=d1,d2 -c 8 -n 2000 -json BENCH_serve.json
//
// -url is repeatable (and accepts comma-separated lists): with several
// targets the workers rotate requests across them round-robin and the
// report carries per-target request counts and latency percentiles
// alongside the aggregate — the way to compare replicas behind a
// router against the router itself, or to drive N daemons directly.
// /metrics is scraped from every -metrics-url (default: every target)
// and the counters summed, so fleet-wide cache behaviour adds up even
// when the load went through a router that only exposes its own
// metrics.
//
// Each of the -c workers issues requests back to back until -n total
// requests complete (or -duration elapses, whichever comes first).
// Repeatable -param flags name a view parameter with a comma-separated
// value list; workers rotate through the value combinations so the
// daemon sees a realistic mix of repeated (cacheable) bindings. After
// the run, /metrics is scraped for the serve counters so the report can
// attribute requests to cache hits, coalesced flights and evaluations.
//
// With -mutate SOURCE:TABLE=V1,V2,... a background writer alternates
// inserting and deleting that row through POST /mutate at -mutate-rate
// writes per second — against the first target by default, or against
// -mutate-url (an origin aigsource -http sidecar, say, while replicas
// follow by subscription),
// measuring serving behaviour under a continuously changing source; the
// report then also carries the daemon's refresh counters and the
// refresh-lag percentiles estimated from the /metrics histogram. With
// -no-store every request carries Cache-Control: no-store, bypassing
// the result cache — the cache-off baseline for the same workload.
//
// Repeatable -path flags add fragment request shapes (GET
// /views/{name}?path=...) to the rotation alongside the full document
// (drop the full-document shape with -fragment-only). The report then
// carries per-shape latency percentiles, client-measured first-byte
// latency, and bytes/request — what bench_fragment.sh reads to compare
// fragment and full-document cost — plus the daemon-side TTFB
// quantiles scraped from aig_serve_ttfb_seconds.
//
// With -check the exit status enforces a healthy run: zero failed
// requests and at least one cache hit.
//
// Against an aigd running with -trace, -trace-header stamps every
// request with a fresh W3C Traceparent (so daemon traces carry IDs the
// client chose and printed logs correlate), and -slowest N ends the run
// by listing the N slowest traces the daemon's flight recorder kept —
// each ID pastes into GET /debug/traces/{id} for the full span tree of
// exactly that slow request.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aigrepro/aig/internal/obs"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

// report is the JSON written by -json (BENCH_serve.json).
type report struct {
	View        string  `json:"view"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Rejected    int64   `json:"rejected"` // 429/503 admission rejections
	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"throughput_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`

	// Targets carries per-target traffic splits and latency percentiles
	// when more than one -url was given.
	Targets []targetReport `json:"targets,omitempty"`

	// Paths carries per-request-shape stats when -path was given: the
	// full-document shape plus one row per fragment path, each with its
	// own latency, client-measured first-byte latency, and bytes/request
	// — the honest fragment-vs-full comparison bench_fragment.sh reads.
	Paths []pathReport `json:"paths,omitempty"`

	// Server-side TTFB quantiles scraped from aig_serve_ttfb_seconds.
	TTFBP50Ms float64 `json:"ttfb_p50_ms,omitempty"`
	TTFBP95Ms float64 `json:"ttfb_p95_ms,omitempty"`
	TTFBP99Ms float64 `json:"ttfb_p99_ms,omitempty"`

	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	Coalesced     int64            `json:"coalesced"`
	Evaluations   int64            `json:"evaluations"`
	CacheHitRatio float64          `json:"cache_hit_ratio"`
	CacheDisabled bool             `json:"cache_disabled,omitempty"`
	BytesReceived int64            `json:"bytes_received"`
	StatusCounts  map[string]int64 `json:"status_counts"`

	// SlowestTraces lists the N slowest traces the daemon's flight
	// recorder kept for this view (populated with -slowest against an
	// aigd running with -trace).
	SlowestTraces []slowTrace `json:"slowest_traces,omitempty"`

	// Mutation / refresh behaviour (populated with -mutate).
	Mutations      int64   `json:"mutations,omitempty"`
	MutationErrors int64   `json:"mutation_errors,omitempty"`
	RefreshDelta   int64   `json:"refresh_delta,omitempty"`
	RefreshFull    int64   `json:"refresh_full,omitempty"`
	RefreshErrors  int64   `json:"refresh_errors,omitempty"`
	StaleSkips     int64   `json:"stale_skips,omitempty"`
	RefreshLagP50  float64 `json:"refresh_lag_p50_ms,omitempty"`
	RefreshLagP95  float64 `json:"refresh_lag_p95_ms,omitempty"`
	RefreshLagP99  float64 `json:"refresh_lag_p99_ms,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigload:", err)
		os.Exit(1)
	}
}

// targetReport is one -url target's slice of the run.
type targetReport struct {
	URL        string  `json:"url"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// targetStats accumulates one target's samples during the run.
type targetStats struct {
	url       string
	requests  atomic.Int64
	errors    atomic.Int64
	mu        sync.Mutex
	latencies []float64 // milliseconds, successful requests only
}

// pathReport is one request shape's slice of the run: the full document
// (path "") or one fragment path.
type pathReport struct {
	Path            string  `json:"path"` // "" = full document
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	BytesPerRequest float64 `json:"bytes_per_request"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	TTFBP50Ms       float64 `json:"ttfb_p50_ms"`
	TTFBP95Ms       float64 `json:"ttfb_p95_ms"`
	TTFBP99Ms       float64 `json:"ttfb_p99_ms"`
}

// pathStats accumulates one request shape's samples during the run.
type pathStats struct {
	path      string
	requests  atomic.Int64
	errors    atomic.Int64
	bytes     atomic.Int64
	mu        sync.Mutex
	latencies []float64 // milliseconds, successful requests only
	ttfbs     []float64 // milliseconds to the first body byte
}

func run() error {
	var urlFlags repeated
	flag.Var(&urlFlags, "url", "aigd base URL (repeatable or comma-separated; workers rotate round-robin; default http://localhost:8080)")
	var metricsFlags repeated
	flag.Var(&metricsFlags, "metrics-url", "base URL to scrape /metrics from (repeatable; counters are summed; default: every -url)")
	mutateURL := flag.String("mutate-url", "", "base URL for the background writer's POST /mutate (default: the first -url)")
	view := flag.String("view", "report", "view to request")
	var paramFlags repeated
	flag.Var(&paramFlags, "param", "view parameter as NAME=V1,V2,... (repeatable; workers rotate the combinations)")
	var pathFlags repeated
	flag.Var(&pathFlags, "path", "fragment path to request (repeatable; workers rotate full-document and fragment shapes)")
	fragOnly := flag.Bool("fragment-only", false, "with -path, drop the full-document shape from the rotation")
	concurrency := flag.Int("c", 8, "concurrent workers")
	total := flag.Int64("n", 1000, "total requests")
	duration := flag.Duration("duration", 0, "stop after this long even if -n is not reached (0: no limit)")
	jsonPath := flag.String("json", "", "write the report as JSON to this file (e.g. BENCH_serve.json)")
	check := flag.Bool("check", false, "exit non-zero unless errors==0 and cache hits > 0")
	noStore := flag.Bool("no-store", false, "send Cache-Control: no-store on every request (cache-off baseline)")
	mutate := flag.String("mutate", "", "background writer as SOURCE:TABLE=V1,V2,... (alternates insert/delete via POST /mutate)")
	mutateRate := flag.Float64("mutate-rate", 20, "background writes per second with -mutate")
	traceHeader := flag.Bool("trace-header", false, "send a fresh W3C Traceparent header per request, so daemon-side traces carry client-chosen IDs")
	slowest := flag.Int("slowest", 0, "after the run, fetch /debug/traces and report the N slowest kept traces (needs aigd -trace)")
	flag.Parse()

	combos, err := paramCombos(paramFlags)
	if err != nil {
		return err
	}

	// Request shapes: the full document plus one per -path. Workers
	// rotate tickets across shapes, so fragment and full-document cost
	// are measured in the same run against the same daemon state.
	var shapes []*pathStats
	if !*fragOnly {
		shapes = append(shapes, &pathStats{path: ""})
	} else if len(pathFlags) == 0 {
		return fmt.Errorf("-fragment-only needs at least one -path")
	}
	for _, p := range pathFlags {
		shapes = append(shapes, &pathStats{path: p})
	}

	var bases []string
	for _, f := range urlFlags {
		for _, u := range strings.Split(f, ",") {
			if u = strings.TrimSpace(strings.TrimRight(u, "/")); u != "" {
				bases = append(bases, u)
			}
		}
	}
	if len(bases) == 0 {
		bases = []string{"http://localhost:8080"}
	}
	targets := make([]*targetStats, len(bases))
	for i, u := range bases {
		targets[i] = &targetStats{url: u}
	}
	metricsURLs := []string(metricsFlags)
	if len(metricsURLs) == 0 {
		metricsURLs = bases
	}
	mutBase := *mutateURL
	if mutBase == "" {
		mutBase = bases[0]
	}
	mutBase = strings.TrimRight(mutBase, "/")

	var (
		done      atomic.Int64 // completed requests (any status)
		issued    atomic.Int64 // tickets handed to workers
		errsN     atomic.Int64 // transport errors + HTTP 5xx/4xx except admission rejections
		rejected  atomic.Int64 // 429 / 503
		bytesIn   atomic.Int64
		statusMu  sync.Mutex
		statuses  = make(map[string]int64)
		latMu     sync.Mutex
		latencies []float64 // milliseconds
	)

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()

	// Background writer: alternate insert/delete of one row so the
	// sources keep moving for the whole run.
	var mutOK, mutErr atomic.Int64
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	if *mutate != "" {
		src, table, row, err := parseMutateSpec(*mutate)
		if err != nil {
			return err
		}
		if *mutateRate <= 0 {
			return fmt.Errorf("-mutate-rate must be positive, got %v", *mutateRate)
		}
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			tick := time.NewTicker(time.Duration(float64(time.Second) / *mutateRate))
			defer tick.Stop()
			op := "insert"
			for {
				select {
				case <-stopMut:
					return
				case <-tick.C:
				}
				u := mutBase + "/mutate?" + url.Values{
					"source": {src}, "table": {table}, "op": {op}, "values": {row},
				}.Encode()
				resp, err := client.Post(u, "", nil)
				if err != nil {
					mutErr.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					mutOK.Add(1)
				} else {
					mutErr.Add(1)
				}
				if op == "insert" {
					op = "delete"
				} else {
					op = "insert"
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ticket := issued.Add(1)
				if ticket > *total {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				tgt := targets[(ticket-1)%int64(len(targets))]
				tgt.requests.Add(1)
				shape := shapes[(ticket-1)%int64(len(shapes))]
				shape.requests.Add(1)
				u := tgt.url + "/views/" + url.PathEscape(*view)
				if q := combos.query(ticket - 1); q != "" {
					u += "?" + q
				}
				if shape.path != "" {
					sep := "?"
					if strings.Contains(u, "?") {
						sep = "&"
					}
					u += sep + "path=" + url.QueryEscape(shape.path)
				}
				req, err := http.NewRequest(http.MethodGet, u, nil)
				if err != nil {
					errsN.Add(1)
					tgt.errors.Add(1)
					shape.errors.Add(1)
					done.Add(1)
					continue
				}
				if *noStore {
					req.Header.Set("Cache-Control", "no-store")
				}
				if *traceHeader {
					req.Header.Set("Traceparent", obs.FormatTraceparent(obs.NewTraceID()))
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				done.Add(1)
				if err != nil {
					errsN.Add(1)
					tgt.errors.Add(1)
					shape.errors.Add(1)
					continue
				}
				// The first body byte bounds the client-observed TTFB
				// (headers have already arrived when Do returns; streamed
				// fragment responses flush elements before the body ends).
				br := bufio.NewReader(resp.Body)
				_, _ = br.Peek(1)
				ttfb := time.Since(t0).Seconds() * 1000
				n, _ := io.Copy(io.Discard, br)
				resp.Body.Close()
				lat := time.Since(t0).Seconds() * 1000
				bytesIn.Add(n)
				shape.bytes.Add(n)
				statusMu.Lock()
				statuses[strconv.Itoa(resp.StatusCode)]++
				statusMu.Unlock()
				switch {
				case resp.StatusCode == http.StatusOK:
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
					tgt.mu.Lock()
					tgt.latencies = append(tgt.latencies, lat)
					tgt.mu.Unlock()
					shape.mu.Lock()
					shape.latencies = append(shape.latencies, lat)
					shape.ttfbs = append(shape.ttfbs, ttfb)
					shape.mu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					errsN.Add(1)
					tgt.errors.Add(1)
					shape.errors.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopMut)
	mutWG.Wait()

	rep := report{
		View:          *view,
		Concurrency:   *concurrency,
		Requests:      done.Load(),
		Errors:        errsN.Load(),
		Rejected:      rejected.Load(),
		DurationSec:   elapsed.Seconds(),
		BytesReceived: bytesIn.Load(),
		StatusCounts:  statuses,
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P95Ms = percentile(latencies, 0.95)
	rep.P99Ms = percentile(latencies, 0.99)

	if len(targets) > 1 {
		for _, tgt := range targets {
			tgt.mu.Lock()
			sort.Float64s(tgt.latencies)
			tr := targetReport{
				URL:      tgt.url,
				Requests: tgt.requests.Load(),
				Errors:   tgt.errors.Load(),
				P50Ms:    percentile(tgt.latencies, 0.50),
				P95Ms:    percentile(tgt.latencies, 0.95),
				P99Ms:    percentile(tgt.latencies, 0.99),
			}
			tgt.mu.Unlock()
			if elapsed > 0 {
				tr.Throughput = float64(tr.Requests) / elapsed.Seconds()
			}
			rep.Targets = append(rep.Targets, tr)
		}
	}

	if len(pathFlags) > 0 {
		for _, sh := range shapes {
			sh.mu.Lock()
			sort.Float64s(sh.latencies)
			sort.Float64s(sh.ttfbs)
			pr := pathReport{
				Path:      sh.path,
				Requests:  sh.requests.Load(),
				Errors:    sh.errors.Load(),
				P50Ms:     percentile(sh.latencies, 0.50),
				P95Ms:     percentile(sh.latencies, 0.95),
				P99Ms:     percentile(sh.latencies, 0.99),
				TTFBP50Ms: percentile(sh.ttfbs, 0.50),
				TTFBP95Ms: percentile(sh.ttfbs, 0.95),
				TTFBP99Ms: percentile(sh.ttfbs, 0.99),
			}
			sh.mu.Unlock()
			if ok := pr.Requests - pr.Errors; ok > 0 {
				pr.BytesPerRequest = float64(sh.bytes.Load()) / float64(ok)
			}
			rep.Paths = append(rep.Paths, pr)
		}
	}

	rep.Mutations = mutOK.Load()
	rep.MutationErrors = mutErr.Load()
	if counters, hists, err := scrapeAllMetrics(client, metricsURLs); err != nil {
		fmt.Fprintln(os.Stderr, "aigload: scraping /metrics:", err)
	} else {
		rep.CacheHits = counters["aig_serve_cache_hits_total"]
		rep.CacheMisses = counters["aig_serve_cache_misses_total"]
		rep.Coalesced = counters["aig_serve_coalesced_requests_total"]
		rep.Evaluations = counters["aig_serve_evaluations_total"]
		rep.CacheDisabled = rep.CacheHits == 0 && rep.CacheMisses == 0
		if lookups := rep.CacheHits + rep.CacheMisses; lookups > 0 {
			rep.CacheHitRatio = float64(rep.CacheHits) / float64(lookups)
		}
		rep.RefreshDelta = counters["aig_serve_refresh_delta_total"]
		rep.RefreshFull = counters["aig_serve_refresh_full_total"]
		rep.RefreshErrors = counters["aig_serve_refresh_errors_total"]
		rep.StaleSkips = counters["aig_serve_cache_stale_skips_total"]
		if lag := hists["aig_serve_refresh_lag_seconds"]; lag != nil {
			rep.RefreshLagP50 = lag.quantile(0.50) * 1000
			rep.RefreshLagP95 = lag.quantile(0.95) * 1000
			rep.RefreshLagP99 = lag.quantile(0.99) * 1000
		}
		if ttfb := hists["aig_serve_ttfb_seconds"]; ttfb != nil {
			rep.TTFBP50Ms = ttfb.quantile(0.50) * 1000
			rep.TTFBP95Ms = ttfb.quantile(0.95) * 1000
			rep.TTFBP99Ms = ttfb.quantile(0.99) * 1000
		}
	}

	fmt.Printf("view=%s c=%d requests=%d errors=%d rejected=%d\n",
		rep.View, rep.Concurrency, rep.Requests, rep.Errors, rep.Rejected)
	fmt.Printf("wall=%.2fs throughput=%.1f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.DurationSec, rep.Throughput, rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Printf("cache: hits=%d misses=%d (ratio %.3f) coalesced=%d evaluations=%d\n",
		rep.CacheHits, rep.CacheMisses, rep.CacheHitRatio, rep.Coalesced, rep.Evaluations)
	for _, tr := range rep.Targets {
		fmt.Printf("target %s: requests=%d errors=%d throughput=%.1f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
			tr.URL, tr.Requests, tr.Errors, tr.Throughput, tr.P50Ms, tr.P95Ms, tr.P99Ms)
	}
	if rep.TTFBP50Ms > 0 || rep.TTFBP95Ms > 0 {
		fmt.Printf("server ttfb: p50=%.2fms p95=%.2fms p99=%.2fms\n",
			rep.TTFBP50Ms, rep.TTFBP95Ms, rep.TTFBP99Ms)
	}
	for _, pr := range rep.Paths {
		label := pr.Path
		if label == "" {
			label = "(full document)"
		}
		fmt.Printf("shape %s: requests=%d errors=%d bytes/req=%.0f p50=%.2fms ttfb p50=%.2fms p95=%.2fms\n",
			label, pr.Requests, pr.Errors, pr.BytesPerRequest, pr.P50Ms, pr.TTFBP50Ms, pr.TTFBP95Ms)
	}
	if *slowest > 0 {
		traces, err := slowestTraces(client, bases[0], *view, *slowest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigload: fetching /debug/traces:", err)
		} else if len(traces) == 0 {
			fmt.Println("slowest traces: none kept (tail sampling dropped the run, or no traffic was traced)")
		} else {
			rep.SlowestTraces = traces
			fmt.Printf("slowest kept traces (inspect with GET %s/debug/traces/{id}):\n", bases[0])
			for _, t := range traces {
				fmt.Printf("  %8.2fms  %s  cache=%s status=%d kept=%s\n", t.DurationMs, t.ID, t.Cache, t.Status, t.Kept)
			}
		}
	}
	if *mutate != "" {
		fmt.Printf("mutations: %d ok, %d failed; refresh: delta=%d full=%d errors=%d stale-skips=%d\n",
			rep.Mutations, rep.MutationErrors, rep.RefreshDelta, rep.RefreshFull, rep.RefreshErrors, rep.StaleSkips)
		fmt.Printf("refresh lag: p50=%.2fms p95=%.2fms p99=%.2fms\n",
			rep.RefreshLagP50, rep.RefreshLagP95, rep.RefreshLagP99)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *check {
		if rep.Errors != 0 {
			return fmt.Errorf("check failed: %d errors", rep.Errors)
		}
		if rep.CacheHits == 0 {
			return fmt.Errorf("check failed: no cache hits")
		}
	}
	return nil
}

// slowTrace is one row of the post-run slowest-traces report, a subset
// of the daemon's /debug/traces summary fields.
type slowTrace struct {
	ID         string  `json:"id"`
	DurationMs float64 `json:"duration_ms"`
	Status     int     `json:"status,omitempty"`
	Cache      string  `json:"cache,omitempty"`
	Kept       string  `json:"kept,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// slowestTraces asks the daemon's flight recorder for this view's kept
// traces and returns the n slowest. A 404 means the recorder is off
// (aigd without -trace) — reported as an error so the caller can say
// why the section is missing.
func slowestTraces(client *http.Client, base, view string, n int) ([]slowTrace, error) {
	u := base + "/debug/traces?" + url.Values{"view": {view}, "limit": {"1000"}}.Encode()
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("flight recorder disabled (run aigd with -trace)")
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Traces []slowTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	sort.Slice(body.Traces, func(i, j int) bool { return body.Traces[i].DurationMs > body.Traces[j].DurationMs })
	if len(body.Traces) > n {
		body.Traces = body.Traces[:n]
	}
	return body.Traces, nil
}

// combos holds the cross product of parameter value lists; query(i)
// renders combination i (mod the product size) as a query string, so
// consecutive tickets rotate deterministically through the bindings.
type combos struct {
	names  []string
	values [][]string
	size   int64
}

func paramCombos(flags []string) (*combos, error) {
	c := &combos{size: 1}
	for _, f := range flags {
		name, list, ok := strings.Cut(f, "=")
		if !ok || name == "" || list == "" {
			return nil, fmt.Errorf("-param needs NAME=V1,V2,..., got %q", f)
		}
		vals := strings.Split(list, ",")
		c.names = append(c.names, name)
		c.values = append(c.values, vals)
		c.size *= int64(len(vals))
	}
	return c, nil
}

func (c *combos) query(i int64) string {
	if len(c.names) == 0 {
		return ""
	}
	i %= c.size
	q := url.Values{}
	for k := range c.names {
		n := int64(len(c.values[k]))
		q.Set(c.names[k], c.values[k][i%n])
		i /= n
	}
	return q.Encode()
}

// percentile returns the p-quantile of sorted (ascending) samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// parseMutateSpec splits "SOURCE:TABLE=V1,V2,..." into its parts.
func parseMutateSpec(spec string) (src, table, row string, err error) {
	target, row, ok := strings.Cut(spec, "=")
	if ok {
		src, table, ok = strings.Cut(target, ":")
	}
	if !ok || src == "" || table == "" || row == "" {
		return "", "", "", fmt.Errorf("-mutate needs SOURCE:TABLE=V1,V2,..., got %q", spec)
	}
	return src, table, row, nil
}

// histogram is the cumulative bucket view of one scraped Prometheus
// histogram: le upper bounds (ascending, +Inf last) with cumulative
// counts.
type histogram struct {
	les  []float64
	cums []int64
}

// quantile estimates the p-quantile from the buckets: the upper bound
// of the first bucket whose cumulative count reaches p of the total
// (the usual conservative bucket estimate; the +Inf bucket reports the
// largest finite bound).
func (h *histogram) quantile(p float64) float64 {
	if len(h.cums) == 0 {
		return 0
	}
	total := h.cums[len(h.cums)-1]
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	for i, c := range h.cums {
		if c > rank {
			if math.IsInf(h.les[i], 1) && i > 0 {
				return h.les[i-1]
			}
			return h.les[i]
		}
	}
	return h.les[len(h.les)-1]
}

// scrapeAllMetrics scrapes every base URL and sums the counters and
// histogram buckets, so a fleet of replicas reports one set of totals.
// Bucket series merge positionally — all replicas run the same build,
// so their histograms share bucket bounds. An unreachable target is
// skipped with a note rather than failing the run: in a fault-injection
// test a replica may legitimately be dead at report time, and the
// totals from the survivors are still what we want.
func scrapeAllMetrics(client *http.Client, bases []string) (map[string]int64, map[string]*histogram, error) {
	counters := make(map[string]int64)
	hists := make(map[string]*histogram)
	scraped := 0
	for _, base := range bases {
		c, h, err := scrapeMetrics(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigload: skipping unreachable metrics target %s: %v\n", base, err)
			continue
		}
		scraped++
		for k, v := range c {
			counters[k] += v
		}
		for k, hv := range h {
			if have := hists[k]; have == nil {
				hists[k] = hv
			} else if len(have.cums) == len(hv.cums) {
				for i := range have.cums {
					have.cums[i] += hv.cums[i]
				}
			}
		}
	}
	if scraped == 0 {
		return nil, nil, fmt.Errorf("no metrics target reachable (%d tried)", len(bases))
	}
	return counters, hists, nil
}

// scrapeMetrics fetches /metrics and parses the aig_serve_* counters
// and histogram bucket series.
func scrapeMetrics(client *http.Client, base string) (map[string]int64, map[string]*histogram, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	counters := make(map[string]int64)
	hists := make(map[string]*histogram)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "aig_serve_") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		// Bucket lines may carry an OpenMetrics exemplar suffix
		// ("... 5 # {trace_id=\"...\"} 0.07"); the value ends before it.
		if v, _, hasEx := strings.Cut(val, " # "); hasEx {
			val = v
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		if hname, rest, ok := strings.Cut(name, "_bucket{le=\""); ok {
			le := math.Inf(1)
			if bound := strings.TrimSuffix(rest, "\"}"); bound != "+Inf" {
				if b, err := strconv.ParseFloat(bound, 64); err == nil {
					le = b
				}
			}
			h := hists[hname]
			if h == nil {
				h = &histogram{}
				hists[hname] = h
			}
			h.les = append(h.les, le)
			h.cums = append(h.cums, int64(f))
			continue
		}
		counters[name] = int64(f)
	}
	return counters, hists, sc.Err()
}
