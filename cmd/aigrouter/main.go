// Command aigrouter fronts a fleet of aigd replicas with consistent-
// hash routing:
//
//	aigrouter -addr :8080 -replica http://host1:8081 -replica http://host2:8082
//
// Requests route by hash of (path, canonical query), so the same view
// and parameter binding always lands on the same replica — each
// replica's result cache and IVM refresher then own a shard of the
// keyspace instead of all replicas duplicating the same hot entries.
// The bounded-load rule spills a hot key to the next replica on the
// ring before its home melts, health probes against each replica's
// /healthz steer traffic away from replicas that are draining, syncing
// or dead, and failed attempts retry on the next replica in ring order
// within -attempts and -retry-budget. Responses are fully buffered
// before anything reaches the client, so a replica dying mid-response
// fails over invisibly.
//
// Endpoints (the router's own; everything else proxies):
//
//	GET /healthz     200 while at least one replica is healthy
//	GET /replicas    per-replica routing state as JSON
//	GET /metrics     router metrics, Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/aigrepro/aig/internal/cluster"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigrouter:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	var replicas repeated
	flag.Var(&replicas, "replica", "replica base URL, e.g. http://host:8081 (repeatable, or comma-separated)")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
	bound := flag.Float64("bound", 1.5, "bounded-load factor: max share of in-flight requests per replica relative to the fair share (negative disables)")
	attempts := flag.Int("attempts", 0, "max replicas tried per request (0: all)")
	retryBudget := flag.Duration("retry-budget", 10*time.Second, "total time budget across all attempts for one request")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "replica health probe period")
	healthTimeout := flag.Duration("health-timeout", 2*time.Second, "one health probe's timeout")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	var urls []string
	for _, r := range replicas {
		for _, u := range strings.Split(r, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("pass at least one -replica URL")
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:       urls,
		VNodes:         *vnodes,
		LoadBound:      *bound,
		Attempts:       *attempts,
		RetryBudget:    *retryBudget,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Info("aigrouter listening", "addr", *addr, "replicas", len(urls))
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	logger.Info("aigrouter shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
