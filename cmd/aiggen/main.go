// Command aiggen generates the experimental datasets of §6 (Table 1) as
// CSV directories, one per source database:
//
//	aiggen -size large -seed 42 -out ./data
//
// produces ./data/DB1/patient.csv, ./data/DB2/cover.csv, and so on,
// loadable by aigrun and aigsource.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/aigrepro/aig/internal/datagen"
)

func main() {
	size := flag.String("size", "small", "dataset size: small, medium or large (Table 1), or tiny (smoke tests)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	sz, err := datagen.SizeByName(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cat := datagen.Generate(sz, *seed)
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, name)
		if err := db.SaveDir(dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, table := range db.TableNames() {
			t, _ := db.Table(table)
			fmt.Printf("%s/%s.csv\t%d rows\n", dir, table, t.Len())
		}
	}
}
