// Command aigbench regenerates the evaluation of §6: Table 1 (dataset
// cardinalities) and Figure 10 (the improvement due to query merging as a
// function of dataset size and recursion-unfolding level).
//
//	aigbench -table1
//	aigbench -fig10 -sizes small,medium,large -levels 2,3,4,5,6,7
//
// For Figure 10, each cell evaluates the hospital AIG σ0 on one report
// date with query merging disabled and enabled, and prints the ratio of
// the two simulated response times (evaluation plus communication at the
// configured bandwidth), exactly as the paper plots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigbench:", err)
		os.Exit(1)
	}
}

func run() error {
	table1 := flag.Bool("table1", false, "print Table 1 (generated dataset cardinalities)")
	fig10 := flag.Bool("fig10", false, "run the Figure 10 merging experiment")
	sizesFlag := flag.String("sizes", "small,medium,large", "dataset sizes for -fig10")
	levelsFlag := flag.String("levels", "2,3,4,5,6,7", "unfolding levels for -fig10")
	bandwidth := flag.Float64("bandwidth", 1.0, "simulated bandwidth in Mbps")
	overhead := flag.Float64("overhead", mediator.DefaultNet().QueryOverheadSec, "per-query overhead in seconds")
	seed := flag.Int64("seed", 42, "dataset seed")
	date := flag.String("date", datagen.Date(0), "report date to integrate")
	jsonPath := flag.String("json", "", "also write per-cell results as JSON to this file (e.g. BENCH_1.json)")
	flag.Parse()

	if !*table1 && !*fig10 {
		*table1, *fig10 = true, true
	}
	if *table1 {
		if err := printTable1(*seed); err != nil {
			return err
		}
	}
	if *fig10 {
		return runFig10(*sizesFlag, *levelsFlag, *bandwidth, *overhead, *seed, *date, *jsonPath)
	}
	return nil
}

func printTable1(seed int64) error {
	fmt.Println("Table 1: cardinalities of tables for different datasets")
	fmt.Printf("%-10s %8s %10s %7s %8s %10s %10s\n",
		"", "patient", "visitInfo", "cover", "billing", "treatment", "procedure")
	for _, size := range datagen.Sizes {
		cat := datagen.Generate(size, seed)
		card := func(db, table string) int {
			t, err := cat.Table(db, table)
			if err != nil {
				return -1
			}
			return t.Len()
		}
		fmt.Printf("%-10s %8d %10d %7d %8d %10d %10d\n", size.Name,
			card("DB1", "patient"), card("DB1", "visitInfo"), card("DB2", "cover"),
			card("DB3", "billing"), card("DB4", "treatment"), card("DB4", "procedure"))
	}
	fmt.Println()
	return nil
}

// benchCell is one (size, level) measurement: the Figure 10 ratio plus
// the merged run's real phase timings and counters, for machine-readable
// output and regression tracking.
type benchCell struct {
	Size           string             `json:"size"`
	Level          int                `json:"level"`
	UnmergedSimSec float64            `json:"unmerged_sim_sec"`
	MergedSimSec   float64            `json:"merged_sim_sec"`
	Ratio          float64            `json:"ratio"`
	WallSec        float64            `json:"wall_sec"`
	PhaseSec       map[string]float64 `json:"phase_sec"`
	SourceQueries  int                `json:"source_queries"`
	MergedGroups   int                `json:"merged_groups"`
}

func runFig10(sizesFlag, levelsFlag string, bandwidthMbps, overheadSec float64, seed int64, date, jsonPath string) error {
	var sizes []datagen.Size
	for _, name := range strings.Split(sizesFlag, ",") {
		s, err := datagen.SizeByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		sizes = append(sizes, s)
	}
	var levels []int
	for _, l := range strings.Split(levelsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(l))
		if err != nil || n < 1 {
			return fmt.Errorf("bad unfolding level %q", l)
		}
		levels = append(levels, n)
	}

	var cells []benchCell
	fmt.Printf("Figure 10: evaluation-time ratio without/with query merging (%.1f Mbps)\n", bandwidthMbps)
	fmt.Printf("%-10s", "levels:")
	for _, l := range levels {
		fmt.Printf(" %7d", l)
	}
	fmt.Println()
	for _, size := range sizes {
		cat := datagen.Generate(size, seed)
		sa, err := prepare(cat)
		if err != nil {
			return err
		}
		reg := source.RegistryFromCatalog(cat)
		fmt.Printf("%-10s", size.Name)
		for _, level := range levels {
			unf, err := specialize.Unfold(sa, level)
			if err != nil {
				return err
			}
			cell, err := runCell(reg, unf, bandwidthMbps, overheadSec, date)
			if err != nil {
				return err
			}
			cell.Size, cell.Level = size.Name, level
			cells = append(cells, cell)
			fmt.Printf(" %7.2f", cell.Ratio)
		}
		fmt.Println()
	}

	fmt.Println("\nper-cell phase timings of the merged run (wall seconds)")
	fmt.Printf("%-10s %5s %8s %9s %9s %9s %9s %8s %7s\n",
		"size", "level", "wall", "compile", "optimize", "execute", "tag", "queries", "merged")
	for _, c := range cells {
		fmt.Printf("%-10s %5d %8.4f %9.4f %9.4f %9.4f %9.4f %8d %7d\n",
			c.Size, c.Level, c.WallSec, c.PhaseSec["compile"], c.PhaseSec["optimize"],
			c.PhaseSec["execute"], c.PhaseSec["tag"], c.SourceQueries, c.MergedGroups)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		payload := map[string]any{
			"bandwidth_mbps":     bandwidthMbps,
			"query_overhead_sec": overheadSec,
			"seed":               seed,
			"date":               date,
			"cells":              cells,
		}
		if err := enc.Encode(payload); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func prepare(cat *relstore.Catalog) (*aig.AIG, error) {
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		return nil, err
	}
	return specialize.DecomposeQueries(sa,
		sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
}

// runCell evaluates one (size, level) cell with merging disabled and
// enabled; the merged run additionally contributes its wall-clock phase
// breakdown and query counters.
func runCell(reg *source.Registry, unf *aig.AIG, bandwidthMbps, overheadSec float64, date string) (benchCell, error) {
	var cell benchCell
	for _, merge := range []bool{false, true} {
		opts := mediator.DefaultOptions()
		opts.Merge = merge
		opts.Net.BandwidthBytesPerSec = bandwidthMbps * 125000
		opts.Net.QueryOverheadSec = overheadSec
		m := mediator.New(reg, opts)
		res, err := m.Evaluate(unf, hospital.RootInh(unf, date))
		if err != nil {
			return benchCell{}, err
		}
		if merge {
			cell.MergedSimSec = res.Report.ResponseTimeSec
			cell.WallSec = res.Report.WallSec
			cell.PhaseSec = res.Report.PhaseSec
			cell.SourceQueries = res.Report.SourceQueryCount
			cell.MergedGroups = res.Report.MergedGroups
		} else {
			cell.UnmergedSimSec = res.Report.ResponseTimeSec
		}
	}
	cell.Ratio = cell.UnmergedSimSec / cell.MergedSimSec
	return cell, nil
}
