// Command aigrun evaluates an AIG specification against relational
// sources and writes the integrated XML document:
//
//	aigrun -spec report.aig -data ./data -param date=d001 -o report.xml
//
// Sources come either from CSV directories under -data (one subdirectory
// per database, as written by aiggen) or from remote TCP engines:
//
//	aigrun -spec report.aig -source DB1=host1:7001 -source DB2=host2:7001 ...
//
// By default the optimized mediator of §5 evaluates the grammar
// (constraints compiled to guards, multi-source queries decomposed,
// recursion unfolded adaptively, queries merged and scheduled). The
// -conceptual flag switches to the tuple-at-a-time reference evaluator of
// §3.2. The output is checked against the DTD and the constraints before
// it is written.
//
// Observability: -explain prints the optimized plan without running it;
// -analyze runs the evaluation and prints the same plan annotated with
// measured times, row counts and estimation errors; -trace FILE writes
// the evaluation's span tree as JSON; -metrics dumps the process's
// runtime counters in Prometheus text format to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/xconstraint"
	"github.com/aigrepro/aig/internal/xmltree"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigrun:", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "AIG specification file")
	dataDir := flag.String("data", "", "directory of CSV source databases (one subdirectory per DB)")
	var sources, params repeated
	flag.Var(&sources, "source", "remote source as NAME=ADDR (repeatable)")
	flag.Var(&params, "param", "root attribute member as NAME=VALUE (repeatable)")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	conceptual := flag.Bool("conceptual", false, "use the tuple-at-a-time reference evaluator")
	merge := flag.Bool("merge", true, "enable query merging (mediator)")
	copyElim := flag.Bool("copyelim", true, "enable copy elimination (mediator)")
	unfold := flag.Int("unfold", 4, "initial recursion unfolding depth (mediator)")
	maxUnfold := flag.Int("maxunfold", 64, "maximum unfolding depth (mediator)")
	verbose := flag.Bool("v", false, "print the evaluation report")
	explain := flag.Bool("explain", false, "print the optimized query plan instead of evaluating")
	analyze := flag.Bool("analyze", false, "evaluate, then print the executed plan with measured times next to the estimates")
	tracePath := flag.String("trace", "", "write a JSON trace of the evaluation's spans to this file")
	metrics := flag.Bool("metrics", false, "dump runtime metrics (Prometheus text format) to stderr on exit")
	srcTimeout := flag.Duration("source-timeout", 0, "connect/read/write timeout for remote sources (0 disables)")
	flag.Parse()

	if *specPath == "" {
		return fmt.Errorf("missing -spec")
	}
	specText, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	a, err := aigspec.Parse(string(specText))
	if err != nil {
		return err
	}

	reg, err := buildRegistry(*dataDir, sources, *srcTimeout)
	if err != nil {
		return err
	}
	if err := a.Validate(reg); err != nil {
		return err
	}

	rootInh, err := buildRootInh(a, params)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	if *metrics {
		defer obs.Default.WritePrometheus(os.Stderr)
	}

	if *analyze {
		sa, err := specialize.CompileConstraints(a)
		if err != nil {
			return err
		}
		sa, err = specialize.DecomposeQueries(sa, reg, reg, mediator.DefaultOptions().PlanOpts)
		if err != nil {
			return err
		}
		sa, err = specialize.Unfold(sa, *unfold)
		if err != nil {
			return err
		}
		opts := mediator.DefaultOptions()
		opts.Merge = *merge
		opts.CopyElim = *copyElim
		opts.Tracer = tracer
		plan, _, err := mediator.New(reg, opts).ExplainAnalyze(sa, rootInh)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return writeTrace(*tracePath, tracer)
	}

	if *explain {
		sa, err := specialize.CompileConstraints(a)
		if err != nil {
			return err
		}
		sa, err = specialize.DecomposeQueries(sa, reg, reg, mediator.DefaultOptions().PlanOpts)
		if err != nil {
			return err
		}
		sa, err = specialize.Unfold(sa, *unfold)
		if err != nil {
			return err
		}
		opts := mediator.DefaultOptions()
		opts.Merge = *merge
		opts.CopyElim = *copyElim
		plan, err := mediator.New(reg, opts).Explain(sa)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	var doc *xmltree.Node
	if *conceptual {
		env := &aig.Env{Schemas: reg, Data: reg, Stats: reg}
		sa, err := specialize.CompileConstraints(a)
		if err != nil {
			return err
		}
		doc, err = sa.Eval(env, rootInh)
		if err != nil {
			return err
		}
	} else {
		sa, err := specialize.CompileConstraints(a)
		if err != nil {
			return err
		}
		sa, err = specialize.DecomposeQueries(sa, reg, reg, mediator.DefaultOptions().PlanOpts)
		if err != nil {
			return err
		}
		opts := mediator.DefaultOptions()
		opts.Merge = *merge
		opts.CopyElim = *copyElim
		opts.Tracer = tracer
		m := mediator.New(reg, opts)
		res, depth, err := m.EvaluateRecursive(sa, rootInh, *unfold, *maxUnfold)
		if err != nil {
			return err
		}
		doc = res.Doc
		if *verbose {
			fmt.Fprintf(os.Stderr, "unfold depth: %d\n", depth)
			fmt.Fprintf(os.Stderr, "simulated response time: %.3fs\n", res.Report.ResponseTimeSec)
			fmt.Fprintf(os.Stderr, "wall time: %.3fs (compile %.3fs, optimize %.3fs, execute %.3fs, tag %.3fs)\n",
				res.Report.WallSec, res.Report.PhaseSec["compile"], res.Report.PhaseSec["optimize"],
				res.Report.PhaseSec["execute"], res.Report.PhaseSec["tag"])
			fmt.Fprintf(os.Stderr, "source queries: %d (merged groups: %d)\n",
				res.Report.SourceQueryCount, res.Report.MergedGroups)
			fmt.Fprintf(os.Stderr, "graph: %d nodes, %d edges\n", res.Report.NodeCount, res.Report.EdgeCount)
		}
	}
	if err := writeTrace(*tracePath, tracer); err != nil {
		return err
	}

	// Independent verification before writing.
	if err := dtd.Conforms(a.DTD, doc); err != nil {
		return fmt.Errorf("output violates the DTD: %v", err)
	}
	if v := xconstraint.CheckAll(a.Constraints, doc); len(v) != 0 {
		return fmt.Errorf("output violates constraints: %v", v[0])
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return doc.WriteIndented(w)
}

func writeTrace(path string, tracer *obs.Tracer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildRegistry(dataDir string, sources []string, timeout time.Duration) (*source.Registry, error) {
	reg := source.NewRegistry()
	n := 0
	if dataDir != "" {
		entries, err := os.ReadDir(dataDir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			db, err := relstore.LoadDir(e.Name(), filepath.Join(dataDir, e.Name()))
			if err != nil {
				return nil, err
			}
			reg.Add(source.NewLocal(db))
			n++
		}
	}
	for _, s := range sources {
		name, addr, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("-source needs NAME=ADDR, got %q", s)
		}
		client, err := remote.DialTimeouts(name, addr,
			remote.Timeouts{Dial: timeout, Read: timeout, Write: timeout})
		if err != nil {
			return nil, err
		}
		reg.Add(client)
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("no sources: pass -data or -source")
	}
	return reg, nil
}

func buildRootInh(a *aig.AIG, params []string) (*aig.AttrValue, error) {
	root := a.DTD.Root
	v := aig.NewAttrValue(a.Inh[root])
	for _, p := range params {
		name, raw, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("-param needs NAME=VALUE, got %q", p)
		}
		m, found := a.Inh[root].Member(name)
		if !found || m.Kind != aig.Scalar {
			return nil, fmt.Errorf("Inh(%s) has no scalar member %q", root, name)
		}
		val, err := relstore.ParseValue(m.ValueKind, raw)
		if err != nil {
			return nil, err
		}
		if err := v.SetScalar(name, val); err != nil {
			return nil, err
		}
	}
	return v, nil
}
