// Command aigsource serves one relational source database over TCP so
// that the mediator can integrate truly distributed data:
//
//	aigsource -name DB1 -data ./data/DB1 -listen 127.0.0.1:7001
//
// loads every CSV of the directory (as written by aiggen) into an
// in-memory engine and answers schema, statistics, costing and query
// requests on the wire protocol of the remote package.
//
// With -data-dir the source is durable: on first start the CSV data (or
// an empty database, without -data) seeds a write-ahead log plus
// periodic snapshots under the directory, and on every later start the
// database is recovered from them — tuples, table versions and change
// logs included, so mediator-side delta watermarks survive the restart.
// -fsync picks the flushing policy ("always" makes every acknowledged
// mutation crash-durable, "never" leaves flushing to the OS);
// -snapshot-every sets the automatic snapshot cadence in WAL records.
// SIGINT/SIGTERM close the journal with a final snapshot, making the
// next start replay-free.
//
// -apply applies one mutation to the durable state and exits without
// listening — the way to mutate a source while its daemon is down:
//
//	aigsource -name DB1 -data-dir state/DB1 -apply 'visitInfo:insert:s9,t1,d1'
//	aigsource -name DB1 -data-dir state/DB1 -apply 'visitInfo:delete:s9,t1,d1'
//
// -http ADDR adds an HTTP sidecar listener for operating the source
// while it serves: POST /mutate?table=T&op=insert|delete&values=V1,V2
// applies a row-level write (the same query shape aigd's /mutate takes,
// so load generators can drive writes at the origin while replicas
// mirror them), GET /healthz answers readiness, and GET /metrics serves
// the engine's counters in Prometheus text format.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/source"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aigsource:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("name", "", "source (database) name, e.g. DB1")
	data := flag.String("data", "", "directory of CSV tables (the seed when -data-dir is fresh)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	dataDir := flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty runs in-memory only")
	fsyncMode := flag.String("fsync", "never", "WAL flushing policy: never or always")
	snapEvery := flag.Int("snapshot-every", 0, "automatic snapshot cadence in WAL records (0 = default)")
	apply := flag.String("apply", "", "apply one mutation TABLE:OP:V1,V2,... to the durable state and exit (requires -data-dir)")
	httpAddr := flag.String("http", "", "HTTP sidecar listener (POST /mutate, GET /healthz, GET /metrics); empty disables")
	flag.Parse()

	if *name == "" || (*data == "" && *dataDir == "") {
		fmt.Fprintln(os.Stderr, "usage: aigsource -name DB1 (-data ./data/DB1 | -data-dir state/DB1) [-listen host:port] [-fsync never|always] [-apply TABLE:OP:VALUES]")
		os.Exit(2)
	}
	fsync, err := relstore.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}

	var db *relstore.Database
	var p *relstore.Persister
	if *dataDir != "" {
		seed := func() (*relstore.Database, error) { return relstore.NewDatabase(*name), nil }
		if *data != "" {
			seed = func() (*relstore.Database, error) { return relstore.LoadDir(*name, *data) }
		}
		db, p, err = source.OpenDurable(*name,
			source.DurableOptions{Dir: *dataDir, Fsync: fsync, SnapshotEvery: *snapEvery}, seed)
		if err != nil {
			return err
		}
	} else {
		if *apply != "" {
			return fmt.Errorf("-apply needs -data-dir: a one-shot mutation against in-memory state would be lost")
		}
		if db, err = relstore.LoadDir(*name, *data); err != nil {
			return err
		}
	}

	if *apply != "" {
		if err := applyMutation(db, *apply); err != nil {
			p.Close()
			return err
		}
		if err := p.Close(); err != nil {
			return fmt.Errorf("closing journal: %w", err)
		}
		fmt.Printf("source %s: applied %s (db version %d)\n", *name, *apply, db.Version())
		return nil
	}

	srv := remote.NewServer(db)
	addr, err := srv.Listen(*listen)
	if err != nil {
		if p != nil {
			p.Close()
		}
		return err
	}
	fmt.Printf("source %s serving %d tables on %s (durable=%v fsync=%s)\n",
		*name, len(db.TableNames()), addr, p != nil, fsync)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: sidecarMux(*name, db)}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aigsource: http sidecar:", err)
			}
		}()
		fmt.Printf("source %s http sidecar on %s\n", *name, *httpAddr)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if httpSrv != nil {
		httpSrv.Close()
	}
	srv.Close()
	if p != nil {
		// Final snapshot: the next start recovers without WAL replay.
		if err := p.Close(); err != nil {
			return fmt.Errorf("closing journal: %w", err)
		}
	}
	return nil
}

// sidecarMux is the HTTP operating surface of a running source: write
// endpoint, readiness and metrics. The write path accepts the same
// query parameters as aigd's POST /mutate (source is optional here and
// must match when given), so one load generator drives either.
func sidecarMux(name string, db *relstore.Database) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if src := q.Get("source"); src != "" && src != name {
			http.Error(w, fmt.Sprintf("this source is %s, not %s", name, src), http.StatusBadRequest)
			return
		}
		table, op, values := q.Get("table"), q.Get("op"), q.Get("values")
		if table == "" || op == "" {
			http.Error(w, "need table and op query parameters", http.StatusBadRequest)
			return
		}
		if err := applyMutation(db, table+":"+op+":"+values); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "ok (db version %d)\n", db.Version())
	})
	return mux
}

// applyMutation parses TABLE:OP:V1,V2,... and applies it. OP is insert
// or delete (delete removes every row matching the values exactly).
func applyMutation(db *relstore.Database, spec string) error {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return fmt.Errorf("-apply wants TABLE:OP:V1,V2,..., got %q", spec)
	}
	table, op := parts[0], parts[1]
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	var row relstore.Tuple
	if len(parts) == 3 && parts[2] != "" {
		vals := strings.Split(parts[2], ",")
		if len(vals) != len(t.Schema()) {
			return fmt.Errorf("table %s: %d values for %d columns", table, len(vals), len(t.Schema()))
		}
		row = make(relstore.Tuple, len(vals))
		for i, raw := range vals {
			v, err := relstore.ParseValue(t.Schema()[i].Kind, raw)
			if err != nil {
				return fmt.Errorf("table %s column %s: %w", table, t.Schema()[i].Name, err)
			}
			row[i] = v
		}
	}
	switch op {
	case "insert":
		if row == nil {
			return fmt.Errorf("insert needs values")
		}
		return t.Insert(row)
	case "delete":
		if row == nil {
			return fmt.Errorf("delete needs values")
		}
		key := row.Key()
		if n := t.DeleteWhere(func(r relstore.Tuple) bool { return r.Key() == key }); n == 0 {
			return fmt.Errorf("delete %s: no matching row", spec)
		}
		return nil
	default:
		return fmt.Errorf("op %q (want insert or delete)", op)
	}
}
