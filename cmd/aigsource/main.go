// Command aigsource serves one relational source database over TCP so
// that the mediator can integrate truly distributed data:
//
//	aigsource -name DB1 -data ./data/DB1 -listen 127.0.0.1:7001
//
// loads every CSV of the directory (as written by aiggen) into an
// in-memory engine and answers schema, statistics, costing and query
// requests on the wire protocol of the remote package.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/remote"
)

func main() {
	name := flag.String("name", "", "source (database) name, e.g. DB1")
	data := flag.String("data", "", "directory of CSV tables")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	flag.Parse()

	if *name == "" || *data == "" {
		fmt.Fprintln(os.Stderr, "usage: aigsource -name DB1 -data ./data/DB1 [-listen host:port]")
		os.Exit(2)
	}
	db, err := relstore.LoadDir(*name, *data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := remote.NewServer(db)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("source %s serving %d tables on %s\n", *name, len(db.TableNames()), addr)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()
}
