// Command aiglint checks AIG specification files for the problems the
// static analyses of the paper can find without running the grammar:
// unsatisfiable rule queries, possible non-termination, unreachable
// element types, dead choice branches, unresolved source schemas,
// rule-typing errors, constraints inconsistent with the DTD,
// uncollapsible copy chains, and unused attribute members.
//
// Usage:
//
//	aiglint [-json] [-q] [-errors-only] [-fail-on level] path ...
//
// Each path is a .aig file or a directory searched recursively for
// *.aig files. Diagnostics print one per line as
// file:line:col: severity: message [CODE]; -json emits them as a JSON
// array instead, and -q suppresses output entirely. -errors-only
// restricts output (human or JSON) to error-severity findings.
//
// The exit status is severity-aware: 0 when nothing at or above the
// -fail-on threshold was found (default error, so warnings and infos
// are advisory), 1 when at least one diagnostic reached the threshold,
// and 2 on usage or I/O failure. CI can gate strictly with
// -fail-on warning once a codebase is clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"github.com/aigrepro/aig/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	quiet := flag.Bool("q", false, "suppress output; report via exit status only")
	errorsOnly := flag.Bool("errors-only", false, "report only error-severity diagnostics")
	failOn := flag.String("fail-on", "error", "lowest severity that fails the run: error, warning or info")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aiglint [-json] [-q] [-errors-only] [-fail-on level] path ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	threshold, err := parseSeverity(*failOn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "aiglint: no .aig files found\n")
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, lint.Source(f, string(text))...)
	}
	// The exit decision looks at everything found; -errors-only narrows
	// only what is printed.
	failed := atOrAbove(diags, threshold)
	if *errorsOnly {
		kept := diags[:0]
		for _, d := range diags {
			if d.Severity == lint.Error {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	switch {
	case *quiet:
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{} // render as [], not null
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
			if d.Hint != "" {
				fmt.Printf("\thint: %s\n", d.Hint)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseSeverity maps a -fail-on argument to a lint.Severity.
func parseSeverity(s string) (lint.Severity, error) {
	switch s {
	case "error":
		return lint.Error, nil
	case "warning", "warn":
		return lint.Warning, nil
	case "info":
		return lint.Info, nil
	default:
		return 0, fmt.Errorf("-fail-on wants error, warning or info, got %q", s)
	}
}

// atOrAbove reports whether any diagnostic reaches the severity
// threshold.
func atOrAbove(diags []lint.Diagnostic, threshold lint.Severity) bool {
	for _, d := range diags {
		if d.Severity >= threshold {
			return true
		}
	}
	return false
}

// collect expands the argument paths into the sorted list of .aig files
// to lint: files are taken as given, directories are walked recursively.
func collect(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && filepath.Ext(path) == ".aig" {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
