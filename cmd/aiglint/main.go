// Command aiglint checks AIG specification files for the problems the
// static analyses of the paper can find without running the grammar:
// unsatisfiable rule queries, possible non-termination, unreachable
// element types, dead choice branches, unresolved source schemas,
// rule-typing errors, constraints inconsistent with the DTD,
// uncollapsible copy chains, and unused attribute members.
//
// Usage:
//
//	aiglint [-json] [-q] path ...
//
// Each path is a .aig file or a directory searched recursively for
// *.aig files. Diagnostics print one per line as
// file:line:col: severity: message [CODE]; -json emits them as a JSON
// array instead, and -q suppresses output entirely. The exit status is
// 0 when no errors were found (warnings and infos are advisory), 1 when
// at least one error-severity diagnostic was reported, and 2 on usage
// or I/O failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"github.com/aigrepro/aig/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	quiet := flag.Bool("q", false, "suppress output; report via exit status only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aiglint [-json] [-q] path ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "aiglint: no .aig files found\n")
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, lint.Source(f, string(text))...)
	}

	switch {
	case *quiet:
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{} // render as [], not null
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "aiglint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
			if d.Hint != "" {
				fmt.Printf("\thint: %s\n", d.Hint)
			}
		}
	}
	if lint.HasErrors(diags) {
		os.Exit(1)
	}
}

// collect expands the argument paths into the sorted list of .aig files
// to lint: files are taken as given, directories are walked recursively.
func collect(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && filepath.Ext(path) == ".aig" {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
