// Command aigfmt parses an AIG specification and prints it back in
// canonical form (gofmt for the aigspec language):
//
//	aigfmt report.aig            # print the canonical form
//	aigfmt -w report.aig         # rewrite the file in place
//
// Parsing alone catches syntax errors; formatting normalizes member
// ordering and SQL layout.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aigrepro/aig/internal/aigspec"
)

func main() {
	write := flag.Bool("w", false, "rewrite the file in place")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aigfmt [-w] <spec.aig>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigfmt:", err)
		os.Exit(1)
	}
	a, err := aigspec.Parse(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigfmt:", err)
		os.Exit(1)
	}
	out, err := aigspec.Format(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigfmt:", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aigfmt:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(out)
}
