// Command aigfmt parses AIG specifications and prints them back in
// canonical form (gofmt for the aigspec language):
//
//	aigfmt report.aig            # print the canonical form
//	aigfmt -w report.aig         # rewrite the file in place
//	aigfmt -l specs/             # list files whose formatting differs
//
// Each path is a .aig file or a directory searched recursively for
// *.aig files. Parsing alone catches syntax errors; formatting
// normalizes member ordering and SQL layout. With -l the exit status is
// 1 when any file is not in canonical form (for CI gating) and 0
// otherwise; parse and I/O failures exit 2.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"github.com/aigrepro/aig/internal/aigspec"
)

func main() {
	write := flag.Bool("w", false, "rewrite files in place")
	list := flag.Bool("l", false, "list files whose formatting differs; exit 1 if any do")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aigfmt [-l] [-w] path ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files, err := collect(flag.Args())
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fail(fmt.Errorf("no .aig files found"))
	}

	differs := false
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		a, err := aigspec.Parse(string(data))
		if err != nil {
			fail(fmt.Errorf("%s: %v", path, err))
		}
		out, err := aigspec.Format(a)
		if err != nil {
			fail(fmt.Errorf("%s: %v", path, err))
		}
		switch {
		case *list:
			if out != string(data) {
				differs = true
				fmt.Println(path)
			}
		case *write:
			if out != string(data) {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fail(err)
				}
			}
		default:
			fmt.Print(out)
		}
	}
	if *list && differs {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aigfmt:", err)
	os.Exit(2)
}

// collect expands the argument paths into the sorted list of .aig files:
// files are taken as given, directories are walked recursively.
func collect(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && filepath.Ext(path) == ".aig" {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
