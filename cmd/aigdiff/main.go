// Command aigdiff fuzzes the AIG evaluation stack: it generates random
// instances (internal/randaig) and pushes each through the differential
// oracle (internal/difftest) — conceptual evaluation, the full mediator
// option matrix, runtime re-unrolling of recursion, the constraint and
// DTD cross-checks, and optionally TCP-served sources — reporting any
// divergence between paths that are specified to agree.
//
// Usage:
//
//	aigdiff [-seed N] [-n N | -duration D] [-remote] [-shrink]
//	        [-ivm | -certify | -fragment] [-mutations N] [-paths N]
//	        [-logcap N] [-corpus dir] [-json file]
//
// Seeds run consecutively from -seed. With -duration, aigdiff runs until
// the wall clock expires instead of a fixed count. On a divergence,
// -shrink minimizes the failing instance (dropping constraints, pruning
// grammar children, deleting table rows) and prints the replayable
// {seed, config, ops} triple; with -corpus it is also saved there as a
// regression file. -json writes run statistics (instances and oracle
// evaluations per second) to the given file. The exit status is 0 when
// every instance agreed on every path, 1 when a divergence was found,
// and 2 on usage failure.
//
// With -ivm, each instance is instead pushed through the incremental
// view maintenance oracle: a sequence of -mutations random row inserts
// and deletes is replayed against the instance's sources, a cached
// document is maintained the way the serving layer's refresher would —
// change-log deltas judged against the view's extracted dependencies,
// restamp when provably irrelevant, full re-evaluation otherwise — and
// after every step the maintained document is compared byte-for-byte
// against a from-scratch evaluation. -logcap overrides the change-log
// limit (negative disables delta logging entirely, forcing the
// truncation fallback on every step); -shrink minimizes the mutation
// sequence instead of the instance.
//
// With -certify, each instance is pushed through the certification
// soundness oracle: the relational keys and foreign keys that genuinely
// hold on the generated data are discovered and declared as source
// premises, the static certifier (internal/propagate) proves XML
// constraints from them, and across the mutation sequence every
// must-hold verdict whose premises survive is checked against the
// evaluated document — a runtime violation of a certified constraint is
// a certifier soundness bug, reported on leg "certify". Mutations that
// falsify a premise void the affected obligations instead. -shrink
// minimizes the mutation sequence, as in -ivm mode.
//
// With -fragment, each instance is pushed through the fragment serving
// oracle: -paths random path expressions are derived from the instance's
// DTD, and after every mutation of a -mutations sequence the partial
// evaluator's fragment for each path is compared byte-for-byte against
// the post-hoc oracle (full constraint-free render, then xpath.Select),
// and every Unaffected verdict from the path-filtered dependency judge
// is checked against the actual fragment bytes. -shrink minimizes the
// mutation sequence, holding the path set fixed; regressions record the
// {seed, config, paths, mutations} quadruple.
//
// With -recover, aigdiff tortures the durable relstore instead: each
// seed derives a deterministic database plus an operation sequence
// covering every WAL record kind (row inserts and deletes, positional
// deletes, sorts, distinct, change-log limit changes, table adds and
// drops, version bumps, explicit snapshots), journals it on the
// fault-injectable in-memory filesystem, and then crashes the store at
// every WAL frame boundary and at every byte offset of the tail record.
// Each crash image is recovered and compared — rows, versions, and the
// full ChangesSince behaviour at every watermark — against a
// fingerprint oracle of the exact surviving WAL prefix. -mutations and
// -logcap apply as in -ivm mode; -snapevery sets an automatic snapshot
// cadence in records (0, the default, snapshots only at explicit
// points); -shrink minimizes the operation sequence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/aigrepro/aig/internal/difftest"
	"github.com/aigrepro/aig/internal/randaig"
)

// stats is the -json payload.
type stats struct {
	Seed            int64   `json:"seed"`
	Instances       int     `json:"instances"`
	Evals           int     `json:"evals"`
	Aborts          int     `json:"aborts"`
	Recursive       int     `json:"recursive"`
	Seconds         float64 `json:"seconds"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	EvalsPerSec     float64 `json:"evals_per_sec"`
	Divergences     int     `json:"divergences"`

	// IVM-mode counters (-ivm).
	Steps     int `json:"steps,omitempty"`
	Restamps  int `json:"restamps,omitempty"`
	Fulls     int `json:"full_refreshes,omitempty"`
	Truncated int `json:"truncated_windows,omitempty"`
	Skipped   int `json:"skipped,omitempty"`

	// Fragment-mode counters (-fragment).
	Paths  int `json:"paths,omitempty"`
	Checks int `json:"path_comparisons,omitempty"`

	// Recovery-mode counters (-recover).
	Records   int `json:"wal_records,omitempty"`
	Snapshots int `json:"snapshots,omitempty"`
	Crashes   int `json:"crashes,omitempty"`

	// Certification-mode counters (-certify).
	Keys        int `json:"keys,omitempty"`
	FKs         int `json:"fkeys,omitempty"`
	MustHold    int `json:"must_hold,omitempty"`
	Unknown     int `json:"unknown,omitempty"`
	Violated    int `json:"violated,omitempty"`
	Asserted    int `json:"asserted,omitempty"`
	Voided      int `json:"voided,omitempty"`
	Unevaluated int `json:"unevaluated,omitempty"`
}

func main() {
	seed := flag.Int64("seed", 0, "first generation seed")
	n := flag.Int("n", 100, "number of instances to check")
	duration := flag.Duration("duration", 0, "run for this long instead of a fixed -n")
	remote := flag.Bool("remote", false, "include the TCP remote-source leg (slower)")
	shrink := flag.Bool("shrink", false, "minimize a failing instance before reporting it")
	ivmMode := flag.Bool("ivm", false, "run the incremental view maintenance oracle instead of the evaluation matrix")
	certifyMode := flag.Bool("certify", false, "run the static-certification soundness oracle instead of the evaluation matrix")
	fragmentMode := flag.Bool("fragment", false, "run the fragment serving oracle (partial evaluation vs post-hoc path filter) instead of the evaluation matrix")
	recoverMode := flag.Bool("recover", false, "run the crash-recovery torture oracle instead of the evaluation matrix")
	mutations := flag.Int("mutations", 25, "mutations per instance in -ivm mode")
	nPaths := flag.Int("paths", 3, "path expressions per instance in -fragment mode")
	logCap := flag.Int("logcap", 0, "change-log limit in -ivm mode (0 default, <0 disables delta logging)")
	snapEvery := flag.Int("snapevery", 0, "automatic snapshot cadence in WAL records in -recover mode (0 = explicit snapshots only)")
	corpus := flag.String("corpus", "", "directory to save shrunk failures as regression files")
	jsonPath := flag.String("json", "", "write run statistics as JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aigdiff [-seed N] [-n N | -duration D] [-remote] [-shrink] [-ivm | -certify | -fragment | -recover] [-mutations N] [-paths N] [-logcap N] [-snapevery N] [-corpus dir] [-json file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	modes := 0
	for _, m := range []bool{*ivmMode, *certifyMode, *fragmentMode, *recoverMode} {
		if m {
			modes++
		}
	}
	if flag.NArg() != 0 || modes > 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := randaig.DefaultConfig()
	opts := difftest.Options{Remote: *remote}
	st := stats{Seed: *seed}
	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}

	exit := 0
	for s := *seed; ; s++ {
		if deadline.IsZero() {
			if st.Instances >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		if *recoverMode {
			rcfg := difftest.RecoverConfig{Mutations: *mutations, SnapshotEvery: *snapEvery, LogCap: *logCap}
			out, ops := difftest.CheckRecovery(s, rcfg)
			st.Instances++
			st.Records += out.Records
			st.Snapshots += out.Snapshots
			st.Crashes += out.Crashes
			if out.Divergence == nil {
				continue
			}
			st.Divergences++
			exit = 1
			reportRecover(s, rcfg, ops, out, *shrink, *corpus)
			continue
		}
		inst, err := randaig.Generate(s, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: seed %d: generate: %v\n", s, err)
			os.Exit(2)
		}
		st.Instances++
		if inst.Recursive {
			st.Recursive++
		}
		if *ivmMode {
			seq := difftest.GenerateMutations(inst, s, *mutations)
			iopts := difftest.IVMOptions{LogCap: *logCap}
			out := difftest.CheckIVM(inst, seq, iopts)
			// Every step evaluates the oracle once, plus a full refresh when
			// the judge found no proof, plus the initial evaluation.
			st.Evals += 1 + out.Steps + out.Fulls
			st.Steps += out.Steps
			st.Restamps += out.Restamps
			st.Fulls += out.Fulls
			st.Truncated += out.Truncated
			if out.Skipped {
				st.Skipped++
			}
			if out.Divergence == nil {
				continue
			}
			st.Divergences++
			exit = 1
			reportIVM(inst, seq, iopts, out.Divergence, *shrink, *corpus, cfg)
			continue
		}
		if *fragmentMode {
			paths := difftest.GenerateFragmentPaths(inst, s, *nPaths)
			if len(paths) == 0 {
				st.Skipped++
				continue
			}
			st.Paths += len(paths)
			seq := difftest.GenerateMutations(inst, s, *mutations)
			out := difftest.CheckFragment(inst, paths, seq, difftest.FragmentOptions{})
			// Every check evaluates the oracle and the partial evaluator once.
			st.Evals += 2 * out.Checks
			st.Steps += out.Steps
			st.Checks += out.Checks
			st.Restamps += out.Restamps
			st.Fulls += out.Fulls
			if out.Skipped {
				st.Skipped++
			}
			if out.Divergence == nil {
				continue
			}
			st.Divergences++
			exit = 1
			reportFragment(inst, paths, seq, out.Divergence, *shrink, *corpus, cfg)
			continue
		}
		if *certifyMode {
			seq := difftest.GenerateMutations(inst, s, *mutations)
			out := difftest.CheckCertify(inst, seq, difftest.CertifyOptions{})
			st.Evals += out.Evals
			st.Steps += out.Steps
			st.Keys += out.Keys
			st.FKs += out.FKs
			st.MustHold += out.MustHold
			st.Unknown += out.Unknown
			st.Violated += out.Violated
			st.Asserted += out.Asserted
			st.Voided += out.Voided
			st.Unevaluated += out.Unevaluated
			if out.Divergence == nil {
				continue
			}
			st.Divergences++
			exit = 1
			reportCertify(inst, seq, out.Divergence, *shrink, *corpus, cfg)
			continue
		}
		out := difftest.Check(inst, opts)
		st.Evals += out.Evals
		if out.Aborted {
			st.Aborts++
		}
		if out.Divergence == nil {
			continue
		}
		st.Divergences++
		exit = 1
		report(inst, opts, out.Divergence, *shrink, *corpus, cfg)
	}

	st.Seconds = time.Since(start).Seconds()
	if st.Seconds > 0 {
		st.InstancesPerSec = float64(st.Instances) / st.Seconds
		st.EvalsPerSec = float64(st.Evals) / st.Seconds
	}
	if *recoverMode {
		fmt.Printf("aigdiff -recover: %d seeds, %d WAL records journaled, %d snapshot rotations, %d crash images recovered and compared in %.2fs, %d divergences\n",
			st.Instances, st.Records, st.Snapshots, st.Crashes, st.Seconds, st.Divergences)
	} else if *certifyMode {
		fmt.Printf("aigdiff -certify: %d instances, %d keys + %d fkeys discovered, verdicts %d must-hold / %d unknown / %d violated; %d mutation steps: %d assertions, %d voided, %d unevaluated in %.2fs, %d divergences\n",
			st.Instances, st.Keys, st.FKs, st.MustHold, st.Unknown, st.Violated,
			st.Steps, st.Asserted, st.Voided, st.Unevaluated, st.Seconds, st.Divergences)
	} else if *fragmentMode {
		fmt.Printf("aigdiff -fragment: %d instances (%d skipped), %d paths, %d mutation steps, %d fragment comparisons: %d restamps, %d rebuilds in %.2fs, %d divergences\n",
			st.Instances, st.Skipped, st.Paths, st.Steps, st.Checks, st.Restamps, st.Fulls, st.Seconds, st.Divergences)
	} else if *ivmMode {
		fmt.Printf("aigdiff -ivm: %d instances (%d skipped), %d mutation steps: %d restamps, %d full refreshes, %d truncated windows in %.2fs, %d divergences\n",
			st.Instances, st.Skipped, st.Steps, st.Restamps, st.Fulls, st.Truncated, st.Seconds, st.Divergences)
	} else {
		fmt.Printf("aigdiff: %d instances (%d recursive, %d aborts), %d oracle evaluations in %.2fs (%.1f inst/s, %.1f evals/s), %d divergences\n",
			st.Instances, st.Recursive, st.Aborts, st.Evals, st.Seconds,
			st.InstancesPerSec, st.EvalsPerSec, st.Divergences)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(st, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: write %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// report prints one divergence, optionally shrinking and filing it.
func report(inst *randaig.Instance, opts difftest.Options, div *difftest.Divergence, shrink bool, corpusDir string, cfg randaig.Config) {
	fmt.Fprintf(os.Stderr, "%s\n", div.Error())
	ops := []randaig.Op(nil)
	if shrink {
		res := difftest.Shrink(inst, opts, div, 0)
		ops = res.Ops
		if res.Divergence != nil {
			div = res.Divergence
		}
		fmt.Fprintf(os.Stderr, "aigdiff: shrunk in %d checks to %d ops:\n", res.Checks, len(res.Ops))
		for _, op := range res.Ops {
			fmt.Fprintf(os.Stderr, "  %s\n", op)
		}
	}
	reg := difftest.Regression{Seed: inst.Seed, Config: cfg, Ops: ops, Leg: div.Leg, Note: div.Detail}
	repro, err := json.Marshal(reg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "aigdiff: repro: %s\n", repro)
	}
	if corpusDir != "" {
		path, err := difftest.SaveRegression(corpusDir, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: save regression: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "aigdiff: regression saved to %s\n", path)
	}
}

// reportCertify prints one certification-soundness divergence,
// optionally shrinking the mutation sequence and filing the regression.
func reportCertify(inst *randaig.Instance, seq []difftest.Mutation, div *difftest.Divergence, shrink bool, corpusDir string, cfg randaig.Config) {
	fmt.Fprintf(os.Stderr, "%s\n", div.Error())
	if shrink {
		shrunk, sdiv, checks := difftest.ShrinkCertify(inst, seq, difftest.CertifyOptions{}, 0)
		if sdiv != nil {
			seq, div = shrunk, sdiv
		}
		fmt.Fprintf(os.Stderr, "aigdiff: shrunk in %d checks to %d mutations:\n", checks, len(seq))
		for _, m := range seq {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
	}
	reg := difftest.Regression{
		Seed: inst.Seed, Config: cfg, Mode: "certify",
		Mutations: seq, Leg: div.Leg, Note: div.Detail,
	}
	repro, err := json.Marshal(reg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "aigdiff: repro: %s\n", repro)
	}
	if corpusDir != "" {
		path, err := difftest.SaveRegression(corpusDir, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: save regression: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "aigdiff: regression saved to %s\n", path)
	}
}

// reportRecover prints one crash-recovery divergence, optionally
// shrinking the operation sequence and filing the regression. The filed
// config pins the diverging crash offset so the regression replays a
// single truncation instead of the whole sweep.
func reportRecover(seed int64, cfg difftest.RecoverConfig, ops []difftest.RecoverOp, out difftest.RecoverOutcome, shrink bool, corpusDir string) {
	div := out.Divergence
	fmt.Fprintf(os.Stderr, "%s\n", div.Error())
	if shrink {
		shrunk, sdiv, checks := difftest.ShrinkRecovery(seed, cfg, ops, 0)
		if sdiv != nil {
			ops, div = shrunk, sdiv
		}
		fmt.Fprintf(os.Stderr, "aigdiff: shrunk in %d checks to %d ops:\n", checks, len(ops))
		for _, op := range ops {
			fmt.Fprintf(os.Stderr, "  %s\n", op)
		}
	}
	if out.TruncateAt > 0 {
		cfg.TruncateAt = out.TruncateAt
	}
	reg := difftest.Regression{
		Seed: seed, Mode: "recover",
		RecoverOps: ops, RecoverCfg: &cfg, Leg: div.Leg, Note: div.Detail,
	}
	repro, err := json.Marshal(reg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "aigdiff: repro: %s\n", repro)
	}
	if corpusDir != "" {
		path, err := difftest.SaveRegression(corpusDir, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: save regression: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "aigdiff: regression saved to %s\n", path)
	}
}

// reportFragment prints one fragment-mode divergence, optionally
// shrinking the mutation sequence (the path set is held fixed) and
// filing the regression.
func reportFragment(inst *randaig.Instance, paths []string, seq []difftest.Mutation, div *difftest.Divergence, shrink bool, corpusDir string, cfg randaig.Config) {
	fmt.Fprintf(os.Stderr, "%s\n", div.Error())
	if shrink {
		shrunk, sdiv, checks := difftest.ShrinkFragment(inst, paths, seq, difftest.FragmentOptions{}, 0)
		if sdiv != nil {
			seq, div = shrunk, sdiv
		}
		fmt.Fprintf(os.Stderr, "aigdiff: shrunk in %d checks to %d mutations over %d paths:\n", checks, len(seq), len(paths))
		for _, m := range seq {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
	}
	reg := difftest.Regression{
		Seed: inst.Seed, Config: cfg, Mode: "fragment",
		Paths: paths, Mutations: seq, Leg: div.Leg, Note: div.Detail,
	}
	repro, err := json.Marshal(reg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "aigdiff: repro: %s\n", repro)
	}
	if corpusDir != "" {
		path, err := difftest.SaveRegression(corpusDir, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: save regression: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "aigdiff: regression saved to %s\n", path)
	}
}

// reportIVM prints one IVM-mode divergence, optionally shrinking the
// mutation sequence and filing the regression.
func reportIVM(inst *randaig.Instance, seq []difftest.Mutation, opts difftest.IVMOptions, div *difftest.Divergence, shrink bool, corpusDir string, cfg randaig.Config) {
	fmt.Fprintf(os.Stderr, "%s\n", div.Error())
	if shrink {
		shrunk, sdiv, checks := difftest.ShrinkIVM(inst, seq, opts, 0)
		if sdiv != nil {
			seq, div = shrunk, sdiv
		}
		fmt.Fprintf(os.Stderr, "aigdiff: shrunk in %d checks to %d mutations:\n", checks, len(seq))
		for _, m := range seq {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
	}
	reg := difftest.Regression{
		Seed: inst.Seed, Config: cfg, Mode: "ivm",
		Mutations: seq, LogCap: opts.LogCap, Leg: div.Leg, Note: div.Detail,
	}
	repro, err := json.Marshal(reg)
	if err == nil {
		fmt.Fprintf(os.Stderr, "aigdiff: repro: %s\n", repro)
	}
	if corpusDir != "" {
		path, err := difftest.SaveRegression(corpusDir, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aigdiff: save regression: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "aigdiff: regression saved to %s\n", path)
	}
}
