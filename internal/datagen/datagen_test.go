package datagen

import (
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

// TestTable1Cardinalities checks that generated datasets reproduce
// Table 1 of the paper exactly.
func TestTable1Cardinalities(t *testing.T) {
	want := map[string]map[string]int{
		"small":  {"patient": 2500, "visitInfo": 11371, "cover": 2224, "billing": 175, "treatment": 175, "procedure": 441},
		"medium": {"patient": 3300, "visitInfo": 14887, "cover": 3762, "billing": 250, "treatment": 250, "procedure": 718},
		"large":  {"patient": 5000, "visitInfo": 22496, "cover": 8996, "billing": 350, "treatment": 350, "procedure": 923},
	}
	locate := map[string]string{
		"patient": "DB1", "visitInfo": "DB1", "cover": "DB2",
		"billing": "DB3", "treatment": "DB4", "procedure": "DB4",
	}
	for _, size := range Sizes {
		cat := Generate(size, 1)
		for table, card := range want[size.Name] {
			tbl, err := cat.Table(locate[table], table)
			if err != nil {
				t.Fatalf("%s: %v", size.Name, err)
			}
			if tbl.Len() != card {
				t.Errorf("%s %s: %d rows, want %d (Table 1)", size.Name, table, tbl.Len(), card)
			}
		}
	}
}

// TestProcedureSelfJoinShape checks the §6 growth figures: for the Large
// dataset the paper reports a 3-way self join of 4055 and a 4-way of
// 6837. The generated DAG lands within 25% with the same growth factor.
func TestProcedureSelfJoinShape(t *testing.T) {
	cat := Generate(Large, 42)
	proc, err := cat.Table("DB4", "procedure")
	if err != nil {
		t.Fatal(err)
	}
	j3 := SelfJoinCard(proc, 3)
	j4 := SelfJoinCard(proc, 4)
	within := func(got, want int, tol float64) bool {
		lo := float64(want) * (1 - tol)
		hi := float64(want) * (1 + tol)
		return float64(got) >= lo && float64(got) <= hi
	}
	if !within(j3, 4055, 0.25) {
		t.Errorf("3-way self join = %d, paper reports 4055", j3)
	}
	if !within(j4, 6837, 0.25) {
		t.Errorf("4-way self join = %d, paper reports 6837", j4)
	}
	if j4 <= j3 {
		t.Errorf("self-join cardinality must grow with arity: j3=%d j4=%d", j3, j4)
	}
	// The hierarchy keeps growing through the unfolding levels used in
	// Fig. 10 (2..7).
	prev := j4
	for k := 5; k <= 7; k++ {
		jk := SelfJoinCard(proc, k)
		if jk <= prev {
			t.Errorf("self-join stopped growing at %d-way: %d <= %d", k, jk, prev)
		}
		prev = jk
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Small, 7)
	b := Generate(Small, 7)
	for _, db := range []string{"DB1", "DB2", "DB3", "DB4"} {
		dba, _ := a.Database(db)
		dbb, _ := b.Database(db)
		for _, name := range dba.TableNames() {
			ta, _ := dba.Table(name)
			tb, _ := dbb.Table(name)
			if !ta.Equal(tb) {
				t.Errorf("%s:%s differs across runs with the same seed", db, name)
			}
		}
	}
	c := Generate(Small, 8)
	visA, _ := a.Table("DB1", "visitInfo")
	visC, _ := c.Table("DB1", "visitInfo")
	if visA.Equal(visC) {
		t.Error("different seeds produced identical visitInfo")
	}
}

func TestProcedureIsAcyclicDAG(t *testing.T) {
	for _, size := range Sizes {
		cat := Generate(size, 3)
		proc, _ := cat.Table("DB4", "procedure")
		children := make(map[string][]string)
		for _, row := range proc.Rows() {
			children[row[0].AsString()] = append(children[row[0].AsString()], row[1].AsString())
		}
		// DFS cycle detection.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := make(map[string]int)
		var visit func(v string) bool
		visit = func(v string) bool {
			color[v] = gray
			for _, c := range children[v] {
				switch color[c] {
				case gray:
					return false
				case white:
					if !visit(c) {
						return false
					}
				}
			}
			color[v] = black
			return true
		}
		for v := range children {
			if color[v] == white && !visit(v) {
				t.Fatalf("%s: procedure hierarchy contains a cycle", size.Name)
			}
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat := Generate(Small, 5)
	treatment, _ := cat.Table("DB4", "treatment")
	ids := make(map[string]bool, treatment.Len())
	for _, row := range treatment.Rows() {
		ids[row[0].AsString()] = true
	}
	check := func(tbl *relstore.Table, col int, what string) {
		for _, row := range tbl.Rows() {
			if !ids[row[col].AsString()] {
				t.Fatalf("%s references unknown treatment %s", what, row[col].AsString())
			}
		}
	}
	visit, _ := cat.Table("DB1", "visitInfo")
	check(visit, 1, "visitInfo.trId")
	cover, _ := cat.Table("DB2", "cover")
	check(cover, 1, "cover.trId")
	billing, _ := cat.Table("DB3", "billing")
	check(billing, 0, "billing.trId")
	proc, _ := cat.Table("DB4", "procedure")
	check(proc, 0, "procedure.trId1")
	check(proc, 1, "procedure.trId2")

	// billing covers every treatment (needed for the inclusion
	// constraint to hold).
	billed := make(map[string]bool, billing.Len())
	for _, row := range billing.Rows() {
		billed[row[0].AsString()] = true
	}
	for id := range ids {
		if !billed[id] {
			t.Fatalf("treatment %s has no billing entry", id)
		}
	}
}

func TestSizeByName(t *testing.T) {
	if s, err := SizeByName("medium"); err != nil || s.Name != "medium" {
		t.Errorf("SizeByName(medium) = %v, %v", s, err)
	}
	if s, err := SizeByName("tiny"); err != nil || s.Name != "tiny" {
		t.Errorf("SizeByName(tiny) = %v, %v", s, err)
	}
	if _, err := SizeByName("gigantic"); err == nil {
		t.Error("unknown size accepted")
	}
}

// TestTinyGenerates checks the off-table smoke scale populates every
// table at its declared cardinality (the procedure DAG may come up a few
// edges short if the random pairing exhausts its retry budget, but must
// still exist).
func TestTinyGenerates(t *testing.T) {
	cat := Generate(Tiny, 1)
	exact := map[[2]string]int{
		{"DB1", "patient"}:   Tiny.Patient,
		{"DB1", "visitInfo"}: Tiny.VisitInfo,
		{"DB2", "cover"}:     Tiny.Cover,
		{"DB3", "billing"}:   Tiny.Billing,
		{"DB4", "treatment"}: Tiny.Treatment,
	}
	for loc, want := range exact {
		tab, err := cat.Table(loc[0], loc[1])
		if err != nil {
			t.Fatal(err)
		}
		if tab.Len() != want {
			t.Errorf("%s.%s: %d rows, want %d", loc[0], loc[1], tab.Len(), want)
		}
	}
	proc, err := cat.Table("DB4", "procedure")
	if err != nil {
		t.Fatal(err)
	}
	if proc.Len() == 0 || proc.Len() > Tiny.Procedure {
		t.Errorf("procedure: %d rows, want 1..%d", proc.Len(), Tiny.Procedure)
	}
}

func TestDate(t *testing.T) {
	if Date(0) != "d001" || Date(29) != "d030" {
		t.Errorf("Date formatting wrong: %s %s", Date(0), Date(29))
	}
}
