// Package datagen generates the experimental datasets of §6 (Table 1):
// the four hospital databases at small/medium/large scale, produced by a
// deterministic seeded generator standing in for the ToXgene pipeline the
// paper used. Cardinalities match Table 1 exactly; the procedure
// hierarchy is a layered random DAG whose k-way self-join cardinalities
// grow in the same regime the paper reports for the Large dataset (3-way
// ≈ 4055, 4-way ≈ 6837).
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/aigrepro/aig/internal/relstore"
)

// Size describes one dataset scale.
type Size struct {
	Name      string
	Patient   int
	VisitInfo int
	Cover     int
	Billing   int
	Treatment int
	Procedure int

	// Generation shape parameters (not part of Table 1).
	Policies int
	Dates    int
	Levels   int
}

// Tiny is a smoke-test scale, not part of Table 1: small enough that
// race-instrumented end-to-end runs (scripts/smoke_trace.sh) evaluate a
// view in milliseconds, while still populating every table and a
// multi-level procedure DAG.
var Tiny = Size{
	Name: "tiny", Patient: 60, VisitInfo: 240, Cover: 30,
	Billing: 20, Treatment: 20, Procedure: 24,
	Policies: 4, Dates: 10, Levels: 4,
}

// The three dataset scales of Table 1.
var (
	Small = Size{
		Name: "small", Patient: 2500, VisitInfo: 11371, Cover: 2224,
		Billing: 175, Treatment: 175, Procedure: 441,
		Policies: 16, Dates: 30, Levels: 10,
	}
	Medium = Size{
		Name: "medium", Patient: 3300, VisitInfo: 14887, Cover: 3762,
		Billing: 250, Treatment: 250, Procedure: 718,
		Policies: 22, Dates: 30, Levels: 10,
	}
	Large = Size{
		Name: "large", Patient: 5000, VisitInfo: 22496, Cover: 8996,
		Billing: 350, Treatment: 350, Procedure: 923,
		Policies: 34, Dates: 30, Levels: 10,
	}
)

// Sizes lists the Table 1 scales in increasing order. Tiny is kept out
// so benchmarks and cardinality checks that reproduce the paper's table
// iterate exactly the published scales.
var Sizes = []Size{Small, Medium, Large}

// SizeByName returns the named scale, including the off-table "tiny".
func SizeByName(name string) (Size, error) {
	if name == Tiny.Name {
		return Tiny, nil
	}
	for _, s := range Sizes {
		if s.Name == name {
			return s, nil
		}
	}
	return Size{}, fmt.Errorf("datagen: unknown dataset size %q (want tiny, small, medium or large)", name)
}

// Date returns the i-th report date string (0-based).
func Date(i int) string { return fmt.Sprintf("d%03d", i+1) }

// Generate builds the four databases DB1..DB4 at the given scale,
// deterministically for a seed.
func Generate(size Size, seed int64) *relstore.Catalog {
	r := rand.New(rand.NewSource(seed))
	cat := relstore.NewCatalog()

	trID := func(i int) string { return fmt.Sprintf("t%04d", i) }
	ssn := func(i int) string { return fmt.Sprintf("s%06d", i) }
	policy := func(i int) string { return fmt.Sprintf("pol%02d", i) }

	// DB4: treatment and the procedure hierarchy.
	db4 := relstore.NewDatabase("DB4")
	treatment := db4.CreateTable("treatment", relstore.MustSchema("trId:string", "tname:string"))
	names := []string{"xray", "mri", "cast", "suture", "scan", "biopsy", "dialysis", "transfusion"}
	for i := 0; i < size.Treatment; i++ {
		treatment.MustInsert(relstore.Tuple{
			relstore.String(trID(i)),
			relstore.String(fmt.Sprintf("%s-%d", names[i%len(names)], i)),
		})
	}
	procedure := db4.CreateTable("procedure", relstore.MustSchema("trId1:string", "trId2:string"))
	for _, e := range procedureEdges(r, size) {
		procedure.MustInsert(relstore.Tuple{relstore.String(trID(e[0])), relstore.String(trID(e[1]))})
	}
	cat.Add(db4)

	// DB1: patients and visits.
	db1 := relstore.NewDatabase("DB1")
	patient := db1.CreateTable("patient", relstore.MustSchema("SSN:string", "pname:string", "policy:string"))
	for i := 0; i < size.Patient; i++ {
		patient.MustInsert(relstore.Tuple{
			relstore.String(ssn(i)),
			relstore.String(fmt.Sprintf("patient-%d", i)),
			relstore.String(policy(r.Intn(size.Policies))),
		})
	}
	visit := db1.CreateTable("visitInfo", relstore.MustSchema("SSN:string", "trId:string", "date:string"))
	seenVisit := make(map[[3]int]bool, size.VisitInfo)
	for visit.Len() < size.VisitInfo {
		key := [3]int{r.Intn(size.Patient), r.Intn(size.Treatment), r.Intn(size.Dates)}
		if seenVisit[key] {
			continue
		}
		seenVisit[key] = true
		visit.MustInsert(relstore.Tuple{
			relstore.String(ssn(key[0])),
			relstore.String(trID(key[1])),
			relstore.String(Date(key[2])),
		})
	}
	cat.Add(db1)

	// DB2: insurance coverage — exactly size.Cover distinct pairs.
	db2 := relstore.NewDatabase("DB2")
	cover := db2.CreateTable("cover", relstore.MustSchema("policy:string", "trId:string"))
	seenCover := make(map[[2]int]bool, size.Cover)
	for cover.Len() < size.Cover {
		key := [2]int{r.Intn(size.Policies), r.Intn(size.Treatment)}
		if seenCover[key] {
			continue
		}
		seenCover[key] = true
		cover.MustInsert(relstore.Tuple{relstore.String(policy(key[0])), relstore.String(trID(key[1]))})
	}
	cat.Add(db2)

	// DB3: billing — one price per treatment (trId is the key).
	db3 := relstore.NewDatabase("DB3")
	billing := db3.CreateTable("billing", relstore.MustSchema("trId:string", "price:int"))
	for i := 0; i < size.Billing; i++ {
		billing.MustInsert(relstore.Tuple{
			relstore.String(trID(i)),
			relstore.Int(int64(20 + r.Intn(980))),
		})
	}
	cat.Add(db3)

	return cat
}

// procedureEdges builds the layered random DAG of the treatment
// hierarchy: treatments are spread over size.Levels levels, every edge
// goes from level l to level l+1 (acyclic by construction), and each
// level splits into "branchy" nodes — which carry all outgoing edges,
// some to the next level's branchy nodes, most to terminals — and
// terminal nodes with no sub-treatments. Branch fanout is higher at the
// first levels (x0) than deeper (xl); the constants are calibrated so the
// Large dataset's 3- and 4-way self-join cardinalities land on the values
// the paper reports (≈4055 and ≈6837): this generator yields 3906 and
// 7217.
func procedureEdges(r *rand.Rand, size Size) [][2]int {
	const (
		branchFrac = 0.25
		x0         = 3.8 // branch-to-branch fanout at levels 0-1
		xl         = 1.85
	)
	levels := size.Levels
	byLevel := make([][]int, levels)
	for i := 0; i < size.Treatment; i++ {
		byLevel[i%levels] = append(byLevel[i%levels], i)
	}
	nB := int(branchFrac * float64(len(byLevel[0])))
	if nB < 2 {
		nB = 2
	}
	branchy := make([][]int, levels)
	terminal := make([][]int, levels)
	for l, lv := range byLevel {
		b := nB
		if b > len(lv) {
			b = len(lv)
		}
		branchy[l] = lv[:b]
		terminal[l] = lv[b:]
	}

	quota := size.Procedure / (levels - 1)
	extra := size.Procedure - quota*(levels-1)
	seen := make(map[[2]int]bool, size.Procedure)
	var edges [][2]int
	addN := func(n int, parents, children []int) {
		added, tries := 0, 0
		for added < n && tries < 100000 {
			tries++
			key := [2]int{parents[r.Intn(len(parents))], children[r.Intn(len(children))]}
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, key)
			added++
		}
	}
	for l := 0; l < levels-1; l++ {
		q := quota
		if l < extra {
			q++
		}
		x := xl
		if l < 2 {
			x = x0
		}
		bb := int(x*float64(nB) + 0.5)
		if max := len(branchy[l]) * len(branchy[l+1]); bb > max {
			bb = max
		}
		if bb > q {
			bb = q
		}
		addN(bb, branchy[l], branchy[l+1])
		if len(terminal[l+1]) > 0 {
			addN(q-bb, branchy[l], terminal[l+1])
		} else {
			addN(q-bb, branchy[l], branchy[l+1])
		}
	}
	return edges
}

// SelfJoinCard computes the number of paths of length k in the procedure
// hierarchy — the cardinality of the k-way self join the paper quotes to
// characterize unfolding growth.
func SelfJoinCard(procedure *relstore.Table, k int) int {
	children := make(map[string][]string)
	for _, row := range procedure.Rows() {
		children[row[0].AsString()] = append(children[row[0].AsString()], row[1].AsString())
	}
	// paths[v] = number of paths of the current length ending anywhere,
	// starting from v; iterate lengths.
	count := make(map[string]int, len(children))
	for v := range children {
		count[v] = 1
	}
	// count_k(v) = number of length-k paths starting at v.
	cur := make(map[string]int)
	for v, cs := range children {
		cur[v] = len(cs)
		_ = cs
	}
	if k == 1 {
		return procedure.Len()
	}
	for step := 2; step <= k; step++ {
		next := make(map[string]int, len(children))
		for v, cs := range children {
			total := 0
			for _, c := range cs {
				total += cur[c]
			}
			next[v] = total
		}
		cur = next
	}
	total := 0
	for _, n := range cur {
		total += n
	}
	return total
}
