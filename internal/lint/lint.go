// Package lint is the diagnostic engine behind the aiglint tool: it runs
// the static analyses of the paper (§3.1 validation, §4 termination /
// reachability / rule classification) plus a set of spec-hygiene checks
// over a parsed AIG and reports the findings as structured diagnostics
// with stable codes and source positions, instead of a single joined
// error.
//
// Diagnostic codes are stable across releases so CI configurations and
// editors can filter on them:
//
//	AIG001  spec does not parse
//	AIG002  rule query can never return a row (§4 satisfiability)
//	AIG003  evaluation may not terminate (§4 termination)
//	AIG004  element type unreachable or never produced (§4 reachability)
//	AIG005  choice branch can never be selected
//	AIG006  query references an undeclared source, table or column
//	AIG007  semantic rule fails validation (§3.1 type compatibility)
//	AIG008  XML constraint inconsistent with the DTD or vacuous
//	AIG009  copy rule that copy elimination (§4) cannot collapse
//	AIG010  attribute member declared but never referenced
//	AIG011  spec declares no sources section
//	AIG012  constraint not statically guaranteed (§5 certification)
//	AIG013  source constraint unused by any certification proof
//	AIG014  inclusion constraint provably violated
package lint

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/srcpos"
)

// The diagnostic codes.
const (
	CodeParse          = "AIG001"
	CodeUnsatisfiable  = "AIG002"
	CodeNonTermination = "AIG003"
	CodeUnreachable    = "AIG004"
	CodeDeadBranch     = "AIG005"
	CodeUnresolved     = "AIG006"
	CodeRuleCheck      = "AIG007"
	CodeConstraint     = "AIG008"
	CodeCopyChain      = "AIG009"
	CodeUnusedMember   = "AIG010"
	CodeNoSources      = "AIG011"
	CodeUncertified    = "AIG012"
	CodeUnusedSource   = "AIG013"
	CodeViolated       = "AIG014"
)

// Severity ranks a diagnostic. Errors make aiglint exit non-zero;
// warnings and infos are advisory.
type Severity uint8

// The severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// MarshalText implements encoding.TextMarshaler so JSON output renders
// severities as their names.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic is one finding, located in the spec source when the
// position is known (Line and Col are 0 for findings with no natural
// source anchor, such as whole-grammar properties of programmatically
// built AIGs).
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	// Hint, when non-empty, suggests why the finding may be intentional
	// or how to fix it.
	Hint string `json:"hint,omitempty"`
}

// Pos returns the diagnostic's source position.
func (d Diagnostic) Pos() srcpos.Pos { return srcpos.At(d.Line, d.Col) }

// String renders the diagnostic in the conventional
// file:line:col: severity: message [CODE] form.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.File)
	if d.Line > 0 {
		fmt.Fprintf(&b, ":%d:%d", d.Line, d.Col)
	}
	fmt.Fprintf(&b, ": %s: %s [%s]", d.Severity, d.Message, d.Code)
	return b.String()
}

// HasErrors reports whether any diagnostic is an Error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Source parses spec text and lints the resulting grammar. Parse
// failures are reported as AIG001 diagnostics rather than an error, so
// callers handle malformed and well-formed specs uniformly.
func Source(file, text string) []Diagnostic {
	a, err := aigspec.Parse(text)
	if err != nil {
		p := srcpos.PosOf(err)
		return []Diagnostic{{
			File: file, Line: p.Line, Col: p.Col,
			Severity: Error, Code: CodeParse,
			Message: stripPos(err.Error(), p),
		}}
	}
	return Grammar(file, a)
}

// Grammar lints an already-parsed AIG. The file name is used only to
// label diagnostics.
func Grammar(file string, a *aig.AIG) []Diagnostic {
	c := &checker{file: file, aig: a}
	c.run()
	sort.SliceStable(c.diags, func(i, j int) bool {
		di, dj := c.diags[i], c.diags[j]
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		if di.Col != dj.Col {
			return di.Col < dj.Col
		}
		if di.Code != dj.Code {
			return di.Code < dj.Code
		}
		return di.Message < dj.Message
	})
	return c.diags
}

// stripPos removes the leading "line:col: " that srcpos.Error rendering
// adds, since Diagnostic carries the position structurally.
func stripPos(msg string, p srcpos.Pos) string {
	if !p.IsValid() {
		return msg
	}
	prefix := fmt.Sprintf("%d:%d: ", p.Line, p.Col)
	return strings.TrimPrefix(msg, prefix)
}
