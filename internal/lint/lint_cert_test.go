package lint

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
)

// TestCertifiedSpecHasNoCertDiagnostics: the hospital spec certifies
// fully, so none of AIG012/013/014 fire and the declarations are all
// counted as used.
func TestCertifiedSpecHasNoCertDiagnostics(t *testing.T) {
	for _, d := range lintText(t, hospital.SpecText) {
		switch d.Code {
		case CodeUncertified, CodeUnusedSource, CodeViolated:
			t.Errorf("unexpected certification diagnostic: %s", d)
		}
	}
}

// TestUncertifiedConstraintsWarn: with the key/fkey declarations
// stripped, both constraints get AIG012 warnings anchored at their
// declarations.
func TestUncertifiedConstraintsWarn(t *testing.T) {
	spec := hospital.SpecText
	for _, line := range []string{
		"key DB3:billing(trId)",
		"fkey DB1:visitInfo(trId) -> DB3:billing(trId)",
		"fkey DB4:procedure(trId2) -> DB3:billing(trId)",
	} {
		spec = strings.Replace(spec, "  "+line+"\n", "", 1)
	}
	var got []Diagnostic
	for _, d := range lintText(t, spec) {
		if d.Code == CodeUncertified {
			got = append(got, d)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d AIG012 diagnostics, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Severity != Warning {
			t.Errorf("%s: severity %s, want warning", d, d.Severity)
		}
		if d.Line == 0 {
			t.Errorf("%s: no source anchor", d)
		}
		if !strings.Contains(d.Message, "not statically guaranteed") {
			t.Errorf("%s: message does not say why", d)
		}
	}
}

// TestUnusedSourceConstraintIsInfo: a declaration no proof needs gets an
// advisory AIG013.
func TestUnusedSourceConstraintIsInfo(t *testing.T) {
	spec := strings.Replace(hospital.SpecText,
		"  key DB3:billing(trId)\n",
		"  key DB3:billing(trId)\n  key DB2:cover(policy, trId)\n", 1)
	var got []Diagnostic
	for _, d := range lintText(t, spec) {
		if d.Code == CodeUnusedSource {
			got = append(got, d)
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %d AIG013 diagnostics, want 1: %v", len(got), got)
	}
	if got[0].Severity != Info || !strings.Contains(got[0].Message, "DB2:cover") {
		t.Errorf("unexpected AIG013 diagnostic: %s", got[0])
	}
}

// TestViolatedInclusionIsError: an inclusion whose target can never be
// derived under the context, while the source provably occurs, is an
// AIG014 error.
func TestViolatedInclusionIsError(t *testing.T) {
	spec := strings.Replace(hospital.SpecText,
		"patient(treatment.trId [= item.trId)",
		"treatments(treatment.trId [= item.trId)", 1)
	var got []Diagnostic
	for _, d := range lintText(t, spec) {
		if d.Code == CodeViolated {
			got = append(got, d)
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %d AIG014 diagnostics, want 1", len(got))
	}
	if got[0].Severity != Error || !strings.Contains(got[0].Message, "provably violated") {
		t.Errorf("unexpected AIG014 diagnostic: %s", got[0])
	}
}

// TestBrokenConstraintSkipsCertification: when a constraint fails DTD
// validation (AIG008), the certifier stays quiet rather than piling an
// AIG012 on top.
func TestBrokenConstraintSkipsCertification(t *testing.T) {
	spec := strings.Replace(hospital.SpecText,
		"patient(item.trId -> item)",
		"patient(item.zzz -> item)", 1)
	for _, d := range lintText(t, spec) {
		switch d.Code {
		case CodeUncertified, CodeUnusedSource, CodeViolated:
			t.Errorf("certification diagnostic on invalid constraint: %s", d)
		}
	}
}
