package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/srcpos"
)

// TestFixtureExactCodes is the acceptance fixture: a spec with a
// deliberately unsatisfiable query, a query over an unknown column, and
// a key inconsistent with the DTD must yield exactly those three
// diagnostics, at the lines and columns of the offending clauses.
func TestFixtureExactCodes(t *testing.T) {
	text, err := os.ReadFile(filepath.Join("testdata", "bad.aig"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Source("bad.aig", string(text))
	want := []struct {
		code string
		pos  srcpos.Pos
		sev  Severity
		msg  string
	}{
		{CodeUnsatisfiable, srcpos.At(11, 3), Error, "can never return a row"},
		{CodeUnresolved, srcpos.At(12, 3), Error, "nosuch"},
		{CodeConstraint, srcpos.At(29, 3), Error, "zzz"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		d := diags[i]
		if d.Code != w.code || d.Pos() != w.pos || d.Severity != w.sev {
			t.Errorf("diag %d = %s (%s at %v), want %s %s at %v", i, d, d.Severity, d.Pos(), w.sev, w.code, w.pos)
		}
		if !strings.Contains(d.Message, w.msg) {
			t.Errorf("diag %d message %q does not mention %q", i, d.Message, w.msg)
		}
	}
}

// TestExamplesHaveNoErrors pins the shipped example specs to lint clean:
// warnings and infos are allowed (the hospital grammar is recursive by
// design), error-severity diagnostics are not.
func TestExamplesHaveNoErrors(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.aig"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no example specs found")
	}
	for _, f := range matches {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		diags := Source(f, string(text))
		for _, d := range diags {
			t.Logf("%s", d)
			if d.Severity == Error {
				t.Errorf("%s: shipped spec has a lint error", d)
			}
		}
	}
}

func lintText(t *testing.T, text string) []Diagnostic {
	t.Helper()
	return Source("test.aig", text)
}

func codes(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func hasCode(diags []Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestParseErrorDiagnostic(t *testing.T) {
	diags := lintText(t, "dtd\n  <!ELEMENT a (#PCDATA)>\nend\nbogus")
	if len(diags) != 1 || diags[0].Code != CodeParse || diags[0].Severity != Error {
		t.Fatalf("diags = %v", diags)
	}
	if diags[0].Pos() != srcpos.At(4, 1) {
		t.Errorf("parse diagnostic at %v, want 4:1", diags[0].Pos())
	}
	if strings.HasPrefix(diags[0].Message, "4:1:") {
		t.Errorf("message %q still carries the position prefix", diags[0].Message)
	}
}

func TestNoSourcesInfo(t *testing.T) {
	diags := lintText(t, "dtd\n  <!ELEMENT a (#PCDATA)>\nend\n")
	if !hasCode(diags, CodeNoSources) {
		t.Errorf("no AIG011 for spec without sources: %v", codes(diags))
	}
	for _, d := range diags {
		if d.Code == CodeNoSources && d.Severity != Info {
			t.Errorf("AIG011 severity = %v, want info", d.Severity)
		}
	}
}

func TestDeadBranchDiagnostics(t *testing.T) {
	spec := `dtd
  <!ELEMENT r (a | b)>
  <!ELEMENT a (#PCDATA)>
  <!ELEMENT b (#PCDATA)>
end

rule r
  cond query []: select t.n from S:t t where t.n = %d;
end

sources
  S:t(n:int)
end
`
	// Forced to 1: branch 2 is dead (warning).
	diags := lintText(t, strings.Replace(spec, "%d", "1", 1))
	found := false
	for _, d := range diags {
		if d.Code == CodeDeadBranch {
			found = true
			if d.Severity != Warning {
				t.Errorf("in-range dead branch severity = %v, want warning", d.Severity)
			}
			if !strings.Contains(d.Message, "branch 1") || !strings.Contains(d.Message, "2 (b)") {
				t.Errorf("dead branch message %q lacks branch detail", d.Message)
			}
			if d.Pos() != srcpos.At(8, 3) {
				t.Errorf("dead branch at %v, want 8:3", d.Pos())
			}
		}
	}
	if !found {
		t.Fatalf("no AIG005 for forced condition: %v", codes(diags))
	}

	// Forced to 7: out of range, no branch can ever be selected (error).
	diags = lintText(t, strings.Replace(spec, "%d", "7", 1))
	found = false
	for _, d := range diags {
		if d.Code == CodeDeadBranch {
			found = true
			if d.Severity != Error {
				t.Errorf("out-of-range selector severity = %v, want error", d.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("no AIG005 for out-of-range selector: %v", codes(diags))
	}
}

func TestUnreachableElement(t *testing.T) {
	spec := `dtd
  <!ELEMENT r (a)>
  <!ELEMENT a (#PCDATA)>
  <!ELEMENT orphan (#PCDATA)>
end
`
	diags := lintText(t, spec)
	found := false
	for _, d := range diags {
		if d.Code == CodeUnreachable {
			found = true
			if !strings.Contains(d.Message, "orphan") {
				t.Errorf("unreachable message %q does not name orphan", d.Message)
			}
			if d.Pos() != srcpos.At(4, 13) {
				t.Errorf("unreachable at %v, want 4:13", d.Pos())
			}
		}
	}
	if !found {
		t.Fatalf("no AIG004: %v", codes(diags))
	}
}

func TestUnusedMember(t *testing.T) {
	spec := `dtd
  <!ELEMENT r (a)>
  <!ELEMENT a (#PCDATA)>
end

inh a (v, ghost)

rule r
  child a set v = inh(r).q
end

rule a
  text inh(a).v
end

inh r (q)
`
	diags := lintText(t, spec)
	found := false
	for _, d := range diags {
		if d.Code == CodeUnusedMember {
			found = true
			if !strings.Contains(d.Message, "ghost") {
				t.Errorf("unexpected unused member: %s", d)
			}
			if d.Pos() != srcpos.At(6, 11) {
				t.Errorf("unused member at %v, want 6:11", d.Pos())
			}
		}
	}
	if !found {
		t.Fatalf("no AIG010: %v", codes(diags))
	}
}

func TestUnsatisfiableCutHint(t *testing.T) {
	// A recursive star cycle cut by an unsatisfiable query is the paper's
	// own depth-bounding device: warning with a hint, not an error.
	spec := `dtd
  <!ELEMENT r (a)>
  <!ELEMENT a (x*)>
  <!ELEMENT x (v, a)>
  <!ELEMENT v (#PCDATA)>
end

inh a (n)
inh v (n)
inh x (n)

rule r
  child a set n = inh(r).n
end

rule a
  child x from query [p = inh(a)]: select t.n from S:t t where t.n = 1 and t.n = 2;
end

rule x
  child v set n = inh(x).n
  child a set n = inh(x).n
end

rule v
  text inh(v).n
end

inh r (n)

sources
  S:t(n:int)
end
`
	diags := lintText(t, spec)
	found := false
	for _, d := range diags {
		if d.Code == CodeUnsatisfiable {
			found = true
			if d.Severity != Warning {
				t.Errorf("cycle-cutting unsat query severity = %v, want warning", d.Severity)
			}
			if d.Hint == "" || !strings.Contains(d.Hint, "recursive cycle") {
				t.Errorf("cycle-cutting unsat query hint = %q", d.Hint)
			}
		}
	}
	if !found {
		t.Fatalf("no AIG002: %v", codes(diags))
	}
	if hasCode(diags, CodeNonTermination) {
		t.Errorf("AIG003 reported although the cycle is cut: %v", codes(diags))
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "f.aig", Line: 3, Col: 7, Severity: Warning, Code: CodeUnreachable, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"severity":"warning"`, `"code":"AIG004"`, `"line":3`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON %s lacks %s", b, want)
		}
	}
	if strings.Contains(string(b), "hint") {
		t.Errorf("empty hint serialized: %s", b)
	}
}
