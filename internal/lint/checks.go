package lint

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/propagate"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/srcpos"
	"github.com/aigrepro/aig/internal/static"
)

type checker struct {
	file  string
	aig   *aig.AIG
	diags []Diagnostic
}

func (c *checker) report(p srcpos.Pos, sev Severity, code, format string, args ...any) *Diagnostic {
	c.diags = append(c.diags, Diagnostic{
		File: c.file, Line: p.Line, Col: p.Col,
		Severity: sev, Code: code,
		Message: fmt.Sprintf(format, args...),
	})
	return &c.diags[len(c.diags)-1]
}

func (c *checker) run() {
	c.checkValidation()
	c.checkAnalysis()
	c.checkDeadBranches()
	c.checkCopyChains()
	c.checkUnusedMembers()
	c.checkCertification()
}

// checkValidation runs the §3.1 validator and classifies each of its
// errors into a diagnostic code by the failing subsystem: unresolved
// source/table/column names (AIG006), constraint/DTD inconsistencies
// (AIG008), and everything else (AIG007).
func (c *checker) checkValidation() {
	var provider sqlmini.SchemaProvider
	if c.aig.Sources != nil {
		provider = c.aig.Sources
	} else {
		c.report(srcpos.Pos{}, Info, CodeNoSources,
			"spec declares no sources section; queries are not resolved against declared schemas")
	}
	for _, err := range c.aig.ValidateAll(provider) {
		p := srcpos.PosOf(err)
		msg := stripPos(err.Error(), p)
		sev, code := Error, CodeRuleCheck
		switch {
		case strings.Contains(msg, "xconstraint:"):
			code = CodeConstraint
		case isUnresolvedName(msg):
			code = CodeUnresolved
		}
		c.report(p, sev, code, "%s", msg)
	}
}

// isUnresolvedName matches the error texts sqlmini.Resolve and
// aig.DeclaredSources produce for names absent from the declared
// schemas.
func isUnresolvedName(msg string) bool {
	for _, marker := range []string{
		"is not declared",
		"declares no table",
		"unknown table",
		"unknown column",
		"has no column",
		"ambiguous column",
	} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// checkAnalysis runs the §4 analyses: query satisfiability (AIG002),
// termination (AIG003), and reachability (AIG004), plus the vacuity
// check for constraints over never-produced elements (AIG008).
func (c *checker) checkAnalysis() {
	an, err := static.Analyze(c.aig)
	if err != nil {
		// An invalid DTD was already reported by checkValidation.
		return
	}
	rec := c.aig.DTD.RecursiveTypes()

	keys := append([]string(nil), an.UnsatisfiableQueries...)
	sort.Strings(keys)
	for _, key := range keys {
		elem, child, _ := strings.Cut(key, "/")
		pos, where := c.queryAt(elem, child)
		d := c.report(pos, Error, CodeUnsatisfiable, "%s can never return a row", where)
		if rec[elem] && rec[child] {
			// The paper's device for bounding recursion: an unsatisfiable
			// query cuts the cycle at depth one. Intentional, so advisory.
			d.Severity = Warning
			d.Hint = fmt.Sprintf("this cuts the recursive cycle through %s, bounding the derivation depth; drop the rule if that is not intended", elem)
		}
	}

	if !an.MustTerminate {
		pos, cyclic := c.recursionSite(an, rec)
		d := c.report(pos, Warning, CodeNonTermination,
			"evaluation may not terminate: recursive cycle through %s is not cut by any unsatisfiable query",
			strings.Join(cyclic, ", "))
		d.Hint = "recursion depth is then bounded only by the data; add a cycle-cutting predicate or unfold to a fixed depth"
	}

	typeReach := c.aig.DTD.Reachable()
	for _, elem := range c.aig.DTD.Types() {
		switch {
		case !typeReach[elem]:
			c.report(c.aig.DTD.Pos[elem], Warning, CodeUnreachable,
				"element type %s is unreachable from the root %s", elem, c.aig.DTD.Root)
		case !an.CanReach[elem]:
			c.report(c.aig.DTD.Pos[elem], Warning, CodeUnreachable,
				"element %s can never be produced: every derivation path is cut by an unsatisfiable query", elem)
		}
	}

	for _, con := range c.aig.Constraints {
		if con.ValidateAgainst(c.aig.DTD) != nil {
			continue // reported via checkValidation
		}
		for _, elem := range []string{con.Context, con.Source, con.Target} {
			if elem != "" && typeReach[elem] && !an.CanReach[elem] {
				c.report(con.Pos, Warning, CodeConstraint,
					"constraint %s is vacuous: no %s element can ever be produced", con, elem)
				break
			}
		}
	}
}

// queryAt locates the query identified by a static analysis key
// (elem, child; empty child means the condition query) and names it for
// messages.
func (c *checker) queryAt(elem, child string) (srcpos.Pos, string) {
	r := c.aig.Rules[elem]
	if r == nil {
		return srcpos.Pos{}, fmt.Sprintf("query for %s", elem)
	}
	if child == "" {
		pos := r.CondPos
		if !pos.IsValid() {
			pos = r.Pos
		}
		return pos, fmt.Sprintf("condition query of %s", elem)
	}
	ir := r.Inh[child]
	if ir == nil {
		for _, b := range r.Branches {
			if b.Inh != nil && b.Inh.Child == child {
				ir = b.Inh
			}
		}
	}
	pos := r.Pos
	if ir != nil && ir.QueryPos.IsValid() {
		pos = ir.QueryPos
	}
	return pos, fmt.Sprintf("query for %s -> %s", elem, child)
}

// recursionSite picks a stable source anchor for a non-termination
// report: the first (lexicographically) reachable recursive type, plus
// the full list for the message.
func (c *checker) recursionSite(an *static.Analysis, rec map[string]bool) (srcpos.Pos, []string) {
	var cyclic []string
	for elem := range rec {
		if an.CanReach[elem] {
			cyclic = append(cyclic, elem)
		}
	}
	sort.Strings(cyclic)
	if len(cyclic) == 0 {
		return srcpos.Pos{}, nil
	}
	return c.aig.DTD.Pos[cyclic[0]], cyclic
}

// checkDeadBranches looks for choice productions whose condition query
// output is forced to a constant by its own predicates (AIG005): the
// same branch is then taken on every instance, and the others are dead.
func (c *checker) checkDeadBranches() {
	for _, elem := range c.aig.DTD.Types() {
		r := c.aig.Rules[elem]
		p, _ := c.aig.DTD.Production(elem)
		if r == nil || r.Cond == nil || p.Kind != dtd.ProdChoice {
			continue
		}
		forced := static.ForcedOutputs(r.Cond)
		// nil means unsatisfiable: AIG002 already covers that.
		if len(forced) != 1 || forced[0] == nil {
			continue
		}
		v := *forced[0]
		pos := r.CondPos
		if !pos.IsValid() {
			pos = r.Pos
		}
		n := len(p.Children)
		if v.Kind() != relstore.KindInt || v.AsInt() < 1 || v.AsInt() > int64(n) {
			c.report(pos, Error, CodeDeadBranch,
				"condition query of %s always returns %s, which selects no branch in [1, %d]", elem, v, n)
			continue
		}
		k := int(v.AsInt())
		var dead []string
		for i, child := range p.Children {
			if i+1 != k {
				dead = append(dead, fmt.Sprintf("%d (%s)", i+1, child))
			}
		}
		d := c.report(pos, Warning, CodeDeadBranch,
			"condition query of %s always selects branch %d (%s); dead branches: %s",
			elem, k, p.Children[k-1], strings.Join(dead, ", "))
		d.Hint = "the predicates force the selector column to a constant; replace the choice with the selected alternative or fix the condition"
	}
}

// checkCopyChains reports copy rules that forward synthesized values
// (AIG009): copy elimination (§4) collapses only pure projections of
// the parent's inherited attribute, so these rules always materialize
// an edge in the query dependency graph.
func (c *checker) checkCopyChains() {
	for _, elem := range c.aig.DTD.Types() {
		r := c.aig.Rules[elem]
		if r == nil {
			continue
		}
		inhRules := make([]*aig.InhRule, 0, len(r.Inh)+len(r.Branches))
		for _, child := range sortedChildren(r.Inh) {
			inhRules = append(inhRules, r.Inh[child])
		}
		for _, b := range r.Branches {
			if b.Inh != nil {
				inhRules = append(inhRules, b.Inh)
			}
		}
		for _, ir := range inhRules {
			if ir == nil || ir.IsQuery() {
				continue
			}
			for _, cp := range ir.Copies {
				if cp.Src.Side == aig.SynSide {
					c.report(ir.Pos, Info, CodeCopyChain,
						"copy rule for %s -> %s forwards %s; copy elimination cannot collapse it",
						elem, ir.Child, cp.Src)
					break
				}
			}
		}
	}
}

func sortedChildren(m map[string]*aig.InhRule) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkCertification runs the §5 constraint-propagation analysis:
// constraints the certifier cannot prove stay on runtime verification
// (AIG012), provably violated inclusions are hard errors (AIG014), and
// declared source keys or foreign keys no proof depends on are flagged
// as advisory clutter (AIG013).
func (c *checker) checkCertification() {
	if len(c.aig.Constraints) == 0 && len(c.aig.SourceKeys) == 0 && len(c.aig.SourceFKs) == 0 {
		return
	}
	// Broken constraints were already reported (AIG008); the certifier
	// would only re-report them as Unknown noise.
	for _, con := range c.aig.Constraints {
		if con.ValidateAgainst(c.aig.DTD) != nil {
			return
		}
	}
	cert := propagate.Certify(c.aig)
	for _, r := range cert.Results {
		switch r.Verdict {
		case propagate.Violated:
			c.report(r.Constraint.Pos, Error, CodeViolated,
				"constraint %s is provably violated: %s", r.Constraint, r.Reason)
		case propagate.Unknown:
			d := c.report(r.Constraint.Pos, Warning, CodeUncertified,
				"constraint %s is not statically guaranteed: %s", r.Constraint, r.Reason)
			d.Hint = "runtime verification stays on for this constraint; declare the source keys/foreign keys its proof needs, or restructure the generating rules"
		}
	}
	unused := make(map[string]bool, len(cert.UnusedSources))
	for _, u := range cert.UnusedSources {
		unused[u] = true
	}
	for _, k := range c.aig.SourceKeys {
		if unused["key "+k.String()] {
			c.report(k.Pos, Info, CodeUnusedSource,
				"source key %s is not used by any certification proof", k)
		}
	}
	for _, fk := range c.aig.SourceFKs {
		if unused["fkey "+fk.String()] {
			c.report(fk.Pos, Info, CodeUnusedSource,
				"source foreign key %s is not used by any certification proof", fk)
		}
	}
}

// memberUse keys one attribute member for the usage scan.
type memberUse struct {
	side   aig.Side
	elem   string
	member string
}

// checkUnusedMembers warns about declared attribute members no rule
// ever reads (AIG010). A member is read by copy sources, query
// parameters, PCDATA sources, synthesized expressions, guards, and
// whole-attribute references (which read every scalar member).
func (c *checker) checkUnusedMembers() {
	used := make(map[memberUse]bool)
	use := func(src aig.SourceRef) {
		if src == (aig.SourceRef{}) {
			return
		}
		if src.Member != "" {
			used[memberUse{src.Side, src.Elem, src.Member}] = true
			return
		}
		// Whole scalar tuple: every scalar member is read.
		decl := c.aig.Inh[src.Elem]
		if src.Side == aig.SynSide {
			decl = c.aig.Syn[src.Elem]
		}
		for _, m := range decl.Members {
			if m.Kind == aig.Scalar {
				used[memberUse{src.Side, src.Elem, m.Name}] = true
			}
		}
	}
	var useExpr func(e aig.SynExpr)
	useExpr = func(e aig.SynExpr) {
		switch e := e.(type) {
		case aig.ScalarOf:
			use(e.Src)
		case aig.CollectionOf:
			use(e.Src)
		case aig.SingletonOf:
			for _, s := range e.Srcs {
				use(s)
			}
		case aig.UnionOf:
			for _, t := range e.Terms {
				useExpr(t)
			}
		case aig.CollectChildren:
			used[memberUse{aig.SynSide, e.Child, e.Member}] = true
		}
	}
	useInh := func(ir *aig.InhRule) {
		if ir == nil {
			return
		}
		for _, cp := range ir.Copies {
			use(cp.Src)
		}
		for _, s := range ir.QueryParams {
			use(s)
		}
	}
	useSyn := func(sr *aig.SynRule) {
		if sr == nil {
			return
		}
		for _, e := range sr.Exprs {
			useExpr(e)
		}
	}
	for elem, r := range c.aig.Rules {
		if r == nil {
			continue
		}
		use(r.TextSrc)
		for _, ir := range r.Inh {
			useInh(ir)
		}
		for _, s := range r.CondParams {
			use(s)
		}
		for _, b := range r.Branches {
			useInh(b.Inh)
			useSyn(b.Syn)
		}
		useSyn(r.Syn)
		for _, g := range r.Guards {
			switch g.Kind {
			case aig.GuardUnique:
				used[memberUse{aig.SynSide, elem, g.Member}] = true
			case aig.GuardSubset:
				used[memberUse{aig.SynSide, elem, g.Sub}] = true
				used[memberUse{aig.SynSide, elem, g.Super}] = true
			}
		}
	}
	// Syn of the root is the grammar's result delivered to the caller, so
	// its members count as consumed.
	for _, m := range c.aig.Syn[c.aig.DTD.Root].Members {
		used[memberUse{aig.SynSide, c.aig.DTD.Root, m.Name}] = true
	}
	report := func(side aig.Side, decls map[string]aig.AttrDecl) {
		for _, elem := range c.aig.DTD.Types() {
			for _, m := range decls[elem].Members {
				if !used[memberUse{side, elem, m.Name}] {
					c.report(m.Pos, Warning, CodeUnusedMember,
						"member %s of %s(%s) is declared but never referenced by any rule", m.Name, side, elem)
				}
			}
		}
	}
	report(aig.InhSide, c.aig.Inh)
	report(aig.SynSide, c.aig.Syn)
}
