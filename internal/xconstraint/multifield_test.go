package xconstraint

import (
	"testing"

	"github.com/aigrepro/aig/internal/xmltree"
)

// pairDoc builds <ledger> with order (cust,day) pairs and shipment pairs.
func pairDoc(orders, shipments [][2]string) *xmltree.Node {
	ledger := xmltree.NewElement("ledger")
	for _, o := range orders {
		n := ledger.AppendElement("order")
		n.AppendElement("cust").AppendText(o[0])
		n.AppendElement("day").AppendText(o[1])
	}
	for _, s := range shipments {
		n := ledger.AppendElement("shipment")
		n.AppendElement("cust").AppendText(s[0])
		n.AppendElement("day").AppendText(s[1])
	}
	return ledger
}

func TestCompositeKeyCheck(t *testing.T) {
	key := MustParse("ledger(order.(cust,day) -> order)")
	ok := pairDoc([][2]string{{"a", "mon"}, {"a", "tue"}, {"b", "mon"}}, nil)
	if v := key.Check(ok); len(v) != 0 {
		t.Errorf("distinct pairs flagged: %v", v)
	}
	dup := pairDoc([][2]string{{"a", "mon"}, {"a", "mon"}}, nil)
	if v := key.Check(dup); len(v) != 1 {
		t.Errorf("duplicate pair not flagged: %v", v)
	}
	// Component collision without pair collision is legal — the classic
	// composite-key distinction.
	cross := pairDoc([][2]string{{"a", "mon"}, {"a", "tue"}, {"b", "mon"}}, nil)
	if v := key.Check(cross); len(v) != 0 {
		t.Errorf("component collision flagged: %v", v)
	}
}

func TestCompositeInclusionCheck(t *testing.T) {
	ic := MustParse("ledger(shipment.(cust,day) [= order.(cust,day))")
	ok := pairDoc([][2]string{{"a", "mon"}, {"b", "tue"}}, [][2]string{{"a", "mon"}})
	if v := ic.Check(ok); len(v) != 0 {
		t.Errorf("matching pair flagged: %v", v)
	}
	// (a,tue) is not an order pair, though 'a' and 'tue' both occur.
	bad := pairDoc([][2]string{{"a", "mon"}, {"b", "tue"}}, [][2]string{{"a", "tue"}})
	if v := ic.Check(bad); len(v) != 1 {
		t.Errorf("cross pairing not flagged: %v", v)
	}
}

func TestCompositeMissingFieldSkipped(t *testing.T) {
	key := MustParse("ledger(order.(cust,day) -> order)")
	doc := pairDoc([][2]string{{"a", "mon"}}, nil)
	// An order missing its day subelement contributes no key tuple.
	broken := doc.AppendElement("order")
	broken.AppendElement("cust").AppendText("a")
	if v := key.Check(doc); len(v) != 0 {
		t.Errorf("partial tuple flagged: %v", v)
	}
}

func TestCompositeParseForms(t *testing.T) {
	c := MustParse("ledger(order.(cust, day) -> order)")
	if len(c.TargetFields) != 2 || c.TargetFields[1] != "day" {
		t.Errorf("parsed fields = %v", c.TargetFields)
	}
	bad := []string{
		"ledger(order.() -> order)",
		"ledger(order.(a,b -> order)",
		"ledger(order.(a,,b) -> order)",
		"ledger(order.(a.b) -> order)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
	if MustKey("c", "a", "x", "y").String() != "c(a.(x,y) -> a)" {
		t.Error("MustKey rendering wrong")
	}
}
