// Package xconstraint implements the XML integrity constraints of §2:
// keys C(A.l -> A) and inclusion constraints C(B.lB ⊆ A.lA), defined
// relative to a context element type C. It provides a text parser,
// validation against a DTD, and a direct checker over XML trees that the
// test suite uses to independently verify documents produced by AIG
// evaluation (whose own enforcement goes through compiled guards).
//
// As an extension beyond the paper's simplification to single
// subelements, constraints may use composite fields in the style of XML
// Schema identity constraints: C(A.(l1,l2) -> A) keys A elements by the
// pair of subelement values, and inclusions compare field tuples
// positionally.
package xconstraint

import (
	"fmt"
	"strings"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/srcpos"
	"github.com/aigrepro/aig/internal/xmltree"
)

// Kind discriminates constraint forms.
type Kind uint8

// The constraint forms.
const (
	Key Kind = iota
	Inclusion
)

// Constraint is a single XML key or inclusion constraint.
//
// For a key C(A.(l...) -> A): Context=C, Target=A, TargetFields=l..., and
// the Source fields are unused. For an inclusion C(B.(lB...) ⊆
// A.(lA...)): Context=C, Source=B, SourceFields=lB..., Target=A,
// TargetFields=lA... (positionally matched, equal arity).
type Constraint struct {
	Kind         Kind
	Context      string
	Source       string
	SourceFields []string
	Target       string
	TargetFields []string
	// Pos is where the constraint was written when it came from ParseAll
	// with line tracking (e.g. the constraints section of an aigspec
	// file); the zero Pos otherwise. It does not participate in String.
	Pos srcpos.Pos
}

// MustKey builds a key constraint.
func MustKey(context, target string, fields ...string) Constraint {
	return Constraint{Kind: Key, Context: context, Target: target, TargetFields: fields}
}

// renderFields renders "Type.f" or "Type.(f1,f2)".
func renderFields(typ string, fields []string) string {
	if len(fields) == 1 {
		return typ + "." + fields[0]
	}
	return typ + ".(" + strings.Join(fields, ",") + ")"
}

// String renders the constraint in the paper's notation (ASCII arrows).
func (c Constraint) String() string {
	switch c.Kind {
	case Key:
		return fmt.Sprintf("%s(%s -> %s)", c.Context, renderFields(c.Target, c.TargetFields), c.Target)
	case Inclusion:
		return fmt.Sprintf("%s(%s [= %s)", c.Context,
			renderFields(c.Source, c.SourceFields), renderFields(c.Target, c.TargetFields))
	default:
		return "<bad constraint>"
	}
}

// Parse parses one constraint. Accepted syntaxes:
//
//	key:       C(A.l -> A)            C(A.(l1,l2) -> A)
//	inclusion: C(B.lb [= A.la)        C(B.(x,y) [= A.(u,v))
//
// "⊆" and the keyword "subset" are accepted in place of "[=".
func Parse(input string) (Constraint, error) {
	s := strings.TrimSpace(input)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Constraint{}, fmt.Errorf("xconstraint: expected C(...), got %q", input)
	}
	ctx := strings.TrimSpace(s[:open])
	if ctx == "" {
		return Constraint{}, fmt.Errorf("xconstraint: missing context type in %q", input)
	}
	if !cleanName(ctx) {
		return Constraint{}, fmt.Errorf("xconstraint: bad context type %q in %q", ctx, input)
	}
	body := strings.TrimSpace(s[open+1 : len(s)-1])

	var sep string
	var kind Kind
	switch {
	case strings.Contains(body, "->"):
		sep, kind = "->", Key
	case strings.Contains(body, "⊆"):
		sep, kind = "⊆", Inclusion
	case strings.Contains(body, "[="):
		sep, kind = "[=", Inclusion
	case strings.Contains(body, " subset "):
		sep, kind = " subset ", Inclusion
	default:
		return Constraint{}, fmt.Errorf("xconstraint: no '->', '[=' or 'subset' in %q", input)
	}
	left, right, _ := strings.Cut(body, sep)
	left, right = strings.TrimSpace(left), strings.TrimSpace(right)

	lType, lFields, ok := cutFields(left)
	if !ok {
		return Constraint{}, fmt.Errorf("xconstraint: left side %q must be Type.field or Type.(f1,f2)", left)
	}
	if kind == Key {
		if right != lType {
			return Constraint{}, fmt.Errorf("xconstraint: key %q must have form C(A.l -> A)", input)
		}
		return Constraint{Kind: Key, Context: ctx, Target: lType, TargetFields: lFields}, nil
	}
	rType, rFields, ok := cutFields(right)
	if !ok {
		return Constraint{}, fmt.Errorf("xconstraint: right side %q must be Type.field or Type.(f1,f2)", right)
	}
	if len(lFields) != len(rFields) {
		return Constraint{}, fmt.Errorf("xconstraint: inclusion arity mismatch in %q: %d vs %d fields", input, len(lFields), len(rFields))
	}
	return Constraint{Kind: Inclusion, Context: ctx,
		Source: lType, SourceFields: lFields, Target: rType, TargetFields: rFields}, nil
}

// cleanName reports whether s can serve as a type or field name:
// non-empty, no structural punctuation or whitespace, and none of the
// separator tokens — a name containing "->", "⊆" or "[=" would make the
// String rendering re-parse differently than it was written.
func cleanName(s string) bool {
	if s == "" || strings.ContainsAny(s, ".,()") || strings.ContainsAny(s, " \t\r\n") {
		return false
	}
	return !strings.Contains(s, "->") && !strings.Contains(s, "⊆") && !strings.Contains(s, "[=")
}

// cutFields parses "Type.field" or "Type.(f1, f2, ...)".
func cutFields(s string) (typ string, fields []string, ok bool) {
	typ, rest, found := strings.Cut(s, ".")
	typ, rest = strings.TrimSpace(typ), strings.TrimSpace(rest)
	if !found || !cleanName(typ) || rest == "" {
		return "", nil, false
	}
	if strings.HasPrefix(rest, "(") {
		if !strings.HasSuffix(rest, ")") {
			return "", nil, false
		}
		for _, f := range strings.Split(rest[1:len(rest)-1], ",") {
			f = strings.TrimSpace(f)
			if !cleanName(f) {
				return "", nil, false
			}
			fields = append(fields, f)
		}
		if len(fields) == 0 {
			return "", nil, false
		}
		return typ, fields, true
	}
	if !cleanName(rest) {
		return "", nil, false
	}
	return typ, []string{rest}, true
}

// MustParse is Parse panicking on error.
func MustParse(input string) Constraint {
	c, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseAll parses one constraint per non-empty, non-comment ("--"/"#")
// line. Each constraint's Pos records its 1-based line within input and
// the column of its first non-space byte; parse errors carry the same
// position as a *srcpos.Error.
func ParseAll(input string) ([]Constraint, error) {
	var out []Constraint
	for i, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		pos := srcpos.At(i+1, len(raw)-len(strings.TrimLeft(raw, " \t"))+1)
		c, err := Parse(line)
		if err != nil {
			return nil, srcpos.Errorf(pos, "%v", err)
		}
		c.Pos = pos
		out = append(out, c)
	}
	return out, nil
}

// ValidateAgainst checks the well-formedness conditions of §2 relative to
// a DTD: every named type is declared, and each referenced field is a
// string-subelement type of its parent occurring exactly once in the
// parent's production (P(l) = S and l unique in P(A)).
func (c Constraint) ValidateAgainst(d *dtd.DTD) error {
	checkFields := func(parent string, fields []string) error {
		pp, ok := d.Production(parent)
		if !ok {
			return fmt.Errorf("xconstraint: %s: type %q is not declared", c, parent)
		}
		if len(fields) == 0 {
			return fmt.Errorf("xconstraint: %s: no fields for type %q", c, parent)
		}
		seen := make(map[string]bool, len(fields))
		for _, field := range fields {
			if seen[field] {
				return fmt.Errorf("xconstraint: %s: field %q listed twice", c, field)
			}
			seen[field] = true
			fp, ok := d.Production(field)
			if !ok {
				return fmt.Errorf("xconstraint: %s: field type %q is not declared", c, field)
			}
			if fp.Kind != dtd.ProdText {
				return fmt.Errorf("xconstraint: %s: field %q is not a string (PCDATA) type", c, field)
			}
			count := 0
			for _, child := range pp.Children {
				if child == field {
					count++
				}
			}
			if count == 0 {
				return fmt.Errorf("xconstraint: %s: %q is not a subelement of %q", c, field, parent)
			}
			if count > 1 {
				return fmt.Errorf("xconstraint: %s: field %q occurs %d times in %q", c, field, count, parent)
			}
		}
		return nil
	}
	if _, ok := d.Production(c.Context); !ok {
		return fmt.Errorf("xconstraint: %s: context type %q is not declared", c, c.Context)
	}
	if err := checkFields(c.Target, c.TargetFields); err != nil {
		return err
	}
	if c.Kind == Inclusion {
		if len(c.SourceFields) != len(c.TargetFields) {
			return fmt.Errorf("xconstraint: %s: arity mismatch", c)
		}
		return checkFields(c.Source, c.SourceFields)
	}
	return nil
}

// Violation describes one failed constraint instance.
type Violation struct {
	Constraint Constraint
	// ContextPath locates the C element whose subtree violates the
	// constraint.
	ContextPath string
	// Value is the offending field value tuple (the duplicated key value,
	// or the source value with no matching target).
	Value string
}

// Error renders the violation.
func (v Violation) Error() string {
	switch v.Constraint.Kind {
	case Key:
		return fmt.Sprintf("key %s violated under %s: value %q occurs more than once",
			v.Constraint, v.ContextPath, v.Value)
	default:
		return fmt.Sprintf("inclusion %s violated under %s: value %q has no match",
			v.Constraint, v.ContextPath, v.Value)
	}
}

// fieldTuple returns the concatenated string values of n's field
// subelements, with a separator that cannot collide across components,
// and whether every field subelement is present.
func fieldTuple(n *xmltree.Node, fields []string) (string, bool) {
	parts := make([]string, len(fields))
	for i, f := range fields {
		child := n.Child(f)
		if child == nil {
			return "", false
		}
		parts[i] = child.StringValue()
	}
	return strings.Join(parts, "\x1f"), true
}

// Check verifies the constraint on the document and returns every
// violation (nil when the document satisfies it). Per §2, the constraint
// applies within every subtree rooted at a C element, including nested
// ones.
func (c Constraint) Check(doc *xmltree.Node) []Violation {
	var violations []Violation
	contexts := doc.Descendants(c.Context)
	if doc.IsElement() && doc.Label == c.Context {
		contexts = append([]*xmltree.Node{doc}, contexts...)
	}
	for _, ctx := range contexts {
		switch c.Kind {
		case Key:
			seen := make(map[string]bool)
			for _, a := range ctx.Descendants(c.Target) {
				v, ok := fieldTuple(a, c.TargetFields)
				if !ok {
					continue
				}
				if seen[v] {
					violations = append(violations, Violation{Constraint: c, ContextPath: ctx.Path(), Value: v})
					continue
				}
				seen[v] = true
			}
		case Inclusion:
			have := make(map[string]bool)
			for _, a := range ctx.Descendants(c.Target) {
				if v, ok := fieldTuple(a, c.TargetFields); ok {
					have[v] = true
				}
			}
			for _, b := range ctx.Descendants(c.Source) {
				v, ok := fieldTuple(b, c.SourceFields)
				if !ok {
					continue
				}
				if !have[v] {
					violations = append(violations, Violation{Constraint: c, ContextPath: ctx.Path(), Value: v})
				}
			}
		}
	}
	return violations
}

// CheckAll checks every constraint and returns the concatenated
// violations.
func CheckAll(cs []Constraint, doc *xmltree.Node) []Violation {
	var out []Violation
	for _, c := range cs {
		out = append(out, c.Check(doc)...)
	}
	return out
}
