package xconstraint

import (
	"strings"
	"testing"
)

// FuzzConstraintParse throws arbitrary text at the constraint parser.
// Invariants: Parse never panics; a successfully parsed constraint is
// structurally sane (kind set, context and fields non-empty, inclusion
// arity matched) and round-trips through its String rendering to an
// equal constraint.
func FuzzConstraintParse(f *testing.F) {
	f.Add("patient(item.trId -> item)")
	f.Add("patient(treatment.trId [= item.trId)")
	f.Add("report(patient.(SSN,pname) -> patient)")
	f.Add("c(a.(x, y) ⊆ b.(u, v))")
	f.Add("c(a.x subset b.y)")
	f.Add("c(a.x->a)")
	f.Add("(.->)")
	f.Add("c(a. -> a)")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(input)
		if err != nil {
			return
		}
		switch c.Kind {
		case Key:
			if c.Context == "" || c.Target == "" || len(c.TargetFields) == 0 {
				t.Fatalf("parsed key with empty parts: %+v\ninput: %q", c, input)
			}
		case Inclusion:
			if c.Context == "" || c.Source == "" || c.Target == "" {
				t.Fatalf("parsed inclusion with empty parts: %+v\ninput: %q", c, input)
			}
			if len(c.SourceFields) != len(c.TargetFields) || len(c.SourceFields) == 0 {
				t.Fatalf("parsed inclusion with mismatched fields: %+v\ninput: %q", c, input)
			}
		default:
			t.Fatalf("parsed constraint with kind %v\ninput: %q", c.Kind, input)
		}
		for _, field := range append(append([]string{}, c.SourceFields...), c.TargetFields...) {
			if strings.TrimSpace(field) == "" {
				t.Fatalf("parsed constraint with blank field: %+v\ninput: %q", c, input)
			}
		}
		// Round-trip: the canonical rendering must parse back to the same
		// constraint (String normalizes whitespace and separator spelling).
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("rendering does not re-parse: %v\nconstraint: %+v\ninput: %q", err, c, input)
		}
		if back.String() != c.String() {
			t.Fatalf("round-trip changed the constraint:\n  first:  %s\n  second: %s\ninput: %q", c, back, input)
		}
	})
}

// FuzzConstraintParseAll exercises the multi-line entry point: it must
// never panic, and on success every constraint carries a valid position
// inside the input.
func FuzzConstraintParseAll(f *testing.F) {
	f.Add("patient(item.trId -> item)\npatient(treatment.trId [= item.trId)")
	f.Add("-- comment\n# comment\n\nc(a.x -> a)")
	f.Add("c(a.x -> a)\nnot a constraint")
	f.Fuzz(func(t *testing.T, input string) {
		cs, err := ParseAll(input)
		if err != nil {
			return
		}
		lines := strings.Count(input, "\n") + 1
		for _, c := range cs {
			if !c.Pos.IsValid() || c.Pos.Line > lines {
				t.Fatalf("constraint %s has position %v outside %d-line input %q", c, c.Pos, lines, input)
			}
		}
	})
}
