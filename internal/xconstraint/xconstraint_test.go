package xconstraint

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/xmltree"
)

func TestParse(t *testing.T) {
	key, err := Parse("patient(item.trId -> item)")
	if err != nil {
		t.Fatal(err)
	}
	if key.Kind != Key || key.Context != "patient" || key.Target != "item" || len(key.TargetFields) != 1 || key.TargetFields[0] != "trId" {
		t.Errorf("key parsed as %+v", key)
	}

	for _, in := range []string{
		"patient(treatment.trId [= item.trId)",
		"patient(treatment.trId ⊆ item.trId)",
		"patient(treatment.trId subset item.trId)",
	} {
		ic, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if ic.Kind != Inclusion || ic.Source != "treatment" || ic.SourceFields[0] != "trId" ||
			ic.Target != "item" || ic.TargetFields[0] != "trId" || ic.Context != "patient" {
			t.Errorf("inclusion parsed as %+v", ic)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"patient",
		"patient()",
		"(a.b -> a)",
		"patient(item -> item)",
		"patient(item.trId -> other)", // key target mismatch
		"patient(item.trId = item)",
		"patient(a.b.c -> a)",
		"patient(a.b [= c)",
		"patient(a [= c.d)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseAll(t *testing.T) {
	cs, err := ParseAll(`
		-- the paper's two constraints
		patient(item.trId -> item)
		# a comment
		patient(treatment.trId [= item.trId)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Kind != Key || cs[1].Kind != Inclusion {
		t.Errorf("ParseAll = %+v", cs)
	}
	if _, err := ParseAll("junk line"); err == nil {
		t.Error("junk accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"patient(item.trId -> item)",
		"patient(treatment.trId [= item.trId)",
	} {
		c := MustParse(in)
		again, err := Parse(c.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", c.String(), err)
		}
		if again.String() != c.String() {
			t.Errorf("round trip changed %v to %v", c, again)
		}
	}
}

const hospitalDTDText = `
<!ELEMENT report (patient*)>
<!ELEMENT patient (SSN, pname, treatments, bill)>
<!ELEMENT treatments (treatment*)>
<!ELEMENT treatment (trId, tname, procedure)>
<!ELEMENT procedure (treatment*)>
<!ELEMENT bill (item*)>
<!ELEMENT item (trId, price)>
<!ELEMENT SSN (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT trId (#PCDATA)>
<!ELEMENT tname (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

func TestValidateAgainst(t *testing.T) {
	d := dtd.MustParse(hospitalDTDText)
	good := []string{
		"patient(item.trId -> item)",
		"patient(treatment.trId [= item.trId)",
		"report(item.trId [= treatment.trId)",
	}
	for _, in := range good {
		if err := MustParse(in).ValidateAgainst(d); err != nil {
			t.Errorf("ValidateAgainst(%q): %v", in, err)
		}
	}
	bad := []string{
		"nosuch(item.trId -> item)",         // unknown context
		"patient(nosuch.trId -> nosuch)",    // unknown target
		"patient(item.nosuch -> item)",      // unknown field
		"patient(item.price -> item)",       // price is int-like but still PCDATA: actually valid
		"patient(bill.item -> bill)",        // item is not PCDATA
		"patient(item.SSN -> item)",         // SSN not a subelement of item
		"patient(nosuch.trId [= item.trId)", // unknown source
	}
	for i, in := range bad {
		if i == 3 {
			// price IS a valid PCDATA subelement of item; confirm.
			if err := MustParse(in).ValidateAgainst(d); err != nil {
				t.Errorf("ValidateAgainst(%q) should pass: %v", in, err)
			}
			continue
		}
		if err := MustParse(in).ValidateAgainst(d); err == nil {
			t.Errorf("ValidateAgainst(%q) succeeded, want error", in)
		}
	}
	// Key field occurring twice in the parent sequence is rejected.
	d2 := dtd.MustParse(`<!ELEMENT r (a*)> <!ELEMENT a (k, k)> <!ELEMENT k (#PCDATA)>`)
	if err := MustParse("r(a.k -> a)").ValidateAgainst(d2); err == nil {
		t.Error("double key field accepted")
	}
}

// buildReport constructs a report with the given treatment/item trIds per
// patient.
func buildReport(patients ...[2][]string) *xmltree.Node {
	report := xmltree.NewElement("report")
	for i, p := range patients {
		patient := report.AppendElement("patient")
		patient.AppendElement("SSN").AppendText(fmt.Sprintf("s%d", i))
		patient.AppendElement("pname").AppendText("p")
		treatments := patient.AppendElement("treatments")
		for _, id := range p[0] {
			tr := treatments.AppendElement("treatment")
			tr.AppendElement("trId").AppendText(id)
			tr.AppendElement("tname").AppendText("n")
			tr.AppendElement("procedure")
		}
		bill := patient.AppendElement("bill")
		for _, id := range p[1] {
			item := bill.AppendElement("item")
			item.AppendElement("trId").AppendText(id)
			item.AppendElement("price").AppendText("1")
		}
	}
	return report
}

func TestKeyCheck(t *testing.T) {
	key := MustParse("patient(item.trId -> item)")

	ok := buildReport([2][]string{{"t1"}, {"t1", "t2"}})
	if v := key.Check(ok); len(v) != 0 {
		t.Errorf("satisfied key reported violations: %v", v)
	}

	dup := buildReport([2][]string{{"t1"}, {"t1", "t1"}})
	v := key.Check(dup)
	if len(v) != 1 || v[0].Value != "t1" {
		t.Errorf("duplicate key: %v", v)
	}
	if !strings.Contains(v[0].Error(), "more than once") {
		t.Errorf("violation message: %v", v[0].Error())
	}

	// Duplicates across different patients are fine (key is relative to
	// patient).
	across := buildReport([2][]string{{"t1"}, {"t1"}}, [2][]string{{"t1"}, {"t1"}})
	if v := key.Check(across); len(v) != 0 {
		t.Errorf("cross-context duplicates flagged: %v", v)
	}
}

func TestInclusionCheck(t *testing.T) {
	ic := MustParse("patient(treatment.trId [= item.trId)")

	ok := buildReport([2][]string{{"t1", "t2"}, {"t1", "t2", "t3"}})
	if v := ic.Check(ok); len(v) != 0 {
		t.Errorf("satisfied IC reported violations: %v", v)
	}

	missing := buildReport([2][]string{{"t1", "t9"}, {"t1"}})
	v := ic.Check(missing)
	if len(v) != 1 || v[0].Value != "t9" {
		t.Errorf("missing inclusion: %v", v)
	}
	if !strings.Contains(v[0].Error(), "no match") {
		t.Errorf("violation message: %v", v[0].Error())
	}

	// Inclusion must hold per patient: an item in another patient does not
	// satisfy it.
	cross := buildReport([2][]string{{"t1"}, {}}, [2][]string{{}, {"t1"}})
	if v := ic.Check(cross); len(v) != 1 {
		t.Errorf("cross-context inclusion: %v", v)
	}
}

func TestNestedContexts(t *testing.T) {
	// Key relative to `procedure` contexts must apply to nested procedure
	// subtrees independently.
	d := buildReport([2][]string{{"t1"}, {"t1"}})
	// Add a nested treatment under the first treatment's procedure with a
	// duplicate id inside the same patient.
	proc := d.Descendants("procedure")[0]
	tr := proc.AppendElement("treatment")
	tr.AppendElement("trId").AppendText("t1")
	tr.AppendElement("tname").AppendText("n")
	tr.AppendElement("procedure")

	keyAtPatient := MustParse("patient(treatment.trId -> treatment)")
	if v := keyAtPatient.Check(d); len(v) != 1 {
		t.Errorf("nested duplicate under patient: %v", v)
	}
	keyAtProc := MustParse("procedure(treatment.trId -> treatment)")
	if v := keyAtProc.Check(d); len(v) != 0 {
		t.Errorf("procedure-relative key should hold: %v", v)
	}
}

func TestCheckRootIsContext(t *testing.T) {
	// When the document root itself is the context type it must be
	// included.
	key := MustParse("report(item.trId -> item)")
	dup := buildReport([2][]string{{}, {"t1"}}, [2][]string{{}, {"t1"}})
	if v := key.Check(dup); len(v) != 1 {
		t.Errorf("root-context key: %v", v)
	}
}

func TestCheckAll(t *testing.T) {
	cs := []Constraint{
		MustParse("patient(item.trId -> item)"),
		MustParse("patient(treatment.trId [= item.trId)"),
	}
	bad := buildReport([2][]string{{"t9"}, {"t1", "t1"}})
	v := CheckAll(cs, bad)
	if len(v) != 2 {
		t.Errorf("CheckAll found %d violations, want 2: %v", len(v), v)
	}
}

// TestCheckAgainstBruteForce cross-checks the checker against an
// independently written quadratic reference on random documents.
func TestCheckAgainstBruteForce(t *testing.T) {
	key := MustParse("patient(item.trId -> item)")
	ic := MustParse("patient(treatment.trId [= item.trId)")
	r := rand.New(rand.NewSource(42))
	ids := []string{"a", "b", "c"}
	randIDs := func() []string {
		n := r.Intn(4)
		out := make([]string, n)
		for i := range out {
			out[i] = ids[r.Intn(len(ids))]
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		var patients [][2][]string
		for p := 0; p < r.Intn(3)+1; p++ {
			patients = append(patients, [2][]string{randIDs(), randIDs()})
		}
		doc := buildReport(patients...)

		// Reference key check: quadratic scan.
		wantKeyBad := false
		for _, p := range patients {
			for i := range p[1] {
				for j := i + 1; j < len(p[1]); j++ {
					if p[1][i] == p[1][j] {
						wantKeyBad = true
					}
				}
			}
		}
		if got := len(key.Check(doc)) > 0; got != wantKeyBad {
			t.Fatalf("trial %d: key checker = %v, brute force = %v\n%s", trial, got, wantKeyBad, doc)
		}

		// Reference inclusion check.
		wantICBad := false
		for _, p := range patients {
			for _, tr := range p[0] {
				found := false
				for _, it := range p[1] {
					if it == tr {
						found = true
					}
				}
				if !found {
					wantICBad = true
				}
			}
		}
		if got := len(ic.Check(doc)) > 0; got != wantICBad {
			t.Fatalf("trial %d: IC checker = %v, brute force = %v\n%s", trial, got, wantICBad, doc)
		}
	}
}
