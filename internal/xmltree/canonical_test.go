package xmltree

import (
	"strings"
	"testing"
)

func TestCanonicalBasic(t *testing.T) {
	doc := NewElement("db")
	p := doc.AppendElement("patient")
	p.AppendElement("ssn").AppendText("123")
	p.AppendElement("name").AppendText("Joe")
	doc.AppendElement("empty")

	want := "<db><patient><ssn>123</ssn><name>Joe</name></patient><empty></empty></db>"
	if got := doc.Canonical(); got != want {
		t.Fatalf("Canonical = %q, want %q", got, want)
	}
}

func TestCanonicalEscapes(t *testing.T) {
	doc := NewElement("a")
	doc.AppendText(`x<y&z>"w"`)
	got := doc.Canonical()
	if strings.ContainsAny(strings.TrimPrefix(strings.TrimSuffix(got, "</a>"), "<a>"), "<>") {
		t.Fatalf("unescaped markup characters in %q", got)
	}
	// Round-trip: parsing the canonical form recovers the value.
	back, err := ParseString(got)
	if err != nil {
		t.Fatalf("parse canonical: %v", err)
	}
	if back.StringValue() != `x<y&z>"w"` {
		t.Fatalf("round-trip = %q", back.StringValue())
	}
}

func TestCanonicalNormalizesTextNodes(t *testing.T) {
	// "ab" as one text node vs split across two, plus an empty fragment.
	one := NewElement("t")
	one.AppendText("ab")

	split := NewElement("t")
	split.AppendText("a")
	split.AppendText("")
	split.AppendText("b")

	if one.Canonical() != split.Canonical() {
		t.Fatalf("split text canonicalizes differently: %q vs %q", one.Canonical(), split.Canonical())
	}
}

func TestCanonicalDistinguishesStructure(t *testing.T) {
	a := NewElement("r")
	a.AppendElement("x").AppendText("1")
	a.AppendElement("y").AppendText("2")

	b := NewElement("r")
	b.AppendElement("y").AppendText("2")
	b.AppendElement("x").AppendText("1")

	if a.Canonical() == b.Canonical() {
		t.Fatal("sibling order must be significant")
	}
}

func TestCanonicalAgreesWithEqual(t *testing.T) {
	doc, err := ParseString("<r><a>1</a><b><c>2</c></b><d/></r>")
	if err != nil {
		t.Fatal(err)
	}
	clone := doc.Clone()
	if !doc.Equal(clone) {
		t.Fatal("clone not Equal")
	}
	if doc.Canonical() != clone.Canonical() {
		t.Fatal("Equal trees with different canonical forms")
	}
	// And canonical output re-parses to an Equal tree.
	back, err := ParseString(doc.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Equal(back) {
		t.Fatalf("canonical round-trip changed the tree:\n%s\nvs\n%s", doc, back)
	}
}
