package xmltree

import (
	"io"
	"strings"
)

// WriteCanonical serializes the subtree to w in canonical form: no
// indentation or inter-element whitespace, empty elements rendered as
// <a></a> (never <a/>), adjacent text nodes merged, empty text nodes
// dropped, and all character data escaped. Two trees are Equal up to
// text-node splitting if and only if their canonical serializations are
// byte-identical, which makes the form suitable for differential
// comparison and golden files. The data model carries no attributes
// (Parse drops them), so attribute ordering never arises; canonical
// output is therefore fully determined by structure and PCDATA.
func (n *Node) WriteCanonical(w io.Writer) error {
	sw := &stickyWriter{w: w}
	n.writeCanonical(sw)
	return sw.err
}

// stickyWriter remembers the first write error so the recursion can stay
// unconditional.
type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func (n *Node) writeCanonical(w *stickyWriter) {
	if n.IsText() {
		if n.Text != "" {
			w.WriteString(escapeText(n.Text))
		}
		return
	}
	w.WriteString("<" + n.Label + ">")
	// Merge adjacent text children so <a>x</a> built from one "x" node and
	// from "x" split across two nodes canonicalize identically. Escaping
	// each fragment separately is safe: escapeText is per-character.
	for _, c := range n.Children {
		c.writeCanonical(w)
	}
	w.WriteString("</" + n.Label + ">")
}

// Canonical returns the canonical serialization of the subtree as a
// string. See WriteCanonical.
func (n *Node) Canonical() string {
	var b strings.Builder
	_ = n.WriteCanonical(&b) // strings.Builder never fails
	return b.String()
}
