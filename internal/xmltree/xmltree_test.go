package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample() *Node {
	root := NewElement("report")
	p := root.AppendElement("patient")
	p.AppendElement("SSN").AppendText("s1")
	p.AppendElement("pname").AppendText("alice")
	return root
}

func TestBuilderAndAccessors(t *testing.T) {
	root := buildSample()
	if !root.IsElement() || root.Label != "report" {
		t.Fatalf("root wrong: %+v", root)
	}
	p := root.Child("patient")
	if p == nil || p.Parent != root {
		t.Fatal("Child/Parent broken")
	}
	if p.Child("nope") != nil {
		t.Error("Child on missing label should be nil")
	}
	ssn := p.Child("SSN")
	if ssn.StringValue() != "s1" {
		t.Errorf("StringValue = %q", ssn.StringValue())
	}
	if root.StringValue() != "s1alice" {
		t.Errorf("root StringValue = %q", root.StringValue())
	}
	if got := len(p.Elements()); got != 2 {
		t.Errorf("Elements() = %d, want 2", got)
	}
	if got := root.CountNodes(); got != 6 {
		t.Errorf("CountNodes = %d, want 6", got)
	}
	if got := root.Depth(); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	text := ssn.Children[0]
	if !text.IsText() || text.Path() != "/report/patient/SSN/#text" {
		t.Errorf("Path = %q", text.Path())
	}
}

func TestDescendants(t *testing.T) {
	root := NewElement("a")
	root.AppendElement("x").AppendText("1")
	b := root.AppendElement("b")
	b.AppendElement("x").AppendText("2")
	b.AppendElement("x").AppendText("3")
	got := root.Descendants("x")
	if len(got) != 3 {
		t.Fatalf("Descendants = %d, want 3", len(got))
	}
	if got[0].StringValue() != "1" || got[2].StringValue() != "3" {
		t.Error("Descendants not in document order")
	}
	// Descendants excludes the node itself.
	if len(b.Descendants("b")) != 0 {
		t.Error("Descendants included self")
	}
}

func TestWalkPrune(t *testing.T) {
	root := buildSample()
	var visited []string
	root.Walk(func(n *Node) bool {
		if n.IsElement() {
			visited = append(visited, n.Label)
		}
		return n.Label != "patient" // prune below patient
	})
	if strings.Join(visited, ",") != "report,patient" {
		t.Errorf("visited = %v", visited)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := buildSample()
	b := buildSample()
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("Clone not Equal to original")
	}
	c.Child("patient").AppendElement("extra")
	if a.Equal(c) {
		t.Error("mutated clone still Equal")
	}
	b.Child("patient").Child("SSN").Children[0].Text = "other"
	if a.Equal(b) {
		t.Error("different text still Equal")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	a := buildSample()
	s := a.String()
	b, err := ParseString(s)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	if !a.Equal(b) {
		t.Errorf("round trip changed tree:\n%s\n%s", a, b)
	}
}

func TestSerializeEscaping(t *testing.T) {
	root := NewElement("a")
	root.AppendText("x < y & z > w")
	s := root.String()
	if strings.Contains(s, "x < y") {
		t.Errorf("unescaped output: %q", s)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.StringValue() != "x < y & z > w" {
		t.Errorf("escaped round trip = %q", back.StringValue())
	}
}

func TestSerializeEmptyElement(t *testing.T) {
	root := NewElement("a")
	root.AppendElement("b")
	s := root.String()
	if !strings.Contains(s, "<b/>") {
		t.Errorf("empty element serialized as %q", s)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equal(back) {
		t.Error("empty element round trip failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"text only",
		"<a>",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestParseDropsIndentation(t *testing.T) {
	doc, err := ParseString("<a>\n  <b>hi</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 1 {
		t.Errorf("indentation text kept: %d children", len(doc.Children))
	}
}

func TestSortChildren(t *testing.T) {
	root := NewElement("r")
	root.AppendElement("b").AppendText("2")
	root.AppendElement("a").AppendText("9")
	root.AppendElement("a").AppendText("1")
	root.SortChildren()
	labels := make([]string, 0, 3)
	for _, c := range root.Children {
		labels = append(labels, c.Label+c.StringValue())
	}
	if strings.Join(labels, ",") != "a1,a9,b2" {
		t.Errorf("sorted = %v", labels)
	}
}

// randomTree builds an arbitrary small tree for the round-trip property.
func randomTree(r *rand.Rand, depth int) *Node {
	n := NewElement(string(rune('a' + r.Intn(5))))
	kids := r.Intn(3)
	for i := 0; i < kids; i++ {
		if depth <= 0 || r.Intn(2) == 0 {
			// Random printable text without leading/trailing space (the
			// parser trims inter-element whitespace).
			words := []string{"x", "hello", "a&b", "<tag>", "q'q"}
			n.AppendText(words[r.Intn(len(words))])
		} else {
			n.AppendChild(randomTree(r, depth-1))
		}
	}
	return n
}

type quickTree struct{ N *Node }

func (quickTree) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTree{N: randomTree(r, 3)})
}

// Property: serialize-then-parse is identity up to merging of adjacent
// text nodes; we avoid adjacent text in the generator by checking Equal
// only when no node has consecutive text children.
func TestSerializeParseProperty(t *testing.T) {
	hasAdjacentText := func(n *Node) bool {
		bad := false
		n.Walk(func(d *Node) bool {
			for i := 1; i < len(d.Children); i++ {
				if d.Children[i].IsText() && d.Children[i-1].IsText() {
					bad = true
				}
			}
			return !bad
		})
		return bad
	}
	f := func(qt quickTree) bool {
		if hasAdjacentText(qt.N) {
			return true
		}
		back, err := ParseString(qt.N.String())
		if err != nil {
			return false
		}
		return qt.N.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
