package static

import (
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func TestAnalyzeSigma0(t *testing.T) {
	a := hospital.Sigma0(false)
	an, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	// σ0 is recursive with satisfiable queries: it terminates on some
	// instances (e.g. the empty one) but not on all (cyclic procedure
	// data).
	if an.MustTerminate {
		t.Error("recursive σ0 reported as always terminating")
	}
	if !an.MayTerminate {
		t.Error("σ0 reported as never terminating")
	}
	// Every element type is reachable on some instance...
	for _, e := range []string{"patient", "treatment", "procedure", "item", "price"} {
		if !an.CanReach[e] {
			t.Errorf("CanReach[%s] = false", e)
		}
	}
	// ...but only report must be produced on every instance (patients
	// come from a star).
	if !an.MustReach["report"] {
		t.Error("MustReach[report] = false")
	}
	if an.MustReach["patient"] || an.MustReach["trId"] {
		t.Error("star-derived elements reported as must-reach")
	}
	if len(an.UnsatisfiableQueries) != 0 {
		t.Errorf("σ0 has unsatisfiable queries: %v", an.UnsatisfiableQueries)
	}
}

func TestAnalyzeUnfoldedTerminates(t *testing.T) {
	a := hospital.Sigma0(false)
	unf, err := specialize.Unfold(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(unf)
	if err != nil {
		t.Fatal(err)
	}
	if !an.MustTerminate {
		t.Error("non-recursive unfolded AIG reported as possibly non-terminating")
	}
}

func TestAnalyzeUnsatisfiableCutsRecursion(t *testing.T) {
	a := hospital.Sigma0(false)
	// Make Q3 (the recursion-driving query) unsatisfiable: a column equal
	// to two different constants.
	a.Rules["procedure"].Inh["treatment"].Query = sqlmini.MustParse(
		`select p.trId2 as trId, t.tname from DB4:procedure p, DB4:treatment t
		 where p.trId1 = $v.trId and t.trId = p.trId2 and p.trId1 = 'x' and p.trId1 = 'y'`)
	an, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.UnsatisfiableQueries) != 1 {
		t.Fatalf("UnsatisfiableQueries = %v", an.UnsatisfiableQueries)
	}
	if !an.MustTerminate {
		t.Error("recursion cut by unsatisfiable query not detected as terminating")
	}
	// The nested treatment levels become unreachable... the recursive
	// cycle still lists treatment under treatments, so treatment itself
	// stays reachable via the satisfiable Q2.
	if !an.CanReach["treatment"] {
		t.Error("treatment should still be reachable via treatments")
	}
}

func TestSatisfiable(t *testing.T) {
	sat := []string{
		`select a from DB:t where a = 'x'`,
		`select a from DB:t where a = b and b = 'x'`,
		`select a from DB:t where a > 'x' and a = $v.f`,
		`select a from DB:t where a in ('x','y')`,
		`select a from DB:t where a in $V`,
		`select a from DB:t where a = 'x' and b = 'y'`,
		`select a from DB:t where a <= b and b <= a`, // consistent (a = b works)
	}
	for _, s := range sat {
		if !Satisfiable(sqlmini.MustParse(s)) {
			t.Errorf("Satisfiable(%q) = false", s)
		}
	}
	unsat := []string{
		`select a from DB:t where a = 'x' and a = 'y'`,
		`select a from DB:t where a = b and a = 'x' and b = 'y'`,
		`select a from DB:t where a = 'x' and a <> 'x'`,
		`select a from DB:t where a = b and a <> b`,
		`select a from DB:t where a = 1 and a > 2`,
		`select a from DB:t where a = b and a < b`,
		`select a from DB:t where a in ('x') and a = 'y'`,
	}
	for _, s := range unsat {
		if Satisfiable(sqlmini.MustParse(s)) {
			t.Errorf("Satisfiable(%q) = true", s)
		}
	}
}

func TestForcedOutputs(t *testing.T) {
	cases := []struct {
		sql  string
		want []string // per select item: forced constant's Key(), "" = free
	}{
		{`select a from DB:t where a = 'x'`, []string{"sx"}},
		{`select a, b from DB:t where a = 'x'`, []string{"sx", ""}},
		{`select a from DB:t where a = b and b = 1`, []string{"i1"}},
		{`select a from DB:t where a in ('x')`, []string{"sx"}},
		{`select a from DB:t where a > 'x'`, []string{""}},
		{`select a from DB:t where a = $v.f`, []string{""}},
	}
	for _, tc := range cases {
		got := ForcedOutputs(sqlmini.MustParse(tc.sql))
		if len(got) != len(tc.want) {
			t.Errorf("ForcedOutputs(%q) has %d entries, want %d", tc.sql, len(got), len(tc.want))
			continue
		}
		for i, w := range tc.want {
			var k string
			if got[i] != nil {
				k = got[i].Key()
			}
			if k != w {
				t.Errorf("ForcedOutputs(%q)[%d] = %q, want %q", tc.sql, i, k, w)
			}
		}
	}
	if ForcedOutputs(sqlmini.MustParse(`select a from DB:t where a = 'x' and a = 'y'`)) != nil {
		t.Error("ForcedOutputs of an unsatisfiable query should be nil")
	}
}

func TestMayTerminateChoice(t *testing.T) {
	// inf -> inf is a derivation with no data-driven escape: it never
	// halts, even on the empty instance. With a choice offering a finite
	// branch, it halts.
	d := dtd.New("inf")
	d.DefineSeq("inf", "inf")
	a := aig.New(d)
	an, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	if an.MayTerminate {
		t.Error("inf -> (inf) reported as terminating on the empty instance")
	}

	d2 := dtd.MustParse(`
		<!ELEMENT a (a | leaf)>
		<!ELEMENT leaf (#PCDATA)>
	`)
	a2 := aig.New(d2)
	an2, err := Analyze(a2)
	if err != nil {
		t.Fatal(err)
	}
	if !an2.MayTerminate {
		t.Error("choice with a finite branch reported as never terminating")
	}
	if an2.MustTerminate {
		t.Error("recursive choice reported as always terminating")
	}
}

func TestClassify(t *testing.T) {
	a := hospital.Sigma0(false)
	classes := Classify(a)
	if classes["patient/treatments"] != CSR {
		t.Errorf("patient/treatments = %v, want CSR", classes["patient/treatments"])
	}
	if classes["treatments/treatment"] != QSR {
		t.Errorf("treatments/treatment = %v, want QSR", classes["treatments/treatment"])
	}
	if classes["bill/item"] != QSR || classes["patient/bill"] != CSR {
		t.Error("bill rules misclassified")
	}
	if CSR.String() != "CSR" || QSR.String() != "QSR" {
		t.Error("RuleClass.String broken")
	}
}

func TestCopyChains(t *testing.T) {
	a := hospital.Sigma0(false)
	chains := CopyChains(a)
	// Q2's parameter Inh(treatments) is a pure copy of Inh(patient):
	// expect the chain patient -> treatments.
	found := false
	for _, c := range chains {
		if len(c) == 2 && c[0] == "patient" && c[1] == "treatments" {
			found = true
		}
	}
	if !found {
		t.Errorf("copy chain patient->treatments not found: %v", chains)
	}
}
