// Package static implements the static analyses of §4: termination and
// reachability guarantees for AIGs defined with conjunctive queries, and
// the classification of semantic rules into copy rules (CSRs) and query
// rules (QSRs) that underlies copy elimination.
//
// The paper proves these properties decidable for conjunctive-query AIGs
// by symbolic execution, and undecidable for arbitrary SQL; accordingly,
// the analyses here are exact on the conjunctive fragment this
// implementation supports (equality/comparison/IN predicates without
// negation) and conservative in the presence of features they cannot
// decide.
package static

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Analysis is the result of analyzing an AIG.
type Analysis struct {
	// MustTerminate: evaluation halts on every database instance. True
	// when the reachable DTD is non-recursive, or every recursive cycle
	// passes through a statically unsatisfiable query (which cuts the
	// recursion at depth one).
	MustTerminate bool
	// MayTerminate: evaluation halts on at least one instance (symbolic
	// execution over the empty instance).
	MayTerminate bool
	// CanReach[E]: some instance produces an E element.
	CanReach map[string]bool
	// MustReach[E]: every successful evaluation produces an E element.
	MustReach map[string]bool
	// UnsatisfiableQueries lists rule queries that can never return a
	// tuple, with their locations.
	UnsatisfiableQueries []string
}

// Analyze runs all §4 analyses on the AIG.
func Analyze(a *aig.AIG) (*Analysis, error) {
	if err := a.DTD.Validate(); err != nil {
		return nil, err
	}
	an := &Analysis{
		CanReach:  make(map[string]bool),
		MustReach: make(map[string]bool),
	}

	sat := make(map[string]bool) // elem/child -> query satisfiable
	for _, eq := range a.Queries() {
		ok := Satisfiable(eq.Query)
		key := eq.Elem + "/" + eq.Child
		if prev, seen := sat[key]; seen {
			ok = ok && prev // chains: every step must be satisfiable
		}
		sat[key] = ok
	}
	for key, ok := range sat {
		if !ok {
			an.UnsatisfiableQueries = append(an.UnsatisfiableQueries, key)
		}
	}

	// edgePossible reports whether an (elem -> child) derivation can ever
	// produce a child node on some instance.
	edgePossible := func(elem, child string) bool {
		p, _ := a.DTD.Production(elem)
		r := a.Rules[elem]
		switch p.Kind {
		case dtd.ProdSeq:
			return true
		case dtd.ProdChoice:
			return true // the condition query may select any branch
		case dtd.ProdStar:
			if r == nil || r.Inh[child] == nil {
				return false // nothing can generate children
			}
			if ok, seen := sat[elem+"/"+child]; seen {
				return ok
			}
			return true // copy-driven star: possible when the member is non-empty
		default:
			return false
		}
	}

	// CanReach: graph reachability over possible edges.
	var canVisit func(elem string)
	canVisit = func(elem string) {
		if an.CanReach[elem] {
			return
		}
		an.CanReach[elem] = true
		p, _ := a.DTD.Production(elem)
		for _, c := range p.Children {
			if edgePossible(elem, c) {
				canVisit(c)
			}
		}
	}
	canVisit(a.DTD.Root)

	// MustReach: only sequence edges (and single-alternative choices)
	// guarantee a child on every instance.
	var mustVisit func(elem string)
	mustVisit = func(elem string) {
		if an.MustReach[elem] {
			return
		}
		an.MustReach[elem] = true
		p, _ := a.DTD.Production(elem)
		switch {
		case p.Kind == dtd.ProdSeq:
			for _, c := range p.Children {
				mustVisit(c)
			}
		case p.Kind == dtd.ProdChoice && len(p.Children) == 1:
			mustVisit(p.Children[0])
		}
	}
	mustVisit(a.DTD.Root)

	// MustTerminate: every reachable recursive cycle must be cut by an
	// unsatisfiable query.
	an.MustTerminate = mustTerminate(a, an.CanReach, sat)

	// MayTerminate: symbolic execution over the empty instance — every
	// star is empty, so the derivation halts iff some finite expansion
	// exists: sequences need all children to halt, choices need some
	// branch to halt.
	an.MayTerminate = haltsOnEmpty(a.DTD, a.DTD.Root, make(map[string]int))

	return an, nil
}

// mustTerminate checks that no reachable cycle of the type graph survives
// after removing edges cut by statically unsatisfiable queries: such a
// surviving cycle could, on a suitable instance, expand forever.
func mustTerminate(a *aig.AIG, reachable map[string]bool, sat map[string]bool) bool {
	rec := a.DTD.RecursiveTypes()
	// Live edges among reachable recursive types.
	adj := make(map[string][]string)
	for elem := range rec {
		if !reachable[elem] {
			continue
		}
		p, _ := a.DTD.Production(elem)
		for _, c := range p.Children {
			if !rec[c] || !reachable[c] {
				continue
			}
			if p.Kind == dtd.ProdStar {
				if ok, seen := sat[elem+"/"+c]; seen && !ok {
					continue // this expansion can never fire
				}
			}
			adj[elem] = append(adj[elem], c)
		}
	}
	// Cycle detection over the surviving edges.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(v string) bool
	visit = func(v string) bool {
		color[v] = gray
		for _, c := range adj[v] {
			switch color[c] {
			case gray:
				return false
			case white:
				if !visit(c) {
					return false
				}
			}
		}
		color[v] = black
		return true
	}
	for v := range adj {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

// haltsOnEmpty decides whether the derivation of elem halts over the
// empty instance. state: 0 unvisited, 1 in progress (cycle), 2 halts.
func haltsOnEmpty(d *dtd.DTD, elem string, state map[string]int) bool {
	switch state[elem] {
	case 1:
		return false // cyclic derivation with no data-driven escape
	case 2:
		return true
	}
	state[elem] = 1
	defer func() {
		if state[elem] == 1 {
			state[elem] = 0
		}
	}()
	p, _ := d.Production(elem)
	halts := false
	switch p.Kind {
	case dtd.ProdText, dtd.ProdEmpty, dtd.ProdStar:
		// Stars are empty on the empty instance.
		halts = true
	case dtd.ProdSeq:
		halts = true
		for _, c := range p.Children {
			if !haltsOnEmpty(d, c, state) {
				halts = false
				break
			}
		}
	case dtd.ProdChoice:
		for _, c := range p.Children {
			if haltsOnEmpty(d, c, state) {
				halts = true
				break
			}
		}
	}
	if halts {
		state[elem] = 2
	}
	return halts
}

// Satisfiable decides whether a conjunctive query can return a tuple on
// some instance: its equality/comparison predicates must be mutually
// consistent. The check unions columns and parameters into equivalence
// classes, propagates constants, and verifies comparisons between
// constant-valued classes; predicates it cannot decide are assumed
// satisfiable (per the paper, the general problem is undecidable for full
// SQL).
func Satisfiable(q *sqlmini.Query) bool {
	_, _, ok := constClasses(q)
	return ok
}

// ForcedOutputs reports, for each select column of the query, the
// constant value the query's predicates force it to take on every output
// row (nil when the column is unconstrained). A nil slice means the query
// is statically unsatisfiable and produces no rows at all. The linter
// uses this to detect choice-production condition queries that always
// select the same branch.
func ForcedOutputs(q *sqlmini.Query) []*relstore.Value {
	uf, classConst, ok := constClasses(q)
	if !ok {
		return nil
	}
	out := make([]*relstore.Value, len(q.Select))
	for i, s := range q.Select {
		if v, found := classConst[uf.find("c:"+s.Expr.String())]; found {
			v := v
			out[i] = &v
		}
	}
	return out
}

// cmpPred is a deferred non-equality comparison between two class keys.
type cmpPred struct {
	a, b string
	op   sqlmini.CompareOp
}

// constClasses performs the symbolic part of Satisfiable: it unions
// columns, parameters and constants into equivalence classes from the
// query's equality predicates, propagates constants, and checks the
// deferred comparisons. It returns the union-find, the constant value per
// class root, and whether the predicates are mutually consistent.
func constClasses(q *sqlmini.Query) (*unionFind, map[string]relstore.Value, bool) {
	uf := newUnionFind()
	key := func(c sqlmini.ColRef) string { return "c:" + c.String() }
	paramKey := func(p, f string) string { return "p:" + p + "." + f }

	constOf := make(map[string]relstore.Value)
	var cmps []cmpPred

	for _, p := range q.Where {
		switch p.Kind {
		case sqlmini.PredColCol:
			if p.Op == sqlmini.OpEq {
				uf.union(key(p.Left), key(p.Right))
			} else {
				cmps = append(cmps, cmpPred{key(p.Left), key(p.Right), p.Op})
			}
		case sqlmini.PredColConst:
			ck := "k:" + p.Const.Key()
			constOf[ck] = p.Const
			if p.Op == sqlmini.OpEq {
				uf.union(key(p.Left), ck)
			} else {
				cmps = append(cmps, cmpPred{key(p.Left), ck, p.Op})
			}
		case sqlmini.PredColParam:
			if p.Op == sqlmini.OpEq {
				uf.union(key(p.Left), paramKey(p.Param, p.ParamField))
			} else {
				cmps = append(cmps, cmpPred{key(p.Left), paramKey(p.Param, p.ParamField), p.Op})
			}
		case sqlmini.PredColInList:
			if len(p.List) == 0 {
				return nil, nil, false
			}
			if len(p.List) == 1 {
				ck := "k:" + p.List[0].Key()
				constOf[ck] = p.List[0]
				uf.union(key(p.Left), ck)
			}
		case sqlmini.PredColInParam:
			// Parameters range over arbitrary sets; always satisfiable.
		}
	}

	// Each equivalence class may contain at most one distinct constant.
	classConst := make(map[string]relstore.Value)
	for ck, v := range constOf {
		root := uf.find(ck)
		if prev, ok := classConst[root]; ok && !prev.Equal(v) {
			return nil, nil, false
		}
		classConst[root] = v
	}
	// Comparisons between two constant-valued classes must hold;
	// inequality within one class must not contradict equality.
	for _, c := range cmps {
		ra, rb := uf.find(c.a), uf.find(c.b)
		if ra == rb && (c.op == sqlmini.OpNe || c.op == sqlmini.OpLt || c.op == sqlmini.OpGt) {
			return nil, nil, false
		}
		va, aok := classConst[ra]
		vb, bok := classConst[rb]
		if aok && bok && !c.op.Eval(va, vb) {
			return nil, nil, false
		}
	}
	return uf, classConst, true
}

type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// RuleClass classifies one inherited-attribute rule (§4): a copy rule
// (CSR) uses only member projections; a query rule (QSR) runs SQL.
type RuleClass uint8

// The rule classes.
const (
	CSR RuleClass = iota
	QSR
)

func (c RuleClass) String() string {
	if c == CSR {
		return "CSR"
	}
	return "QSR"
}

// Classify returns the class of every inherited rule, keyed by
// "elem/child".
func Classify(a *aig.AIG) map[string]RuleClass {
	out := make(map[string]RuleClass)
	for _, elem := range a.DTD.Types() {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		for child, ir := range r.Inh {
			k := fmt.Sprintf("%s/%s", elem, child)
			if ir.IsQuery() {
				out[k] = QSR
			} else {
				out[k] = CSR
			}
		}
		for _, b := range r.Branches {
			if b.Inh == nil {
				continue
			}
			k := fmt.Sprintf("%s/%s", elem, b.Inh.Child)
			if b.Inh.IsQuery() {
				out[k] = QSR
			} else {
				out[k] = CSR
			}
		}
	}
	return out
}

// CopyChains finds maximal chains of CSRs ending in a QSR parameter (the
// inlining opportunities of §4). Each chain is reported as the sequence
// of element types whose inherited attributes merely forward values, from
// the origin to the consuming query's element.
func CopyChains(a *aig.AIG) [][]string {
	classes := Classify(a)
	// parentOf[child] = parents whose rule computes Inh(child) as a CSR
	// projecting Inh(parent) only.
	pureParents := make(map[string][]string)
	for _, elem := range a.DTD.Types() {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		for child, ir := range r.Inh {
			if classes[elem+"/"+child] != CSR || ir == nil {
				continue
			}
			pure := len(ir.Copies) > 0
			for _, cp := range ir.Copies {
				if cp.Src.Side != aig.InhSide || cp.Src.Elem != elem {
					pure = false
				}
			}
			if pure {
				pureParents[child] = append(pureParents[child], elem)
			}
		}
	}
	var chains [][]string
	for _, eq := range a.Queries() {
		for _, src := range ruleParamSources(a, eq) {
			if src.Side != aig.InhSide {
				continue
			}
			var chain []string
			cur := src.Elem
			for {
				parents := pureParents[cur]
				if len(parents) != 1 {
					break
				}
				chain = append(chain, cur)
				cur = parents[0]
			}
			if len(chain) > 0 {
				chain = append(chain, cur)
				// origin last; reverse so chains read origin -> consumer
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				chains = append(chains, chain)
			}
		}
	}
	return chains
}

func ruleParamSources(a *aig.AIG, eq aig.ElemQuery) []aig.SourceRef {
	r := a.Rules[eq.Elem]
	if r == nil {
		return nil
	}
	if eq.Child == "" {
		out := make([]aig.SourceRef, 0, len(r.CondParams))
		for _, s := range r.CondParams {
			out = append(out, s)
		}
		return out
	}
	ir := r.Inh[eq.Child]
	if ir == nil {
		for _, b := range r.Branches {
			if b.Inh != nil && b.Inh.Child == eq.Child {
				ir = b.Inh
			}
		}
	}
	if ir == nil {
		return nil
	}
	out := make([]aig.SourceRef, 0, len(ir.QueryParams))
	for _, s := range ir.QueryParams {
		out = append(out, s)
	}
	return out
}
