package ivm

import (
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func hospitalDeps(t *testing.T) (*Deps, *relstore.Catalog) {
	t.Helper()
	cat := hospital.TinyCatalog()
	reg := source.RegistryFromCatalog(cat)
	comp, err := specialize.CompileConstraints(hospital.Sigma0(true))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := specialize.DecomposeQueries(comp, reg, reg, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deps, err := Extract(dec, reg)
	if err != nil {
		t.Fatal(err)
	}
	return deps, cat
}

func changes(table string, op relstore.ChangeOp, rows ...relstore.Tuple) relstore.ChangeSet {
	cs := relstore.ChangeSet{Table: table, Since: 1, Now: uint64(1 + len(rows))}
	for i, row := range rows {
		cs.Changes = append(cs.Changes, relstore.Change{Ver: uint64(2 + i), Op: op, Row: row})
	}
	return cs
}

func TestDependsOn(t *testing.T) {
	deps, _ := hospitalDeps(t)
	for _, tc := range []struct {
		source, table string
		want          bool
	}{
		{"DB1", "patient", true},
		{"DB1", "visitInfo", true},
		{"DB2", "cover", true},
		{"DB3", "billing", true},
		{"DB4", "treatment", true},
		{"DB4", "procedure", true},
		{"DB1", "nope", false},
		{"DB9", "patient", false},
	} {
		if got := deps.DependsOn(tc.source, tc.table); got != tc.want {
			t.Errorf("DependsOn(%s,%s) = %v, want %v", tc.source, tc.table, got, tc.want)
		}
	}
	if n := len(deps.Tables("DB4")); n != 2 {
		t.Errorf("Tables(DB4) = %v", deps.Tables("DB4"))
	}
}

func TestRootCopyAnalysisTracesDateThroughCopies(t *testing.T) {
	comp, err := specialize.CompileConstraints(hospital.Sigma0(true))
	if err != nil {
		t.Fatal(err)
	}
	st := rootCopyMap(comp)
	// Inh(treatments).date is copied report -> patient -> treatments.
	if got := st["treatments"]["date"]; got != "date" {
		t.Errorf("treatments.date traced to %q, want \"date\"", got)
	}
	// Inh(treatments).SSN comes from Q1's output: not a root copy.
	if got := st["treatments"]["SSN"]; got != botMark {
		t.Errorf("treatments.SSN traced to %q, want bottom", got)
	}
	// Inh(treatment).trId is query-bound in both creating productions.
	if got := st["treatment"]["trId"]; got != botMark {
		t.Errorf("treatment.trId traced to %q, want bottom", got)
	}
}

func TestJudgeProvablyIrrelevantVisitInsert(t *testing.T) {
	deps, _ := hospitalDeps(t)
	params, err := deps.ParseParams(map[string]string{"date": "d1"})
	if err != nil {
		t.Fatal(err)
	}
	// A visit on another date fails the root-bound date predicate on
	// every visitInfo scan (Q1 directly, Q2's chain step through the
	// copy chain), inserted or deleted.
	other := relstore.Tuple{relstore.String("s1"), relstore.String("t3"), relstore.String("d9")}
	if v := deps.Judge("DB1", "visitInfo", changes("visitInfo", relstore.ChangeInsert, other), params); v != Unaffected {
		t.Errorf("insert of other-date visit judged %v, want unaffected", v)
	}
	if v := deps.Judge("DB1", "visitInfo", changes("visitInfo", relstore.ChangeDelete, other), params); v != Unaffected {
		t.Errorf("delete of other-date visit judged %v, want unaffected", v)
	}

	// The same row IS relevant when the view is evaluated for d9.
	params9, err := deps.ParseParams(map[string]string{"date": "d9"})
	if err != nil {
		t.Fatal(err)
	}
	if v := deps.Judge("DB1", "visitInfo", changes("visitInfo", relstore.ChangeInsert, other), params9); v != MaybeAffected {
		t.Errorf("insert of matching-date visit judged %v, want maybe-affected", v)
	}
}

func TestJudgeMatchingDateIsMaybeAffected(t *testing.T) {
	deps, _ := hospitalDeps(t)
	params, err := deps.ParseParams(map[string]string{"date": "d1"})
	if err != nil {
		t.Fatal(err)
	}
	row := relstore.Tuple{relstore.String("s1"), relstore.String("t3"), relstore.String("d1")}
	if v := deps.Judge("DB1", "visitInfo", changes("visitInfo", relstore.ChangeInsert, row), params); v != MaybeAffected {
		t.Errorf("judged %v, want maybe-affected", v)
	}
	// A batch mixing irrelevant and relevant rows is relevant.
	other := relstore.Tuple{relstore.String("s1"), relstore.String("t3"), relstore.String("d9")}
	if v := deps.Judge("DB1", "visitInfo", changes("visitInfo", relstore.ChangeInsert, other, row), params); v != MaybeAffected {
		t.Errorf("mixed batch judged %v, want maybe-affected", v)
	}
}

func TestJudgeUnprovableScansAlwaysMaybeAffected(t *testing.T) {
	deps, _ := hospitalDeps(t)
	params, err := deps.ParseParams(map[string]string{"date": "d1"})
	if err != nil {
		t.Fatal(err)
	}
	// patient has no judgeable predicates: every change is relevant.
	row := relstore.Tuple{relstore.String("s9"), relstore.String("zed"), relstore.String("gold")}
	if v := deps.Judge("DB1", "patient", changes("patient", relstore.ChangeInsert, row), params); v != MaybeAffected {
		t.Errorf("patient insert judged %v, want maybe-affected", v)
	}
}

func TestJudgeTruncatedAndNonDependency(t *testing.T) {
	deps, _ := hospitalDeps(t)
	params, err := deps.ParseParams(map[string]string{"date": "d1"})
	if err != nil {
		t.Fatal(err)
	}
	if v := deps.Judge("DB1", "visitInfo", relstore.ChangeSet{Table: "visitInfo", Truncated: true}, params); v != MaybeAffected {
		t.Errorf("truncated window judged %v, want maybe-affected", v)
	}
	row := relstore.Tuple{relstore.String("x")}
	if v := deps.Judge("DB1", "unrelated", changes("unrelated", relstore.ChangeInsert, row), params); v != Unaffected {
		t.Errorf("non-dependency judged %v, want unaffected", v)
	}
}

func TestParseParamsValidates(t *testing.T) {
	deps, _ := hospitalDeps(t)
	if _, err := deps.ParseParams(map[string]string{}); err == nil {
		t.Error("missing parameter must error")
	}
	if _, err := deps.ParseParams(map[string]string{"date": "d1"}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}
