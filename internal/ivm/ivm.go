// Package ivm implements the decision core of incremental view
// maintenance: given the static table dependencies of a prepared view
// (specialize.TableScans) and a batch of row-level deltas from a source
// (relstore.ChangeSet), it judges whether the deltas can possibly affect
// the view as evaluated for a concrete root-parameter binding.
//
// The judge is deliberately one-sided. Unaffected is a proof: every
// changed row fails, on every scan of the changed table, at least one
// predicate whose value is fixed at judging time (a literal, an IN list,
// or a scalar parameter bound to the view's root Inh — the HTTP request
// parameters, constant for the whole evaluation). Such a row can never
// enter any query result the view reads, inserted or deleted, so the
// rendered document is unchanged and a cached copy may simply be
// restamped to the new data version. MaybeAffected is not a proof of
// change — it just sends the refresher down the full re-evaluation path.
package ivm

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Verdict is the judge's answer for one delta batch.
type Verdict uint8

const (
	// Unaffected proves the deltas cannot change the view's output for
	// the judged parameter binding.
	Unaffected Verdict = iota
	// MaybeAffected means no such proof exists; re-evaluate.
	MaybeAffected
)

// String returns "unaffected" or "maybe-affected".
func (v Verdict) String() string {
	if v == Unaffected {
		return "unaffected"
	}
	return "maybe-affected"
}

// pred is a judgeable predicate on one scan: column index into the base
// table's schema plus a right-hand side that is constant per judging.
type pred struct {
	col int
	op  sqlmini.CompareOp

	kind  sqlmini.PredKind // PredColConst, PredColParam or PredColInList
	con   relstore.Value
	field string // root Inh member for PredColParam
	list  []relstore.Value
}

// scan is one base-table reference with its judgeable predicates. An
// empty preds list means no proof is ever possible for this scan: every
// change to the table is relevant.
type scan struct {
	elem, child string
	preds       []pred
}

// Deps holds a view's judgeable table dependencies.
type Deps struct {
	root       string
	rootSchema relstore.Schema
	// scans[source][table] lists the scans of that base table.
	scans map[string]map[string][]scan
}

// SchemaSource resolves base-table schemas during extraction;
// *source.Registry implements it.
type SchemaSource interface {
	TableSchema(source, table string) (relstore.Schema, error)
}

// botMark is the lattice bottom of the root-copy analysis: "this member
// is not provably a copy of a root Inh member".
const botMark = "\x00bot"

// rootCopyMap computes, for each element type, which of its inherited
// scalar members are pure copies of a root Inh member along *every*
// instantiation path — those members hold the same value as the request
// parameter in every node instance, which is what makes a predicate over
// them evaluation-constant. The analysis is an optimistic fixpoint over
// copy rules: query-bound members are bottom, copies propagate the
// parent's status, and elements creatable from multiple productions meet
// their contributions (disagreement is bottom). Elements still unvisited
// at the fixpoint are unreachable from the root and stay absent.
func rootCopyMap(a *aig.AIG) map[string]map[string]string {
	st := make(map[string]map[string]string)
	root := a.DTD.Root
	id := make(map[string]string)
	for _, m := range a.Inh[root].Members {
		if m.Kind == aig.Scalar {
			id[m.Name] = m.Name
		}
	}
	st[root] = id

	// contribution computes what one creating rule asserts about the
	// child's members, given the parent's current status.
	contribution := func(parent string, ir *aig.InhRule) map[string]string {
		ps := st[parent]
		out := make(map[string]string)
		for _, m := range a.Inh[ir.Child].Members {
			out[m.Name] = botMark
			if m.Kind != aig.Scalar {
				continue
			}
			for _, cp := range ir.Copies {
				if cp.TargetMember != m.Name {
					continue
				}
				if cp.Src.Side == aig.InhSide && cp.Src.Elem == parent {
					if r, ok := ps[cp.Src.Member]; ok && r != botMark {
						out[m.Name] = r
					}
				}
				break
			}
		}
		return out
	}

	meet := func(child string, contrib map[string]string) bool {
		cur := st[child]
		if cur == nil {
			st[child] = contrib
			return true
		}
		changed := false
		for m, c := range contrib {
			if prev, ok := cur[m]; !ok {
				cur[m] = c
				changed = true
			} else if prev != c && prev != botMark {
				cur[m] = botMark
				changed = true
			}
		}
		return changed
	}

	for changed := true; changed; {
		changed = false
		for _, elem := range a.DTD.Types() {
			r := a.Rules[elem]
			if r == nil || st[elem] == nil {
				continue // unreachable so far; cannot instantiate children
			}
			for _, ir := range r.Inh {
				if meet(ir.Child, contribution(elem, ir)) {
					changed = true
				}
			}
			for _, b := range r.Branches {
				if b.Inh != nil {
					if meet(b.Inh.Child, contribution(elem, b.Inh)) {
						changed = true
					}
				}
			}
		}
	}
	return st
}

// Extract builds the judgeable dependencies of an AIG. Run it on the
// post-decomposition grammar the evaluator actually executes. A
// predicate survives extraction only when its value is fixed for a whole
// evaluation: literals, IN lists, and scalar parameters bound (directly,
// or through an unbroken chain of copy rules) to a root Inh member —
// the view's request parameters.
func Extract(a *aig.AIG, schemas SchemaSource) (*Deps, error) {
	return ExtractFiltered(a, schemas, nil)
}

// ExtractFiltered is Extract restricted to the scans keep admits, keyed
// by (rule element, child) the way specialize.TableScans reports them.
// It exists for fragment serving: a cached fragment depends only on the
// scans its path can reach (xpath.Compiled.LiveScans), so deltas against
// the rest of the view's tables restamp the fragment instead of
// rebuilding it. keep must be an over-approximation of the scans any
// concrete evaluation of the fragment runs; nil keeps everything.
func ExtractFiltered(a *aig.AIG, schemas SchemaSource, keep func(elem, child string) bool) (*Deps, error) {
	root := a.DTD.Root
	traced := rootCopyMap(a)
	d := &Deps{
		root:       root,
		rootSchema: a.Inh[root].ScalarSchema(),
		scans:      make(map[string]map[string][]scan),
	}
	for _, ts := range specialize.TableScans(a) {
		if keep != nil && !keep(ts.Elem, ts.Child) {
			continue
		}
		schema, err := schemas.TableSchema(ts.Source, ts.Table)
		if err != nil {
			return nil, fmt.Errorf("ivm: resolving %s:%s: %w", ts.Source, ts.Table, err)
		}
		sc := scan{elem: ts.Elem, child: ts.Child}
		for _, p := range ts.Preds {
			col := schema.ColumnIndex(p.Left.Column)
			if col < 0 {
				continue // resolver would have rejected; stay conservative
			}
			jp := pred{col: col, op: p.Op, kind: p.Kind}
			switch p.Kind {
			case sqlmini.PredColConst:
				jp.con = p.Const
			case sqlmini.PredColInList:
				jp.list = p.List
			case sqlmini.PredColParam:
				// Usable only when the parameter field provably holds a
				// root Inh member's value in every node instance: the
				// parameter is a whole Inh tuple whose field the
				// root-copy analysis traced back to the root.
				ref, ok := ts.Params[p.Param]
				if !ok || ref.Side != aig.InhSide || ref.Member != "" {
					continue
				}
				rootMember, ok := traced[ref.Elem][p.ParamField]
				if !ok || rootMember == botMark {
					continue
				}
				if _, ok := a.Inh[root].Member(rootMember); !ok {
					continue
				}
				jp.field = rootMember
			default:
				continue
			}
			sc.preds = append(sc.preds, jp)
		}
		byTable := d.scans[ts.Source]
		if byTable == nil {
			byTable = make(map[string][]scan)
			d.scans[ts.Source] = byTable
		}
		byTable[ts.Table] = append(byTable[ts.Table], sc)
	}
	return d, nil
}

// DependsOn reports whether any of the view's queries scans the table.
// Changes to non-dependency tables never dirty the view.
func (d *Deps) DependsOn(source, table string) bool {
	return len(d.scans[source][table]) > 0
}

// Tables returns the names of the tables the view reads from the given
// source.
func (d *Deps) Tables(source string) []string {
	out := make([]string, 0, len(d.scans[source]))
	for t := range d.scans[source] {
		out = append(out, t)
	}
	return out
}

// ParseParams converts raw request parameters (as bound by the serving
// layer) into typed values against the root Inh schema, the form Judge
// consumes.
func (d *Deps) ParseParams(raw map[string]string) (map[string]relstore.Value, error) {
	out := make(map[string]relstore.Value, len(raw))
	for _, col := range d.rootSchema {
		s, ok := raw[col.Name]
		if !ok {
			return nil, fmt.Errorf("ivm: missing root parameter %q", col.Name)
		}
		v, err := relstore.ParseValue(col.Kind, s)
		if err != nil {
			return nil, fmt.Errorf("ivm: root parameter %q: %w", col.Name, err)
		}
		out[col.Name] = v
	}
	return out, nil
}

// ParamsFromInh extracts the judgeable parameter binding directly from
// a bound root inherited attribute — the difftest harness's route,
// which has the typed values rather than raw request strings.
func (d *Deps) ParamsFromInh(v *aig.AttrValue) (map[string]relstore.Value, error) {
	out := make(map[string]relstore.Value, len(d.rootSchema))
	for _, col := range d.rootSchema {
		val, err := v.Scalar(col.Name)
		if err != nil {
			return nil, fmt.Errorf("ivm: root parameter %q: %w", col.Name, err)
		}
		out[col.Name] = val
	}
	return out, nil
}

// Judge decides whether the delta batch can affect the view under the
// given root-parameter binding. A truncated ChangeSet is always
// MaybeAffected (the deltas are unknown). Otherwise the batch is
// Unaffected iff every changed row is provably excluded from every scan
// of the table: on each scan, the row fails at least one judgeable
// predicate. Inserts and deletes are symmetric — a row no query would
// have read contributes nothing whether it arrives or leaves.
func (d *Deps) Judge(source, table string, cs relstore.ChangeSet, params map[string]relstore.Value) Verdict {
	if cs.Truncated {
		return MaybeAffected
	}
	scans := d.scans[source][table]
	if len(scans) == 0 {
		return Unaffected // not a dependency at all
	}
	for _, ch := range cs.Changes {
		for _, sc := range scans {
			if !rowExcluded(sc, ch.Row, params) {
				return MaybeAffected
			}
		}
	}
	return Unaffected
}

// rowExcluded reports whether the row provably fails at least one of the
// scan's judgeable predicates.
func rowExcluded(sc scan, row relstore.Tuple, params map[string]relstore.Value) bool {
	for _, p := range sc.preds {
		if p.col >= len(row) {
			continue // schema drift; never prove from a misshapen row
		}
		val := row[p.col]
		switch p.kind {
		case sqlmini.PredColConst:
			if !p.op.Eval(val, p.con) {
				return true
			}
		case sqlmini.PredColParam:
			pv, ok := params[p.field]
			if ok && !p.op.Eval(val, pv) {
				return true
			}
		case sqlmini.PredColInList:
			in := false
			for _, lv := range p.list {
				if val.Equal(lv) {
					in = true
					break
				}
			}
			if !in {
				return true
			}
		}
	}
	return false
}
