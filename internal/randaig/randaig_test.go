package randaig

import (
	"testing"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/specialize"
)

// TestGenerateValidAndDeterministic drives the generator across many
// seeds: every instance must validate statically, evaluate cleanly
// without constraints, and be bit-identical when regenerated.
func TestGenerateValidAndDeterministic(t *testing.T) {
	const n = 150
	cfg := DefaultConfig()
	var recursive, constrained, choices, multiSrc int
	for seed := int64(0); seed < n; seed++ {
		inst, err := Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inst.Recursive {
			recursive++
		}
		if len(inst.AIG.Constraints) > 0 {
			constrained++
		}
		for _, typ := range inst.AIG.DTD.Types() {
			if p, _ := inst.AIG.DTD.Production(typ); p.Kind == dtd.ProdChoice {
				choices++
				break
			}
		}
		for _, eq := range inst.AIG.Queries() {
			if len(eq.Query.Sources()) > 1 {
				multiSrc++
				break
			}
		}

		// The constraint-free grammar must evaluate.
		plain := inst.AIG.Clone()
		plain.Constraints = nil
		plainU, err := specialize.Unfold(plain, inst.UnfoldDepth)
		if err != nil {
			t.Fatalf("seed %d: unfold: %v", seed, err)
		}
		doc, err := plainU.Eval(inst.Env(), inst.RootInh)
		if err != nil {
			t.Fatalf("seed %d: eval: %v", seed, err)
		}

		// Determinism: regenerating gives the same grammar and document.
		again, err := Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: regenerate: %v", seed, err)
		}
		if got, want := again.AIG.DTD.String(), inst.AIG.DTD.String(); got != want {
			t.Fatalf("seed %d: DTD changed between generations:\n%s\nvs\n%s", seed, got, want)
		}
		plain2 := again.AIG.Clone()
		plain2.Constraints = nil
		plainU2, err := specialize.Unfold(plain2, again.UnfoldDepth)
		if err != nil {
			t.Fatalf("seed %d: re-unfold: %v", seed, err)
		}
		doc2, err := plainU2.Eval(again.Env(), again.RootInh)
		if err != nil {
			t.Fatalf("seed %d: re-eval: %v", seed, err)
		}
		if doc.Canonical() != doc2.Canonical() {
			t.Fatalf("seed %d: document changed between generations", seed)
		}
	}
	// Envelope coverage: the defaults must exercise the interesting shapes.
	if recursive == 0 {
		t.Error("no recursive instance in the sample")
	}
	if constrained == 0 {
		t.Error("no constrained instance in the sample")
	}
	if choices == 0 {
		t.Error("no choice production in the sample")
	}
	if multiSrc == 0 {
		t.Error("no multi-source query in the sample")
	}
	t.Logf("coverage over %d seeds: recursive=%d constrained=%d choice=%d multi-source=%d",
		n, recursive, constrained, choices, multiSrc)
}

func TestApplyOps(t *testing.T) {
	var inst *Instance
	// Find a seed with at least one constraint and a multi-row table.
	for seed := int64(0); ; seed++ {
		i, err := Generate(seed, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(i.AIG.Constraints) > 0 {
			inst = i
			break
		}
	}

	dropped, err := inst.Apply(Op{Kind: OpDropConstraint, Index: 0})
	if err != nil {
		t.Fatalf("drop-constraint: %v", err)
	}
	if len(dropped.AIG.Constraints) != len(inst.AIG.Constraints)-1 {
		t.Fatalf("constraint not dropped")
	}
	if len(inst.AIG.Constraints) == 0 {
		t.Fatal("original instance mutated by Apply")
	}

	// keep-rows on some table.
	var src, tbl string
	var rows int
	for _, dbn := range inst.Catalog.DatabaseNames() {
		db, _ := inst.Catalog.Database(dbn)
		for _, tn := range db.TableNames() {
			tab, _ := db.Table(tn)
			if tab.Len() >= 2 {
				src, tbl, rows = dbn, tn, tab.Len()
			}
		}
	}
	if tbl == "" {
		t.Fatal("no multi-row table generated")
	}
	trimmed, err := inst.Apply(Op{Kind: OpKeepRows, Source: src, Table: tbl, Keep: []int{0}})
	if err != nil {
		t.Fatalf("keep-rows: %v", err)
	}
	got, _ := trimmed.Catalog.Table(src, tbl)
	if got.Len() != 1 {
		t.Fatalf("keep-rows left %d rows, want 1", got.Len())
	}
	orig, _ := inst.Catalog.Table(src, tbl)
	if orig.Len() != rows {
		t.Fatal("original table mutated by Apply")
	}

	// Out-of-range ops must fail cleanly.
	if _, err := inst.Apply(Op{Kind: OpDropConstraint, Index: 99}); err == nil {
		t.Error("expected error for out-of-range constraint index")
	}
	if _, err := inst.Apply(Op{Kind: OpKeepRows, Source: src, Table: tbl, Keep: []int{rows + 7}}); err == nil {
		t.Error("expected error for out-of-range row index")
	}
	if _, err := inst.Apply(Op{Kind: "bogus"}); err == nil {
		t.Error("expected error for unknown op kind")
	}
}

func TestConfigZeroValueNormalizes(t *testing.T) {
	inst, err := Generate(7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cfg.Sources == 0 || inst.Cfg.MaxDepth == 0 {
		t.Fatalf("config not normalized: %+v", inst.Cfg)
	}
}
