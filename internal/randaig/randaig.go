// Package randaig generates random, statically valid AIG instances for
// differential testing: a simplified DTD mixing text, empty, sequence,
// choice and star productions (with optional DAG-bounded recursion),
// typed attribute rules over generated multi-source relational schemas,
// populated relstore databases, and keys/inclusion constraints that are
// consistent with the generated data (plus, optionally, one violated
// constraint to exercise the abort path).
//
// Every scalar value in an instance — root attribute, table columns,
// query constants — is drawn from small closed pools ("v00".."vNN" for
// strings, 1..N for ints), so copied and queried values always join with
// table data and choice-condition lookups always hit. The generator
// stays inside an envelope where the conceptual evaluator (§3.2) and the
// set-oriented mediator (§5) are specified to agree exactly:
//
//   - star children declare their query-bound scalar members in select
//     order (copied members after), so the mediator's inherited-tuple
//     sort matches the conceptual evaluator's query-row sort;
//   - non-star query rules only fill collection members
//     (TargetCollection), never single-row scalar bindings, whose Row(0)
//     choice is order-sensitive;
//   - choice condition queries look up a key column that enumerates the
//     whole string pool, so they always return exactly one row;
//   - constraint fields are string-valued text elements, so the compiled
//     guards (typed tuples) and the xconstraint tree checker (string
//     tuples) agree;
//   - recursion is a single component driven by an edge table over
//     strictly increasing pool indices, so the data is a DAG and
//     unfolding at StringPool+1 levels is always exact.
//
// Instances are deterministic functions of (seed, Config), and shrink
// operations (see Op) are replayable, so a failure is fully described by
// {seed, config, ops}.
package randaig

import (
	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Config bounds the shape of generated instances. The zero value of any
// numeric field means "use the default"; use DefaultConfig for the
// standard envelope.
type Config struct {
	// Sources is the number of relational sources (databases DB1..DBn).
	Sources int `json:"sources,omitempty"`
	// MaxDepth bounds the nesting depth of generated element types.
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxChildren bounds the slots of a sequence production.
	MaxChildren int `json:"max_children,omitempty"`
	// TypeBudget softly caps the number of generated element types.
	TypeBudget int `json:"type_budget,omitempty"`
	// StringPool is the size of the closed string-value pool.
	StringPool int `json:"string_pool,omitempty"`
	// IntPool is the size of the closed int-value pool (values 1..N).
	IntPool int `json:"int_pool,omitempty"`
	// MaxRows bounds the rows of each generated table.
	MaxRows int `json:"max_rows,omitempty"`
	// Constraints caps the satisfied keys/inclusions attached.
	Constraints int `json:"constraints,omitempty"`
	// Recursion allows one DAG-bounded recursive component per instance.
	Recursion bool `json:"recursion"`
	// AllowViolation lets the generator keep one violated constraint (when
	// one arises) so evaluation aborts are exercised.
	AllowViolation bool `json:"allow_violation"`
}

// DefaultConfig is the standard generation envelope: small instances
// that still cover every production kind, multi-source queries,
// recursion and constraints.
func DefaultConfig() Config {
	return Config{
		Sources:        3,
		MaxDepth:       4,
		MaxChildren:    3,
		TypeBudget:     18,
		StringPool:     6,
		IntPool:        5,
		MaxRows:        10,
		Constraints:    2,
		Recursion:      true,
		AllowViolation: true,
	}
}

// normalize fills zero numeric fields from DefaultConfig.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.Sources <= 0 {
		c.Sources = d.Sources
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.MaxChildren <= 0 {
		c.MaxChildren = d.MaxChildren
	}
	if c.TypeBudget <= 0 {
		c.TypeBudget = d.TypeBudget
	}
	if c.StringPool <= 0 {
		c.StringPool = d.StringPool
	}
	if c.IntPool <= 0 {
		c.IntPool = d.IntPool
	}
	if c.MaxRows < 2 {
		c.MaxRows = d.MaxRows
	}
	if c.Constraints < 0 {
		c.Constraints = 0
	}
	return c
}

// Instance is one complete generated AIG instance: grammar, data and
// root attribute, ready for any evaluation path.
type Instance struct {
	Seed int64
	Cfg  Config

	// AIG is the base grammar, with declarative constraints attached but
	// not compiled (run specialize.CompileConstraints to get guards).
	AIG *aig.AIG
	// Catalog holds the populated source databases.
	Catalog *relstore.Catalog
	// RootInh is the root element's inherited attribute value.
	RootInh *aig.AttrValue
	// Recursive reports whether the DTD has a recursive component.
	Recursive bool
	// UnfoldDepth is an unfolding depth at which truncation provably never
	// cuts data (the recursion data forms a DAG over the string pool).
	UnfoldDepth int
}

// Schemas returns a schema provider over the instance's catalog.
func (inst *Instance) Schemas() sqlmini.SchemaProvider {
	return sqlmini.CatalogSchemas{Catalog: inst.Catalog}
}

// Stats returns a statistics provider over the instance's catalog.
func (inst *Instance) Stats() sqlmini.Stats {
	return sqlmini.CatalogStats{Catalog: inst.Catalog}
}

// Env returns a conceptual-evaluator environment over the instance's
// catalog.
func (inst *Instance) Env() *aig.Env {
	return &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: inst.Catalog},
		Data:    sqlmini.CatalogData{Catalog: inst.Catalog},
		Stats:   sqlmini.CatalogStats{Catalog: inst.Catalog},
	}
}

// clone deep-copies the instance so shrink operations never share state
// with their input.
func (inst *Instance) clone() *Instance {
	cat := relstore.NewCatalog()
	for _, name := range inst.Catalog.DatabaseNames() {
		db, err := inst.Catalog.Database(name)
		if err == nil {
			cat.Add(db.Clone())
		}
	}
	return &Instance{
		Seed:        inst.Seed,
		Cfg:         inst.Cfg,
		AIG:         inst.AIG.Clone(),
		Catalog:     cat,
		RootInh:     inst.RootInh.Clone(),
		Recursive:   inst.Recursive,
		UnfoldDepth: inst.UnfoldDepth,
	}
}

// declaredSources builds the AIG "sources" signature from a catalog.
func declaredSources(cat *relstore.Catalog) aig.DeclaredSources {
	out := make(aig.DeclaredSources)
	for _, dbName := range cat.DatabaseNames() {
		db, err := cat.Database(dbName)
		if err != nil {
			continue
		}
		tables := make(map[string]relstore.Schema)
		for _, tn := range db.TableNames() {
			t, err := db.Table(tn)
			if err == nil {
				tables[tn] = t.Schema()
			}
		}
		out[dbName] = tables
	}
	return out
}

// Validate re-runs the static checks on the instance's grammar against
// its catalog schemas.
func (inst *Instance) Validate() error {
	return inst.AIG.Validate(declaredSources(inst.Catalog))
}
