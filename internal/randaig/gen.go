package randaig

import (
	"fmt"
	"math/rand"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// Generate builds the instance determined by (seed, cfg). The result is
// statically valid (aig.Validate passes against the generated schemas)
// and its constraint set — except for at most one deliberately violated
// constraint when cfg.AllowViolation — holds on the evaluated document.
func Generate(seed int64, cfg Config) (*Instance, error) {
	cfg = cfg.normalize()
	g := &gen{
		r:   rand.New(rand.NewSource(seed)),
		cfg: cfg,
		cat: relstore.NewCatalog(),
		d:   dtd.New(""),
	}
	g.a = aig.New(g.d)
	for i := 1; i <= cfg.Sources; i++ {
		db := relstore.NewDatabase(fmt.Sprintf("DB%d", i))
		g.dbs = append(g.dbs, db)
		g.cat.Add(db)
	}

	// Root inherited attribute: one pool string, sometimes one pool int.
	rootDecl := aig.Attr(aig.StringMember("m0"))
	if g.r.Float64() < 0.5 {
		rootDecl.Members = append(rootDecl.Members,
			aig.ScalarMember("m1", relstore.KindInt))
	}
	root := g.element(rootDecl, cfg.MaxDepth)
	g.d.Root = root
	g.a.Sources = declaredSources(g.cat)

	rootInh := aig.NewAttrValue(rootDecl)
	for _, m := range rootDecl.Members {
		if err := rootInh.SetScalar(m.Name, g.poolValue(m.ValueKind)); err != nil {
			return nil, fmt.Errorf("randaig: seed %d: root attribute: %v", seed, err)
		}
	}

	inst := &Instance{
		Seed:        seed,
		Cfg:         cfg,
		AIG:         g.a,
		Catalog:     g.cat,
		RootInh:     rootInh,
		Recursive:   g.recursive,
		UnfoldDepth: 1,
	}
	if g.recursive {
		inst.UnfoldDepth = cfg.StringPool + 1
	}

	if err := g.attachConstraints(inst); err != nil {
		return nil, err
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("randaig: seed %d generated an invalid grammar: %v", seed, err)
	}
	return inst, nil
}

// MustGenerate is Generate panicking on error, for tests.
func MustGenerate(seed int64, cfg Config) *Instance {
	inst, err := Generate(seed, cfg)
	if err != nil {
		panic(err)
	}
	return inst
}

type gen struct {
	r   *rand.Rand
	cfg Config
	cat *relstore.Catalog
	dbs []*relstore.Database
	a   *aig.AIG
	d   *dtd.DTD

	nElem, nTable int
	types         int
	recursive     bool
}

func (g *gen) freshElem() string {
	name := fmt.Sprintf("e%d", g.nElem)
	g.nElem++
	return name
}

func (g *gen) coin(p float64) bool { return g.r.Float64() < p }

func (g *gen) poolString() string { return fmt.Sprintf("v%02d", g.r.Intn(g.cfg.StringPool)) }

func (g *gen) poolValue(kind relstore.Kind) relstore.Value {
	if kind == relstore.KindInt {
		return relstore.Int(int64(1 + g.r.Intn(g.cfg.IntPool)))
	}
	return relstore.String(g.poolString())
}

// newTable creates a fresh table with the given columns in a random
// source, filled with pool values, and returns (source, table) names.
func (g *gen) newTable(cols relstore.Schema) (string, string) {
	db := g.dbs[g.r.Intn(len(g.dbs))]
	name := fmt.Sprintf("t%d", g.nTable)
	g.nTable++
	t := relstore.NewTable(name, cols)
	n := 2 + g.r.Intn(g.cfg.MaxRows-1)
	if g.coin(0.08) {
		n = 0 // empty-result coverage
	}
	for i := 0; i < n; i++ {
		row := make(relstore.Tuple, len(cols))
		for j, c := range cols {
			row[j] = g.poolValue(c.Kind)
		}
		t.MustInsert(row)
	}
	db.AddTable(t)
	return db.Name(), name
}

func scalarMembers(decl aig.AttrDecl) []aig.MemberDecl {
	var out []aig.MemberDecl
	for _, m := range decl.Members {
		if m.Kind == aig.Scalar {
			out = append(out, m)
		}
	}
	return out
}

func stringScalars(decl aig.AttrDecl) []aig.MemberDecl {
	var out []aig.MemberDecl
	for _, m := range decl.Members {
		if m.Kind == aig.Scalar && m.ValueKind == relstore.KindString {
			out = append(out, m)
		}
	}
	return out
}

func stringSets(decl aig.AttrDecl) []aig.MemberDecl {
	var out []aig.MemberDecl
	for _, m := range decl.Members {
		if m.Kind == aig.Set && len(m.Fields) == 1 && m.Fields[0].Kind == relstore.KindString {
			out = append(out, m)
		}
	}
	return out
}

func (g *gen) pickScalar(decl aig.AttrDecl) aig.MemberDecl {
	s := scalarMembers(decl)
	return s[g.r.Intn(len(s))]
}

func (g *gen) pickStringScalar(decl aig.AttrDecl) aig.MemberDecl {
	s := stringScalars(decl)
	return s[g.r.Intn(len(s))]
}

// element generates one element type with the given inherited attribute
// declaration and returns its name. Invariant: when depth >= 1, decl's
// first member is a string scalar (choice conditions and recursion need
// one). Scalar values bound to decl always come from the closed pools.
func (g *gen) element(decl aig.AttrDecl, depth int) string {
	name := g.freshElem()
	g.a.Inh[name] = decl
	g.types++

	if depth <= 0 || g.types >= g.cfg.TypeBudget {
		g.leaf(name, decl)
		return name
	}
	switch p := g.r.Float64(); {
	case p < 0.40:
		g.seq(name, decl, depth)
	case p < 0.65:
		g.star(name, decl, depth)
	case p < 0.80:
		g.choice(name, decl, depth)
	default:
		g.leaf(name, decl)
	}
	return name
}

// leaf closes the element as a text (usually) or empty production.
func (g *gen) leaf(name string, decl aig.AttrDecl) {
	scalars := scalarMembers(decl)
	if len(scalars) == 0 || g.coin(0.12) {
		g.d.DefineEmpty(name)
		g.a.Rules[name] = &aig.Rule{Elem: name}
		return
	}
	m := scalars[g.r.Intn(len(scalars))]
	g.d.DefineText(name)
	r := &aig.Rule{Elem: name, TextSrc: aig.InhOf(name, m.Name)}
	if g.coin(0.5) {
		g.a.Syn[name] = aig.Attr(aig.MemberDecl{Name: "s0", Kind: aig.Scalar, ValueKind: m.ValueKind})
		r.Syn = aig.Syn1("s0", aig.ScalarOf{Src: aig.InhOf(name, m.Name)})
	}
	g.a.Rules[name] = r
}

// synInfo describes one already-generated child's synthesized attribute,
// for wiring sibling dependencies and parent Syn rules.
type synInfo struct {
	child string
	m     aig.MemberDecl
}

// synMembers lists the syn members of an element as (child, member) pairs.
func (g *gen) synMembers(child string) []synInfo {
	var out []synInfo
	for _, m := range g.a.Syn[child].Members {
		out = append(out, synInfo{child: child, m: m})
	}
	return out
}

func (g *gen) seq(name string, decl aig.AttrDecl, depth int) {
	nslots := 1 + g.r.Intn(g.cfg.MaxChildren)
	if nslots < 2 && g.coin(0.7) {
		nslots = 2
	}
	rule := &aig.Rule{Elem: name, Inh: make(map[string]*aig.InhRule)}
	var children []string
	var avail []synInfo // syn members of earlier children

	for i := 0; i < nslots; i++ {
		var child string
		switch {
		case g.coin(0.40):
			// Field: a text leaf echoing one parent scalar.
			src := g.pickScalar(decl)
			childDecl := aig.Attr(aig.MemberDecl{Name: "m0", Kind: aig.Scalar, ValueKind: src.ValueKind})
			child = g.element(childDecl, 0)
			rule.Inh[child] = &aig.InhRule{Child: child,
				Copies: []aig.CopyAssign{aig.Copy("m0", aig.InhOf(name, src.Name))}}
		case g.cfg.Recursion && !g.recursive && depth >= 2 && g.coin(0.30):
			child = g.recComponent()
			src := g.pickStringScalar(decl)
			rule.Inh[child] = &aig.InhRule{Child: child,
				Copies: []aig.CopyAssign{aig.Copy("m0", aig.InhOf(name, src.Name))}}
		default:
			childDecl, ir := g.subChildRule(name, decl, avail)
			child = g.element(childDecl, depth-1)
			ir.Child = child
			rule.Inh[child] = ir
		}
		children = append(children, child)
		avail = append(avail, g.synMembers(child)...)
	}

	// Occasionally repeat a text field child: same rule, two occurrences.
	if g.coin(0.15) {
		for _, c := range children {
			if p, ok := g.d.Production(c); ok && p.Kind == dtd.ProdText {
				children = append(children, c)
				break
			}
		}
	}
	g.d.DefineSeq(name, children...)

	// Syn(name) = g(Syn(children)) — parent Inh is out of scope here.
	if len(avail) > 0 && g.coin(0.6) {
		pick := avail[g.r.Intn(len(avail))]
		src := aig.SynOf(pick.child, pick.m.Name)
		if pick.m.Kind == aig.Scalar {
			if g.coin(0.4) {
				g.a.Syn[name] = aig.Attr(aig.MemberDecl{Name: "s0", Kind: aig.Scalar, ValueKind: pick.m.ValueKind})
				rule.Syn = aig.Syn1("s0", aig.ScalarOf{Src: src})
			} else {
				g.a.Syn[name] = aig.Attr(aig.MemberDecl{Name: "sS", Kind: aig.Set,
					Fields: relstore.Schema{{Name: "v0", Kind: pick.m.ValueKind}}})
				rule.Syn = aig.Syn1("sS", aig.SingletonOf{Srcs: []aig.SourceRef{src}})
			}
		} else {
			fields := append(relstore.Schema(nil), pick.m.Fields...)
			var expr aig.SynExpr = aig.CollectionOf{Src: src}
			// Union with a second compatible source when one exists.
			if g.coin(0.35) {
				for _, other := range avail {
					if other.m.Kind != aig.Scalar && len(other.m.Fields) == len(fields) &&
						other.m.Fields[0].Kind == fields[0].Kind &&
						!(other.child == pick.child && other.m.Name == pick.m.Name) {
						expr = aig.UnionOf{Terms: []aig.SynExpr{expr, aig.CollectionOf{Src: aig.SynOf(other.child, other.m.Name)}}}
						break
					}
				}
			}
			g.a.Syn[name] = aig.Attr(aig.MemberDecl{Name: "sS", Kind: aig.Set, Fields: fields})
			rule.Syn = aig.Syn1("sS", expr)
		}
	}
	g.a.Rules[name] = rule
}

// subChildRule builds the inherited declaration and rule for a nested
// (non-leaf) sequence child: copied scalars, and optionally a set member
// fed by a query, a parent collection, or an earlier sibling's Syn.
func (g *gen) subChildRule(parent string, decl aig.AttrDecl, avail []synInfo) (aig.AttrDecl, *aig.InhRule) {
	var members []aig.MemberDecl
	ir := &aig.InhRule{}

	strSrc := g.pickStringScalar(decl)
	members = append(members, aig.StringMember("m0"))
	ir.Copies = append(ir.Copies, aig.Copy("m0", aig.InhOf(parent, strSrc.Name)))

	if g.coin(0.45) {
		src := g.pickScalar(decl)
		members = append(members, aig.MemberDecl{Name: "m1", Kind: aig.Scalar, ValueKind: src.ValueKind})
		ir.Copies = append(ir.Copies, aig.Copy("m1", aig.InhOf(parent, src.Name)))
	}

	if g.coin(0.45) {
		members = append(members, aig.MemberDecl{Name: "S", Kind: aig.Set,
			Fields: relstore.Schema{{Name: "v0", Kind: relstore.KindString}}})
		// Feed S: sibling Syn set, parent set, or a fresh query.
		var sibling *synInfo
		for i := range avail {
			if avail[i].m.Kind == aig.Set && len(avail[i].m.Fields) == 1 &&
				avail[i].m.Fields[0].Kind == relstore.KindString {
				sibling = &avail[i]
				break
			}
		}
		parentSets := stringSets(decl)
		switch {
		case sibling != nil && g.coin(0.4):
			ir.Copies = append(ir.Copies, aig.Copy("S", aig.SynOf(sibling.child, sibling.m.Name)))
		case len(parentSets) > 0 && g.coin(0.4):
			ir.Copies = append(ir.Copies, aig.Copy("S", aig.InhOf(parent, parentSets[0].Name)))
		default:
			q := g.collectionQuery(decl)
			ir.Query = q
			ir.QueryParams = aig.ParamMap("v", aig.InhOf(parent, ""))
			ir.TargetCollection = "S"
		}
	}
	return aig.Attr(members...), ir
}

// collectionQuery builds a query producing one string column aliased v0,
// keyed on a parent scalar; sometimes a cross-source join.
func (g *gen) collectionQuery(decl aig.AttrDecl) *sqlmini.Query {
	pm := g.pickScalar(decl)
	distinct := ""
	if g.coin(0.3) {
		distinct = "distinct "
	}
	if g.coin(0.3) && len(g.dbs) > 1 {
		dbA, ta := g.newTable(relstore.Schema{
			{Name: "k", Kind: pm.ValueKind},
			{Name: "j", Kind: relstore.KindString},
		})
		dbB, tb := g.newTable(relstore.Schema{
			{Name: "j", Kind: relstore.KindString},
			{Name: "c0", Kind: relstore.KindString},
		})
		return sqlmini.MustParse(fmt.Sprintf(
			"select %sb.c0 as v0 from %s:%s a, %s:%s b where a.j = b.j and a.k = $v.%s",
			distinct, dbA, ta, dbB, tb, pm.Name))
	}
	db, t := g.newTable(relstore.Schema{
		{Name: "k", Kind: pm.ValueKind},
		{Name: "c0", Kind: relstore.KindString},
	})
	return sqlmini.MustParse(fmt.Sprintf(
		"select %st.c0 as v0 from %s:%s t where t.k = $v.%s", distinct, db, t, pm.Name))
}

func (g *gen) star(name string, decl aig.AttrDecl, depth int) {
	ir := &aig.InhRule{}
	var childDecl aig.AttrDecl

	if sets := stringSets(decl); len(sets) > 0 && g.coin(0.35) {
		// Collection-copy star: each row of the copied set spawns a child.
		childDecl = aig.Attr(aig.StringMember("m0"))
		ir.Copies = []aig.CopyAssign{aig.Copy("m0", aig.InhOf(name, sets[0].Name))}
	} else {
		childDecl, ir = g.starQueryRule(name, decl)
	}

	child := g.element(childDecl, depth-1)
	ir.Child = child
	rule := &aig.Rule{Elem: name, Inh: map[string]*aig.InhRule{child: ir}}
	g.d.DefineStar(name, child)

	if childSyn := g.synMembers(child); len(childSyn) > 0 && g.coin(0.5) {
		pick := childSyn[g.r.Intn(len(childSyn))]
		var fields relstore.Schema
		if pick.m.Kind == aig.Scalar {
			fields = relstore.Schema{{Name: "v0", Kind: pick.m.ValueKind}}
		} else {
			fields = append(relstore.Schema(nil), pick.m.Fields...)
		}
		g.a.Syn[name] = aig.Attr(aig.MemberDecl{Name: "sS", Kind: aig.Set, Fields: fields})
		rule.Syn = aig.Syn1("sS", aig.CollectChildren{Child: child, Member: pick.m.Name})
	}
	g.a.Rules[name] = rule
}

// starQueryRule builds a query-driven star rule. The child declares its
// query-bound members first, in select order, so the mediator's
// inherited-tuple sort and the conceptual evaluator's row sort agree;
// copied members (constant across siblings) come after.
func (g *gen) starQueryRule(name string, decl aig.AttrDecl) (aig.AttrDecl, *aig.InhRule) {
	pm := g.pickScalar(decl)
	cols := relstore.Schema{{Name: "c0", Kind: relstore.KindString}}
	members := []aig.MemberDecl{aig.StringMember("m0")}
	sel := "t.c0 as m0"
	if g.coin(0.45) {
		kind := relstore.KindString
		if g.coin(0.5) {
			kind = relstore.KindInt
		}
		cols = append(cols, relstore.Column{Name: "c1", Kind: kind})
		members = append(members, aig.MemberDecl{Name: "m1", Kind: aig.Scalar, ValueKind: kind})
		sel += ", t.c1 as m1"
	}
	cols = append(cols, relstore.Column{Name: "k", Kind: pm.ValueKind})

	ir := &aig.InhRule{QueryParams: aig.ParamMap("v", aig.InhOf(name, ""))}
	where := fmt.Sprintf("t.k = $v.%s", pm.Name)
	if g.coin(0.2) {
		where += fmt.Sprintf(" and t.c0 = '%s'", g.poolString())
	}
	if sets := stringSets(decl); len(sets) > 0 && g.coin(0.35) {
		where += " and t.c0 in $V"
		ir.QueryParams["V"] = aig.InhOf(name, sets[0].Name)
	}
	distinct := ""
	if g.coin(0.3) {
		distinct = "distinct "
	}

	var q *sqlmini.Query
	if g.coin(0.25) && len(g.dbs) > 1 {
		// Cross-source join: t supplies the members, u the join partner.
		dbA, ta := g.newTable(cols.Concat(relstore.Schema{{Name: "j", Kind: relstore.KindString}}))
		dbB, tb := g.newTable(relstore.Schema{{Name: "j", Kind: relstore.KindString}})
		q = sqlmini.MustParse(fmt.Sprintf("select %s%s from %s:%s t, %s:%s u where t.j = u.j and %s",
			distinct, sel, dbA, ta, dbB, tb, where))
	} else {
		db, t := g.newTable(cols)
		q = sqlmini.MustParse(fmt.Sprintf("select %s%s from %s:%s t where %s", distinct, sel, db, t, where))
	}
	ir.Query = q

	if g.coin(0.3) {
		src := g.pickScalar(decl)
		members = append(members, aig.MemberDecl{Name: "mc", Kind: aig.Scalar, ValueKind: src.ValueKind})
		ir.Copies = append(ir.Copies, aig.Copy("mc", aig.InhOf(name, src.Name)))
	}
	return aig.Attr(members...), ir
}

func (g *gen) choice(name string, decl aig.AttrDecl, depth int) {
	n := 2 + g.r.Intn(2)
	// Condition table: one row per pool string, so the lookup on a parent
	// string scalar always returns exactly one row.
	db := g.dbs[g.r.Intn(len(g.dbs))]
	tn := fmt.Sprintf("t%d", g.nTable)
	g.nTable++
	t := relstore.NewTable(tn, relstore.Schema{
		{Name: "k", Kind: relstore.KindString},
		{Name: "pick", Kind: relstore.KindInt},
	})
	for i := 0; i < g.cfg.StringPool; i++ {
		t.MustInsert(relstore.Tuple{
			relstore.String(fmt.Sprintf("v%02d", i)),
			relstore.Int(int64(1 + g.r.Intn(n))),
		})
	}
	db.AddTable(t)

	pm := g.pickStringScalar(decl)
	rule := &aig.Rule{
		Elem: name,
		Cond: sqlmini.MustParse(fmt.Sprintf(
			"select t.pick from %s:%s t where t.k = $v.%s", db.Name(), tn, pm.Name)),
		CondParams: aig.ParamMap("v", aig.InhOf(name, "")),
	}

	var children []string
	for i := 0; i < n; i++ {
		strSrc := g.pickStringScalar(decl)
		members := []aig.MemberDecl{aig.StringMember("m0")}
		copies := []aig.CopyAssign{aig.Copy("m0", aig.InhOf(name, strSrc.Name))}
		if g.coin(0.35) {
			src := g.pickScalar(decl)
			members = append(members, aig.MemberDecl{Name: "m1", Kind: aig.Scalar, ValueKind: src.ValueKind})
			copies = append(copies, aig.Copy("m1", aig.InhOf(name, src.Name)))
		}
		child := g.element(aig.Attr(members...), depth-1)
		children = append(children, child)
		rule.Branches = append(rule.Branches, aig.Branch{
			Inh: &aig.InhRule{Child: child, Copies: copies},
		})
	}
	g.d.DefineChoice(name, children...)
	g.a.Rules[name] = rule
}

// recComponent generates the instance's single recursive component:
//
//	rec -> (idText, sub)    sub -> rec*
//
// driven by an edge table whose edges only go from lower to higher pool
// indices, so the recursion data is a DAG with chains bounded by the
// pool size.
func (g *gen) recComponent() string {
	db, tn := func() (string, string) {
		db := g.dbs[g.r.Intn(len(g.dbs))]
		name := fmt.Sprintf("t%d", g.nTable)
		g.nTable++
		t := relstore.NewTable(name, relstore.Schema{
			{Name: "src", Kind: relstore.KindString},
			{Name: "dst", Kind: relstore.KindString},
		})
		for i := 0; i < g.cfg.StringPool; i++ {
			for j := i + 1; j < g.cfg.StringPool; j++ {
				if g.coin(0.3) {
					t.MustInsert(relstore.Tuple{
						relstore.String(fmt.Sprintf("v%02d", i)),
						relstore.String(fmt.Sprintf("v%02d", j)),
					})
				}
			}
		}
		db.AddTable(t)
		return db.Name(), name
	}()

	rec, sub, idt := g.freshElem(), g.freshElem(), g.freshElem()
	g.types += 3
	id := aig.Attr(aig.StringMember("m0"))
	g.a.Inh[rec], g.a.Inh[sub], g.a.Inh[idt] = id, id.Clone(), id.Clone()

	g.d.DefineText(idt)
	g.a.Rules[idt] = &aig.Rule{Elem: idt, TextSrc: aig.InhOf(idt, "m0")}

	g.d.DefineSeq(rec, idt, sub)
	g.a.Rules[rec] = &aig.Rule{Elem: rec, Inh: map[string]*aig.InhRule{
		idt: {Child: idt, Copies: []aig.CopyAssign{aig.Copy("m0", aig.InhOf(rec, "m0"))}},
		sub: {Child: sub, Copies: []aig.CopyAssign{aig.Copy("m0", aig.InhOf(rec, "m0"))}},
	}}

	g.d.DefineStar(sub, rec)
	g.a.Rules[sub] = &aig.Rule{Elem: sub, Inh: map[string]*aig.InhRule{
		rec: {
			Child:       rec,
			Query:       sqlmini.MustParse(fmt.Sprintf("select e.dst as m0 from %s:%s e where e.src = $v.m0", db, tn)),
			QueryParams: aig.ParamMap("v", aig.InhOf(sub, "")),
		},
	}}
	g.recursive = true
	return rec
}

// attachConstraints finds keys and inclusions that are structurally
// valid and — except for at most one deliberate violation — hold on the
// instance's evaluated document.
func (g *gen) attachConstraints(inst *Instance) error {
	if g.cfg.Constraints == 0 {
		return nil
	}
	records := g.recordTypes()
	if len(records) == 0 {
		return nil
	}

	// Evaluate the constraint-free document once to test candidates.
	plain := inst.AIG.Clone()
	plain.Constraints = nil
	plainU, err := specialize.Unfold(plain, inst.UnfoldDepth)
	if err != nil {
		return fmt.Errorf("randaig: seed %d: unfold: %v", inst.Seed, err)
	}
	doc, err := plainU.Eval(inst.Env(), inst.RootInh)
	if err != nil {
		return fmt.Errorf("randaig: seed %d: base evaluation failed: %v", inst.Seed, err)
	}

	var kept, violated []xconstraint.Constraint
	seen := make(map[string]bool)
	for i := 0; i < 3*g.cfg.Constraints+4 && len(kept) < g.cfg.Constraints; i++ {
		c, ok := g.candidateConstraint(records)
		if !ok || seen[c.String()] {
			continue
		}
		seen[c.String()] = true
		if c.ValidateAgainst(g.d) != nil {
			continue
		}
		if len(c.Check(doc)) == 0 {
			kept = append(kept, c)
		} else {
			violated = append(violated, c)
		}
	}
	if g.cfg.AllowViolation && len(violated) > 0 && g.coin(0.4) {
		kept = append(kept, violated[0])
	}

	// Keep only constraints the guard compiler accepts.
	var final []xconstraint.Constraint
	for _, c := range kept {
		probe := inst.AIG.Clone()
		probe.Constraints = []xconstraint.Constraint{c}
		if _, err := specialize.CompileConstraints(probe); err == nil {
			final = append(final, c)
		}
	}
	inst.AIG.Constraints = final
	return nil
}

// record describes a sequence type with string text fields usable in
// constraints.
type record struct {
	elem   string
	fields []string
}

// recordTypes finds sequence types whose children include string text
// elements occurring exactly once — the legal constraint field shape.
func (g *gen) recordTypes() []record {
	reach := g.d.Reachable()
	var out []record
	for _, elem := range g.d.Types() {
		if !reach[elem] {
			continue
		}
		p, _ := g.d.Production(elem)
		if p.Kind != dtd.ProdSeq {
			continue
		}
		count := make(map[string]int)
		for _, c := range p.Children {
			count[c]++
		}
		var fields []string
		for c, n := range count {
			if n != 1 {
				continue
			}
			cp, _ := g.d.Production(c)
			if cp.Kind != dtd.ProdText {
				continue
			}
			r := g.a.Rules[c]
			if r == nil || r.TextSrc == (aig.SourceRef{}) {
				continue
			}
			if m, ok := g.a.Inh[c].Member(r.TextSrc.Member); ok && m.ValueKind == relstore.KindString {
				fields = append(fields, c)
			}
		}
		if len(fields) > 0 {
			sortStrings(fields)
			out = append(out, record{elem: elem, fields: fields})
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// candidateConstraint draws one random structurally plausible key or
// inclusion over the record types.
func (g *gen) candidateConstraint(records []record) (xconstraint.Constraint, bool) {
	tgt := records[g.r.Intn(len(records))]
	ctx, ok := g.pickContext(tgt.elem)
	if !ok || ctx == tgt.elem {
		// A context equal to the target would make the constraint range
		// over each target's own subtree; keep contexts strictly above.
		return xconstraint.Constraint{}, false
	}
	if len(records) < 2 || g.coin(0.6) {
		// Key on 1..2 fields.
		nf := 1
		if len(tgt.fields) > 1 && g.coin(0.4) {
			nf = 2
		}
		fields := append([]string(nil), tgt.fields...)
		g.r.Shuffle(len(fields), func(i, j int) { fields[i], fields[j] = fields[j], fields[i] })
		return xconstraint.Constraint{
			Kind: xconstraint.Key, Context: ctx,
			Target: tgt.elem, TargetFields: fields[:nf],
		}, true
	}
	src := records[g.r.Intn(len(records))]
	if src.elem == tgt.elem || src.elem == ctx {
		return xconstraint.Constraint{}, false
	}
	// Context must reach both sides.
	if !g.reachesFrom(ctx, src.elem) {
		return xconstraint.Constraint{}, false
	}
	return xconstraint.Constraint{
		Kind: xconstraint.Inclusion, Context: ctx,
		Source: src.elem, SourceFields: []string{src.fields[g.r.Intn(len(src.fields))]},
		Target: tgt.elem, TargetFields: []string{tgt.fields[g.r.Intn(len(tgt.fields))]},
	}, true
}

// pickContext selects a context type from which target is reachable:
// usually the root, sometimes a random intermediate ancestor type.
func (g *gen) pickContext(target string) (string, bool) {
	if g.coin(0.6) {
		if g.reachesFrom(g.d.Root, target) {
			return g.d.Root, true
		}
		return "", false
	}
	reach := g.d.Reachable()
	var cands []string
	for _, t := range g.d.Types() {
		if reach[t] && g.reachesFrom(t, target) {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return cands[g.r.Intn(len(cands))], true
}

// reachesFrom reports whether target is reachable from start in the DTD
// (start counts as reaching itself).
func (g *gen) reachesFrom(start, target string) bool {
	if start == target {
		return true
	}
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		p, ok := g.d.Production(t)
		if !ok {
			continue
		}
		for _, c := range p.Children {
			if c == target {
				return true
			}
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return false
}
