package randaig

import (
	"fmt"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
)

// Op kinds understood by Apply.
const (
	OpDropConstraint = "drop-constraint"
	OpKeepRows       = "keep-rows"
	OpPruneChild     = "prune-child"
)

// Op is one replayable shrink step. A failing instance is fully
// described by {seed, config, ops}: regenerate with Generate and apply
// the ops in order.
type Op struct {
	Kind string `json:"kind"`

	// Index selects the constraint to drop (OpDropConstraint).
	Index int `json:"index,omitempty"`

	// Source/Table/Keep restrict a table to the rows at the given indices,
	// in order (OpKeepRows). Indices refer to the table as it stands when
	// the op is applied, i.e. after any earlier keep-rows ops.
	Source string `json:"source,omitempty"`
	Table  string `json:"table,omitempty"`
	Keep   []int  `json:"keep,omitempty"`

	// Elem/Child remove every occurrence of Child from Elem's sequence
	// production, along with its inherited rule (OpPruneChild). The op
	// fails when the result no longer validates (e.g. a sibling or the
	// parent's Syn rule still references the child).
	Elem  string `json:"elem,omitempty"`
	Child string `json:"child,omitempty"`
}

func (op Op) String() string {
	switch op.Kind {
	case OpDropConstraint:
		return fmt.Sprintf("%s[%d]", op.Kind, op.Index)
	case OpKeepRows:
		return fmt.Sprintf("%s[%s:%s -> %d rows]", op.Kind, op.Source, op.Table, len(op.Keep))
	case OpPruneChild:
		return fmt.Sprintf("%s[%s/%s]", op.Kind, op.Elem, op.Child)
	default:
		return op.Kind
	}
}

// Apply returns a new instance with the op applied, leaving the receiver
// untouched. It returns an error when the op does not apply cleanly
// (out-of-range index, unknown table, or a prune that breaks static
// validity) — shrinkers treat that as "candidate rejected".
func (inst *Instance) Apply(op Op) (*Instance, error) {
	out := inst.clone()
	switch op.Kind {
	case OpDropConstraint:
		cs := out.AIG.Constraints
		if op.Index < 0 || op.Index >= len(cs) {
			return nil, fmt.Errorf("randaig: drop-constraint index %d out of range [0,%d)", op.Index, len(cs))
		}
		out.AIG.Constraints = append(cs[:op.Index:op.Index], cs[op.Index+1:]...)
	case OpKeepRows:
		db, err := out.Catalog.Database(op.Source)
		if err != nil {
			return nil, fmt.Errorf("randaig: keep-rows: %v", err)
		}
		t, err := db.Table(op.Table)
		if err != nil {
			return nil, fmt.Errorf("randaig: keep-rows: %v", err)
		}
		nt := relstore.NewTable(t.Name(), t.Schema())
		for _, i := range op.Keep {
			if i < 0 || i >= t.Len() {
				return nil, fmt.Errorf("randaig: keep-rows index %d out of range [0,%d)", i, t.Len())
			}
			nt.MustInsert(t.Row(i).Clone())
		}
		db.AddTable(nt) // replaces the old table under the same name
	case OpPruneChild:
		p, ok := out.AIG.DTD.Production(op.Elem)
		if !ok || p.Kind != dtd.ProdSeq {
			return nil, fmt.Errorf("randaig: prune-child: %s is not a sequence type", op.Elem)
		}
		var kept []string
		for _, c := range p.Children {
			if c != op.Child {
				kept = append(kept, c)
			}
		}
		if len(kept) == len(p.Children) {
			return nil, fmt.Errorf("randaig: prune-child: %s has no child %s", op.Elem, op.Child)
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("randaig: prune-child: refusing to empty the production of %s", op.Elem)
		}
		out.AIG.DTD.DefineSeq(op.Elem, kept...)
		if r := out.AIG.Rules[op.Elem]; r != nil {
			delete(r.Inh, op.Child)
		}
		if err := out.Validate(); err != nil {
			return nil, fmt.Errorf("randaig: prune-child %s/%s breaks validity: %v", op.Elem, op.Child, err)
		}
	default:
		return nil, fmt.Errorf("randaig: unknown op kind %q", op.Kind)
	}
	return out, nil
}

// ApplyAll applies the ops in order, failing on the first that does not
// apply.
func (inst *Instance) ApplyAll(ops []Op) (*Instance, error) {
	cur := inst
	for i, op := range ops {
		next, err := cur.Apply(op)
		if err != nil {
			return nil, fmt.Errorf("randaig: op %d (%s): %v", i, op, err)
		}
		cur = next
	}
	return cur, nil
}
