package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aigrepro/aig/internal/obs"
)

// routerMetrics bundles the router's instruments.
type routerMetrics struct {
	requests      *obs.Counter
	retries       *obs.Counter
	failovers     *obs.Counter
	overloadSkips *obs.Counter
	unrouted      *obs.Counter
	healthFlips   *obs.Counter
	healthy       *obs.Gauge
	inflight      *obs.Gauge
	requestSec    *obs.Histogram
}

func newRouterMetrics(r *obs.Registry) routerMetrics {
	return routerMetrics{
		requests:      r.NewCounter("aig_router_requests_total", "requests received by the cluster router"),
		retries:       r.NewCounter("aig_router_retries_total", "proxy attempts retried on another replica after a transport error or 5xx"),
		failovers:     r.NewCounter("aig_router_failovers_total", "requests served by a replica other than the key's home replica"),
		overloadSkips: r.NewCounter("aig_router_overload_skips_total", "candidate replicas skipped by the bounded-load rule"),
		unrouted:      r.NewCounter("aig_router_unrouted_total", "requests failed because no replica produced a response within the retry budget"),
		healthFlips:   r.NewCounter("aig_router_health_transitions_total", "replica health state changes observed by the prober"),
		healthy:       r.NewGauge("aig_router_healthy_replicas", "replicas currently passing health checks"),
		inflight:      r.NewGauge("aig_router_inflight_requests", "requests currently being proxied"),
		requestSec:    r.NewHistogram("aig_router_request_seconds", "end-to-end proxied request latency, retries included", obs.DurationBuckets),
	}
}

// replica is the router's view of one aigd instance.
type replica struct {
	url string // base URL, no trailing slash

	healthy   atomic.Bool
	inflight  atomic.Int64
	served    atomic.Int64
	lastErr   atomic.Value // string
	lastProbe atomic.Int64 // unix nanos
}

func (rep *replica) lastError() string {
	if v := rep.lastErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// RouterConfig tunes a Router. Replicas is the only required field.
type RouterConfig struct {
	// Replicas are the base URLs of the aigd fleet
	// ("http://host:port"); the membership is static for the router's
	// lifetime.
	Replicas []string
	// VNodes is the virtual-node count per replica (default 128).
	VNodes int
	// LoadBound caps a replica's share of in-flight requests at
	// LoadBound * (total inflight / healthy replicas), the bounded-load
	// variant of consistent hashing: a hot key spills to the next
	// replica on the ring instead of melting its home. Default 1.5;
	// negative disables the bound.
	LoadBound float64
	// Attempts caps how many replicas one request may try (default: all
	// of them).
	Attempts int
	// RetryBudget bounds the total time spent across all attempts for
	// one request (default 10s).
	RetryBudget time.Duration
	// HealthInterval is the probe period (default 500ms);
	// HealthTimeout bounds one probe (default 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// Logger receives one line per health transition and routing
	// failure (default slog.Default()).
	Logger *slog.Logger
	// Metrics is the registry the router's instruments live in
	// (default obs.Default).
	Metrics *obs.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.LoadBound == 0 {
		c.LoadBound = 1.5
	}
	if c.Attempts <= 0 || c.Attempts > len(c.Replicas) {
		c.Attempts = len(c.Replicas)
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	return c
}

// Router fronts a static fleet of aigd replicas: requests route by
// consistent hash of (path, canonical query) so each replica's result
// cache owns a shard of the keyspace, with bounded-load spill and
// retry-on-next-replica masking replica failures from clients.
type Router struct {
	cfg      RouterConfig
	ring     *ring
	replicas map[string]*replica
	client   *http.Client
	probe    *http.Client
	m        routerMetrics
	logger   *slog.Logger
	mux      *http.ServeMux

	inflight atomic.Int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewRouter builds a router over the given replica URLs and starts its
// health prober. Callers own serving its Handler and must Close it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	rt := &Router{
		cfg:      cfg,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		client:   &http.Client{}, // per-request timeouts come from the retry budget
		probe:    &http.Client{Timeout: cfg.HealthTimeout},
		m:        newRouterMetrics(cfg.Metrics),
		logger:   cfg.Logger,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	urls := make([]string, 0, len(cfg.Replicas))
	for _, u := range cfg.Replicas {
		u = strings.TrimRight(u, "/")
		if _, dup := rt.replicas[u]; dup {
			continue
		}
		rt.replicas[u] = &replica{url: u}
		urls = append(urls, u)
	}
	rt.ring = newRing(urls, cfg.VNodes)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /replicas", rt.handleReplicas)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("/", rt.handleProxy)
	rt.mux = mux

	// One synchronous probe round before serving, so the first request
	// does not race an all-unknown fleet.
	rt.probeAll()
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.stop) })
	<-rt.done
}

func (rt *Router) healthLoop() {
	defer close(rt.done)
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probeOne(rep)
		}(rep)
	}
	wg.Wait()
	n := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			n++
		}
	}
	rt.m.healthy.Set(float64(n))
}

func (rt *Router) probeOne(rep *replica) {
	rep.lastProbe.Store(time.Now().UnixNano())
	err := func() error {
		resp, err := rt.probe.Get(rep.url + "/healthz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return nil
	}()
	was := rep.healthy.Load()
	if err != nil {
		rep.lastErr.Store(err.Error())
		rep.healthy.Store(false)
		if was {
			rt.m.healthFlips.Inc()
			rt.logger.Warn("replica unhealthy", "replica", rep.url, "err", err)
		}
		return
	}
	rep.lastErr.Store("")
	rep.healthy.Store(true)
	if !was {
		rt.m.healthFlips.Inc()
		rt.logger.Info("replica healthy", "replica", rep.url)
	}
}

// routeKey is what the consistent hash routes on: the path plus the
// canonicalized (sorted) query, so "?a=1&b=2" and "?b=2&a=1" land on
// the same replica and hit the same cache entry.
func routeKey(r *http.Request) string {
	q := r.URL.Query()
	if len(q) == 0 {
		return r.URL.Path
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(r.URL.Path)
	b.WriteByte('?')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('&')
		}
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for j, v := range vs {
			if j > 0 {
				b.WriteByte('&')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

// candidates orders the replicas to try for one key: the ring walk,
// healthy ones first, with overloaded ones (bounded load) demoted but
// never dropped — when every candidate is past the bound or unhealthy,
// the least-bad one still gets the request rather than the client an
// error.
func (rt *Router) candidates(key string) []*replica {
	order := rt.ring.seq(key)
	total := int64(0)
	healthyN := 0
	for _, rep := range rt.replicas {
		total += rep.inflight.Load()
		if rep.healthy.Load() {
			healthyN++
		}
	}
	// Bounded load: cap each replica at LoadBound times the fair share
	// of in-flight requests. The +1 counts the request being placed.
	bound := int64(0)
	if rt.cfg.LoadBound > 0 && healthyN > 0 {
		bound = int64(rt.cfg.LoadBound * float64(total+1) / float64(healthyN))
		if bound < 1 {
			bound = 1
		}
	}
	var prime, spill, sick []*replica
	for _, u := range order {
		rep := rt.replicas[u]
		switch {
		case !rep.healthy.Load():
			sick = append(sick, rep)
		case bound > 0 && rep.inflight.Load() >= bound:
			rt.m.overloadSkips.Inc()
			spill = append(spill, rep)
		default:
			prime = append(prime, rep)
		}
	}
	return append(append(prime, spill...), sick...)
}

// retryableStatus reports whether another replica might answer where
// this one did not: bad gateway and service unavailable are replica
// conditions (draining, queue timeout, dead source connection), not
// request conditions.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// handleProxy forwards one request along the key's candidate order
// until a replica produces a non-retryable response.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.m.requests.Inc()
	rt.m.inflight.Set(float64(rt.inflight.Add(1)))
	defer func() {
		rt.m.inflight.Set(float64(rt.inflight.Add(-1)))
		rt.m.requestSec.Observe(time.Since(start).Seconds())
	}()

	// Buffer the request body so a retried POST replays identical bytes.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}

	key := routeKey(r)
	cands := rt.candidates(key)
	deadline := start.Add(rt.cfg.RetryBudget)
	var lastErr string
	for i, rep := range cands {
		if i >= rt.cfg.Attempts {
			break
		}
		if i > 0 {
			rt.m.retries.Inc()
			if time.Now().After(deadline) {
				break
			}
		}
		resp, err := rt.forward(r, rep, body, deadline)
		if err != nil {
			lastErr = rep.url + ": " + err.Error()
			rt.logger.Warn("proxy attempt failed", "replica", rep.url, "path", r.URL.Path, "err", err)
			continue
		}
		if retryableStatus(resp.status) && i+1 < len(cands) && i+1 < rt.cfg.Attempts {
			lastErr = fmt.Sprintf("%s: status %d", rep.url, resp.status)
			continue
		}
		if rep.url != cands[0].url && i > 0 {
			rt.m.failovers.Inc()
		}
		rep.served.Add(1)
		resp.writeTo(w)
		return
	}
	rt.m.unrouted.Inc()
	msg := "no replica available"
	if lastErr != "" {
		msg += ": last error: " + lastErr
	}
	http.Error(w, msg, http.StatusBadGateway)
}

// bufferedResponse is a fully-read replica response. Buffering is what
// makes retries safe: nothing is written to the client until one
// replica has produced a complete response, so a connection dying
// mid-body fails over instead of corrupting the client's read.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

func (b *bufferedResponse) writeTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	w.Write(b.body)
}

// forward sends the request to one replica and reads the full response.
func (rt *Router) forward(r *http.Request, rep *replica, body []byte, deadline time.Time) (*bufferedResponse, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)

	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, r.Method, rep.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	// Copy headers through verbatim — Traceparent in particular, so a
	// trace started by the client continues into the replica's flight
	// recorder and the hop is attributable end to end.
	for k, vs := range r.Header {
		out.Header[k] = vs
	}
	out.Header.Set("X-Forwarded-Host", r.Host)

	resp, err := rt.client.Do(out)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response: %w", err)
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: rb}, nil
}

// handleHealth answers for the fleet: 200 while at least one replica
// is healthy.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
}

// replicaStatus is one row of GET /replicas.
type replicaStatus struct {
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	Inflight  int64     `json:"inflight"`
	Served    int64     `json:"served"`
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"last_probe"`
}

// handleReplicas answers GET /replicas with the fleet's routing state.
func (rt *Router) handleReplicas(w http.ResponseWriter, r *http.Request) {
	out := make([]replicaStatus, 0, len(rt.replicas))
	for _, u := range rt.ring.members {
		rep := rt.replicas[u]
		out = append(out, replicaStatus{
			URL:       rep.url,
			Healthy:   rep.healthy.Load(),
			Inflight:  rep.inflight.Load(),
			Served:    rep.served.Load(),
			LastError: rep.lastError(),
			LastProbe: time.Unix(0, rep.lastProbe.Load()),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleMetrics answers GET /metrics in Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.cfg.Metrics.WritePrometheus(w)
	if rt.cfg.Metrics != obs.Default {
		obs.Default.WritePrometheus(w)
	}
}
