package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/obs"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(members, 64)
	r2 := newRing([]string{"http://c", "http://b", "http://a", "http://a"}, 64)

	for _, key := range []string{"/views/report?date=d1", "/views/report?date=d2", "x"} {
		s1, s2 := r1.seq(key), r2.seq(key)
		if len(s1) != 3 {
			t.Fatalf("seq(%q) = %v, want all 3 members", key, s1)
		}
		if fmt.Sprint(s1) != fmt.Sprint(s2) {
			t.Fatalf("ring not a pure function of membership: %v vs %v", s1, s2)
		}
		seen := map[string]bool{}
		for _, m := range s1 {
			seen[m] = true
		}
		if len(seen) != 3 {
			t.Fatalf("seq(%q) repeats members: %v", key, s1)
		}
	}
}

func TestRingBalanceAndChurn(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(members, 128)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.seq(fmt.Sprintf("/views/report?date=d%d", i))[0]]++
	}
	for m, c := range counts {
		if frac := float64(c) / keys; math.Abs(frac-0.25) > 0.10 {
			t.Fatalf("member %s owns %.1f%% of keys, want 25%%±10", m, 100*frac)
		}
	}

	// Removing one member must remap only that member's keys: every key
	// whose home survives keeps it (the whole point of consistency).
	smaller := newRing(members[:3], 128)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("/views/report?date=d%d", i)
		before := r.seq(key)[0]
		after := smaller.seq(key)[0]
		if before == "http://d" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from surviving member %s to %s", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were homed on the removed member")
	}
}

func TestRouteKeyCanonicalizesQuery(t *testing.T) {
	mk := func(raw string) *http.Request {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return &http.Request{URL: u}
	}
	a := routeKey(mk("/views/report?a=1&b=2"))
	b := routeKey(mk("/views/report?b=2&a=1"))
	if a != b {
		t.Fatalf("query order changed the route key: %q vs %q", a, b)
	}
	if c := routeKey(mk("/views/report?a=2&b=2")); c == a {
		t.Fatal("different parameter values share a route key")
	}
}

// echoReplica is a stand-in aigd: records hits, optionally fails.
type echoReplica struct {
	name   string
	hits   atomic.Int64
	fail   atomic.Bool // 503 every request
	dead   atomic.Bool // connection-level failure (hijack+close)
	drain  atomic.Bool // healthz 503, requests fine
	server *httptest.Server
}

func newEchoReplica(t *testing.T, name string) *echoReplica {
	e := &echoReplica{name: name}
	e.server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if e.drain.Load() || e.fail.Load() || e.dead.Load() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		if e.dead.Load() {
			c, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				c.Close()
			}
			return
		}
		if e.fail.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		e.hits.Add(1)
		w.Header().Set("X-Replica", e.name)
		if tp := r.Header.Get("Traceparent"); tp != "" {
			w.Header().Set("X-Echoed-Traceparent", tp)
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s %s %s", e.name, r.Method, r.URL.RequestURI(), body)
	}))
	t.Cleanup(e.server.Close)
	return e
}

func testRouter(t *testing.T, cfg RouterConfig, reps ...*echoReplica) (*Router, *httptest.Server, *obs.Registry) {
	t.Helper()
	for _, e := range reps {
		cfg.Replicas = append(cfg.Replicas, e.server.URL)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts, cfg.Metrics
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestRouterAffinityAndSpread(t *testing.T) {
	a, b, c := newEchoReplica(t, "a"), newEchoReplica(t, "b"), newEchoReplica(t, "c")
	_, ts, _ := testRouter(t, RouterConfig{LoadBound: -1}, a, b, c)

	// The same key always lands on the same replica (cache affinity)...
	var home string
	for i := 0; i < 10; i++ {
		resp, _ := get(t, ts.URL+"/views/report?date=d1")
		if home == "" {
			home = resp.Header.Get("X-Replica")
		} else if got := resp.Header.Get("X-Replica"); got != home {
			t.Fatalf("key moved from %s to %s with stable membership", home, got)
		}
	}
	// ...while distinct keys spread over the fleet.
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		resp, _ := get(t, fmt.Sprintf("%s/views/report?date=d%d", ts.URL, i))
		seen[resp.Header.Get("X-Replica")] = true
	}
	if len(seen) != 3 {
		t.Fatalf("60 distinct keys reached only %d of 3 replicas", len(seen))
	}
}

func TestRouterRetriesOnFailure(t *testing.T) {
	a, b := newEchoReplica(t, "a"), newEchoReplica(t, "b")
	_, ts, metrics := testRouter(t, RouterConfig{}, a, b)

	// Find a key homed on a, then kill a at the connection level: the
	// request must transparently fail over to b.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("/views/report?date=k%d", i)
		resp, _ := get(t, ts.URL+key)
		if resp.Header.Get("X-Replica") == "a" {
			break
		}
	}
	a.dead.Store(true)
	resp, body := get(t, ts.URL+key)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Replica") != "b" {
		t.Fatalf("failover request = %d %q via %q, want 200 via b", resp.StatusCode, body, resp.Header.Get("X-Replica"))
	}
	if metrics.NewCounter("aig_router_retries_total", "").Value() == 0 {
		t.Fatal("failover did not count a retry")
	}

	// 503 from a replica (draining) is retryable the same way.
	a.dead.Store(false)
	a.fail.Store(true)
	if resp, _ := get(t, ts.URL+key); resp.StatusCode != http.StatusOK || resp.Header.Get("X-Replica") != "b" {
		t.Fatalf("503 failover went to %q with status %d", resp.Header.Get("X-Replica"), resp.StatusCode)
	}

	// Every replica answering 503: the last upstream response passes
	// through (its status and Retry-After are more useful to the client
	// than a synthetic error).
	b.fail.Store(true)
	resp, body = get(t, ts.URL+key)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-503 request = %d %q, want the upstream 503 passed through", resp.StatusCode, body)
	}

	// No replica reachable at all: a clean 502 naming the last error,
	// not a hang.
	a.dead.Store(true)
	b.dead.Store(true)
	resp, body = get(t, ts.URL+key)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(body, "no replica available") {
		t.Fatalf("all-dead request = %d %q, want 502 no replica available", resp.StatusCode, body)
	}
}

func TestRouterHealthProbesSteerTraffic(t *testing.T) {
	a, b := newEchoReplica(t, "a"), newEchoReplica(t, "b")
	rt, ts, _ := testRouter(t, RouterConfig{}, a, b)

	a.drain.Store(true) // healthz 503; proxied requests would still work
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !rt.replicas[a.server.URL].healthy.Load() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rt.replicas[a.server.URL].healthy.Load() {
		t.Fatal("prober never marked the draining replica unhealthy")
	}

	// All keys now route to b without burning a retry on a.
	before := a.hits.Load()
	for i := 0; i < 20; i++ {
		resp, _ := get(t, fmt.Sprintf("%s/views/report?date=h%d", ts.URL, i))
		if got := resp.Header.Get("X-Replica"); got != "b" {
			t.Fatalf("request %d served by %q while a is unhealthy", i, got)
		}
	}
	if a.hits.Load() != before {
		t.Fatal("unhealthy replica still received proxied requests")
	}

	// The fleet endpoint stays up on one healthy replica, and /replicas
	// reports the split.
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz = %d with one healthy replica", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/replicas")
	if !strings.Contains(body, `"healthy":false`) || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("/replicas does not show the health split: %s", body)
	}

	a.drain.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !rt.replicas[a.server.URL].healthy.Load() {
		time.Sleep(5 * time.Millisecond)
	}
	if !rt.replicas[a.server.URL].healthy.Load() {
		t.Fatal("prober never recovered the replica")
	}
}

func TestRouterPassesTraceparentAndBody(t *testing.T) {
	a := newEchoReplica(t, "a")
	_, ts, _ := testRouter(t, RouterConfig{}, a)

	req, err := http.NewRequest("POST", ts.URL+"/mutate", strings.NewReader(`{"op":"insert"}`))
	if err != nil {
		t.Fatal(err)
	}
	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req.Header.Set("Traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if got := resp.Header.Get("X-Echoed-Traceparent"); got != tp {
		t.Fatalf("Traceparent did not pass through: %q", got)
	}
	if !strings.Contains(string(body), `{"op":"insert"}`) {
		t.Fatalf("request body did not pass through: %s", body)
	}
}
