// Package cluster is the horizontal-scaling tier: a consistent-hash
// router spreads view requests over a fleet of aigd replicas, each of
// which mirrors the sources by delta subscription (internal/remote's
// Mirror) instead of polling. The router exists for cache locality —
// the replicas' result caches and IVM refreshers are per-process, so
// sending the same (view, params) to the same replica turns N caches
// into one logical cache with N-way capacity, rather than N copies of
// the same hot entries.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring with virtual nodes. Each member is
// hashed onto the unit circle vnodes times; a key routes to the first
// member clockwise of its hash. Virtual nodes smooth the load split
// (with m members and v vnodes the expected imbalance shrinks as
// 1/sqrt(v)), and consistency bounds churn: adding or removing one
// member remaps only ~1/m of the keyspace, so a replica joining the
// fleet steals — and warms — only its own shard of the cache.
type ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// newRing builds a ring over the given members (deduplicated, sorted
// so the ring is a pure function of the membership set).
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &ring{members: uniq}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hash64 is FNV-1a over the key, finalized with a splitmix64-style
// mixer: FNV alone avalanches poorly into the high bits for short,
// similar strings (sequential parameter values, vnode suffixes), which
// skews the ring split; the multiply-xorshift rounds spread every input
// bit across the word. No adversarial collision resistance is needed —
// the keys are view names and parameters from our own clients.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// seq returns every member exactly once, in ring-walk order starting
// at the key's position. seq[0] is the home replica; the rest is the
// deterministic failover order, so retries after a replica failure
// also concentrate per key (the first fallback inherits the shard
// rather than scattering it fleet-wide).
func (r *ring) seq(key string) []string {
	if len(r.members) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[int]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
