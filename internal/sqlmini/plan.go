package sqlmini

import (
	"fmt"
	"math"

	"github.com/aigrepro/aig/internal/relstore"
)

// Stats supplies the basic database statistics the planner and the
// mediator's cost model use: table cardinalities and per-column distinct
// counts. Sources answer these for their own tables (the paper's "query
// costing API").
type Stats interface {
	TableCard(source, table string) (int, error)
	ColumnDistinct(source, table, column string) (int, error)
}

// CatalogStats computes exact statistics from a relstore catalog.
type CatalogStats struct{ Catalog *relstore.Catalog }

// TableCard implements Stats.
func (c CatalogStats) TableCard(source, table string) (int, error) {
	t, err := c.Catalog.Table(source, table)
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// ColumnDistinct implements Stats.
func (c CatalogStats) ColumnDistinct(source, table, column string) (int, error) {
	t, err := c.Catalog.Table(source, table)
	if err != nil {
		return 0, err
	}
	ci := t.Schema().ColumnIndex(column)
	if ci < 0 {
		return 0, fmt.Errorf("sqlmini: table %s:%s has no column %q", source, table, column)
	}
	return t.DistinctCount(ci), nil
}

// PlanOptions tunes planning and estimation.
type PlanOptions struct {
	// ParamCards estimates the row count of set-valued parameters by name.
	// Unlisted parameters default to DefaultParamCard.
	ParamCards map[string]int
	// DefaultParamCard is the assumed cardinality for parameter tables with
	// no explicit estimate. Zero means 10.
	DefaultParamCard int
}

func (o PlanOptions) paramCard(name string) float64 {
	if n, ok := o.ParamCards[name]; ok && n > 0 {
		return float64(n)
	}
	if o.DefaultParamCard > 0 {
		return float64(o.DefaultParamCard)
	}
	return 10
}

// Plan is a left-deep join plan: an ordering of the FROM tables plus cost
// estimates. Execution and decomposition both follow Order.
type Plan struct {
	Resolved *Resolved
	// Order lists FROM-table indexes in join order.
	Order []int
	// StepRows[k] is the estimated cardinality after joining the first k+1
	// tables of Order.
	StepRows []float64
	// EstRows is the estimated output cardinality.
	EstRows float64
	// EstCost is the estimated processing effort in abstract tuple units
	// (sum of intermediate result sizes), the basis for eval_cost.
	EstCost float64
	// EstBytes is the estimated output size in bytes.
	EstBytes float64
}

const defaultSelectivity = 1.0 / 3

// BuildPlan chooses a left-deep join order greedily: start from the table
// with the smallest filtered cardinality, then repeatedly add the
// join-connected table minimizing the estimated intermediate result.
// Cartesian steps are taken only when no connected table remains.
func BuildPlan(r *Resolved, stats Stats, opts PlanOptions) (*Plan, error) {
	n := len(r.TableSchemas)
	if n == 0 {
		return nil, fmt.Errorf("sqlmini: query has no FROM tables")
	}
	base := make([]float64, n)    // filtered cardinality per table
	rawCard := make([]float64, n) // unfiltered cardinality
	distinct := make([][]float64, n)
	for i := 0; i < n; i++ {
		ref := r.Query.From[i]
		schema := r.TableSchemas[i]
		distinct[i] = make([]float64, len(schema))
		if ref.IsParam() {
			rawCard[i] = opts.paramCard(ref.Param)
			for c := range schema {
				distinct[i][c] = rawCard[i]
			}
		} else {
			card, err := stats.TableCard(ref.Source, ref.Table)
			if err != nil {
				return nil, err
			}
			rawCard[i] = float64(card)
			for c, col := range schema {
				d, err := stats.ColumnDistinct(ref.Source, ref.Table, col.Name)
				if err != nil {
					return nil, err
				}
				distinct[i][c] = math.Max(1, float64(d))
			}
		}
		base[i] = math.Max(rawCard[i]*localSelectivity(r, i, distinct[i], opts), 0)
	}

	// distinctAt returns the distinct-count estimate for absolute column c.
	distinctAt := func(c int) float64 {
		ti := r.TableOf(c)
		return math.Max(1, distinct[ti][c-r.Offsets[ti]])
	}

	plan := &Plan{Resolved: r}
	used := make([]bool, n)
	// Seed with the smallest filtered table (ties break to lowest index for
	// determinism).
	best := 0
	for i := 1; i < n; i++ {
		if base[i] < base[best] {
			best = i
		}
	}
	plan.Order = append(plan.Order, best)
	used[best] = true
	rows := math.Max(base[best], 1)
	cost := rows
	plan.StepRows = append(plan.StepRows, rows)

	connected := func(i int) bool {
		for _, p := range r.Preds {
			if p.Kind != PredColCol {
				continue
			}
			lt, rt := r.TableOf(p.Left), r.TableOf(p.Right)
			if (lt == i && used[rt]) || (rt == i && used[lt]) {
				return true
			}
		}
		return false
	}

	joinRows := func(i int, cur float64) float64 {
		est := cur * math.Max(base[i], 1)
		for _, p := range r.Preds {
			if p.Kind != PredColCol || p.Op != OpEq {
				continue
			}
			lt, rt := r.TableOf(p.Left), r.TableOf(p.Right)
			var other int
			switch {
			case lt == i && used[rt]:
				other = p.Right
			case rt == i && used[lt]:
				other = p.Left
			default:
				continue
			}
			var own int
			if lt == i {
				own = p.Left
			} else {
				own = p.Right
			}
			est /= math.Max(distinctAt(own), distinctAt(other))
		}
		return math.Max(est, 0.01)
	}

	for len(plan.Order) < n {
		cand, candRows := -1, math.Inf(1)
		anyConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			conn := connected(i)
			if anyConnected && !conn {
				continue
			}
			est := joinRows(i, rows)
			if conn && !anyConnected {
				// First connected candidate displaces any cartesian pick.
				anyConnected = true
				cand, candRows = i, est
				continue
			}
			if est < candRows {
				cand, candRows = i, est
			}
		}
		plan.Order = append(plan.Order, cand)
		used[cand] = true
		rows = candRows
		cost += rows + base[cand]
		plan.StepRows = append(plan.StepRows, rows)
	}

	plan.EstRows = rows
	plan.EstCost = cost
	plan.EstBytes = rows * estTupleBytes(r.Output)
	return plan, nil
}

// localSelectivity estimates the combined selectivity of single-table
// predicates on table i.
func localSelectivity(r *Resolved, i int, distinct []float64, opts PlanOptions) float64 {
	sel := 1.0
	for _, p := range r.Preds {
		if r.TableOf(p.Left) != i {
			continue
		}
		own := p.Left - r.Offsets[i]
		d := math.Max(1, distinct[own])
		switch p.Kind {
		case PredColConst, PredColParam:
			if p.Op == OpEq {
				sel *= 1 / d
			} else {
				sel *= defaultSelectivity
			}
		case PredColInParam:
			sel *= math.Min(1, opts.paramCard(p.Param)/d)
		case PredColInList:
			sel *= math.Min(1, float64(len(p.List))/d)
		case PredColCol:
			if r.TableOf(p.Right) == i {
				sel *= 1 / d // self-equality within a table
			}
		}
	}
	return sel
}

func estTupleBytes(schema relstore.Schema) float64 {
	b := 0.0
	for _, c := range schema {
		if c.Kind == relstore.KindInt {
			b += 8
		} else {
			b += 16
		}
	}
	if b == 0 {
		b = 1
	}
	return b
}

// PlanAndEstimate is a convenience that resolves, plans, and returns the
// plan in one call; it is the entry point sources use to answer
// eval_cost/size requests.
func PlanAndEstimate(q *Query, schemas SchemaProvider, params ParamSchemas, stats Stats, opts PlanOptions) (*Plan, error) {
	r, err := Resolve(q, schemas, params)
	if err != nil {
		return nil, err
	}
	return BuildPlan(r, stats, opts)
}
