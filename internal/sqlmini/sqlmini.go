// Package sqlmini implements the SQL subset used by AIG semantic rules: the
// select-project-join fragment with conjunctive predicates, scalar and
// set-valued parameters, IN lists, and source-qualified table references
// ("DB1:patient"). It provides a lexer, parser, name resolver, a
// statistics-driven left-deep planner, an executor over relstore catalogs,
// and the cost-estimation API (eval_cost / size) that the mediator's
// Schedule and Merge algorithms consume.
//
// The fragment deliberately mirrors the queries in the paper (Q1..Q4 and
// the decomposed Q2', Q2”): conjunctions of equality/comparison
// predicates, parameters written $v.field (a field of a scalar tuple
// parameter such as Inh(report)), set parameters usable both as IN
// operands ("trId in $V") and as table references ("from $v2 T2").
package sqlmini

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/relstore"
)

// Query is the AST of a parsed (or programmatically built) query. Fields
// are exported so that the specializer and mediator can rewrite queries —
// decomposition, parameter-to-table conversion and merging all construct
// new Query values.
type Query struct {
	// Distinct requests duplicate elimination on the output (SELECT
	// DISTINCT).
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Pred
}

// SelectItem is one output column of a query.
type SelectItem struct {
	Expr ColRef
	As   string // output name; defaults to Expr.Column
}

// OutputName returns the name this item contributes to the result schema.
func (s SelectItem) OutputName() string {
	if s.As != "" {
		return s.As
	}
	return s.Expr.Column
}

// TableRef is one entry of the FROM clause: either a stored table
// ("DB1:patient p"), a mediator temporary table ("Mediator:tmp_3 t"), or a
// set-valued parameter used as a relation ("$v2 T2").
type TableRef struct {
	Source string // database name; empty for parameter refs
	Table  string // table name; empty for parameter refs
	Param  string // parameter name when this ref scans a set parameter
	Alias  string // binding name used in column references
}

// IsParam reports whether the ref scans a set-valued parameter.
func (t TableRef) IsParam() bool { return t.Param != "" }

// BindName returns the name by which columns reference this table: the
// alias if present, else the table or parameter name.
func (t TableRef) BindName() string {
	if t.Alias != "" {
		return t.Alias
	}
	if t.IsParam() {
		return t.Param
	}
	return t.Table
}

// ColRef names a column, optionally qualified by a table binding name.
type ColRef struct {
	Table  string // alias or table name; empty if unqualified
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// CompareOp is a comparison operator in a predicate.
type CompareOp uint8

// The supported comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Eval applies the operator to the comparison result of two values.
func (op CompareOp) Eval(a, b relstore.Value) bool {
	c := a.Compare(b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// PredKind discriminates the forms of predicate the fragment supports.
type PredKind uint8

// The predicate forms.
const (
	PredColCol     PredKind = iota // a.x <op> b.y
	PredColConst                   // a.x <op> literal
	PredColParam                   // a.x <op> $v.field   (scalar parameter field)
	PredColInParam                 // a.x IN $V           (set parameter)
	PredColInList                  // a.x IN (lit, ...)
)

// Pred is a single conjunct of the WHERE clause.
type Pred struct {
	Kind PredKind
	Op   CompareOp // for the three comparison forms
	Left ColRef

	Right      ColRef         // PredColCol
	Const      relstore.Value // PredColConst
	Param      string         // PredColParam / PredColInParam: parameter name
	ParamField string         // PredColParam: field of the scalar parameter
	List       []relstore.Value
}

// String renders the predicate in parseable SQL syntax.
func (p Pred) String() string {
	switch p.Kind {
	case PredColCol:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	case PredColConst:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, litSQL(p.Const))
	case PredColParam:
		return fmt.Sprintf("%s %s $%s.%s", p.Left, p.Op, p.Param, p.ParamField)
	case PredColInParam:
		return fmt.Sprintf("%s in $%s", p.Left, p.Param)
	case PredColInList:
		parts := make([]string, len(p.List))
		for i, v := range p.List {
			parts[i] = litSQL(v)
		}
		return fmt.Sprintf("%s in (%s)", p.Left, strings.Join(parts, ", "))
	default:
		return "<bad pred>"
	}
}

func litSQL(v relstore.Value) string {
	if v.Kind() == relstore.KindString {
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	}
	return v.Text()
}

// String renders the query as parseable SQL, the wire form shipped to
// remote sources.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Expr.String())
		if s.As != "" && s.As != s.Expr.Column {
			b.WriteString(" as " + s.As)
		}
	}
	b.WriteString(" from ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		if t.IsParam() {
			b.WriteString("$" + t.Param)
		} else if t.Source != "" {
			b.WriteString(t.Source + ":" + t.Table)
		} else {
			b.WriteString(t.Table)
		}
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" where ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}

// Clone returns a deep copy of the query AST.
func (q *Query) Clone() *Query {
	out := &Query{
		Distinct: q.Distinct,
		Select:   append([]SelectItem(nil), q.Select...),
		From:     append([]TableRef(nil), q.From...),
		Where:    make([]Pred, len(q.Where)),
	}
	for i, p := range q.Where {
		p.List = append([]relstore.Value(nil), p.List...)
		out.Where[i] = p
	}
	return out
}

// Sources returns the sorted set of distinct database names referenced in
// the FROM clause. A query is multi-source iff len(Sources()) > 1; the
// specializer decomposes such queries into per-source sub-queries.
func (q *Query) Sources() []string {
	set := make(map[string]bool)
	for _, t := range q.From {
		if !t.IsParam() && t.Source != "" {
			set[t.Source] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Params returns the sorted set of parameter names the query references,
// both scalar field references and set-valued uses.
func (q *Query) Params() []string {
	set := make(map[string]bool)
	for _, t := range q.From {
		if t.IsParam() {
			set[t.Param] = true
		}
	}
	for _, p := range q.Where {
		if p.Kind == PredColParam || p.Kind == PredColInParam {
			set[p.Param] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Binding is the value of one parameter at execution time: a small
// relation. Scalar tuple parameters (e.g. Inh(report)) have exactly one
// row; set parameters (e.g. the trIdS synthesized attribute) have any
// number of rows.
type Binding struct {
	Schema relstore.Schema
	Rows   []relstore.Tuple
}

// ScalarBinding builds a one-row binding from parallel field names and
// values.
func ScalarBinding(fields []string, row relstore.Tuple) Binding {
	schema := make(relstore.Schema, len(fields))
	for i, f := range fields {
		kind := relstore.KindString
		if i < len(row) {
			kind = row[i].Kind()
		}
		if kind == relstore.KindNull {
			kind = relstore.KindString
		}
		schema[i] = relstore.Column{Name: f, Kind: kind}
	}
	return Binding{Schema: schema, Rows: []relstore.Tuple{row}}
}

// TableBinding wraps a table as a binding.
func TableBinding(t *relstore.Table) Binding {
	return Binding{Schema: t.Schema(), Rows: t.Rows()}
}

// Field returns the value of the named field of a scalar (single-row)
// binding.
func (b Binding) Field(name string) (relstore.Value, error) {
	i := b.Schema.ColumnIndex(name)
	if i < 0 {
		return relstore.Null, fmt.Errorf("sqlmini: parameter has no field %q (fields: %v)", name, b.Schema.Names())
	}
	if len(b.Rows) == 0 {
		return relstore.Null, nil
	}
	return b.Rows[0][i], nil
}

// Table materializes the binding as a relstore table with the given name.
func (b Binding) Table(name string) *relstore.Table {
	t := relstore.NewTable(name, b.Schema)
	for _, r := range b.Rows {
		t.MustInsert(r.Clone())
	}
	return t
}

// Params maps parameter names to bindings for one execution.
type Params map[string]Binding
