package sqlmini

import (
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

func mkTable(name string, cols []string, rows ...[]any) *relstore.Table {
	t := relstore.NewTable(name, relstore.MustSchema(cols...))
	for _, r := range rows {
		if err := t.InsertValues(r...); err != nil {
			panic(err)
		}
	}
	return t
}

func TestOuterUnion(t *testing.T) {
	a := mkTable("a", []string{"x:string", "y:int"}, []any{"p", 1}, []any{"q", 2})
	b := mkTable("b", []string{"x:string", "z:string"}, []any{"r", "Z"})
	u, err := OuterUnion("u", []*relstore.Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Schema().Names(); len(got) != 4 || got[0] != "x" || got[1] != "y" || got[2] != "z" || got[3] != TagColumn {
		t.Fatalf("union schema = %v", got)
	}
	if u.Len() != 3 {
		t.Fatalf("union has %d rows, want 3", u.Len())
	}
	// b's row must have Null y and tag 1.
	last := u.Row(2)
	if !last[1].IsNull() || last[3].AsInt() != 1 || last[2].AsString() != "Z" {
		t.Errorf("padded row wrong: %v", last)
	}

	// Extraction restores the original parts exactly.
	backA, err := ExtractPart("a", u, 0, a.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !backA.Equal(a) {
		t.Errorf("ExtractPart(0) = %v, want %v", backA, a)
	}
	backB, err := ExtractPart("b", u, 1, b.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !backB.Equal(b) {
		t.Errorf("ExtractPart(1) = %v, want %v", backB, b)
	}
}

func TestOuterUnionConflictsAndErrors(t *testing.T) {
	a := mkTable("a", []string{"x:string"}, []any{"p"})
	b := mkTable("b", []string{"x:int"}, []any{1})
	if _, err := OuterUnion("u", []*relstore.Table{a, b}); err == nil {
		t.Error("kind-conflicting union accepted")
	}
	c := mkTable("c", []string{TagColumn + ":int"}, []any{1})
	if _, err := OuterUnion("u", []*relstore.Table{c}); err == nil {
		t.Error("tag-colliding union accepted")
	}
	if _, err := ExtractPart("p", a, 0, a.Schema()); err == nil {
		t.Error("ExtractPart on non-union accepted")
	}
	u, _ := OuterUnion("u", []*relstore.Table{a})
	if _, err := ExtractPart("p", u, 0, relstore.MustSchema("zz:string")); err == nil {
		t.Error("ExtractPart with unknown column accepted")
	}
}

func TestLeftOuterJoin(t *testing.T) {
	l := mkTable("l", []string{"k:string", "a:int"}, []any{"x", 1}, []any{"y", 2}, []any{"z", 3})
	r := mkTable("r", []string{"k:string", "b:string"}, []any{"x", "bx"}, []any{"x", "bx2"}, []any{"y", "by"})
	j, err := LeftOuterJoin("j", l, r, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("outer join has %d rows, want 4", j.Len())
	}
	// z row must be null-padded.
	var sawNull bool
	for _, row := range j.Rows() {
		if row[0].AsString() == "z" {
			if !row[2].IsNull() || !row[3].IsNull() {
				t.Errorf("unmatched row not padded: %v", row)
			}
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("unmatched left row missing from outer join")
	}
	// Schema disambiguation: right "k" becomes "k_2".
	if names := j.Schema().Names(); names[2] != "k_2" {
		t.Errorf("joined schema = %v", names)
	}
	if _, err := LeftOuterJoin("j", l, r, []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched key arity accepted")
	}
}

func TestProjectColumns(t *testing.T) {
	a := mkTable("a", []string{"x:string", "y:int"}, []any{"p", 1})
	p, err := ProjectColumns("p", a, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Names()[0] != "y" || p.Row(0)[0].AsInt() != 1 {
		t.Errorf("projection wrong: %v", p)
	}
	if _, err := ProjectColumns("p", a, []string{"nope"}); err == nil {
		t.Error("projecting missing column accepted")
	}
}

func TestUnion(t *testing.T) {
	a := mkTable("a", []string{"x:int"}, []any{1})
	b := mkTable("b", []string{"x:int"}, []any{2}, []any{1})
	u, err := Union("u", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("union has %d rows, want 3 (bag union)", u.Len())
	}
	c := mkTable("c", []string{"y:int"}, []any{9})
	if _, err := Union("u", a, c); err == nil {
		t.Error("schema-mismatched union accepted")
	}
	if _, err := Union("u"); err == nil {
		t.Error("empty union accepted")
	}
}
