package sqlmini

import (
	"fmt"

	"github.com/aigrepro/aig/internal/relstore"
)

// SchemaProvider supplies table schemas during resolution. The relstore
// Catalog, the source registry, and the mediator's temporary-table
// namespace all implement it.
type SchemaProvider interface {
	TableSchema(source, table string) (relstore.Schema, error)
}

// CatalogSchemas adapts a relstore.Catalog into a SchemaProvider.
type CatalogSchemas struct{ Catalog *relstore.Catalog }

// TableSchema implements SchemaProvider.
func (c CatalogSchemas) TableSchema(source, table string) (relstore.Schema, error) {
	t, err := c.Catalog.Table(source, table)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// ParamSchemas maps parameter names to the schemas of their bindings, for
// compile-time resolution before values exist.
type ParamSchemas map[string]relstore.Schema

// ParamSchemasOf extracts the schemas from a runtime Params map.
func ParamSchemasOf(params Params) ParamSchemas {
	out := make(ParamSchemas, len(params))
	for name, b := range params {
		out[name] = b.Schema
	}
	return out
}

// Resolved is a name-resolved query: every column reference is mapped to
// an absolute position in the concatenated row layout (tables in FROM
// order), and the output schema is known.
type Resolved struct {
	Query *Query

	// TableSchemas holds the schema of each FROM entry in order.
	TableSchemas []relstore.Schema
	// Offsets[i] is the absolute column offset of table i's first column.
	Offsets []int
	// Output is the result schema (names from select items, kinds from the
	// referenced columns).
	Output relstore.Schema
	// SelectCols[i] is the absolute column of select item i.
	SelectCols []int
	// Preds are the WHERE conjuncts with absolute column positions.
	Preds []ResolvedPred
}

// ResolvedPred mirrors Pred with column references resolved to absolute
// positions in the concatenated row.
type ResolvedPred struct {
	Kind       PredKind
	Op         CompareOp
	Left       int
	Right      int // PredColCol
	Const      relstore.Value
	Param      string
	ParamField string
	List       []relstore.Value
}

// TableOf returns the index of the FROM table owning absolute column c.
func (r *Resolved) TableOf(c int) int {
	for i := len(r.Offsets) - 1; i >= 0; i-- {
		if c >= r.Offsets[i] {
			return i
		}
	}
	return 0
}

// Width returns the total number of columns in the concatenated row.
func (r *Resolved) Width() int {
	n := len(r.TableSchemas)
	if n == 0 {
		return 0
	}
	return r.Offsets[n-1] + len(r.TableSchemas[n-1])
}

// Resolve resolves q against the given schemas. Every table reference must
// be found, every column reference must be unambiguous, and comparison
// operand kinds must be compatible.
func Resolve(q *Query, schemas SchemaProvider, params ParamSchemas) (*Resolved, error) {
	r := &Resolved{Query: q}
	binds := make(map[string]int, len(q.From)) // bind name -> table index
	offset := 0
	for i, ref := range q.From {
		var schema relstore.Schema
		var err error
		if ref.IsParam() {
			var ok bool
			schema, ok = params[ref.Param]
			if !ok {
				return nil, fmt.Errorf("sqlmini: unknown set parameter $%s in FROM", ref.Param)
			}
		} else {
			schema, err = schemas.TableSchema(ref.Source, ref.Table)
			if err != nil {
				return nil, err
			}
		}
		name := ref.BindName()
		if _, dup := binds[name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate table binding %q; add an alias", name)
		}
		binds[name] = i
		r.TableSchemas = append(r.TableSchemas, schema)
		r.Offsets = append(r.Offsets, offset)
		offset += len(schema)
	}

	resolveCol := func(c ColRef) (int, relstore.Column, error) {
		if c.Table != "" {
			ti, ok := binds[c.Table]
			if !ok {
				return 0, relstore.Column{}, fmt.Errorf("sqlmini: unknown table %q in column %s", c.Table, c)
			}
			ci := r.TableSchemas[ti].ColumnIndex(c.Column)
			if ci < 0 {
				return 0, relstore.Column{}, fmt.Errorf("sqlmini: table %q has no column %q", c.Table, c.Column)
			}
			return r.Offsets[ti] + ci, r.TableSchemas[ti][ci], nil
		}
		found := -1
		var col relstore.Column
		for ti, schema := range r.TableSchemas {
			if ci := schema.ColumnIndex(c.Column); ci >= 0 {
				if found >= 0 {
					return 0, relstore.Column{}, fmt.Errorf("sqlmini: ambiguous column %q", c.Column)
				}
				found = r.Offsets[ti] + ci
				col = schema[ci]
			}
		}
		if found < 0 {
			return 0, relstore.Column{}, fmt.Errorf("sqlmini: unknown column %q", c.Column)
		}
		return found, col, nil
	}

	for _, item := range q.Select {
		abs, col, err := resolveCol(item.Expr)
		if err != nil {
			return nil, err
		}
		r.SelectCols = append(r.SelectCols, abs)
		r.Output = append(r.Output, relstore.Column{Name: item.OutputName(), Kind: col.Kind})
	}
	// Output column names must be unique; renaming via AS resolves clashes.
	seen := make(map[string]bool, len(r.Output))
	for _, c := range r.Output {
		if seen[c.Name] {
			return nil, fmt.Errorf("sqlmini: duplicate output column %q; use AS to rename", c.Name)
		}
		seen[c.Name] = true
	}

	for _, p := range q.Where {
		abs, col, err := resolveCol(p.Left)
		if err != nil {
			return nil, err
		}
		rp := ResolvedPred{Kind: p.Kind, Op: p.Op, Left: abs, Const: p.Const,
			Param: p.Param, ParamField: p.ParamField, List: p.List}
		switch p.Kind {
		case PredColCol:
			rabs, rcol, err := resolveCol(p.Right)
			if err != nil {
				return nil, err
			}
			if rcol.Kind != col.Kind {
				return nil, fmt.Errorf("sqlmini: comparing %s column %s with %s column %s",
					col.Kind, p.Left, rcol.Kind, p.Right)
			}
			rp.Right = rabs
		case PredColConst:
			if !p.Const.IsNull() && p.Const.Kind() != col.Kind {
				return nil, fmt.Errorf("sqlmini: comparing %s column %s with %s literal", col.Kind, p.Left, p.Const.Kind())
			}
		case PredColParam:
			schema, ok := params[p.Param]
			if !ok {
				return nil, fmt.Errorf("sqlmini: unknown parameter $%s", p.Param)
			}
			if schema.ColumnIndex(p.ParamField) < 0 {
				return nil, fmt.Errorf("sqlmini: parameter $%s has no field %q (fields: %v)", p.Param, p.ParamField, schema.Names())
			}
		case PredColInParam:
			schema, ok := params[p.Param]
			if !ok {
				return nil, fmt.Errorf("sqlmini: unknown parameter $%s", p.Param)
			}
			if len(schema) != 1 {
				return nil, fmt.Errorf("sqlmini: IN parameter $%s must have exactly one column, has %d", p.Param, len(schema))
			}
		case PredColInList:
			for _, v := range p.List {
				if v.Kind() != col.Kind {
					return nil, fmt.Errorf("sqlmini: IN list for %s column %s contains %s literal", col.Kind, p.Left, v.Kind())
				}
			}
		}
		r.Preds = append(r.Preds, rp)
	}
	return r, nil
}
