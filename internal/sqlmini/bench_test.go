package sqlmini

import (
	"fmt"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

func benchCatalog(rows int) *relstore.Catalog {
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	left := db.CreateTable("left", relstore.MustSchema("k:string", "a:int"))
	right := db.CreateTable("right", relstore.MustSchema("k:string", "b:int"))
	for i := 0; i < rows; i++ {
		k := relstore.String(fmt.Sprintf("k%06d", i))
		left.MustInsert(relstore.Tuple{k, relstore.Int(int64(i))})
		right.MustInsert(relstore.Tuple{k, relstore.Int(int64(i * 2))})
	}
	cat.Add(db)
	return cat
}

// BenchmarkHashJoin measures the executor's equi-join throughput.
func BenchmarkHashJoin(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		cat := benchCatalog(rows)
		q := MustParse(`select l.a, r.b from DB:left l, DB:right r where l.k = r.k and l.a >= 0`)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := Run("out", q, CatalogSchemas{cat}, CatalogData{cat}, CatalogStats{cat}, nil, PlanOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != rows {
					b.Fatalf("join returned %d rows", out.Len())
				}
			}
		})
	}
}

// BenchmarkParse measures the SQL parser on the paper's Q2.
func BenchmarkParse(b *testing.B) {
	const q2 = `select t.trId, t.tname from DB1:visitInfo i, DB2:cover c, DB4:treatment t
		where i.SSN = $v.SSN and i.date = $v.date and t.trId = i.trId
		and c.trId = i.trId and c.policy = $v.policy`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParamJoin measures the set-parameter (IN) execution path the
// mediator's rewritten queries rely on.
func BenchmarkParamJoin(b *testing.B) {
	cat := benchCatalog(10000)
	q := MustParse(`select a from DB:left where k in $V`)
	var rows []relstore.Tuple
	for i := 0; i < 500; i++ {
		rows = append(rows, relstore.Tuple{relstore.String(fmt.Sprintf("k%06d", i*7))})
	}
	params := Params{"V": {Schema: relstore.MustSchema("k:string"), Rows: rows}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run("out", q, CatalogSchemas{cat}, CatalogData{cat}, CatalogStats{cat}, params, PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() == 0 {
			b.Fatal("no rows")
		}
	}
}
