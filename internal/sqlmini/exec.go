package sqlmini

import (
	"fmt"

	"github.com/aigrepro/aig/internal/relstore"
)

// DataProvider supplies table contents at execution time.
type DataProvider interface {
	TableData(source, table string) (*relstore.Table, error)
}

// CatalogData adapts a relstore catalog into a DataProvider.
type CatalogData struct{ Catalog *relstore.Catalog }

// TableData implements DataProvider.
func (c CatalogData) TableData(source, table string) (*relstore.Table, error) {
	return c.Catalog.Table(source, table)
}

// Exec executes the plan against the data provider with the given
// parameter bindings and returns the result as a table named name.
// Bag semantics: duplicates are preserved.
func Exec(name string, plan *Plan, data DataProvider, params Params) (*relstore.Table, error) {
	r := plan.Resolved
	n := len(r.TableSchemas)

	env, err := newParamEnv(r, params)
	if err != nil {
		return nil, err
	}

	metricQueries.Inc()

	// Materialize filtered base rows per table.
	baseRows := make([][]relstore.Tuple, n)
	for i := 0; i < n; i++ {
		rows, err := baseTableRows(r, i, data, params)
		if err != nil {
			return nil, err
		}
		metricRowsScanned.Add(int64(len(rows)))
		baseRows[i] = filterLocal(r, i, rows, env)
	}

	// layoutPos[t] is the column offset of table t in the current
	// intermediate row layout (-1 when not yet joined).
	layoutPos := make([]int, n)
	for i := range layoutPos {
		layoutPos[i] = -1
	}
	// abs translates an absolute resolved column to a layout position.
	abs := func(c int) int {
		t := r.TableOf(c)
		return layoutPos[t] + (c - r.Offsets[t])
	}

	var current []relstore.Tuple
	width := 0
	appliedPred := make([]bool, len(r.Preds))

	markLocalApplied := func(ti int) {
		for pi, p := range r.Preds {
			if isLocalPred(r, p, ti) {
				appliedPred[pi] = true
			}
		}
	}

	for step, ti := range plan.Order {
		markLocalApplied(ti)
		next := baseRows[ti]
		if step == 0 {
			current = make([]relstore.Tuple, len(next))
			for i, row := range next {
				current[i] = row
			}
			layoutPos[ti] = 0
			width = len(r.TableSchemas[ti])
			continue
		}

		// Equality join predicates between the joined prefix and table ti.
		var probeCols, buildCols []int // layout positions vs next-table-local positions
		var pendIdx []int
		for pi, p := range r.Preds {
			if appliedPred[pi] || p.Kind != PredColCol {
				continue
			}
			lt, rt := r.TableOf(p.Left), r.TableOf(p.Right)
			var prefixCol, ownCol int
			switch {
			case lt == ti && layoutPos[rt] >= 0:
				ownCol, prefixCol = p.Left-r.Offsets[ti], abs(p.Right)
			case rt == ti && layoutPos[lt] >= 0:
				ownCol, prefixCol = p.Right-r.Offsets[ti], abs(p.Left)
			default:
				continue
			}
			if p.Op == OpEq {
				probeCols = append(probeCols, prefixCol)
				buildCols = append(buildCols, ownCol)
				appliedPred[pi] = true
			} else {
				pendIdx = append(pendIdx, pi)
			}
		}

		var joined []relstore.Tuple
		if len(buildCols) > 0 {
			// Hash join: build on the new table, probe with the prefix.
			buckets := make(map[string][]relstore.Tuple, len(next))
			for _, row := range next {
				k := row.KeyOn(buildCols)
				buckets[k] = append(buckets[k], row)
			}
			for _, prow := range current {
				k := prow.KeyOn(probeCols)
				for _, nrow := range buckets[k] {
					joined = append(joined, prow.Concat(nrow))
				}
			}
		} else {
			// Cartesian product (rare; only for disconnected queries).
			for _, prow := range current {
				for _, nrow := range next {
					joined = append(joined, prow.Concat(nrow))
				}
			}
		}
		layoutPos[ti] = width
		width += len(r.TableSchemas[ti])

		// Apply non-equi cross-table predicates that just became bound.
		if len(pendIdx) > 0 {
			filtered := joined[:0]
			for _, row := range joined {
				ok := true
				for _, pi := range pendIdx {
					p := r.Preds[pi]
					if !p.Op.Eval(row[abs(p.Left)], row[abs(p.Right)]) {
						ok = false
						break
					}
				}
				if ok {
					filtered = append(filtered, row)
				}
			}
			joined = filtered
			for _, pi := range pendIdx {
				appliedPred[pi] = true
			}
		}
		current = joined
	}

	// Any predicate not yet applied (e.g. cross-table preds over a
	// cartesian pair) is applied now.
	for pi, p := range r.Preds {
		if appliedPred[pi] {
			continue
		}
		filtered := current[:0]
		for _, row := range current {
			if evalPredOnLayout(p, row, abs, env) {
				filtered = append(filtered, row)
			}
		}
		current = filtered
	}

	out := relstore.NewTable(name, r.Output.Project(identity(len(r.Output))))
	for _, row := range current {
		proj := make(relstore.Tuple, len(r.SelectCols))
		for i, c := range r.SelectCols {
			proj[i] = row[abs(c)]
		}
		if err := out.Insert(proj); err != nil {
			return nil, err
		}
	}
	if r.Query.Distinct {
		out.Distinct()
	}
	metricRowsReturned.Add(int64(out.Len()))
	return out, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// paramEnv caches evaluated parameter operands: scalar field values and IN
// sets.
type paramEnv struct {
	fields map[string]relstore.Value  // "param.field" -> value
	inSets map[string]map[string]bool // param -> set of value keys
}

func newParamEnv(r *Resolved, params Params) (*paramEnv, error) {
	env := &paramEnv{fields: make(map[string]relstore.Value), inSets: make(map[string]map[string]bool)}
	for _, p := range r.Preds {
		switch p.Kind {
		case PredColParam:
			key := p.Param + "." + p.ParamField
			if _, done := env.fields[key]; done {
				continue
			}
			b, ok := params[p.Param]
			if !ok {
				return nil, fmt.Errorf("sqlmini: missing binding for parameter $%s", p.Param)
			}
			v, err := b.Field(p.ParamField)
			if err != nil {
				return nil, err
			}
			env.fields[key] = v
		case PredColInParam:
			if _, done := env.inSets[p.Param]; done {
				continue
			}
			b, ok := params[p.Param]
			if !ok {
				return nil, fmt.Errorf("sqlmini: missing binding for parameter $%s", p.Param)
			}
			if len(b.Schema) != 1 {
				return nil, fmt.Errorf("sqlmini: IN parameter $%s must have one column, has %d", p.Param, len(b.Schema))
			}
			set := make(map[string]bool, len(b.Rows))
			for _, row := range b.Rows {
				set[row[0].Key()] = true
			}
			env.inSets[p.Param] = set
		}
	}
	return env, nil
}

func baseTableRows(r *Resolved, i int, data DataProvider, params Params) ([]relstore.Tuple, error) {
	ref := r.Query.From[i]
	if ref.IsParam() {
		b, ok := params[ref.Param]
		if !ok {
			return nil, fmt.Errorf("sqlmini: missing binding for table parameter $%s", ref.Param)
		}
		if !b.Schema.Equal(r.TableSchemas[i]) {
			return nil, fmt.Errorf("sqlmini: binding for $%s has schema %v, resolved as %v", ref.Param, b.Schema, r.TableSchemas[i])
		}
		return b.Rows, nil
	}
	t, err := data.TableData(ref.Source, ref.Table)
	if err != nil {
		return nil, err
	}
	if !t.Schema().Equal(r.TableSchemas[i]) {
		return nil, fmt.Errorf("sqlmini: table %s:%s schema changed since resolution", ref.Source, ref.Table)
	}
	return t.Rows(), nil
}

func isLocalPred(r *Resolved, p ResolvedPred, ti int) bool {
	if r.TableOf(p.Left) != ti {
		return false
	}
	if p.Kind == PredColCol {
		return r.TableOf(p.Right) == ti
	}
	return true
}

// filterLocal applies all single-table predicates of table i to its rows.
func filterLocal(r *Resolved, i int, rows []relstore.Tuple, env *paramEnv) []relstore.Tuple {
	var preds []ResolvedPred
	for _, p := range r.Preds {
		if isLocalPred(r, p, i) {
			preds = append(preds, p)
		}
	}
	if len(preds) == 0 {
		return rows
	}
	off := r.Offsets[i]
	local := func(c int) int { return c - off }
	out := make([]relstore.Tuple, 0, len(rows))
	for _, row := range rows {
		ok := true
		for _, p := range preds {
			if !evalPredOnLayout(p, row, local, env) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// evalPredOnLayout evaluates a predicate on a row given a translation from
// absolute resolved columns to row positions.
func evalPredOnLayout(p ResolvedPred, row relstore.Tuple, at func(int) int, env *paramEnv) bool {
	left := row[at(p.Left)]
	switch p.Kind {
	case PredColCol:
		return p.Op.Eval(left, row[at(p.Right)])
	case PredColConst:
		return p.Op.Eval(left, p.Const)
	case PredColParam:
		return p.Op.Eval(left, env.fields[p.Param+"."+p.ParamField])
	case PredColInParam:
		return env.inSets[p.Param][left.Key()]
	case PredColInList:
		for _, v := range p.List {
			if left.Equal(v) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Run resolves, plans and executes q in one call — the convenience path
// used by the conceptual evaluator, which runs each query per node rather
// than set-at-a-time.
func Run(name string, q *Query, schemas SchemaProvider, data DataProvider, stats Stats, params Params, opts PlanOptions) (*relstore.Table, error) {
	plan, err := PlanAndEstimate(q, schemas, ParamSchemasOf(params), stats, opts)
	if err != nil {
		return nil, err
	}
	return Exec(name, plan, data, params)
}
