package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/aigrepro/aig/internal/relstore"
)

// Parse parses a query in the supported SQL fragment:
//
//	select p.SSN, p.pname as name
//	from DB1:patient p, DB1:visitInfo i, $v2 T2
//	where p.SSN = i.SSN and i.date = $v.date and i.trId in $V and x in ('a','b')
//
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(input string) (*Query, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after end of query", p.peek().kind)
	}
	return q, nil
}

// MustParse is Parse panicking on error, for statically known queries in
// tests and examples.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	input string
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("sqlmini: %s at offset %d in %q", msg, p.peek().pos, p.input)
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.peek().kind != kind {
		return token{}, p.errorf("expected %s, found %s", kind, p.peek().kind)
	}
	return p.advance(), nil
}

// keyword consumes an identifier token with the given lower-case keyword
// text, reporting whether it matched.
func (p *parser) keyword(kw string) bool {
	if p.peek().kind == tokIdent && strings.ToLower(p.peek().text) == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("select") {
		return nil, p.errorf("expected 'select', found %s", p.peek().kind)
	}
	q := &Query{}
	if p.keyword("distinct") {
		q.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if !p.keyword("from") {
		return nil, p.errorf("expected 'from', found %s", p.peek().kind)
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.keyword("where") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.keyword("and") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	ref, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: ref}
	if p.keyword("as") {
		name, err := p.expect(tokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.As = name.text
	}
	return item, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if isReserved(first.text) {
		return ColRef{}, p.errorf("reserved word %q used as identifier", first.text)
	}
	if p.peek().kind == tokDot {
		p.advance()
		col, err := p.expect(tokIdent)
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first.text, Column: col.text}, nil
	}
	return ColRef{Column: first.text}, nil
}

func isReserved(s string) bool {
	switch strings.ToLower(s) {
	case "select", "distinct", "from", "where", "and", "in", "as":
		return true
	}
	return false
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	switch p.peek().kind {
	case tokParam:
		ref.Param = p.advance().text
	case tokIdent:
		first := p.advance().text
		if isReserved(first) {
			return TableRef{}, p.errorf("reserved word %q used as table name", first)
		}
		if p.peek().kind == tokColon {
			p.advance()
			table, err := p.expect(tokIdent)
			if err != nil {
				return TableRef{}, err
			}
			ref.Source = first
			ref.Table = table.text
		} else {
			ref.Table = first
		}
	default:
		return TableRef{}, p.errorf("expected table reference, found %s", p.peek().kind)
	}
	if p.peek().kind == tokIdent && !isReserved(p.peek().text) {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

func (p *parser) parsePred() (Pred, error) {
	left, err := p.parseColRef()
	if err != nil {
		return Pred{}, err
	}
	if p.keyword("in") {
		return p.parseInTail(left)
	}
	var op CompareOp
	switch p.peek().kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	default:
		return Pred{}, p.errorf("expected comparison operator or 'in', found %s", p.peek().kind)
	}
	p.advance()
	switch p.peek().kind {
	case tokParam:
		name := p.advance().text
		if p.peek().kind != tokDot {
			// Bare "$v" as a comparison operand: treat as IN when the
			// operator is equality, which matches how the paper writes
			// "trId in V"; other operators are errors.
			if op == OpEq {
				return Pred{Kind: PredColInParam, Left: left, Param: name}, nil
			}
			return Pred{}, p.errorf("parameter $%s needs a field for operator %s", name, op)
		}
		p.advance()
		field, err := p.expect(tokIdent)
		if err != nil {
			return Pred{}, err
		}
		return Pred{Kind: PredColParam, Op: op, Left: left, Param: name, ParamField: field.text}, nil
	case tokNumber, tokString:
		v, err := p.parseLiteral()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Kind: PredColConst, Op: op, Left: left, Const: v}, nil
	case tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Kind: PredColCol, Op: op, Left: left, Right: right}, nil
	default:
		return Pred{}, p.errorf("expected comparison operand, found %s", p.peek().kind)
	}
}

func (p *parser) parseInTail(left ColRef) (Pred, error) {
	switch p.peek().kind {
	case tokParam:
		name := p.advance().text
		return Pred{Kind: PredColInParam, Left: left, Param: name}, nil
	case tokLParen:
		p.advance()
		var list []relstore.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return Pred{}, err
			}
			list = append(list, v)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Pred{}, err
		}
		return Pred{Kind: PredColInList, Left: left, List: list}, nil
	default:
		return Pred{}, p.errorf("expected parameter or literal list after 'in', found %s", p.peek().kind)
	}
}

func (p *parser) parseLiteral() (relstore.Value, error) {
	switch p.peek().kind {
	case tokNumber:
		t := p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relstore.Null, p.errorf("bad number %q", t.text)
		}
		return relstore.Int(n), nil
	case tokString:
		return relstore.String(p.advance().text), nil
	default:
		return relstore.Null, p.errorf("expected literal, found %s", p.peek().kind)
	}
}
