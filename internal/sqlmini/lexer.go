package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal, value has quotes stripped
	tokParam  // $name
	tokComma
	tokDot
	tokColon
	tokLParen
	tokRParen
	tokStar
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string literal"
	case tokParam:
		return "parameter"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokStar:
		return "'*'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'<>'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in input, for error messages
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

// lexSQL tokenizes an entire query string eagerly, returning a friendly
// error with byte position on any illegal character.
func lexSQL(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.input[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == ':':
		l.pos++
		return token{tokColon, ":", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '>':
				l.pos++
				return token{tokNe, "<>", start}, nil
			case '=':
				l.pos++
				return token{tokLe, "<=", start}, nil
			}
		}
		return token{tokLt, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokGe, ">=", start}, nil
		}
		return token{tokGt, ">", start}, nil
	case c == '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{tokNe, "<>", start}, nil
		}
		return token{}, fmt.Errorf("sqlmini: illegal character %q at offset %d", c, start)
	case c == '\'':
		return l.lexString()
	case c == '$':
		l.pos++
		if l.pos >= len(l.input) || !isIdentStart(l.input[l.pos]) {
			return token{}, fmt.Errorf("sqlmini: '$' must be followed by a parameter name at offset %d", start)
		}
		name := l.lexIdentText()
		return token{tokParam, name, start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		return l.lexNumber()
	case isIdentStart(c):
		return token{tokIdent, l.lexIdentText(), start}, nil
	default:
		return token{}, fmt.Errorf("sqlmini: illegal character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (l *lexer) lexIdentText() string {
	start := l.pos
	for l.pos < len(l.input) && isIdentCont(l.input[l.pos]) {
		l.pos++
	}
	return l.input[start:l.pos]
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.input) || l.input[l.pos] < '0' || l.input[l.pos] > '9' {
			return token{}, fmt.Errorf("sqlmini: '-' must start a number at offset %d", start)
		}
	}
	for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
		l.pos++
	}
	return token{tokNumber, l.input[start:l.pos], start}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{tokString, b.String(), start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sqlmini: unterminated string literal at offset %d", start)
}
