package sqlmini

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

func TestParsePaperQueries(t *testing.T) {
	// The four queries of the AIG σ0 in Fig. 2, plus the decomposed Q2'
	// and Q2'' of Fig. 4, must all parse.
	queries := []string{
		`select p.SSN, p.pname, p.policy from DB1:patient p, DB1:visitInfo i
		 where p.SSN = i.SSN and i.date = $v.date`,
		`select t.trId, t.tname from DB1:visitInfo i, DB2:cover c, DB4:treatment t
		 where i.SSN = $v.SSN and i.date = $v.date and t.trId = i.trId
		 and c.trId = i.trId and c.policy = $v.policy`,
		`select p.trId2, t.tname from DB4:procedure p, DB4:treatment t
		 where p.trId1 = $v.trId and t.trId = p.trId2`,
		`select trId, price from DB3:billing where trId in $V`,
		`select i.trId, $v2 from DB1:visitInfo i where i.SSN = $v.SSN`, // deliberately broken below
		`select c.trId from DB2:cover c, $v1 T1 where c.trId = T1.trId and c.policy = T1.policy`,
		`select t.trId, t.tname from DB4:treatment t, $v2 T2 where t.trId = T2.trId`,
	}
	for i, q := range queries {
		if i == 4 {
			if _, err := Parse(q); err == nil {
				t.Errorf("query %d should fail to parse: %s", i, q)
			}
			continue
		}
		parsed, err := Parse(q)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			continue
		}
		// Round trip: String() must re-parse to the same AST.
		again, err := Parse(parsed.String())
		if err != nil {
			t.Errorf("query %d: re-parsing %q: %v", i, parsed.String(), err)
			continue
		}
		if parsed.String() != again.String() {
			t.Errorf("query %d: round trip changed:\n%s\n%s", i, parsed.String(), again.String())
		}
	}
}

func TestParseStructure(t *testing.T) {
	q := MustParse(`select p.SSN as ssn, pname from DB1:patient p where p.policy = 'gold' and p.SSN >= 100 and p.x <> p.y and p.z in ('a','b') and p.w in $V and p.d = $v.date`)
	if len(q.Select) != 2 || q.Select[0].As != "ssn" || q.Select[0].OutputName() != "ssn" || q.Select[1].OutputName() != "pname" {
		t.Errorf("select items wrong: %+v", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Source != "DB1" || q.From[0].Table != "patient" || q.From[0].Alias != "p" || q.From[0].BindName() != "p" {
		t.Errorf("from wrong: %+v", q.From)
	}
	if len(q.Where) != 6 {
		t.Fatalf("got %d predicates, want 6", len(q.Where))
	}
	if q.Where[0].Kind != PredColConst || q.Where[0].Op != OpEq || q.Where[0].Const.AsString() != "gold" {
		t.Errorf("pred 0 wrong: %+v", q.Where[0])
	}
	if q.Where[1].Op != OpGe || q.Where[1].Const.AsInt() != 100 {
		t.Errorf("pred 1 wrong: %+v", q.Where[1])
	}
	if q.Where[2].Kind != PredColCol || q.Where[2].Op != OpNe {
		t.Errorf("pred 2 wrong: %+v", q.Where[2])
	}
	if q.Where[3].Kind != PredColInList || len(q.Where[3].List) != 2 {
		t.Errorf("pred 3 wrong: %+v", q.Where[3])
	}
	if q.Where[4].Kind != PredColInParam || q.Where[4].Param != "V" {
		t.Errorf("pred 4 wrong: %+v", q.Where[4])
	}
	if q.Where[5].Kind != PredColParam || q.Where[5].Param != "v" || q.Where[5].ParamField != "date" {
		t.Errorf("pred 5 wrong: %+v", q.Where[5])
	}
}

func TestParseBareParamEqualsMeansIn(t *testing.T) {
	// "where trId = $V" with a set parameter is treated as IN, matching the
	// paper's "trId in V" notation.
	q := MustParse(`select trId from DB3:billing where trId = $V`)
	if q.Where[0].Kind != PredColInParam {
		t.Errorf("got kind %v, want PredColInParam", q.Where[0].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"selec a from t",
		"select from t",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t where a",
		"select a from t where a ==",
		"select a from t where a in",
		"select a from t where a in (",
		"select a from t where a in ()",
		"select a from t where a in ('x'",
		"select a from t where a = 'unterminated",
		"select a from t alias1 alias2", // two aliases: trailing junk
		"select a from t where a < $V",
		"select select from t",
		"select a from select",
		"select a from t where a = $",
		"select a from t where a = !",
		"select a from t where a = -",
		"select a.b.c from t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseBangEquals(t *testing.T) {
	q := MustParse("select a from t where a != 3")
	if q.Where[0].Op != OpNe {
		t.Errorf("!= parsed as %v", q.Where[0].Op)
	}
}

func TestQuerySourcesAndParams(t *testing.T) {
	q := MustParse(`select t.trId from DB4:treatment t, DB2:cover c, $v1 T1
		where t.trId = c.trId and c.policy = $p.policy and t.x in $S`)
	if got := strings.Join(q.Sources(), ","); got != "DB2,DB4" {
		t.Errorf("Sources = %q", got)
	}
	if got := strings.Join(q.Params(), ","); got != "S,p,v1" {
		t.Errorf("Params = %q", got)
	}
}

func TestQueryClone(t *testing.T) {
	q := MustParse(`select a from DB1:t where a in ('x','y')`)
	c := q.Clone()
	c.Where[0].List[0] = relstore.String("z")
	c.From[0].Source = "DB9"
	if q.Where[0].List[0].AsString() != "x" || q.From[0].Source != "DB1" {
		t.Error("Clone shares storage with original")
	}
}

func TestStringQuoting(t *testing.T) {
	q := MustParse(`select a from t where a = 'it''s'`)
	if q.Where[0].Const.AsString() != "it's" {
		t.Errorf("escaped quote parsed as %q", q.Where[0].Const.AsString())
	}
	again := MustParse(q.String())
	if again.Where[0].Const.AsString() != "it's" {
		t.Errorf("quote round trip gave %q", again.Where[0].Const.AsString())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on junk did not panic")
		}
	}()
	MustParse("not sql")
}
