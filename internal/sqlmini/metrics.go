package sqlmini

import "github.com/aigrepro/aig/internal/obs"

// Engine-level metrics, registered in the process-wide registry. The
// instruments are single atomic words; counting is always on.
var (
	metricQueries = obs.Default.NewCounter("aig_sqlmini_queries_total",
		"queries executed by the sqlmini engine")
	metricRowsScanned = obs.Default.NewCounter("aig_sqlmini_rows_scanned_total",
		"base-table rows scanned before local filtering")
	metricRowsReturned = obs.Default.NewCounter("aig_sqlmini_rows_returned_total",
		"result rows produced by the sqlmini engine")
)
