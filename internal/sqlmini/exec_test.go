package sqlmini

import (
	"sort"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

// hospitalCatalog builds a tiny version of the paper's four databases.
func hospitalCatalog() *relstore.Catalog {
	cat := relstore.NewCatalog()

	db1 := relstore.NewDatabase("DB1")
	patient := db1.CreateTable("patient", relstore.MustSchema("SSN:string", "pname:string", "policy:string"))
	patient.MustInsert(relstore.Tuple{relstore.String("s1"), relstore.String("alice"), relstore.String("gold")})
	patient.MustInsert(relstore.Tuple{relstore.String("s2"), relstore.String("bob"), relstore.String("silver")})
	patient.MustInsert(relstore.Tuple{relstore.String("s3"), relstore.String("carol"), relstore.String("gold")})
	visit := db1.CreateTable("visitInfo", relstore.MustSchema("SSN:string", "trId:string", "date:string"))
	visit.MustInsert(relstore.Tuple{relstore.String("s1"), relstore.String("t1"), relstore.String("d1")})
	visit.MustInsert(relstore.Tuple{relstore.String("s1"), relstore.String("t2"), relstore.String("d1")})
	visit.MustInsert(relstore.Tuple{relstore.String("s2"), relstore.String("t1"), relstore.String("d2")})
	visit.MustInsert(relstore.Tuple{relstore.String("s3"), relstore.String("t3"), relstore.String("d1")})
	cat.Add(db1)

	db2 := relstore.NewDatabase("DB2")
	cover := db2.CreateTable("cover", relstore.MustSchema("policy:string", "trId:string"))
	cover.MustInsert(relstore.Tuple{relstore.String("gold"), relstore.String("t1")})
	cover.MustInsert(relstore.Tuple{relstore.String("gold"), relstore.String("t2")})
	cover.MustInsert(relstore.Tuple{relstore.String("gold"), relstore.String("t3")})
	cover.MustInsert(relstore.Tuple{relstore.String("silver"), relstore.String("t1")})
	cat.Add(db2)

	db3 := relstore.NewDatabase("DB3")
	billing := db3.CreateTable("billing", relstore.MustSchema("trId:string", "price:int"))
	billing.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(100)})
	billing.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.Int(250)})
	billing.MustInsert(relstore.Tuple{relstore.String("t3"), relstore.Int(70)})
	billing.MustInsert(relstore.Tuple{relstore.String("t4"), relstore.Int(999)})
	cat.Add(db3)

	db4 := relstore.NewDatabase("DB4")
	treatment := db4.CreateTable("treatment", relstore.MustSchema("trId:string", "tname:string"))
	treatment.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.String("xray")})
	treatment.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.String("mri")})
	treatment.MustInsert(relstore.Tuple{relstore.String("t3"), relstore.String("cast")})
	treatment.MustInsert(relstore.Tuple{relstore.String("t4"), relstore.String("surgery")})
	procedure := db4.CreateTable("procedure", relstore.MustSchema("trId1:string", "trId2:string"))
	procedure.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.String("t4")})
	cat.Add(db4)

	return cat
}

func runQuery(t *testing.T, cat *relstore.Catalog, sql string, params Params) *relstore.Table {
	t.Helper()
	q := MustParse(sql)
	out, err := Run("out", q, CatalogSchemas{cat}, CatalogData{cat}, CatalogStats{cat}, params, PlanOptions{})
	if err != nil {
		t.Fatalf("Run(%s): %v", sql, err)
	}
	return out
}

func rowsAsStrings(tbl *relstore.Table) []string {
	out := make([]string, 0, tbl.Len())
	for _, row := range tbl.Rows() {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Text()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func TestExecQ1(t *testing.T) {
	cat := hospitalCatalog()
	params := Params{"v": ScalarBinding([]string{"date"}, relstore.Tuple{relstore.String("d1")})}
	out := runQuery(t, cat, `select p.SSN, p.pname, p.policy from DB1:patient p, DB1:visitInfo i
		where p.SSN = i.SSN and i.date = $v.date`, params)
	got := rowsAsStrings(out)
	want := []string{"s1|alice|gold", "s1|alice|gold", "s3|carol|gold"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Q1(d1) = %v, want %v", got, want)
	}
}

func TestExecQ2MultiSource(t *testing.T) {
	cat := hospitalCatalog()
	params := Params{"v": ScalarBinding([]string{"date", "SSN", "policy"},
		relstore.Tuple{relstore.String("d1"), relstore.String("s1"), relstore.String("gold")})}
	out := runQuery(t, cat, `select t.trId, t.tname from DB1:visitInfo i, DB2:cover c, DB4:treatment t
		where i.SSN = $v.SSN and i.date = $v.date and t.trId = i.trId
		and c.trId = i.trId and c.policy = $v.policy`, params)
	got := rowsAsStrings(out)
	want := []string{"t1|xray", "t2|mri"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Q2 = %v, want %v", got, want)
	}
}

func TestExecQ4InParam(t *testing.T) {
	cat := hospitalCatalog()
	set := Binding{
		Schema: relstore.MustSchema("trId:string"),
		Rows:   []relstore.Tuple{{relstore.String("t1")}, {relstore.String("t3")}},
	}
	params := Params{"V": set}
	out := runQuery(t, cat, `select trId, price from DB3:billing where trId in $V`, params)
	got := rowsAsStrings(out)
	want := []string{"t1|100", "t3|70"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Q4 = %v, want %v", got, want)
	}
}

func TestExecParamAsTable(t *testing.T) {
	cat := hospitalCatalog()
	v1 := Binding{
		Schema: relstore.MustSchema("trId:string", "policy:string"),
		Rows: []relstore.Tuple{
			{relstore.String("t1"), relstore.String("gold")},
			{relstore.String("t2"), relstore.String("bronze")},
		},
	}
	out := runQuery(t, cat, `select c.trId from DB2:cover c, $v1 T1
		where c.trId = T1.trId and c.policy = T1.policy`, Params{"v1": v1})
	got := rowsAsStrings(out)
	if len(got) != 1 || got[0] != "t1" {
		t.Errorf("param-table join = %v, want [t1]", got)
	}
}

func TestExecLiteralInListAndComparisons(t *testing.T) {
	cat := hospitalCatalog()
	out := runQuery(t, cat, `select trId, price from DB3:billing where trId in ('t1','t2','t9') and price > 150`, nil)
	got := rowsAsStrings(out)
	if len(got) != 1 || got[0] != "t2|250" {
		t.Errorf("got %v, want [t2|250]", got)
	}
}

func TestExecNonEquiJoin(t *testing.T) {
	cat := hospitalCatalog()
	// Pairs of billing rows where the first is strictly cheaper.
	out := runQuery(t, cat, `select a.trId, b.trId as other from DB3:billing a, DB3:billing b where a.price < b.price`, nil)
	if out.Len() != 6 {
		t.Errorf("non-equi join returned %d rows, want 6", out.Len())
	}
}

func TestExecCartesianWhenDisconnected(t *testing.T) {
	cat := hospitalCatalog()
	out := runQuery(t, cat, `select p.pname, t.tname from DB1:patient p, DB4:treatment t`, nil)
	if out.Len() != 12 {
		t.Errorf("cartesian product returned %d rows, want 12", out.Len())
	}
}

func TestExecPreservesDuplicates(t *testing.T) {
	cat := hospitalCatalog()
	// visitInfo has two d1 visits for s1; projecting SSN alone must keep
	// both (bag semantics).
	out := runQuery(t, cat, `select SSN from DB1:visitInfo where date = 'd1'`, nil)
	if out.Len() != 3 {
		t.Errorf("projection returned %d rows, want 3 (bag semantics)", out.Len())
	}
}

func TestExecEmptyParamBinding(t *testing.T) {
	cat := hospitalCatalog()
	set := Binding{Schema: relstore.MustSchema("trId:string")}
	out := runQuery(t, cat, `select trId from DB3:billing where trId in $V`, Params{"V": set})
	if out.Len() != 0 {
		t.Errorf("empty IN param returned %d rows", out.Len())
	}
}

func TestExecMissingParam(t *testing.T) {
	cat := hospitalCatalog()
	q := MustParse(`select trId from DB3:billing where trId in $V`)
	// Resolution itself needs the schema.
	if _, err := Run("out", q, CatalogSchemas{cat}, CatalogData{cat}, CatalogStats{cat}, nil, PlanOptions{}); err == nil {
		t.Error("missing parameter binding accepted")
	}
}

func TestResolveErrors(t *testing.T) {
	cat := hospitalCatalog()
	schemas := CatalogSchemas{cat}
	cases := []struct {
		sql    string
		params ParamSchemas
	}{
		{`select nope from DB1:patient`, nil},
		{`select SSN from DB9:patient`, nil},
		{`select SSN from DB1:nope`, nil},
		{`select x.SSN from DB1:patient p`, nil},
		{`select SSN from DB1:patient p, DB1:visitInfo p`, nil},                              // dup binding
		{`select SSN from DB1:patient, DB1:visitInfo`, nil},                                  // ambiguous
		{`select p.SSN, i.SSN from DB1:patient p, DB1:visitInfo i where p.SSN = i.SSN`, nil}, // dup output
		{`select SSN from DB1:patient where SSN = 3`, nil},                                   // kind mismatch const
		{`select p.SSN from DB1:patient p, DB3:billing b where p.SSN = b.price`, nil},        // kind mismatch cols
		{`select SSN from DB1:patient where SSN in (1,2)`, nil},                              // kind mismatch list
		{`select SSN from DB1:patient where SSN = $v.date`, nil},                             // unknown param
		{`select SSN from DB1:patient where SSN = $v.date`, ParamSchemas{"v": relstore.MustSchema("other:string")}},
		{`select SSN from DB1:patient where SSN in $V`, nil}, // unknown in-param
		{`select SSN from DB1:patient where SSN in $V`, ParamSchemas{"V": relstore.MustSchema("a:string", "b:string")}},
		{`select T.x from $T T`, nil}, // unknown table param
	}
	for _, tc := range cases {
		q, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.sql, err)
		}
		if _, err := Resolve(q, schemas, tc.params); err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", tc.sql)
		}
	}
}

func TestResolveUnqualifiedAndQualified(t *testing.T) {
	cat := hospitalCatalog()
	q := MustParse(`select pname, p.policy from DB1:patient p where policy = 'gold'`)
	r, err := Resolve(q, CatalogSchemas{cat}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Output.Names()[0] != "pname" || r.Output.Names()[1] != "policy" {
		t.Errorf("output names = %v", r.Output.Names())
	}
	if r.Width() != 3 {
		t.Errorf("Width = %d, want 3", r.Width())
	}
}

func TestBuildPlanPrefersSelectiveStart(t *testing.T) {
	cat := hospitalCatalog()
	// The filter on visitInfo.date should make visitInfo (filtered) the
	// starting table even though patient is smaller unfiltered is false —
	// both are small, so just assert the plan joins all three tables and
	// estimates sanely.
	q := MustParse(`select t.trId from DB1:visitInfo i, DB2:cover c, DB4:treatment t
		where i.trId = t.trId and c.trId = t.trId and i.date = 'd1'`)
	plan, err := PlanAndEstimate(q, CatalogSchemas{cat}, nil, CatalogStats{cat}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 3 {
		t.Fatalf("plan order %v", plan.Order)
	}
	if plan.EstRows <= 0 || plan.EstCost <= 0 || plan.EstBytes <= 0 {
		t.Errorf("estimates not positive: rows=%g cost=%g bytes=%g", plan.EstRows, plan.EstCost, plan.EstBytes)
	}
	// The second and later tables should each be join-connected to the
	// prefix (no cartesian steps for this connected query).
	out, err := Exec("out", plan, CatalogData{cat}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(out)
	want := []string{"t1", "t1", "t2", "t3"} // t1 covered by gold+silver, visited twice on d1... verify by independent count
	_ = want
	if len(got) == 0 {
		t.Error("plan execution returned no rows")
	}
}

// TestPlanOrderInvariance: every join order must produce the same result
// multiset. We exercise this by comparing the planner's order against a
// forced reverse order via manual execution with a permuted FROM clause.
func TestPlanOrderInvariance(t *testing.T) {
	cat := hospitalCatalog()
	sqlA := `select i.trId, c.policy from DB1:visitInfo i, DB2:cover c where i.trId = c.trId`
	sqlB := `select i.trId, c.policy from DB2:cover c, DB1:visitInfo i where i.trId = c.trId`
	a := runQuery(t, cat, sqlA, nil)
	b := runQuery(t, cat, sqlB, nil)
	if !a.Equal(b) {
		t.Errorf("join order changed results:\n%v\n%v", a, b)
	}
}

func TestStatsErrorsPropagate(t *testing.T) {
	cat := hospitalCatalog()
	stats := CatalogStats{cat}
	if _, err := stats.TableCard("DBX", "t"); err == nil {
		t.Error("missing table card lookup succeeded")
	}
	if _, err := stats.ColumnDistinct("DB1", "patient", "nope"); err == nil {
		t.Error("missing column distinct lookup succeeded")
	}
	if n, err := stats.ColumnDistinct("DB1", "patient", "policy"); err != nil || n != 2 {
		t.Errorf("ColumnDistinct(policy) = %d, %v", n, err)
	}
}
