package sqlmini

import (
	"fmt"

	"github.com/aigrepro/aig/internal/relstore"
)

// This file implements the set-level relational operators that query
// merging (§5.4) relies on: outer union with a tagging column for merging
// independent queries, left outer join for merging dependent queries by
// inlining, and the extraction of a part's relevant tuples before
// shipping.

// TagColumn is the name of the extra column OuterUnion adds to identify
// which merged part each tuple belongs to.
const TagColumn = "__tag"

// OuterUnion combines the given tables into a single table. The result
// schema is the concatenation of the distinct column names across parts
// (first occurrence wins the kind) plus an integer TagColumn holding the
// part index. Columns absent from a part are Null-padded.
func OuterUnion(name string, parts []*relstore.Table) (*relstore.Table, error) {
	var schema relstore.Schema
	pos := make(map[string]int)
	for _, part := range parts {
		for _, col := range part.Schema() {
			if at, ok := pos[col.Name]; ok {
				if schema[at].Kind != col.Kind {
					return nil, fmt.Errorf("sqlmini: outer union column %q has conflicting kinds %s and %s",
						col.Name, schema[at].Kind, col.Kind)
				}
				continue
			}
			pos[col.Name] = len(schema)
			schema = append(schema, col)
		}
	}
	if _, clash := pos[TagColumn]; clash {
		return nil, fmt.Errorf("sqlmini: outer union input already has a %q column", TagColumn)
	}
	full := append(schema.Project(identity(len(schema))), relstore.Column{Name: TagColumn, Kind: relstore.KindInt})
	out := relstore.NewTable(name, full)
	for tag, part := range parts {
		colMap := make([]int, len(part.Schema()))
		for i, col := range part.Schema() {
			colMap[i] = pos[col.Name]
		}
		for _, row := range part.Rows() {
			padded := make(relstore.Tuple, len(full))
			for i := range padded {
				padded[i] = relstore.Null
			}
			for i, v := range row {
				padded[colMap[i]] = v
			}
			padded[len(full)-1] = relstore.Int(int64(tag))
			if err := out.Insert(padded); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ExtractPart recovers part tag from an outer union, restoring the part's
// original schema. This is the "extraction of the relevant tuples ...
// before shipping" step of §5.4.
func ExtractPart(name string, union *relstore.Table, tag int, partSchema relstore.Schema) (*relstore.Table, error) {
	tagIdx := union.Schema().ColumnIndex(TagColumn)
	if tagIdx < 0 {
		return nil, fmt.Errorf("sqlmini: table %q is not an outer union (no %s column)", union.Name(), TagColumn)
	}
	colMap := make([]int, len(partSchema))
	for i, col := range partSchema {
		at := union.Schema().ColumnIndex(col.Name)
		if at < 0 {
			return nil, fmt.Errorf("sqlmini: outer union lacks column %q of part schema", col.Name)
		}
		colMap[i] = at
	}
	out := relstore.NewTable(name, partSchema)
	want := relstore.Int(int64(tag))
	for _, row := range union.Rows() {
		if !row[tagIdx].Equal(want) {
			continue
		}
		if err := out.Insert(row.Project(colMap)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LeftOuterJoin joins left and right on equality of the given column
// position lists (parallel slices). Every left row appears at least once;
// unmatched left rows are padded with Nulls on the right. This is the
// "outer join approach" used when merging dependent queries Q1 -> Q2.
func LeftOuterJoin(name string, left, right *relstore.Table, leftCols, rightCols []int) (*relstore.Table, error) {
	if len(leftCols) != len(rightCols) {
		return nil, fmt.Errorf("sqlmini: outer join key arity mismatch: %d vs %d", len(leftCols), len(rightCols))
	}
	schema := left.Schema().Concat(right.Schema())
	out := relstore.NewTable(name, schema)
	nullsRight := make(relstore.Tuple, len(right.Schema()))
	for i := range nullsRight {
		nullsRight[i] = relstore.Null
	}
	for _, lrow := range left.Rows() {
		key := lrow.KeyOn(leftCols)
		matches := right.LookupKey(rightCols, key)
		if len(matches) == 0 {
			if err := out.Insert(lrow.Concat(nullsRight)); err != nil {
				return nil, err
			}
			continue
		}
		for _, ri := range matches {
			if err := out.Insert(lrow.Concat(right.Row(ri))); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ProjectColumns returns a new table keeping only the named columns, in
// the given order.
func ProjectColumns(name string, t *relstore.Table, cols []string) (*relstore.Table, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		at := t.Schema().ColumnIndex(c)
		if at < 0 {
			return nil, fmt.Errorf("sqlmini: table %q has no column %q", t.Name(), c)
		}
		idx[i] = at
	}
	out := relstore.NewTable(name, t.Schema().Project(idx))
	for _, row := range t.Rows() {
		if err := out.Insert(row.Project(idx)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Union appends the rows of the given same-schema tables (bag union).
func Union(name string, parts ...*relstore.Table) (*relstore.Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sqlmini: union of zero tables")
	}
	out := relstore.NewTable(name, parts[0].Schema())
	for _, p := range parts {
		if !p.Schema().Equal(parts[0].Schema()) {
			return nil, fmt.Errorf("sqlmini: union schema mismatch: %v vs %v", p.Schema(), parts[0].Schema())
		}
		for _, row := range p.Rows() {
			if err := out.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
