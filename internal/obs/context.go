package obs

import "context"

// spanCtxKey carries the active tracer and span through a
// context.Context, so layers that only see a ctx (HTTP handlers, the
// mediator's source calls, the remote client) can parent their spans
// correctly without new parameters on every signature.
type spanCtxKey struct{}

// spanCtx is a dedicated context carrier rather than context.WithValue:
// one allocation per request instead of two (no boxing of the value),
// and lookups hit a type switch before falling back to the parent chain.
type spanCtx struct {
	context.Context
	tr   *Tracer
	span *Span
}

func (c *spanCtx) Value(key any) any {
	if _, ok := key.(spanCtxKey); ok {
		return c
	}
	return c.Context.Value(key)
}

// ContextWithSpan returns ctx carrying the tracer and the span new work
// should parent under. A nil tracer returns ctx unchanged, so the
// disabled path stays allocation-free.
func ContextWithSpan(ctx context.Context, tr *Tracer, span *Span) context.Context {
	if tr == nil {
		return ctx
	}
	return &spanCtx{Context: ctx, tr: tr, span: span}
}

// SpanFromContext returns the tracer and parent span carried by ctx, or
// (nil, nil) when the request is untraced.
func SpanFromContext(ctx context.Context) (*Tracer, *Span) {
	if ctx == nil {
		return nil, nil
	}
	if v, ok := ctx.Value(spanCtxKey{}).(*spanCtx); ok {
		return v.tr, v.span
	}
	return nil, nil
}
