package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/obs"
)

func mkTrace(id string, dur time.Duration, errMsg string) *Trace {
	return &Trace{
		ID:       id,
		Kind:     "request",
		Start:    time.Unix(0, 0),
		Duration: dur,
		Error:    errMsg,
		Tracer:   obs.NewTracerID(id),
	}
}

// keepAll is a policy whose probabilistic rule always fires.
var keepAll = Policy{SampleRate: 1, Rand: func() float64 { return 0 }}

func TestTailSamplingDecisions(t *testing.T) {
	pol := Policy{
		SlowThreshold: 100 * time.Millisecond,
		SampleRate:    0.5,
	}
	cases := []struct {
		name string
		tr   *Trace
		rand float64
		want string // kept reason, "" = dropped
	}{
		{"error kept", mkTrace("a", time.Millisecond, "boom"), 0.99, KeptError},
		{"slow kept", mkTrace("b", 150*time.Millisecond, ""), 0.99, KeptSlow},
		{"threshold is inclusive", mkTrace("c", 100*time.Millisecond, ""), 0.99, KeptSlow},
		{"fast sampled in", mkTrace("d", time.Millisecond, ""), 0.4, KeptSampled},
		{"fast sampled out", mkTrace("e", time.Millisecond, ""), 0.6, ""},
	}
	for _, tc := range cases {
		p := pol
		p.Rand = func() float64 { return tc.rand }
		s := New(4, p)
		kept := s.Observe(tc.tr)
		if kept != (tc.want != "") {
			t.Errorf("%s: kept=%v, want %v", tc.name, kept, tc.want != "")
		}
		if tc.tr.KeptReason != tc.want && tc.want != "" {
			t.Errorf("%s: reason=%q, want %q", tc.name, tc.tr.KeptReason, tc.want)
		}
		if tc.want != "" {
			if _, ok := s.Get(tc.tr.ID); !ok {
				t.Errorf("%s: kept trace not retrievable", tc.name)
			}
		} else if s.Len() != 0 {
			t.Errorf("%s: dropped trace retained", tc.name)
		}
	}
}

func TestSampleRateZeroDropsHealthyFast(t *testing.T) {
	s := New(4, Policy{SlowThreshold: time.Second})
	if s.Observe(mkTrace("x", time.Millisecond, "")) {
		t.Fatal("fast healthy trace kept with SampleRate 0")
	}
	if s.Observe(mkTrace("y", 2*time.Second, "")) != true {
		t.Fatal("slow trace dropped")
	}
}

func TestRingEvictionOrder(t *testing.T) {
	s := New(3, keepAll)
	for i := 0; i < 5; i++ {
		s.Observe(mkTrace(fmt.Sprintf("t%d", i), time.Duration(i)*time.Millisecond, ""))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// t0, t1 evicted; t2..t4 retained; List is newest first.
	for _, gone := range []string{"t0", "t1"} {
		if _, ok := s.Get(gone); ok {
			t.Errorf("%s should have been evicted", gone)
		}
	}
	got := s.List(Filter{})
	want := []string{"t4", "t3", "t2"}
	if len(got) != len(want) {
		t.Fatalf("List returned %d traces, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].ID != w {
			t.Errorf("List[%d] = %s, want %s", i, got[i].ID, w)
		}
	}
}

func TestListFilters(t *testing.T) {
	s := New(8, keepAll)
	s.Observe(&Trace{ID: "r1", Kind: "request", View: "report", Duration: 5 * time.Millisecond})
	s.Observe(&Trace{ID: "r2", Kind: "request", View: "report", Duration: 50 * time.Millisecond, Error: "bad"})
	s.Observe(&Trace{ID: "o1", Kind: "request", View: "other", Duration: 80 * time.Millisecond})
	s.Observe(&Trace{ID: "f1", Kind: "refresh", View: "report", Duration: time.Millisecond})

	if got := s.List(Filter{View: "report"}); len(got) != 3 {
		t.Errorf("View filter: %d traces, want 3", len(got))
	}
	if got := s.List(Filter{Kind: "refresh"}); len(got) != 1 || got[0].ID != "f1" {
		t.Errorf("Kind filter: %v", ids(got))
	}
	if got := s.List(Filter{MinDuration: 40 * time.Millisecond}); len(got) != 2 {
		t.Errorf("MinDuration filter: %v", ids(got))
	}
	if got := s.List(Filter{ErrorsOnly: true}); len(got) != 1 || got[0].ID != "r2" {
		t.Errorf("ErrorsOnly filter: %v", ids(got))
	}
	if got := s.List(Filter{Limit: 2}); len(got) != 2 || got[0].ID != "f1" {
		t.Errorf("Limit: %v", ids(got))
	}
}

func ids(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

func TestConcurrentWriters(t *testing.T) {
	s := New(16, keepAll)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				s.Observe(mkTrace(id, time.Millisecond, ""))
				s.Get(id)
				s.List(Filter{Limit: 4})
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
	// Every listed trace must resolve through Get to the same object.
	for _, tr := range s.List(Filter{}) {
		got, ok := s.Get(tr.ID)
		if !ok || got != tr {
			t.Fatalf("List/Get disagree for %s", tr.ID)
		}
	}
}

func TestNilStoreDisabled(t *testing.T) {
	var s *Store
	if s.Observe(mkTrace("x", time.Second, "err")) {
		t.Fatal("nil store kept a trace")
	}
	if _, ok := s.Get("x"); ok {
		t.Fatal("nil store returned a trace")
	}
	if s.Len() != 0 || s.List(Filter{}) != nil {
		t.Fatal("nil store not empty")
	}
}

// TestDisabledPathZeroAlloc pins the cost of running with tracing and the
// recorder off: the nil-receiver paths must not allocate.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *obs.Tracer
	var s *Store
	ctx := context.Background()
	tt := &Trace{ID: "x"}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("work", nil)
		sp.SetAttr("k", "v")
		sp.End()
		obs.ContextWithSpan(ctx, tr, sp)
		obs.SpanFromContext(ctx)
		s.Observe(tt)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}
