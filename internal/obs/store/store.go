// Package store is the flight recorder behind /debug/traces: a bounded
// in-memory ring of recently completed traces with tail-based sampling.
//
// Head sampling (deciding at request start whether to trace) would miss
// exactly the traces worth keeping — the slow ones and the failures are
// not identifiable until the request ends. So aigd traces every request
// and decides retention at completion: errored traces are always kept,
// traces at or above a latency threshold are always kept, and a small
// random fraction of the fast, healthy rest is kept as a baseline for
// comparison. Everything else is dropped and its spans become garbage
// immediately; the ring bounds what retention itself can hold, evicting
// the oldest kept trace when full.
//
// A nil *Store is the disabled recorder: every method no-ops (Observe
// reports false) at the cost of one pointer test, matching the obs
// package's nil-receiver convention.
package store

import (
	"math/rand/v2"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/obs"
)

// Recorder-level metrics, shared by every store in the process.
var (
	metricSeen = obs.Default.NewCounter("aig_trace_observed_total",
		"completed traces offered to the flight recorder")
	metricKept = obs.Default.NewCounter("aig_trace_kept_total",
		"traces retained by tail sampling")
	metricEvicted = obs.Default.NewCounter("aig_trace_evicted_total",
		"retained traces evicted by ring capacity")
)

// Policy is the tail-sampling decision, applied to every completed
// trace in order: errors are always kept; traces with Duration >=
// SlowThreshold are kept (a zero or negative threshold disables the
// slow rule); otherwise the trace is kept with probability SampleRate.
type Policy struct {
	SlowThreshold time.Duration
	SampleRate    float64

	// Rand overrides the random source of the probabilistic rule
	// (returns a value in [0,1); nil uses the process-wide PRNG). It
	// exists so tests can force keep and drop decisions.
	Rand func() float64
}

// Kept-reason values recorded on retained traces.
const (
	KeptError   = "error"
	KeptSlow    = "slow"
	KeptSampled = "sampled"
)

// Trace is one completed, summarized trace: the identifying and
// filtering fields the list endpoint serves, plus the tracer holding the
// full span tree.
type Trace struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "request", "refresh", "mutate", ...
	View string `json:"view,omitempty"`
	// Params is the canonical parameter rendering of the request.
	Params     string    `json:"params,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Status     int       `json:"status,omitempty"`
	CacheState string    `json:"cache,omitempty"`
	Error      string    `json:"error,omitempty"`
	KeptReason string    `json:"kept,omitempty"`

	Duration time.Duration `json:"-"`
	Tracer   *obs.Tracer   `json:"-"`
}

// Store is the bounded ring of kept traces, newest overwriting oldest.
type Store struct {
	pol Policy

	mu   sync.Mutex
	buf  []*Trace // ring; len == capacity
	next int      // next write position
	n    int      // live entries
	byID map[string]*Trace
}

// New returns a store keeping at most capacity traces (capacity < 1 is
// raised to 1) under the given policy.
func New(capacity int, pol Policy) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		pol:  pol,
		buf:  make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// decide applies the tail-sampling policy, returning the kept reason
// ("" to drop).
func (s *Store) decide(d time.Duration, hasError bool) string {
	if hasError {
		return KeptError
	}
	if s.pol.SlowThreshold > 0 && d >= s.pol.SlowThreshold {
		return KeptSlow
	}
	if s.pol.SampleRate > 0 {
		r := s.pol.Rand
		if r == nil {
			r = rand.Float64
		}
		if r() < s.pol.SampleRate {
			return KeptSampled
		}
	}
	return ""
}

// Decide applies the tail-sampling policy to a completed trace's
// outcome without materializing it, returning the kept reason ("" to
// drop, also the answer on a nil store). It lets the serving hot path
// skip building the Trace record entirely for the overwhelming majority
// of traces that are dropped; a non-empty reason must be followed by
// Insert with the same reason.
func (s *Store) Decide(d time.Duration, hasError bool) string {
	if s == nil {
		return ""
	}
	metricSeen.Inc()
	return s.decide(d, hasError)
}

// Observe offers a completed trace to the recorder and reports whether
// tail sampling kept it. The caller must not mutate the trace or its
// tracer afterwards.
func (s *Store) Observe(t *Trace) bool {
	if s == nil || t == nil {
		return false
	}
	metricSeen.Inc()
	reason := s.decide(t.Duration, t.Error != "")
	if reason == "" {
		return false
	}
	s.Insert(t, reason)
	return true
}

// Insert retains a trace under the given kept reason (as returned by a
// non-empty Decide). The caller must not mutate the trace or its tracer
// afterwards.
func (s *Store) Insert(t *Trace, reason string) {
	if s == nil || t == nil || reason == "" {
		return
	}
	t.KeptReason = reason
	t.DurationMs = float64(t.Duration.Microseconds()) / 1000
	metricKept.Inc()

	s.mu.Lock()
	if old := s.buf[s.next]; old != nil {
		// Drop the evicted trace's index entry unless a newer trace
		// already claimed the same ID.
		if s.byID[old.ID] == old {
			delete(s.byID, old.ID)
		}
		metricEvicted.Inc()
	} else {
		s.n++
	}
	s.buf[s.next] = t
	s.next = (s.next + 1) % len(s.buf)
	s.byID[t.ID] = t
	s.mu.Unlock()
}

// Get returns the kept trace with the given ID.
func (s *Store) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	return t, ok
}

// Len returns the number of kept traces currently retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Filter selects traces for List. Zero values mean "no constraint";
// Limit <= 0 means no limit.
type Filter struct {
	View        string
	Kind        string
	MinDuration time.Duration
	ErrorsOnly  bool
	Limit       int
}

func (f Filter) match(t *Trace) bool {
	if f.View != "" && t.View != f.View {
		return false
	}
	if f.Kind != "" && t.Kind != f.Kind {
		return false
	}
	if t.Duration < f.MinDuration {
		return false
	}
	if f.ErrorsOnly && t.Error == "" {
		return false
	}
	return true
}

// List returns the kept traces matching the filter, newest first.
func (s *Store) List(f Filter) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Trace, 0, s.n)
	for i := 1; i <= s.n; i++ {
		// Walk backwards from the most recent write.
		t := s.buf[(s.next-i+len(s.buf))%len(s.buf)]
		if t == nil || !f.match(t) {
			continue
		}
		// A trace evicted from the index by an ID collision is stale:
		// skip it so List never shows an ID Get would resolve elsewhere.
		if s.byID[t.ID] != t {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}
