package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("evaluate", nil)
	a := tr.StartSpan("compile", root)
	a.End()
	b := tr.StartSpan("execute", root)
	leaf := tr.StartSpan("node:q1", b).SetAttr("rows", 7)
	leaf.End()
	b.End()
	root.End()

	if got := tr.Root(); got != root {
		t.Fatalf("Root() = %v, want the evaluate span", got.Name())
	}
	kids := tr.Children(root)
	if len(kids) != 2 || kids[0].Name() != "compile" || kids[1].Name() != "execute" {
		t.Fatalf("root children = %v", spanNames(kids))
	}
	grand := tr.Children(b)
	if len(grand) != 1 || grand[0].Name() != "node:q1" {
		t.Fatalf("execute children = %v", spanNames(grand))
	}
	if v, ok := grand[0].Attr("rows"); !ok || v != 7 {
		t.Fatalf("rows attr = %v, %v", v, ok)
	}
	for _, s := range tr.Spans() {
		if !s.Ended() {
			t.Errorf("span %s not ended", s.Name())
		}
		if s.Duration() < 0 {
			t.Errorf("span %s has negative duration", s.Name())
		}
	}
}

func TestSpanMonotonicDuration(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("tick", nil)
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d := s.Duration(); d < time.Millisecond {
		t.Fatalf("duration %v, want >= 1ms", d)
	}
	end := s.Duration()
	s.End() // second End must not move the end time
	if s.Duration() != end {
		t.Fatal("End is not idempotent")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("anything", nil)
	if s != nil {
		t.Fatal("nil tracer handed out a span")
	}
	// All span methods must accept the nil span.
	s.SetAttr("k", 1)
	s.End()
	if s.Ended() || s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span misbehaves")
	}
	if _, ok := s.Attr("k"); ok {
		t.Fatal("nil span has attrs")
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil tracer JSON = %q", b.String())
	}
}

func TestTraceJSONExport(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("evaluate", nil)
	c := tr.StartSpan("compile", root)
	c.SetAttr("nodes", 12)
	c.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Name     string         `json:"name"`
		Parent   int            `json:"parent"`
		Attrs    map[string]any `json:"attrs"`
		Children []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(out) != 1 || out[0].Name != "evaluate" || out[0].Parent != -1 {
		t.Fatalf("unexpected root: %+v", out)
	}
	if len(out[0].Children) != 1 || out[0].Children[0].Name != "compile" {
		t.Fatalf("unexpected children: %+v", out[0].Children)
	}
	if got := out[0].Children[0].Attrs["nodes"]; got != float64(12) {
		t.Fatalf("nodes attr = %v", got)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	q := r.NewCounter("test_queries_total", "queries executed")
	q.Add(3)
	q.Inc()
	g := r.NewGauge("test_depth", "current unfold depth")
	g.Set(4.5)
	h := r.NewHistogram("test_latency_seconds", "round-trip latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# HELP test_queries_total queries executed",
		"# TYPE test_queries_total counter",
		"test_queries_total 4",
		"# HELP test_depth current unfold depth",
		"# TYPE test_depth gauge",
		"test_depth 4.5",
		"# HELP test_latency_seconds round-trip latency",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 2.055",
		"test_latency_seconds_count 3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Prometheus export mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsJSONExport(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "a counter").Add(2)
	r.NewHistogram("h_seconds", "a histogram", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type  string   `json:"type"`
		Value any      `json:"value"`
		Count uint64   `json:"count"`
		Sum   float64  `json:"sum"`
		Cum   []uint64 `json:"counts"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, b.String())
	}
	if out["c_total"].Type != "counter" || out["c_total"].Value != float64(2) {
		t.Fatalf("counter export = %+v", out["c_total"])
	}
	if h := out["h_seconds"]; h.Type != "histogram" || h.Count != 1 || h.Sum != 0.5 {
		t.Fatalf("histogram export = %+v", h)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := r.NewGauge("y", "")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := r.NewHistogram("z", "", DurationBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("same_total", "")
	b := r.NewCounter("same_total", "")
	if a != b {
		t.Fatal("same name produced two counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter not shared")
	}
}

func spanNames(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}
