package obs

import (
	"math/rand/v2"
	"strings"
)

// Trace and request identifiers, and the W3C trace-context header
// bridge. Trace IDs are 16 random bytes rendered as 32 lowercase hex
// digits — the Traceparent trace-id field — so a caller that already
// participates in a distributed trace can hand its ID to aigd and find
// the daemon's spans under the same trace. IDs come from math/rand
// rather than crypto/rand: they are correlation keys, not secrets, and
// the serving hot path should not pay a syscall per request.

const hexDigits = "0123456789abcdef"

func randHex(n int) string {
	var buf [48]byte // covers every caller; stack-allocated
	b := buf[:n]
	for i := 0; i < n; {
		v := rand.Uint64()
		for j := 0; j < 16 && i < n; j++ {
			b[i] = hexDigits[v&0xf]
			v >>= 4
			i++
		}
	}
	return string(b)
}

// NewTraceID returns a fresh 32-hex-digit trace ID.
func NewTraceID() string { return randHex(32) }

// NewRequestID returns a fresh 16-hex-digit request ID: the short
// per-request correlation key for log lines, distinct from the
// (possibly client-supplied) trace ID.
func NewRequestID() string { return randHex(16) }

// NewTraceRequestID mints a trace ID and a request ID from one random
// draw — the serving hot path's way to pay one allocation instead of
// two when no Traceparent was supplied.
func NewTraceRequestID() (traceID, requestID string) {
	s := randHex(48)
	return s[:32], s[32:]
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

const zeroTraceID = "00000000000000000000000000000000"

// ParseTraceparent extracts the trace ID from a W3C Traceparent header
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"). It accepts
// any version except the invalid ff, and rejects the all-zero trace ID
// the spec reserves. The parse is allocation-free: it runs on the serving
// hot path for every request, almost always on an absent header.
func ParseTraceparent(h string) (traceID string, ok bool) {
	if h == "" {
		return "", false
	}
	h = strings.TrimSpace(h)
	// "vv-" + 32 + "-" + 16 + "-" + 2 = 55 bytes, optionally followed by
	// "-<future fields>".
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", false
	}
	ver, id, span := h[:2], h[3:35], h[36:52]
	if !isLowerHex(ver) || ver == "ff" {
		return "", false
	}
	if !isLowerHex(id) || id == zeroTraceID {
		return "", false
	}
	if !isLowerHex(span) {
		return "", false
	}
	return id, true
}

// FormatTraceparent renders a Traceparent header for the given trace ID
// with a fresh span ID and the sampled flag set.
func FormatTraceparent(traceID string) string {
	return FormatTraceparentSpan(traceID, randHex(16))
}

// FormatTraceparentSpan renders a Traceparent header for the given trace
// ID and 16-hex-digit parent span ID with the sampled flag set. aigd
// uses the request ID as the span ID, so the header it echoes doubles as
// the log-correlation key.
func FormatTraceparentSpan(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}
