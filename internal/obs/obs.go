// Package obs is the runtime observability layer: a lightweight,
// dependency-free tracing and metrics substrate for the evaluation stack.
//
// Tracing follows the usual span model — a span is a named interval with
// a parent, monotonic start/end times and a flat list of attributes —
// collected into a Tracer owned by one request or evaluation. Every
// tracer carries a trace ID (accepted from or emitted as a W3C
// Traceparent header, see traceparent.go), travels through call graphs
// either explicitly or inside a context.Context (see context.go), and
// can export its spans as relocatable SpanData so a remote callee's
// spans graft back into the caller's trace (Export/Graft). Retention is
// the flight recorder's job: the obs/store package tail-samples
// completed traces into a bounded ring served at /debug/traces.
//
// Everything is nil-safe: a nil *Tracer (the default) hands out nil
// *Spans, and every method on a nil receiver is a no-op, so instrumented
// code pays a single pointer test when tracing is disabled. The same
// convention holds for the metric instruments in metrics.go.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be strings,
// booleans, integers or floats so that the JSON export stays flat.
type Attr struct {
	Key   string
	Value any
}

// Span is one named interval of work. Fields are written only by the
// goroutine that started the span; readers must wait for End (the
// mediator's phase structure guarantees this ordering).
type Span struct {
	tracer   *Tracer
	id       int
	parentID int // -1 for a root span

	name  string
	start time.Time // carries the monotonic clock reading
	end   time.Time
	attrs []Attr
}

// Tracer collects the spans of one request or evaluation. The zero
// value is not usable; use NewTracer. A nil *Tracer is the disabled
// tracer.
type Tracer struct {
	traceID string
	mu      sync.Mutex
	spans   []*Span

	// arena is block storage for the first spans, so a typical request
	// (a handful of spans) costs one allocation for all of them instead
	// of one each. It is only ever resliced up to its fixed capacity —
	// never grown — so &arena[i] pointers stay valid for the trace's
	// lifetime.
	arena []Span
}

// spanArenaSize is how many spans a tracer pre-allocates in one block. A
// warm cache hit records 2 spans; a full evaluation typically records a
// dozen or two, so the overflow path still matters but the common case
// is covered.
const spanArenaSize = 8

// newSpanLocked hands out span storage; the caller must hold t.mu and
// must overwrite every field of the returned span.
func (t *Tracer) newSpanLocked() *Span {
	if t.arena == nil {
		t.arena = make([]Span, 0, spanArenaSize)
	}
	if n := len(t.arena); n < cap(t.arena) {
		t.arena = t.arena[:n+1]
		return &t.arena[n]
	}
	return new(Span)
}

// NewTracer returns an empty, enabled tracer with a fresh trace ID.
func NewTracer() *Tracer { return &Tracer{traceID: NewTraceID()} }

// NewTracerID returns an empty, enabled tracer carrying the given trace
// ID (typically one propagated from an inbound Traceparent header or the
// remote wire protocol).
func NewTracerID(id string) *Tracer { return &Tracer{traceID: id} }

// TraceID returns the tracer's trace ID ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// StartSpan opens a span under parent (nil parent makes a root span) and
// records it with the tracer. On a nil tracer it returns nil, which every
// Span method accepts.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	start := time.Now()
	parentID := -1
	if parent != nil {
		parentID = parent.id
	}
	t.mu.Lock()
	s := t.newSpanLocked()
	*s = Span{tracer: t, id: len(t.spans), parentID: parentID, name: name, start: start}
	if t.spans == nil {
		t.spans = make([]*Span, 0, spanArenaSize)
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.end = time.Now()
}

// SetAttr annotates the span and returns it for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the elapsed monotonic time between start and end, or
// zero if the span has not ended.
func (s *Span) Duration() time.Duration {
	if s == nil || s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Ended reports whether End was called.
func (s *Span) Ended() bool { return s != nil && !s.end.IsZero() }

// Attr returns the value of the first attribute with the given key.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Start returns the span's start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Spans returns every recorded span in creation order (which is start
// order only for spans created by one goroutine; concurrent siblings may
// appear out of start order).
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// SpanData is the relocatable form of one finished span: times are
// offsets from an anchor instant, and Parent indexes into the same
// SpanData slice (-1 marks a root). Export and Graft move span forests
// between tracers — in practice across the remote wire protocol, so a
// source engine's spans stitch into the mediator-side trace.
type SpanData struct {
	Name     string
	Parent   int // index into the slice; -1 for roots
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
}

// Export renders every recorded span as SpanData with starts relative to
// anchor. Spans still open export with their current duration zero.
func (t *Tracer) Export(anchor time.Time) []SpanData {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := make([]SpanData, len(spans))
	for i, s := range spans {
		out[i] = SpanData{
			Name:     s.name,
			Parent:   s.parentID,
			Start:    s.start.Sub(anchor),
			Duration: s.Duration(),
			Attrs:    append([]Attr(nil), s.attrs...),
		}
	}
	return out
}

// Graft adds a forest of finished spans under parent (nil parent makes
// them roots), anchoring their offsets at the given instant. Parent
// indices inside data are remapped to the new span IDs; data roots
// attach to parent. The usual use is stitching a remote callee's
// exported spans under the local RPC span, anchored at the RPC's start.
func (t *Tracer) Graft(parent *Span, anchor time.Time, data []SpanData) {
	if t == nil || len(data) == 0 {
		return
	}
	t.mu.Lock()
	base := len(t.spans)
	for _, d := range data {
		s := t.newSpanLocked()
		*s = Span{
			tracer:   t,
			id:       len(t.spans),
			parentID: -1,
			name:     d.Name,
			start:    anchor.Add(d.Start),
			end:      anchor.Add(d.Start + d.Duration),
			attrs:    append([]Attr(nil), d.Attrs...),
		}
		if d.Parent >= 0 && d.Parent < len(data) {
			s.parentID = base + d.Parent
		} else if parent != nil {
			s.parentID = parent.id
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Root returns the first root span (parentless), or nil.
func (t *Tracer) Root() *Span {
	for _, s := range t.Spans() {
		if s.parentID < 0 {
			return s
		}
	}
	return nil
}

// Children returns the direct children of parent in start order.
func (t *Tracer) Children(parent *Span) []*Span {
	if t == nil || parent == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.Spans() {
		if s.parentID == parent.id {
			out = append(out, s)
		}
	}
	return out
}

// spanJSON is the exported form of one span.
type spanJSON struct {
	ID       int            `json:"id"`
	Parent   int            `json:"parent"` // -1 for roots
	Name     string         `json:"name"`
	StartUs  int64          `json:"start_us"` // microseconds since the trace began
	DurUs    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []spanJSON     `json:"children,omitempty"`
}

// forest arranges spans for rendering: the origin is the minimum start
// time (spans are stored in creation order under the tracer's lock, so
// spans[0] may postdate a concurrent sibling), and roots and sibling
// lists are sorted by start time with the creation ID as tie-break, so
// output is deterministic however concurrently the spans were created.
func forest(spans []*Span) (origin time.Time, roots []*Span, kids map[int][]*Span) {
	kids = make(map[int][]*Span)
	for _, s := range spans {
		if origin.IsZero() || s.start.Before(origin) {
			origin = s.start
		}
		if s.parentID < 0 {
			roots = append(roots, s)
		} else {
			kids[s.parentID] = append(kids[s.parentID], s)
		}
	}
	byStart := func(a, b *Span) bool {
		if !a.start.Equal(b.start) {
			return a.start.Before(b.start)
		}
		return a.id < b.id
	}
	sort.Slice(roots, func(i, j int) bool { return byStart(roots[i], roots[j]) })
	for _, c := range kids {
		sort.Slice(c, func(i, j int) bool { return byStart(c[i], c[j]) })
	}
	return origin, roots, kids
}

// WriteJSON renders the trace as a JSON forest of spans, children nested
// under their parents, with start offsets and durations in microseconds.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	origin, roots, kids := forest(t.Spans())
	var convert func(s *Span) spanJSON
	convert = func(s *Span) spanJSON {
		j := spanJSON{
			ID:      s.id,
			Parent:  s.parentID,
			Name:    s.name,
			StartUs: s.start.Sub(origin).Microseconds(),
			DurUs:   s.Duration().Microseconds(),
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		for _, c := range kids[s.id] {
			j.Children = append(j.Children, convert(c))
		}
		return j
	}
	out := make([]spanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, convert(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders the trace as an indented tree, one line per span —
// the quick human-readable view (the JSON export is the machine one).
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	_, roots, kids := forest(t.Spans())
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		attrs := ""
		for _, a := range s.attrs {
			attrs += fmt.Sprintf(" %s=%v", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%*s%s %.3fms%s\n",
			2*depth, "", s.name, float64(s.Duration().Microseconds())/1000, attrs); err != nil {
			return err
		}
		for _, c := range kids[s.id] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order (shared by the metric
// exports, which must be deterministic).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
