// Package obs is the runtime observability layer: a lightweight,
// dependency-free tracing and metrics substrate for the evaluation stack.
//
// Tracing follows the usual span model — a span is a named interval with
// a parent, monotonic start/end times and a flat list of attributes — but
// is deliberately minimal: spans are collected into a Tracer owned by one
// evaluation, and exported as a JSON tree afterwards. There is no
// sampling, no context propagation and no global collector; the mediator
// threads the tracer through its own call graph explicitly.
//
// Everything is nil-safe: a nil *Tracer (the default) hands out nil
// *Spans, and every method on a nil receiver is a no-op, so instrumented
// code pays a single pointer test when tracing is disabled. The same
// convention holds for the metric instruments in metrics.go.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be strings,
// booleans, integers or floats so that the JSON export stays flat.
type Attr struct {
	Key   string
	Value any
}

// Span is one named interval of work. Fields are written only by the
// goroutine that started the span; readers must wait for End (the
// mediator's phase structure guarantees this ordering).
type Span struct {
	tracer   *Tracer
	id       int
	parentID int // -1 for a root span

	name  string
	start time.Time // carries the monotonic clock reading
	end   time.Time
	attrs []Attr
}

// Tracer collects the spans of one evaluation. The zero value is not
// usable; use NewTracer. A nil *Tracer is the disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	spans []*Span
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// StartSpan opens a span under parent (nil parent makes a root span) and
// records it with the tracer. On a nil tracer it returns nil, which every
// Span method accepts.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, parentID: -1, start: time.Now()}
	if parent != nil {
		s.parentID = parent.id
	}
	t.mu.Lock()
	s.id = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.end = time.Now()
}

// SetAttr annotates the span and returns it for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the elapsed monotonic time between start and end, or
// zero if the span has not ended.
func (s *Span) Duration() time.Duration {
	if s == nil || s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Ended reports whether End was called.
func (s *Span) Ended() bool { return s != nil && !s.end.IsZero() }

// Attr returns the value of the first attribute with the given key.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Spans returns every recorded span in start order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Root returns the first root span (parentless), or nil.
func (t *Tracer) Root() *Span {
	for _, s := range t.Spans() {
		if s.parentID < 0 {
			return s
		}
	}
	return nil
}

// Children returns the direct children of parent in start order.
func (t *Tracer) Children(parent *Span) []*Span {
	if t == nil || parent == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.Spans() {
		if s.parentID == parent.id {
			out = append(out, s)
		}
	}
	return out
}

// spanJSON is the exported form of one span.
type spanJSON struct {
	ID       int            `json:"id"`
	Parent   int            `json:"parent"` // -1 for roots
	Name     string         `json:"name"`
	StartUs  int64          `json:"start_us"` // microseconds since the trace began
	DurUs    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []spanJSON     `json:"children,omitempty"`
}

// WriteJSON renders the trace as a JSON forest of spans, children nested
// under their parents, with start offsets and durations in microseconds.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	spans := t.Spans()
	var origin time.Time
	if len(spans) > 0 {
		origin = spans[0].start
	}
	kids := make(map[int][]*Span)
	var roots []*Span
	for _, s := range spans {
		if s.parentID < 0 {
			roots = append(roots, s)
		} else {
			kids[s.parentID] = append(kids[s.parentID], s)
		}
	}
	var convert func(s *Span) spanJSON
	convert = func(s *Span) spanJSON {
		j := spanJSON{
			ID:      s.id,
			Parent:  s.parentID,
			Name:    s.name,
			StartUs: s.start.Sub(origin).Microseconds(),
			DurUs:   s.Duration().Microseconds(),
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		for _, c := range kids[s.id] {
			j.Children = append(j.Children, convert(c))
		}
		return j
	}
	out := make([]spanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, convert(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders the trace as an indented tree, one line per span —
// the quick human-readable view (the JSON export is the machine one).
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	kids := make(map[int][]*Span)
	var roots []*Span
	for _, s := range spans {
		if s.parentID < 0 {
			roots = append(roots, s)
		} else {
			kids[s.parentID] = append(kids[s.parentID], s)
		}
	}
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		attrs := ""
		for _, a := range s.attrs {
			attrs += fmt.Sprintf(" %s=%v", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%*s%s %.3fms%s\n",
			2*depth, "", s.name, float64(s.Duration().Microseconds())/1000, attrs); err != nil {
			return err
		}
		for _, c := range kids[s.id] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order (shared by the metric
// exports, which must be deterministic).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
