package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments and renders them in Prometheus
// text format or as JSON. Instruments are created through the registry
// and keep counting for its lifetime; creation is cheap but not meant for
// hot paths — create instruments once at package init or setup time.
//
// A nil *Registry hands out nil instruments, and every instrument method
// is a no-op on a nil receiver, so metrics can be compiled in
// unconditionally and disabled by construction.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the instrumented packages
// (source, sqlmini, relstore, remote) register into. It is always live:
// the instruments are single atomic words, cheap enough to keep counting
// whether or not anything ever exports them.
var Default = NewRegistry()

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter returns the registry's counter with the given name, creating
// it if needed.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge returns the registry's gauge with the given name, creating it
// if needed.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative-bucket histogram over float observations
// (Prometheus semantics: each bucket counts observations <= its bound,
// plus an implicit +Inf bucket).
type Histogram struct {
	name, help string
	bounds     []float64

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
	// exemplars holds, per bucket, the latest observation that carried a
	// trace ID (nil until the first ObserveExemplar), so a latency bucket
	// links to a concrete captured trace in the flight recorder.
	exemplars []exemplar
}

// exemplar is one bucket's reference observation: the trace it came
// from and its exact value.
type exemplar struct {
	traceID string
	value   float64
}

// DurationBuckets is a decade ladder suited to query and round-trip
// latencies, in seconds.
var DurationBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// NewHistogram returns the registry's histogram with the given name,
// creating it with the given bucket upper bounds (must be sorted
// ascending) if needed.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveExemplar records one observation and remembers the trace it
// came from as the bucket's exemplar, replacing any previous one. An
// empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.observe(v, traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]exemplar, len(h.counts))
		}
		h.exemplars[i] = exemplar{traceID: traceID, value: v}
	}
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum, count and the
// per-bucket exemplars (nil when none were ever recorded).
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64, ex []exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	running := uint64(0)
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	if h.exemplars != nil {
		ex = append([]exemplar(nil), h.exemplars...)
	}
	return cum, h.sum, h.count, ex
}

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics form
// (` # {trace_id="..."} value`), or "" when the bucket has none.
func exemplarSuffix(ex []exemplar, i int) string {
	if i >= len(ex) || ex[i].traceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %v", ex[i].traceID, ex[i].value)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format: counters, then gauges, then histograms, each group
// sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		c := counters[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, c.help, name, name, c.Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n",
			name, g.help, name, name, g.Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		cum, sum, count, ex := h.snapshot()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, h.help, name); err != nil {
			return err
		}
		for i, b := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d%s\n", name, b, cum[i], exemplarSuffix(ex, i)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n%s_sum %v\n%s_count %d\n",
			name, cum[len(cum)-1], exemplarSuffix(ex, len(cum)-1), name, sum, name, count); err != nil {
			return err
		}
	}
	return nil
}

// metricJSON is the exported form of one instrument.
type metricJSON struct {
	Type    string    `json:"type"`
	Help    string    `json:"help,omitempty"`
	Value   any       `json:"value,omitempty"`
	Buckets []float64 `json:"buckets,omitempty"`
	Counts  []uint64  `json:"counts,omitempty"` // cumulative, aligned with buckets + final +Inf
	Sum     float64   `json:"sum,omitempty"`
	Count   uint64    `json:"count,omitempty"`
}

// WriteJSON renders every instrument as a JSON object keyed by metric
// name.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	out := make(map[string]metricJSON, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = metricJSON{Type: "counter", Help: c.help, Value: c.Value()}
	}
	for name, g := range r.gauges {
		out[name] = metricJSON{Type: "gauge", Help: g.help, Value: g.Value()}
	}
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.Unlock()
	for name, h := range hs {
		cum, sum, count, _ := h.snapshot()
		out[name] = metricJSON{
			Type: "histogram", Help: h.help,
			Buckets: h.bounds, Counts: cum, Sum: sum, Count: count,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
