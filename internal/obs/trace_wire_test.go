package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("trace ID %q, want 32 hex chars", id)
	}
	got, ok := ParseTraceparent(FormatTraceparent(id))
	if !ok || got != id {
		t.Fatalf("round trip: %q, %v", got, ok)
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex id
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",   // short id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",   // short span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
	}
	for _, tp := range bad {
		if id, ok := ParseTraceparent(tp); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %q", tp, id)
		}
	}
	if id, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok || id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("canonical traceparent rejected: %q, %v", id, ok)
	}
}

func TestRequestIDShape(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q, %q; want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two request IDs collided: %q", a)
	}
}

func TestTraceRequestIDShape(t *testing.T) {
	tr, req := NewTraceRequestID()
	if len(tr) != 32 || !isLowerHex(tr) {
		t.Fatalf("trace ID %q; want 32 hex chars", tr)
	}
	if len(req) != 16 || !isLowerHex(req) {
		t.Fatalf("request ID %q; want 16 hex chars", req)
	}
	if id, ok := ParseTraceparent(FormatTraceparentSpan(tr, req)); !ok || id != tr {
		t.Fatalf("FormatTraceparentSpan(%q, %q) did not round-trip: got %q, %v", tr, req, id, ok)
	}
}

// TestGraftRemapsParents ships one tracer's spans into another and
// checks the grafted subtree hangs under the attachment span with its
// internal parent/child structure intact.
func TestGraftRemapsParents(t *testing.T) {
	remote := NewTracer()
	rr := remote.StartSpan("rpc:exec", nil)
	scan := remote.StartSpan("scan:DB1.patient", rr).SetAttr("rows", 3)
	scan.End()
	rr.End()
	anchor := time.Now()
	data := remote.Export(anchor)

	local := NewTracer()
	root := local.StartSpan("request", nil)
	call := local.StartSpan("call:DB1.exec", root)
	local.Graft(call, anchor, data)
	call.End()
	root.End()

	under := local.Children(call)
	if len(under) != 1 || under[0].Name() != "rpc:exec" {
		t.Fatalf("call children = %v, want [rpc:exec]", spanNames(under))
	}
	scans := local.Children(under[0])
	if len(scans) != 1 || scans[0].Name() != "scan:DB1.patient" {
		t.Fatalf("rpc children = %v, want [scan:DB1.patient]", spanNames(scans))
	}
	if v, ok := scans[0].Attr("rows"); !ok || v != 3 {
		t.Fatalf("grafted attr rows = %v (%T), %v", v, v, ok)
	}
}

// TestWriteTextOriginIsEarliestSpan regression-tests the origin fix:
// grafting spans that started before the local root must not produce
// negative offsets — the rendered origin is the earliest span, wherever
// it sits in the slice.
func TestWriteTextOriginIsEarliestSpan(t *testing.T) {
	remote := NewTracer()
	rr := remote.StartSpan("early", nil)
	rr.End()
	// Export against an anchor 50ms in the future, so the grafted span
	// lands 50ms before the local spans.
	anchor := time.Now().Add(50 * time.Millisecond)
	data := remote.Export(anchor)

	local := NewTracer()
	root := local.StartSpan("late-root", nil)
	local.Graft(root, anchor.Add(-100*time.Millisecond), data)
	root.End()

	var b strings.Builder
	if err := local.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "+-") {
		t.Fatalf("negative offset in text tree:\n%s", b.String())
	}

	var j strings.Builder
	if err := local.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		StartMs  float64 `json:"start_ms"`
		Name     string  `json:"name"`
		Children []struct {
			StartMs float64 `json:"start_ms"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(j.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, j.String())
	}
	for _, root := range out {
		if root.StartMs < 0 {
			t.Fatalf("negative root offset %f in %s", root.StartMs, root.Name)
		}
		for _, c := range root.Children {
			if c.StartMs < 0 {
				t.Fatalf("negative child offset %f", c.StartMs)
			}
		}
	}
}

// TestWriteJSONDeterministicOrder: two tracers recording the same spans
// in different creation order render identical trees, because output is
// sorted by start time.
func TestWriteJSONDeterministicOrder(t *testing.T) {
	base := time.Now()
	build := func(reversed bool) string {
		tr := NewTracer()
		root := tr.StartSpan("root", nil)
		data := []SpanData{
			{Name: "a", Parent: -1, Start: 10 * time.Millisecond, Duration: time.Millisecond},
			{Name: "b", Parent: -1, Start: 20 * time.Millisecond, Duration: time.Millisecond},
		}
		if reversed {
			data[0], data[1] = data[1], data[0]
		}
		tr.Graft(root, base, data)
		root.End()
		var b strings.Builder
		if err := tr.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		// Keep only the span names (durations and offsets differ run to
		// run for the live root); the rendering order is what must not
		// depend on creation order.
		lines := strings.Split(b.String(), "\n")
		var names []string
		for _, l := range lines {
			name := strings.TrimSpace(l)
			if i := strings.IndexByte(name, ' '); i >= 0 {
				name = name[:i]
			}
			names = append(names, name)
		}
		return strings.Join(names, "\n")
	}
	if a, b := build(false), build(true); a != b {
		t.Fatalf("creation order leaked into rendering:\n%s\nvs\n%s", a, b)
	}
}

func TestPrometheusExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("ex_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `ex_seconds_bucket{le="1"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5`
	if !strings.Contains(out, want) {
		t.Fatalf("missing exemplar line %q in:\n%s", want, out)
	}
	// The first bucket saw no exemplar and must render bare.
	if !strings.Contains(out, "ex_seconds_bucket{le=\"0.1\"} 1\n") {
		t.Fatalf("plain bucket line damaged:\n%s", out)
	}
}
