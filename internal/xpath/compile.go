package xpath

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/xmltree"
)

// Compiled is a path analyzed against one grammar: per-element-type
// label reachability (which subtrees a remaining step can still match
// into — the partial-evaluation pruning rule) and predicate pushdown
// (which [child='X'] tests are decidable from an instance's inherited
// attribute alone, before its subtree exists). Compile once per
// (grammar, path); NewCursor per evaluation.
type Compiled struct {
	path *Path
	// labels: element type -> emitted label.
	labels map[string]string
	// childLabels: element type -> labels its production children can
	// carry (for a choice, any branch).
	childLabels map[string]map[string]bool
	// reach: element type -> labels of every type derivable as a strict
	// descendant (fixpoint over the production graph, so recursion is
	// handled).
	reach map[string]map[string]bool
	// push: (element type, child label) -> inherited-attribute member
	// whose text the uniquely determined child of that label renders.
	push map[pushKey]string
}

type pushKey struct {
	elem  string
	child string
}

// Compile analyzes a parsed path against a grammar. The grammar is the
// view's fragment grammar (validated and query-decomposed, compiled
// without constraints); Compile itself never evaluates anything.
func Compile(a *aig.AIG, p *Path) (*Compiled, error) {
	if p == nil || len(p.Steps) == 0 {
		return nil, fmt.Errorf("xpath: empty path")
	}
	c := &Compiled{
		path:        p,
		labels:      make(map[string]string),
		childLabels: make(map[string]map[string]bool),
		reach:       make(map[string]map[string]bool),
		push:        make(map[pushKey]string),
	}
	types := a.DTD.Types()
	for _, t := range types {
		c.labels[t] = a.Label(t)
		kids := make(map[string]bool)
		if prod, ok := a.DTD.Production(t); ok {
			for _, k := range prod.Children {
				kids[a.Label(k)] = true
			}
		}
		c.childLabels[t] = kids
		c.reach[t] = make(map[string]bool)
	}
	// Strict-descendant label reachability, to fixpoint (recursive DTDs
	// make the production graph cyclic; the label sets grow
	// monotonically and are bounded, so this terminates).
	for changed := true; changed; {
		changed = false
		for _, t := range types {
			prod, ok := a.DTD.Production(t)
			if !ok {
				continue
			}
			for _, k := range prod.Children {
				if !c.reach[t][c.labels[k]] {
					c.reach[t][c.labels[k]] = true
					changed = true
				}
				for l := range c.reach[k] {
					if !c.reach[t][l] {
						c.reach[t][l] = true
						changed = true
					}
				}
			}
		}
	}
	c.analyzePushdown(a, types)
	return c, nil
}

// analyzePushdown finds the (type, child label) pairs whose [label='X']
// predicate is decidable from the candidate's inherited attribute: the
// type is a sequence with exactly one child of that label, the child is
// a text production whose text comes from one member of its inherited
// attribute, and that member is filled by a pure copy from a scalar of
// the candidate's inherited attribute. Everything else falls back to
// FragVerify at evaluation time.
func (c *Compiled) analyzePushdown(a *aig.AIG, types []string) {
	for _, t := range types {
		prod, ok := a.DTD.Production(t)
		if !ok || prod.Kind != dtd.ProdSeq {
			continue
		}
		byLabel := make(map[string][]string)
		for _, k := range prod.Children {
			byLabel[c.labels[k]] = append(byLabel[c.labels[k]], k)
		}
		for label, kids := range byLabel {
			if len(kids) != 1 {
				continue // several children could carry the label: not unique
			}
			child := kids[0]
			member, ok := textMember(a, child)
			if !ok {
				continue
			}
			r := a.Rules[t]
			if r == nil {
				continue
			}
			ir := r.Inh[child]
			if ir == nil || ir.IsQuery() {
				continue
			}
			// Last copy into the member wins (evalInhSingle applies
			// copies in order, overwriting).
			field := ""
			for _, cp := range ir.Copies {
				if cp.TargetMember != member {
					continue
				}
				if cp.Src.Side == aig.InhSide && cp.Src.Elem == t && cp.Src.Member != "" {
					if m, ok := a.Inh[t].Member(cp.Src.Member); ok && m.Kind == aig.Scalar {
						field = cp.Src.Member
						continue
					}
				}
				field = "" // copied from something we cannot read statically
			}
			if field != "" {
				c.push[pushKey{elem: t, child: label}] = field
			}
		}
	}
}

// textMember returns the inherited-attribute member whose text a text
// production renders: the rule's explicit text source, or the single
// scalar member default.
func textMember(a *aig.AIG, elem string) (string, bool) {
	prod, ok := a.DTD.Production(elem)
	if !ok || prod.Kind != dtd.ProdText {
		return "", false
	}
	if r := a.Rules[elem]; r != nil && r.TextSrc != (aig.SourceRef{}) {
		src := r.TextSrc
		if src.Side == aig.InhSide && src.Elem == elem && src.Member != "" {
			return src.Member, true
		}
		return "", false
	}
	scalars := a.Inh[elem].ScalarSchema().Names()
	if len(scalars) == 1 {
		return scalars[0], true
	}
	return "", false
}

// live reports whether state s can still produce a match at or below
// the children of an instance of type t: a child-axis state must name a
// possible child label, a descendant-axis state any label derivable in
// t's subtree. This label-level check is conservative (it ignores the
// steps after s), so pruning on it is sound.
func (c *Compiled) live(s int, t string) bool {
	st := &c.path.Steps[s]
	if st.Name == "*" {
		return true
	}
	if st.Axis == Descendant {
		return c.reach[t][st.Name]
	}
	return c.childLabels[t][st.Name]
}

func (c *Compiled) label(elem string) string {
	if l, ok := c.labels[elem]; ok {
		return l
	}
	return elem
}

// NewCursor starts a document-level cursor for one evaluation: its
// single child is the root element, judged against the first step.
// Cursors are cheap per-request state; the Compiled they share is
// immutable and safe for concurrent cursors.
func (c *Compiled) NewCursor() aig.FragCursor {
	return &cursor{c: c, states: []int{0}, ctr: newCounters()}
}

// cursor is the walk over one parent's children: the active states and
// their positional counters. The aig evaluator calls Child once per
// instance in document order, so the counters advance exactly as the
// oracle's would over the rendered document.
type cursor struct {
	c      *Compiled
	states []int
	ctr    counters
}

func (cu *cursor) NeedChild(childType string) bool {
	label := cu.c.label(childType)
	for _, s := range cu.states {
		st := &cu.c.path.Steps[s]
		if nameMatches(st.Name, label) {
			return true
		}
		if st.Axis == Descendant && cu.c.live(s, childType) {
			return true
		}
	}
	return false
}

type predResult int

const (
	predPass predResult = iota
	predFail
	predUnknown
)

func (cu *cursor) Child(childType string, inh *aig.AttrValue) aig.FragDecision {
	steps := cu.c.path.Steps
	label := cu.c.label(childType)
	var next []int
	matched := false
	unknown := false
	delta := make(map[counterKey]int)
	for _, s := range cu.states {
		st := &steps[s]
		if st.Axis == Descendant && cu.c.live(s, childType) {
			next = appendState(next, s)
		}
		if !nameMatches(st.Name, label) {
			continue
		}
		switch cu.evalPredsStatic(st, s, childType, inh, delta) {
		case predUnknown:
			unknown = true
		case predFail:
		case predPass:
			if s == len(steps)-1 {
				matched = true
			} else if cu.c.live(s+1, childType) {
				next = appendState(next, s+1)
			}
		}
	}
	if unknown {
		// Tentative counter bumps are discarded: the verify closure
		// resolves every predicate exactly on the rendered subtree and
		// advances the shared counters itself, so decidable siblings
		// after this one keep counting correctly.
		states := cu.states
		ctr := cu.ctr
		return aig.FragDecision{
			Action: aig.FragVerify,
			Verify: func(n *xmltree.Node) []*xmltree.Node {
				m, nx := matchOne(steps, n, states, ctr)
				if m {
					return []*xmltree.Node{n}
				}
				var out []*xmltree.Node
				if len(nx) > 0 {
					walkChildren(steps, n.Children, nx, newCounters(), &out)
				}
				return out
			},
		}
	}
	for k, d := range delta {
		cu.ctr[k] += d
	}
	if matched {
		// Outermost-only: a match swallows its subtree whole.
		return aig.FragDecision{Action: aig.FragCollect}
	}
	if len(next) == 0 {
		return aig.FragDecision{Action: aig.FragSkip}
	}
	nextStates := next
	return aig.FragDecision{
		Action: aig.FragDescend,
		Cursor: &cursor{c: cu.c, states: nextStates, ctr: newCounters()},
		Verify: func(n *xmltree.Node) []*xmltree.Node {
			var out []*xmltree.Node
			walkChildren(steps, n.Children, nextStates, newCounters(), &out)
			return out
		},
	}
}

// evalPredsStatic mirrors evalPreds over static knowledge: pushdownable
// [child='X'] tests read the candidate's inherited attribute, [N] tests
// read the walk counters. Counter bumps go to delta (committed by the
// caller only when every state stayed decidable); a predicate that is
// reached but not decidable poisons the whole instance to FragVerify.
func (cu *cursor) evalPredsStatic(st *Step, state int, childType string, inh *aig.AttrValue, delta map[counterKey]int) predResult {
	for i, pred := range st.Preds {
		switch p := pred.(type) {
		case ChildEq:
			if !cu.c.childLabels[childType][p.Child] {
				return predFail // no production child carries the label
			}
			field, ok := cu.c.push[pushKey{elem: childType, child: p.Child}]
			if !ok {
				return predUnknown
			}
			v, err := inh.Scalar(field)
			if err != nil {
				return predUnknown
			}
			if v.Text() != p.Value {
				return predFail
			}
		case Index:
			k := counterKey{state: state, pred: i}
			delta[k]++
			if cu.ctr[k]+delta[k] != p.N {
				return predFail
			}
		}
	}
	return predPass
}
