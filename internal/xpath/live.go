package xpath

import (
	"sort"
	"strconv"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
)

// LiveScans computes which semantic-rule queries a fragment request for
// this path can possibly run, as a (rule element, child) filter over
// specialize.TableScans — the refresher passes it to ivm.ExtractFiltered
// so cached fragments are judged dirty only by deltas that touch their
// reachable scans. The analysis abstracts the cursor over the same
// (element type × state set) pairs partial evaluation walks, with every
// runtime-decided predicate taken both ways; the result is therefore a
// superset of the scans any concrete evaluation runs, which is what
// makes restamping on an Unaffected verdict sound.
func (c *Compiled) LiveScans(a *aig.AIG) func(elem, child string) bool {
	lv := &liveness{
		c:    c,
		a:    a,
		seen: make(map[string]bool),
		live: make(map[pushKey]bool),
		full: make(map[string]bool),
	}
	lv.process(a.DTD.Root, []int{0})
	return func(elem, child string) bool {
		return lv.full[elem] || lv.live[pushKey{elem: elem, child: child}]
	}
}

type liveness struct {
	c    *Compiled
	a    *aig.AIG
	seen map[string]bool
	// live marks single scans: (rule element, child) pairs whose query
	// partial evaluation may run. A choice condition is (elem, "").
	live map[pushKey]bool
	// full marks element types whose whole subtree may be evaluated
	// (collected, verified, or forced by a sibling's Syn dependency) —
	// every scan at or below them is live.
	full map[string]bool
}

// judge abstracts cursor.Child for an instance of type t under the
// parent-walk states: whether the instance may end up fully evaluated
// (collect, or verify because a predicate is not pushdownable), and the
// state set for the walk over its children. Positional predicates and
// pushdownable equality tests are taken both ways.
func (lv *liveness) judge(t string, states []int) (hot bool, next []int) {
	steps := lv.c.path.Steps
	label := lv.c.label(t)
	for _, s := range states {
		st := &steps[s]
		if st.Axis == Descendant && lv.c.live(s, t) {
			next = appendState(next, s)
		}
		if !nameMatches(st.Name, label) {
			continue
		}
		fail := false
		for _, pred := range st.Preds {
			if p, ok := pred.(ChildEq); ok {
				if !lv.c.childLabels[t][p.Child] {
					fail = true // statically impossible, on every instance
					break
				}
				if _, pushable := lv.c.push[pushKey{elem: t, child: p.Child}]; !pushable {
					hot = true // FragVerify evaluates the whole subtree
				}
			}
		}
		if fail {
			continue
		}
		if s == len(steps)-1 {
			hot = true // FragCollect evaluates the whole subtree
		} else if lv.c.live(s+1, t) {
			next = appendState(next, s+1)
		}
	}
	return hot, next
}

// needChild abstracts cursor.NeedChild: the cursor's runtime state set
// is always a subset of the abstract one, so a static false is a true
// "this child's queries never run".
func (lv *liveness) needChild(t string, states []int) bool {
	for _, s := range states {
		st := &lv.c.path.Steps[s]
		if nameMatches(st.Name, lv.c.label(t)) {
			return true
		}
		if st.Axis == Descendant && lv.c.live(s, t) {
			return true
		}
	}
	return false
}

func (lv *liveness) process(t string, states []int) {
	key := stateKey(t, states)
	if lv.seen[key] {
		return
	}
	lv.seen[key] = true

	hot, next := lv.judge(t, states)
	if hot {
		lv.markFull(t)
	}
	if len(next) == 0 || lv.full[t] {
		return // nothing (more) can run below this instance
	}
	prod, ok := lv.a.DTD.Production(t)
	if !ok {
		return
	}
	r := lv.a.Rules[t]
	switch prod.Kind {
	case dtd.ProdText, dtd.ProdEmpty:
		return
	case dtd.ProdStar:
		child := prod.Children[0]
		if lv.needChild(child, next) {
			lv.live[pushKey{elem: t, child: child}] = true
			lv.process(child, next)
		}
	case dtd.ProdSeq:
		occurs := make(map[string]bool)
		for _, c := range prod.Children {
			occurs[c] = true
		}
		need := make(map[string]bool)
		for c := range occurs {
			if lv.needChild(c, next) {
				need[c] = true
			}
		}
		// Sibling Syn dependencies force full evaluation, exactly as
		// partialSeq closes them.
		full := make(map[string]bool)
		for changed := true; changed; {
			changed = false
			for c := range occurs {
				if !need[c] && !full[c] {
					continue
				}
				if r == nil {
					continue
				}
				for _, dep := range synRefsOf(r.Inh[c]) {
					if occurs[dep] && !full[dep] {
						full[dep] = true
						changed = true
					}
				}
			}
		}
		for c := range occurs {
			if need[c] || full[c] {
				lv.live[pushKey{elem: t, child: c}] = true
			}
			if full[c] {
				lv.markFull(c)
			} else if need[c] {
				lv.process(c, next)
			}
		}
	case dtd.ProdChoice:
		// The condition query always runs on a descended instance.
		lv.live[pushKey{elem: t, child: ""}] = true
		for _, c := range prod.Children {
			if lv.needChild(c, next) {
				lv.live[pushKey{elem: t, child: c}] = true
				lv.process(c, next)
			}
		}
	}
}

// markFull marks a type and every type derivable below it as fully
// evaluated: all their scans are live.
func (lv *liveness) markFull(t string) {
	if lv.full[t] {
		return
	}
	lv.full[t] = true
	if prod, ok := lv.a.DTD.Production(t); ok {
		for _, c := range prod.Children {
			lv.markFull(c)
		}
	}
}

// synRefsOf mirrors aig's internal synRefs for liveness: the element
// types whose synthesized attribute an Inh rule reads.
func synRefsOf(ir *aig.InhRule) []string {
	if ir == nil {
		return nil
	}
	var out []string
	for _, cp := range ir.Copies {
		if cp.Src.Side == aig.SynSide {
			out = append(out, cp.Src.Elem)
		}
	}
	for _, src := range ir.QueryParams {
		if src.Side == aig.SynSide {
			out = append(out, src.Elem)
		}
	}
	return out
}

func stateKey(t string, states []int) string {
	ss := append([]int(nil), states...)
	sort.Ints(ss)
	key := t
	for _, s := range ss {
		key += "|" + strconv.Itoa(s)
	}
	return key
}
