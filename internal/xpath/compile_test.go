package xpath_test

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xmltree"
	"github.com/aigrepro/aig/internal/xpath"
)

// render concatenates the canonical rendering of a match list — the
// byte-equality currency of fragment differential testing.
func render(t *testing.T, ns []*xmltree.Node) string {
	t.Helper()
	var b strings.Builder
	for _, n := range ns {
		if err := n.WriteIndented(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// evalFragment runs the partial evaluator over the hospital grammar for
// one path and returns the emitted matches plus the query count.
func evalFragment(t *testing.T, a *aig.AIG, date, expr string) ([]*xmltree.Node, int) {
	t.Helper()
	c, err := xpath.Compile(a, mustParse(t, expr))
	if err != nil {
		t.Fatalf("Compile(%s): %v", expr, err)
	}
	env := hospital.EnvFor(hospital.TinyCatalog())
	env.Counters = &aig.Counters{}
	var got []*xmltree.Node
	err = a.EvalPartial(env, hospital.RootInh(a, date), c.NewCursor(), func(n *xmltree.Node) error {
		got = append(got, n)
		return nil
	})
	if err != nil {
		t.Fatalf("EvalPartial(%s): %v", expr, err)
	}
	return got, env.Counters.QueriesRun
}

// TestPartialMatchesOracle is the core equivalence property: for every
// path, partial evaluation emits byte-identical fragments to rendering
// the whole document and filtering post hoc.
func TestPartialMatchesOracle(t *testing.T) {
	a := hospital.Sigma0(false) // fragment grammars are guard-free
	env := hospital.EnvFor(hospital.TinyCatalog())
	env.Counters = &aig.Counters{}
	doc, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	fullQueries := env.Counters.QueriesRun
	aliceSSN := ""
	for _, p := range doc.Descendants("patient") {
		if p.Child("pname").StringValue() == "alice" {
			aliceSSN = p.Child("SSN").StringValue()
		}
	}
	if aliceSSN == "" {
		t.Fatal("alice missing from full document")
	}

	exprs := []string{
		"/report",
		"//report",
		"/report/patient",
		"//patient",
		"/report/patient/SSN",
		"//SSN",
		"//trId",
		"//treatment",
		"//treatment[1]",
		"//treatment[2]",
		"/report/patient[1]",
		"/report/patient[2]/bill",
		"/report/patient[2]/bill/item[2]",
		"//procedure/treatment",
		"//procedure//trId",
		"/report/patient/treatments/treatment/procedure",
		"/report/*",
		"//*[1]",
		"//patient[SSN='" + aliceSSN + "']", // pushdownable equality
		"//patient[SSN='" + aliceSSN + "']/treatments/treatment", // prune other patients
		"//patient[SSN='nobody']",
		"//patient[pname='alice']/bill",
		"//treatment[trId='t2']/procedure",
		"//item[trId='t4']",
		"//patient[treatments='']",  // not pushdownable: FragVerify
		"//patient[bill='x']",       // not pushdownable either
		"//treatment[procedure='']", // recursion + verify
		"/report/patient[3]/bill",   // positional prune
		"/nothing",
		"//nothing",
		"/report/patient/nothing",
	}
	for _, expr := range exprs {
		want := render(t, xpath.Select(doc, mustParse(t, expr)))
		got, queries := evalFragment(t, a, "d1", expr)
		if g := render(t, got); g != want {
			t.Errorf("%s: partial != oracle\npartial:\n%s\noracle:\n%s", expr, g, want)
		}
		if queries > fullQueries {
			t.Errorf("%s: partial ran %d queries, full evaluation only %d", expr, queries, fullQueries)
		}
	}
}

// TestPartialPrunesQueries pins the performance contract: a path that
// only needs one patient's identity runs strictly fewer queries than a
// full evaluation (skipped subtrees never touch the sources).
func TestPartialPrunesQueries(t *testing.T) {
	a := hospital.Sigma0(false)
	env := hospital.EnvFor(hospital.TinyCatalog())
	env.Counters = &aig.Counters{}
	if _, err := a.Eval(env, hospital.RootInh(a, "d1")); err != nil {
		t.Fatal(err)
	}
	full := env.Counters.QueriesRun

	_, partial := evalFragment(t, a, "d1", "/report/patient/SSN")
	if partial >= full {
		t.Errorf("fragment evaluation ran %d queries, full ran %d — no pruning", partial, full)
	}

	// A path that cannot match anything below the root skips every query.
	_, none := evalFragment(t, a, "d1", "/nothing")
	if none != 0 {
		t.Errorf("unmatchable path ran %d queries, want 0", none)
	}
}

func TestCompileEmptyPath(t *testing.T) {
	a := hospital.Sigma0(false)
	if _, err := xpath.Compile(a, &xpath.Path{}); err == nil {
		t.Fatal("Compile accepted an empty path")
	}
}

// TestPartialRejectsGuards pins the guard-free precondition: grammars
// with compiled constraint guards must be refused, not half-evaluated.
func TestPartialRejectsGuards(t *testing.T) {
	a := hospital.Sigma0(false)
	if a.Rules["report"] == nil {
		t.Skip("no report rule")
	}
	a.Rules["report"].Guards = append(a.Rules["report"].Guards, aig.Guard{})
	c, err := xpath.Compile(a, mustParse(t, "/report"))
	if err != nil {
		t.Fatal(err)
	}
	env := hospital.EnvFor(hospital.TinyCatalog())
	err = a.EvalPartial(env, hospital.RootInh(a, "d1"), c.NewCursor(), func(*xmltree.Node) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "guard-free") {
		t.Fatalf("EvalPartial on a guarded grammar: err = %v, want guard-free complaint", err)
	}
}

// TestLiveScans pins the fragment-dependency filter: a path that never
// leaves the patient's identity cannot depend on treatment, procedure,
// or billing scans, while the root path keeps every scan live.
func TestLiveScans(t *testing.T) {
	a := hospital.Sigma0(false)
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: hospital.TinyCatalog()}); err != nil {
		t.Fatal(err)
	}
	scans := specialize.TableScans(a)
	if len(scans) == 0 {
		t.Fatal("no table scans in the hospital grammar")
	}

	c, err := xpath.Compile(a, mustParse(t, "/report"))
	if err != nil {
		t.Fatal(err)
	}
	keep := c.LiveScans(a)
	for _, ts := range scans {
		if !keep(ts.Elem, ts.Child) {
			t.Errorf("/report drops scan (%s, %s) of %s:%s", ts.Elem, ts.Child, ts.Source, ts.Table)
		}
	}

	c, err = xpath.Compile(a, mustParse(t, "/report/patient/SSN"))
	if err != nil {
		t.Fatal(err)
	}
	keep = c.LiveScans(a)
	dead := map[string]bool{"treatments": true, "treatment": true, "procedure": true, "bill": true, "item": true}
	kept := 0
	for _, ts := range scans {
		live := keep(ts.Elem, ts.Child)
		if live {
			kept++
		}
		if live && (dead[ts.Elem] || dead[ts.Child]) {
			t.Errorf("/report/patient/SSN keeps scan (%s, %s) of %s:%s", ts.Elem, ts.Child, ts.Source, ts.Table)
		}
	}
	if kept == 0 {
		t.Error("/report/patient/SSN kept no scans at all (patient iteration must stay live)")
	}
}
