package xpath

import (
	"github.com/aigrepro/aig/internal/xmltree"
)

// Select evaluates the path over a rendered document and returns the
// matched elements in document order — the post-hoc oracle against
// which the partial evaluator is differentially tested. Matches are
// outermost-only: a matched element's descendants are not searched.
func Select(root *xmltree.Node, p *Path) []*xmltree.Node {
	if root == nil || len(p.Steps) == 0 {
		return nil
	}
	var out []*xmltree.Node
	walkChildren(p.Steps, []*xmltree.Node{root}, []int{0}, newCounters(), &out)
	return out
}

// counterKey identifies one positional counter: the active state (step
// index) and the predicate's position within that step. Counters are
// scoped to one walk over one parent's children — proximity position in
// the XPath sense.
type counterKey struct {
	state int
	pred  int
}

type counters map[counterKey]int

func newCounters() counters { return make(counters) }

// walkChildren advances the active states over the element children of
// one parent, collecting matches into out.
func walkChildren(steps []Step, children []*xmltree.Node, states []int, ctr counters, out *[]*xmltree.Node) {
	for _, c := range children {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		matched, next := matchOne(steps, c, states, ctr)
		if matched {
			*out = append(*out, c)
			continue
		}
		if len(next) > 0 {
			walkChildren(steps, c.Children, next, newCounters(), out)
		}
	}
}

// matchOne judges one element against the active states of its parent's
// walk: whether the node is a result (some state's final step accepts
// it), and which states remain active for the walk over its children.
// Positional counters for name-matching states are advanced as a side
// effect; the caller must therefore call matchOne exactly once per
// element child, in document order.
func matchOne(steps []Step, n *xmltree.Node, states []int, ctr counters) (matched bool, next []int) {
	for _, s := range states {
		st := &steps[s]
		if st.Axis == Descendant {
			next = appendState(next, s)
		}
		if !nameMatches(st.Name, n.Label) {
			continue
		}
		if !evalPreds(st, s, n, ctr) {
			continue
		}
		if s == len(steps)-1 {
			matched = true
			continue
		}
		next = appendState(next, s+1)
	}
	if matched {
		// Outermost-only: a matched node's subtree is never searched.
		return true, nil
	}
	return false, next
}

// evalPreds applies a step's predicates to a node in source order,
// advancing positional counters exactly when the node reached the
// predicate (passed the name test and every preceding predicate).
func evalPreds(st *Step, state int, n *xmltree.Node, ctr counters) bool {
	for i, pred := range st.Preds {
		switch p := pred.(type) {
		case ChildEq:
			if !childEq(n, p) {
				return false
			}
		case Index:
			k := counterKey{state: state, pred: i}
			ctr[k]++
			if ctr[k] != p.N {
				return false
			}
		}
	}
	return true
}

// childEq reports whether n has a child element labeled p.Child whose
// string value equals p.Value.
func childEq(n *xmltree.Node, p ChildEq) bool {
	for _, c := range n.Children {
		if c.Kind == xmltree.ElementNode && c.Label == p.Child && c.StringValue() == p.Value {
			return true
		}
	}
	return false
}

// appendState adds a state to a set kept as a small sorted-insertion
// slice, deduplicating (state sets are tiny — at most one entry per
// step).
func appendState(set []int, s int) []int {
	for _, have := range set {
		if have == s {
			return set
		}
	}
	return append(set, s)
}
