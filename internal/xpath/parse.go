package xpath

import (
	"strconv"

	"github.com/aigrepro/aig/internal/srcpos"
)

// Parse parses a path expression. Errors carry the 1-based column of
// the offending byte (paths are single-line, so the line is always 1)
// via srcpos, the same convention as the aigspec and constraint
// parsers.
func Parse(input string) (*Path, error) {
	p := &parser{input: input}
	path, err := p.path()
	if err != nil {
		return nil, err
	}
	return path, nil
}

type parser struct {
	input string
	off   int
}

func (p *parser) pos() srcpos.Pos { return srcpos.At(1, p.off+1) }

func (p *parser) errf(format string, args ...any) error {
	return srcpos.Errorf(p.pos(), format, args...)
}

func (p *parser) eof() bool { return p.off >= len(p.input) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.off]
}

func (p *parser) eat(c byte) bool {
	if p.peek() == c {
		p.off++
		return true
	}
	return false
}

func (p *parser) path() (*Path, error) {
	if p.eof() {
		return nil, p.errf("empty path")
	}
	var path Path
	for !p.eof() {
		step, err := p.step()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	return &path, nil
}

func (p *parser) step() (Step, error) {
	var s Step
	if !p.eat('/') {
		return s, p.errf("want '/' or '//' to start a step, got %q", rest(p.input[p.off:]))
	}
	if p.eat('/') {
		s.Axis = Descendant
	}
	name, err := p.name()
	if err != nil {
		return s, err
	}
	s.Name = name
	for p.peek() == '[' {
		pred, err := p.pred()
		if err != nil {
			return s, err
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

// name parses an element name test: "*" or an XML-style name (letters,
// digits, '_', '-', '.' after a letter or '_').
func (p *parser) name() (string, error) {
	if p.eat('*') {
		return "*", nil
	}
	start := p.off
	if !isNameStart(p.peek()) {
		return "", p.errf("want an element name or '*'")
	}
	p.off++
	for isNameByte(p.peek()) {
		p.off++
	}
	return p.input[start:p.off], nil
}

func (p *parser) pred() (Pred, error) {
	open := p.pos()
	p.off++ // '['
	if c := p.peek(); c >= '0' && c <= '9' {
		start := p.off
		for c := p.peek(); c >= '0' && c <= '9'; c = p.peek() {
			p.off++
		}
		n, err := strconv.Atoi(p.input[start:p.off])
		if err != nil || n < 1 {
			return nil, srcpos.Errorf(srcpos.At(1, start+1), "position must be a positive integer, got %q", p.input[start:p.off])
		}
		if !p.eat(']') {
			return nil, p.errf("want ']' to close the predicate opened at column %d", open.Col)
		}
		return Index{N: n}, nil
	}
	child, err := p.name()
	if err != nil {
		return nil, err
	}
	if child == "*" {
		return nil, p.errf("predicate child name cannot be '*'")
	}
	if !p.eat('=') {
		return nil, p.errf("want '=' after predicate child name %q", child)
	}
	value, err := p.literal()
	if err != nil {
		return nil, err
	}
	if !p.eat(']') {
		return nil, p.errf("want ']' to close the predicate opened at column %d", open.Col)
	}
	return ChildEq{Child: child, Value: value}, nil
}

// literal parses a quoted string. There is no escaping (as in XPath
// 1.0): a single-quoted literal cannot contain a single quote, a
// double-quoted one cannot contain a double quote.
func (p *parser) literal() (string, error) {
	q := p.peek()
	if q != '\'' && q != '"' {
		return "", p.errf("want a quoted string")
	}
	p.off++
	start := p.off
	for !p.eof() && p.input[p.off] != q {
		p.off++
	}
	if p.eof() {
		return "", srcpos.Errorf(srcpos.At(1, start), "unterminated string literal")
	}
	v := p.input[start:p.off]
	p.off++ // closing quote
	return v, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// rest truncates a suffix of the input for error messages.
func rest(s string) string {
	if len(s) > 12 {
		return s[:12] + "…"
	}
	return s
}
