// Package xpath implements the fragment query language of the serving
// daemon: a small XPath subset over the XML documents that AIG views
// produce. A path is a sequence of child ("/") or descendant ("//")
// steps, each naming an element label (or "*") and optionally filtered
// by predicates — equality on a child element's text ([name='X']) and
// 1-based position ([2]).
//
// Semantics (shared verbatim by the post-hoc matcher in this package
// and the partial evaluator driving aig.EvalPartial):
//
//   - A path is absolute: the first step is matched against the
//     document root ("/" from a virtual document node whose only child
//     is the root element; "//" reaches every element including the
//     root).
//   - [name='X'] holds when the candidate has at least one child
//     element labeled name whose string value equals X.
//   - [N] is the proximity position among siblings of the same parent
//     that passed the step's name test and every preceding predicate —
//     the standard XPath reading under which //a[2] abbreviates
//     /descendant-or-self::node()/child::a[2].
//   - Matches are outermost-only: a matched element is reported whole
//     and its descendants are not searched further, so a fragment never
//     contains another fragment. Results come in document order.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis distinguishes the two step axes of the subset.
type Axis int

const (
	// Child steps ("/name") match children of the current context.
	Child Axis = iota
	// Descendant steps ("//name") match any strict descendant.
	Descendant
)

// Pred is a step predicate: either ChildEq or Index.
type Pred interface {
	fmt.Stringer
	pred()
}

// ChildEq is the predicate [child='value']: the candidate element has a
// child element labeled Child whose string value equals Value.
type ChildEq struct {
	Child string
	Value string
}

func (ChildEq) pred() {}

// String renders the predicate in its source form, preferring single
// quotes and falling back to double quotes when the value contains one.
func (p ChildEq) String() string {
	q := "'"
	if strings.Contains(p.Value, "'") {
		q = `"`
	}
	return "[" + p.Child + "=" + q + p.Value + q + "]"
}

// Index is the positional predicate [N], 1-based.
type Index struct {
	N int
}

func (Index) pred() {}

// String renders the predicate in its source form.
func (p Index) String() string { return "[" + strconv.Itoa(p.N) + "]" }

// Step is one location step: an axis, a name test (an element label or
// "*"), and predicates applied in source order.
type Step struct {
	Axis  Axis
	Name  string
	Preds []Pred
}

// String renders the step in its source form.
func (s Step) String() string {
	var b strings.Builder
	if s.Axis == Descendant {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(s.Name)
	for _, p := range s.Preds {
		b.WriteString(p.String())
	}
	return b.String()
}

// Path is a parsed path expression: one or more steps.
type Path struct {
	Steps []Step
}

// String renders the path in canonical source form; Parse(p.String())
// yields a path equal to p.
func (p *Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(s.String())
	}
	return b.String()
}

// Format is String under the name the rest of the toolchain uses for
// canonical renderings.
func (p *Path) Format() string { return p.String() }

// nameMatches reports whether a step's name test accepts an element
// label.
func nameMatches(test, label string) bool {
	return test == "*" || test == label
}
