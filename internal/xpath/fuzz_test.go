package xpath_test

import (
	"testing"

	"github.com/aigrepro/aig/internal/xpath"
)

// FuzzPathParse checks the parser never panics and that parsing is
// idempotent through the canonical rendering: any accepted input
// re-parses from its String() form to the same rendering.
func FuzzPathParse(f *testing.F) {
	seeds := []string{
		"/report/patient",
		"//patient[SSN='s000123']",
		"/a//b[2]",
		`/*[3]/b[x="it's"]`,
		"//*",
		"/a[b='say \"hi\"'][1]//c",
		"/a_1/b-2/c.3[z='']",
		"patient",
		"/a[0]",
		"/a[b='x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := xpath.Parse(input)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		formatted := p.String()
		p2, err := xpath.Parse(formatted)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", formatted, input, err)
		}
		if got := p2.String(); got != formatted {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, formatted, got)
		}
		if len(p.Steps) == 0 {
			t.Fatalf("accepted %q with zero steps", input)
		}
	})
}
