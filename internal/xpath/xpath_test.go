package xpath_test

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/srcpos"
	"github.com/aigrepro/aig/internal/xmltree"
	"github.com/aigrepro/aig/internal/xpath"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical rendering; "" means same as in
	}{
		{in: "/report"},
		{in: "/report/patient"},
		{in: "//patient"},
		{in: "/report//treatment"},
		{in: "//patient[SSN='s000123']"},
		{in: "/report/patient[2]"},
		{in: "//a[2][b='x']"},
		{in: "/a//b[2]"},
		{in: "//*"},
		{in: "/*[3]"},
		{in: "/a[b=\"it's\"]"},
		{in: `/a[b="x"]`, want: "/a[b='x']"},
		{in: "/a[b='say \"hi\"']"},
		{in: "/a_1/b-2/c.3"},
	}
	for _, c := range cases {
		p, err := xpath.Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, want)
		}
		// Canonical renderings re-parse to themselves.
		p2, err := xpath.Parse(p.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", p.String(), err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("round trip of %q: %q != %q", c.in, p2.String(), p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		col  int
		want string // substring of the message
	}{
		{"", 1, "empty path"},
		{"patient", 1, "want '/'"},
		{"/", 2, "element name"},
		{"/a/", 4, "element name"},
		{"/a[0]", 4, "positive integer"},
		{"/a[2", 5, "want ']'"},
		{"/a[b", 5, "want '='"},
		{"/a[b=x]", 6, "quoted string"},
		{"/a[b='x", 6, "unterminated"},
		{"/a[*='x']", 5, "cannot be '*'"},
		{"/a[]", 4, "element name"},
		{"/a]", 3, "want '/'"},
	}
	for _, c := range cases {
		_, err := xpath.Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", c.in, err, c.want)
		}
		if pos := srcpos.PosOf(err); pos.Col != c.col {
			t.Errorf("Parse(%q) error at col %d, want %d (%v)", c.in, pos.Col, c.col, err)
		}
	}
}

func mustParse(t *testing.T, expr string) *xpath.Path {
	t.Helper()
	p, err := xpath.Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return p
}

func mustDoc(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return n
}

// values renders each match's string value, comma-joined — enough to
// identify matches in the small hand-built documents.
func values(ns []*xmltree.Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.StringValue()
	}
	return strings.Join(parts, ",")
}

func TestSelect(t *testing.T) {
	doc := mustDoc(t, `<r>
  <a><n>x</n></a>
  <a><n>y</n><a><n>x</n></a></a>
  <b><a><n>x</n></a></b>
</r>`)
	cases := []struct {
		expr string
		want string
	}{
		{"/r/a", "x,yx"},
		// Outermost-only: the a nested inside the second a is swallowed
		// by its parent's match, but the one under b is found.
		{"//a", "x,yx,x"},
		{"//a[n='x']", "x,x,x"},
		{"//a[n='y']", "yx"},
		{"/r/a[1]", "x"},
		{"/r/a[2]", "yx"},
		{"/r/a[3]", ""},
		{"/r/*", "x,yx,x"},
		{"/r/*[3]", "x"},
		{"//n", "x,y,x,x"},
		{"/r/b/a/n", "x"},
		{"/r//n[1]", "x,y,x,x"}, // [1] counts per parent walk
		{"/x", ""},
		{"//a[z='q']", ""},
		{"/r[a='x']/b", "x"},
	}
	for _, c := range cases {
		got := values(xpath.Select(doc, mustParse(t, c.expr)))
		if got != c.want {
			t.Errorf("Select(%s) = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectPositionalScoping(t *testing.T) {
	doc := mustDoc(t, `<r><g><a>1</a><a>2</a></g><g><a>3</a><a>4</a></g></r>`)
	// Proximity position restarts per parent: //a[2] is the second a of
	// each g, not the second a in the document.
	if got := values(xpath.Select(doc, mustParse(t, "//a[2]"))); got != "2,4" {
		t.Errorf("//a[2] = %q, want \"2,4\"", got)
	}
	// Position counts only siblings that passed the preceding predicates.
	doc2 := mustDoc(t, `<r><a><k>v</k>1</a><a>2</a><a><k>v</k>3</a></r>`)
	if got := values(xpath.Select(doc2, mustParse(t, "/r/a[k='v'][2]"))); got != "v3" {
		t.Errorf("/r/a[k='v'][2] = %q, want \"v3\"", got)
	}
	if got := values(xpath.Select(doc2, mustParse(t, "/r/a[2][k='v']"))); got != "" {
		t.Errorf("/r/a[2][k='v'] = %q, want \"\"", got)
	}
}

func TestSelectRootMatch(t *testing.T) {
	doc := mustDoc(t, `<r><r>nested</r></r>`)
	// The descendant axis from the document node reaches the root
	// element itself; outermost-only then swallows the nested r.
	got := xpath.Select(doc, mustParse(t, "//r"))
	if len(got) != 1 || got[0] != doc {
		t.Fatalf("//r = %v, want the root element", values(got))
	}
}
