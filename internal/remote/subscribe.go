package remote

import (
	"encoding/gob"
	"log/slog"
	"sort"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
)

// Delta subscriptions (protocol version 3). A client sends one
// reqSubscribe request carrying its per-table watermarks and the
// connection flips into a one-way push stream: the server answers with a
// subHello, then keeps the subscriber at the head of the change logs by
// pushing ChangesSince-shaped delta batches as mutations land, with
// heartbeats while the database is idle. When the subscriber's
// watermarks fall past a change-log horizon (or it has no state at all),
// the server interposes a catch-up: a consistent snapshot of every
// table — seqlock-certified when writers allow, chunked so one huge
// table cannot monopolize the stream — bracketed by subCatchupBegin
// (carrying the truncation cause, so the subscriber meters WHY it had to
// resync) and subCatchupEnd (carrying the exact per-table versions the
// delta tail resumes from).
//
// The server never reads from the connection again; the subscriber
// never writes. Either side ending the connection ends the stream, and
// the subscriber resubscribes from its current watermarks — overlap is
// handled by the version numbers carried on every delta.

// Server-side subscription metrics.
var (
	metricSubSessions = obs.Default.NewCounter("aig_remote_sub_sessions_total",
		"delta-subscription sessions accepted")
	metricSubCatchups = obs.Default.NewCounter("aig_remote_sub_catchups_total",
		"catch-up snapshots streamed to subscribers")
	metricSubDeltaSets = obs.Default.NewCounter("aig_remote_sub_delta_sets_total",
		"per-table delta batches pushed to subscribers")
	metricSubHeartbeats = obs.Default.NewCounter("aig_remote_sub_heartbeats_total",
		"heartbeats pushed to subscribers")
)

// subKind discriminates the frames of a subscription push stream.
type subKind uint8

const (
	// subHello acknowledges the subscription; Versions is the server's
	// current per-table state.
	subHello subKind = iota
	// subCatchupBegin announces a snapshot; Cause is the
	// relstore.TruncateCause that forced it (TruncateNone on an initial
	// sync, when the subscriber simply had no state).
	subCatchupBegin
	// subSnapshotTable opens one table's snapshot: Table, Schema, Version
	// and the first chunk of Rows.
	subSnapshotTable
	// subSnapshotRows continues the current table with another chunk.
	subSnapshotRows
	// subCatchupEnd closes the snapshot; Versions carries the exact
	// per-table watermarks the following delta tail resumes from, and
	// Consistent whether the whole capture was certified as one seqlock
	// cut (an uncertified capture is still per-table consistent and
	// converges through the tail).
	subCatchupEnd
	// subDeltas pushes one ChangesSince-shaped batch per mutated table;
	// Versions is the subscriber's new watermark set.
	subDeltas
	// subHeartbeat is pushed while the database is idle; Versions echoes
	// the watermarks so the subscriber can detect drift.
	subHeartbeat
)

// String names the frame kind for logs.
func (k subKind) String() string {
	switch k {
	case subHello:
		return "hello"
	case subCatchupBegin:
		return "catchup_begin"
	case subSnapshotTable:
		return "snapshot_table"
	case subSnapshotRows:
		return "snapshot_rows"
	case subCatchupEnd:
		return "catchup_end"
	case subDeltas:
		return "deltas"
	case subHeartbeat:
		return "heartbeat"
	default:
		return "unknown"
	}
}

// subMessage is one server->subscriber frame. Which fields are set
// depends on Kind; gob's field-name matching keeps old subscribers
// tolerant of fields added later.
type subMessage struct {
	Proto int
	Kind  subKind

	// Cause (subCatchupBegin): the relstore.TruncateCause forcing the
	// snapshot, TruncateNone for an initial sync.
	Cause uint8

	// Table/Schema/Version/Rows (subSnapshotTable, subSnapshotRows):
	// one table's snapshot, chunked.
	Table   string
	Schema  []string
	Version uint64
	Rows    [][]wireValue

	// Sets (subDeltas): one ChangesSince answer per mutated table.
	Sets []wireChangeSet

	// Versions: per-table watermarks (meaning depends on Kind).
	Versions map[string]uint64

	// DBVersion/Consistent (subCatchupEnd): the database version the
	// snapshot was captured at and whether the seqlock certified it.
	DBVersion  uint64
	Consistent bool
}

// snapshotChunkRows bounds the rows per snapshot frame so a large table
// streams in bounded frames instead of one giant gob message.
const snapshotChunkRows = 512

// snapshotAttempts bounds how often a catch-up retries for a
// seqlock-certified whole-database cut before settling for per-table
// consistency.
const snapshotAttempts = 5

// defaultHeartbeat is the idle push cadence when Server.HeartbeatEvery
// is unset.
const defaultHeartbeat = time.Second

func (s *Server) heartbeatEvery() time.Duration {
	if s.HeartbeatEvery > 0 {
		return s.HeartbeatEvery
	}
	return defaultHeartbeat
}

// serveSubscription owns the connection after a reqSubscribe: it pushes
// frames until an encode fails (subscriber gone or server closed).
func (s *Server) serveSubscription(enc *gob.Encoder, req *request) {
	metricSubSessions.Inc()
	db := s.local.DB()
	marks := make(map[string]uint64, len(req.FromVersions))
	for k, v := range req.FromVersions {
		marks[k] = v
	}
	send := func(m *subMessage) error {
		m.Proto = protoVersion
		return enc.Encode(m)
	}
	if send(&subMessage{Kind: subHello, Versions: db.TableVersions()}) != nil {
		return
	}
	ticker := time.NewTicker(s.heartbeatEvery())
	defer ticker.Stop()
	needCatchup := len(marks) == 0
	cause := relstore.TruncateNone
	for {
		if needCatchup {
			var err error
			if marks, err = sendCatchup(enc, db, cause); err != nil {
				return
			}
			needCatchup = false
		}
		// The signal is grabbed before gathering, so a mutation landing
		// between the gather and the wait still wakes the loop.
		sig := db.ChangeSignal()
		sets, c, ok := gatherDeltas(db, marks)
		if !ok {
			needCatchup, cause = true, c
			continue
		}
		if len(sets) > 0 {
			metricSubDeltaSets.Add(int64(len(sets)))
			if send(&subMessage{Kind: subDeltas, Sets: sets, Versions: copyVersions(marks)}) != nil {
				return
			}
			continue
		}
		select {
		case <-sig:
		case <-ticker.C:
			metricSubHeartbeats.Inc()
			if send(&subMessage{Kind: subHeartbeat, Versions: copyVersions(marks)}) != nil {
				return
			}
		}
	}
}

// gatherDeltas collects every table's deltas past the subscriber's
// watermarks, advancing marks in place. ok=false means the incremental
// path cannot cover the gap — a log truncated (cause says why), a table
// the subscriber has was dropped, or a table it lacks appeared — and the
// session must fall back to a catch-up snapshot.
func gatherDeltas(db *relstore.Database, marks map[string]uint64) (sets []wireChangeSet, cause relstore.TruncateCause, ok bool) {
	current := db.TableVersions()
	for name := range marks {
		if _, there := current[name]; !there {
			return nil, relstore.TruncateReset, false // table dropped
		}
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		since, have := marks[name]
		if !have {
			return nil, relstore.TruncateReset, false // new table needs a snapshot
		}
		if current[name] == since {
			continue
		}
		cs, err := db.ChangesSince(name, since)
		if err != nil {
			return nil, relstore.TruncateReset, false
		}
		if cs.Truncated {
			return nil, cs.Cause, false
		}
		sets = append(sets, changeSetToWire(cs))
		marks[name] = cs.Now
	}
	return sets, relstore.TruncateNone, true
}

// sendCatchup streams a snapshot of every table and returns the
// watermarks the delta tail resumes from.
func sendCatchup(enc *gob.Encoder, db *relstore.Database, cause relstore.TruncateCause) (map[string]uint64, error) {
	metricSubCatchups.Inc()
	slog.Debug("remote: streaming catch-up snapshot", "db", db.Name(), "cause", cause.String())
	snaps, dbv, consistent := db.CaptureSnapshot(snapshotAttempts)
	send := func(m *subMessage) error {
		m.Proto = protoVersion
		return enc.Encode(m)
	}
	if err := send(&subMessage{Kind: subCatchupBegin, Cause: uint8(cause)}); err != nil {
		return nil, err
	}
	marks := make(map[string]uint64, len(snaps))
	for _, ts := range snaps {
		spec := make([]string, len(ts.Schema))
		for i, col := range ts.Schema {
			spec[i] = col.String()
		}
		rows := ts.Rows
		first := true
		for {
			n := len(rows)
			if n > snapshotChunkRows {
				n = snapshotChunkRows
			}
			chunk := make([][]wireValue, n)
			for i, row := range rows[:n] {
				wr := make([]wireValue, len(row))
				for j, v := range row {
					wr[j] = toWire(v)
				}
				chunk[i] = wr
			}
			rows = rows[n:]
			msg := &subMessage{Kind: subSnapshotRows, Table: ts.Name, Rows: chunk}
			if first {
				msg.Kind = subSnapshotTable
				msg.Schema = spec
				msg.Version = ts.Version
			}
			if err := send(msg); err != nil {
				return nil, err
			}
			first = false
			if len(rows) == 0 {
				break
			}
		}
		marks[ts.Name] = ts.Version
	}
	err := send(&subMessage{Kind: subCatchupEnd, Versions: copyVersions(marks), DBVersion: dbv, Consistent: consistent})
	return marks, err
}

func copyVersions(in map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
