package remote

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

// FuzzChangeSetWire checks that arbitrary change sets survive the wire:
// wire encoding, gob serialization and decoding compose to the
// identity. The raw input drives a small interpreter that builds the
// ChangeSet, so the fuzzer explores shapes (empty rows, null values,
// negative ints, truncation flags) rather than gob's framing.
func FuzzChangeSetWire(f *testing.F) {
	f.Add("patient", uint64(0), uint64(3), false, []byte{0, 1, 2, 3, 4, 5})
	f.Add("", uint64(9), uint64(2), true, []byte{})
	f.Add("t", uint64(1), uint64(1), false, []byte{255, 254, 253, 7, 9, 11, 200, 1})

	f.Fuzz(func(t *testing.T, table string, since, now uint64, truncated bool, data []byte) {
		cs := relstore.ChangeSet{Table: table, Since: since, Now: now, Truncated: truncated}
		if truncated {
			// The cause rides along only when the set is truncated; cycle it
			// from the inputs so all three causes cross the wire.
			cs.Cause = relstore.TruncateCause(1 + (since+now)%3)
		}
		ver := since
		for len(data) > 0 {
			n := int(data[0] % 5) // row width 0..4
			data = data[1:]
			ch := relstore.Change{Ver: ver}
			if n%2 == 1 {
				ch.Op = relstore.ChangeDelete
			}
			ver++
			for i := 0; i < n && len(data) > 0; i++ {
				b := data[0]
				data = data[1:]
				switch b % 3 {
				case 0:
					ch.Row = append(ch.Row, relstore.Int(int64(b)-128))
				case 1:
					ch.Row = append(ch.Row, relstore.String(string(rune(b))))
				default:
					ch.Row = append(ch.Row, relstore.Null)
				}
			}
			cs.Changes = append(cs.Changes, ch)
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(changeSetToWire(cs)); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var w wireChangeSet
		if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := changeSetFromWire(w)
		if !reflect.DeepEqual(got, cs) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cs)
		}
	})
}

// FuzzSubscribeWire checks the subscription push frames the same way:
// a byte-driven interpreter assembles arbitrary subMessages (snapshot
// chunks with odd schemas and values, delta batches, heartbeat version
// maps, unknown kinds) and gob round-trips must be the identity. The
// frames are what keeps replicas consistent, so a lossy encoding here
// is silent data corruption across the whole fleet.
func FuzzSubscribeWire(f *testing.F) {
	f.Add(uint8(0), "visit", uint64(7), true, []byte{1, 2, 3, 4, 5})
	f.Add(uint8(3), "", uint64(0), false, []byte{})
	f.Add(uint8(6), "t", uint64(1<<40), true, []byte{255, 0, 128, 9, 11, 200, 1, 7})

	f.Fuzz(func(t *testing.T, kind uint8, table string, version uint64, consistent bool, data []byte) {
		msg := subMessage{
			Proto:      protoVersion,
			Kind:       subKind(kind),
			Cause:      kind % 4,
			Table:      table,
			Version:    version,
			DBVersion:  version * 2,
			Consistent: consistent,
		}
		// Interpret the tail as schema columns, snapshot rows, version
		// map entries and one delta set, so every field shape is explored.
		for i, b := range data {
			switch b % 4 {
			case 0:
				msg.Schema = append(msg.Schema, string(rune('a'+b%26))+":string")
			case 1:
				// gob decodes zero-length slices as nil, so only non-empty
				// rows are representable on the wire; build them that way.
				var row []wireValue
				for j := 0; j < int(b%3)+1; j++ {
					row = append(row, wireValue{Kind: b % 3, I: int64(b) - 128, S: string(rune(b))})
				}
				msg.Rows = append(msg.Rows, row)
			case 2:
				if msg.Versions == nil {
					msg.Versions = make(map[string]uint64)
				}
				msg.Versions[string(rune('k'+b%5))] = uint64(b) * version
			default:
				msg.Sets = append(msg.Sets, wireChangeSet{
					Table:     table,
					Since:     uint64(i),
					Now:       uint64(i) + uint64(b),
					Truncated: b%2 == 0,
					Cause:     b % 4,
					Changes:   []wireChange{{Ver: uint64(b), Op: b % 2, Row: []wireValue{{Kind: b % 3, I: int64(b)}}}},
				})
			}
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got subMessage
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, msg)
		}
	})
}
