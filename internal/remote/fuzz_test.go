package remote

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"github.com/aigrepro/aig/internal/relstore"
)

// FuzzChangeSetWire checks that arbitrary change sets survive the wire:
// wire encoding, gob serialization and decoding compose to the
// identity. The raw input drives a small interpreter that builds the
// ChangeSet, so the fuzzer explores shapes (empty rows, null values,
// negative ints, truncation flags) rather than gob's framing.
func FuzzChangeSetWire(f *testing.F) {
	f.Add("patient", uint64(0), uint64(3), false, []byte{0, 1, 2, 3, 4, 5})
	f.Add("", uint64(9), uint64(2), true, []byte{})
	f.Add("t", uint64(1), uint64(1), false, []byte{255, 254, 253, 7, 9, 11, 200, 1})

	f.Fuzz(func(t *testing.T, table string, since, now uint64, truncated bool, data []byte) {
		cs := relstore.ChangeSet{Table: table, Since: since, Now: now, Truncated: truncated}
		if truncated {
			// The cause rides along only when the set is truncated; cycle it
			// from the inputs so all three causes cross the wire.
			cs.Cause = relstore.TruncateCause(1 + (since+now)%3)
		}
		ver := since
		for len(data) > 0 {
			n := int(data[0] % 5) // row width 0..4
			data = data[1:]
			ch := relstore.Change{Ver: ver}
			if n%2 == 1 {
				ch.Op = relstore.ChangeDelete
			}
			ver++
			for i := 0; i < n && len(data) > 0; i++ {
				b := data[0]
				data = data[1:]
				switch b % 3 {
				case 0:
					ch.Row = append(ch.Row, relstore.Int(int64(b)-128))
				case 1:
					ch.Row = append(ch.Row, relstore.String(string(rune(b))))
				default:
					ch.Row = append(ch.Row, relstore.Null)
				}
			}
			cs.Changes = append(cs.Changes, ch)
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(changeSetToWire(cs)); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var w wireChangeSet
		if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := changeSetFromWire(w)
		if !reflect.DeepEqual(got, cs) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cs)
		}
	})
}
