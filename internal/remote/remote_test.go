package remote

import (
	"context"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// serveCatalog starts one TCP server per database of the catalog and
// returns a registry of remote clients.
func serveCatalog(t *testing.T, cat *relstore.Catalog) *source.Registry {
	t.Helper()
	reg := source.NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		client, err := Dial(name, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		reg.Add(client)
	}
	return reg
}

func TestClientBasics(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := serveCatalog(t, cat)

	src, err := reg.Get("DB1")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := src.TableSchema("patient")
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(relstore.MustSchema("SSN:string", "pname:string", "policy:string")) {
		t.Errorf("remote schema = %v", schema)
	}
	if n, err := src.TableCard("patient"); err != nil || n != 3 {
		t.Errorf("TableCard = %d, %v", n, err)
	}
	if n, err := src.ColumnDistinct("patient", "policy"); err != nil || n != 2 {
		t.Errorf("ColumnDistinct = %d, %v", n, err)
	}
	if _, err := src.TableSchema("nope"); err == nil || !strings.Contains(err.Error(), "no table") {
		t.Errorf("missing table error = %v", err)
	}
}

func TestClientExecMatchesLocal(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := serveCatalog(t, cat)
	src, err := reg.Get("DB3")
	if err != nil {
		t.Fatal(err)
	}
	q := sqlmini.MustParse(`select trId, price from DB3:billing where trId in $V`)
	params := sqlmini.Params{"V": {
		Schema: relstore.MustSchema("trId:string"),
		Rows:   []relstore.Tuple{{relstore.String("t1")}, {relstore.String("t3")}},
	}}
	got, dur, err := src.Exec(context.Background(), "out", q, params, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("no evaluation time measured")
	}
	db, _ := cat.Database("DB3")
	want, _, err := source.NewLocal(db).Exec(context.Background(), "out", q, params, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("remote result differs:\n%v\n%v", want, got)
	}
}

func TestClientEstimate(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := serveCatalog(t, cat)
	src, err := reg.Get("DB1")
	if err != nil {
		t.Fatal(err)
	}
	q := sqlmini.MustParse(`select SSN from DB1:visitInfo where date = $v.date`)
	est, err := src.Estimate(context.Background(), q, sqlmini.ParamSchemas{"v": relstore.MustSchema("date:string")}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows <= 0 || est.Cost <= 0 {
		t.Errorf("estimate = %+v", est)
	}
}

func TestClientErrors(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := serveCatalog(t, cat)
	src, err := reg.Get("DB1")
	if err != nil {
		t.Fatal(err)
	}
	// Query against a foreign source must be rejected server-side.
	q := sqlmini.MustParse(`select trId from DB3:billing`)
	if _, _, err := src.Exec(context.Background(), "out", q, nil, sqlmini.PlanOptions{}); err == nil {
		t.Error("foreign-source query accepted")
	}
	// Dial failure.
	if _, err := Dial("DBX", "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestMediatorOverTCP runs the full hospital pipeline against four real
// TCP sources and checks the document matches the in-process evaluation.
func TestMediatorOverTCP(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(true)
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = specialize.DecomposeQueries(sa, sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sa, err = specialize.Unfold(sa, 4)
	if err != nil {
		t.Fatal(err)
	}

	want, err := sa.Eval(hospital.EnvFor(cat), hospital.RootInh(sa, "d1"))
	if err != nil {
		t.Fatal(err)
	}

	reg := serveCatalog(t, cat)
	m := mediator.New(reg, mediator.DefaultOptions())
	res, err := m.Evaluate(sa, hospital.RootInh(sa, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res.Doc) {
		t.Errorf("TCP-backed mediator produced a different document:\n%s\n%s", want, res.Doc)
	}
}
