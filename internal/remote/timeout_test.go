package remote

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// stallingServer accepts one connection and answers the first answered
// requests normally, then goes silent: it keeps reading but never
// replies — the behavior of a hung source engine.
func stallingServer(t *testing.T, answered int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for i := 0; i < answered; i++ {
			var req request
			if dec.Decode(&req) != nil {
				return
			}
			if enc.Encode(&response{Card: 1}) != nil {
				return
			}
		}
		// Stall: swallow everything, answer nothing.
		io.Copy(io.Discard, conn)
	}()
	return l.Addr().String()
}

func TestClientReadTimeoutOnStalledServer(t *testing.T) {
	// The server answers the liveness ping, then hangs.
	addr := stallingServer(t, 1)
	c, err := DialTimeouts("DB1", addr, Timeouts{
		Dial:  time.Second,
		Read:  150 * time.Millisecond,
		Write: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.TableCard("patient")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against a stalled server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("error is not a net timeout: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v, deadline was 150ms", elapsed)
	}
}

func TestDialTimeoutOnStalledServer(t *testing.T) {
	// The server accepts but never answers the liveness ping, so
	// DialTimeouts itself must fail within the read deadline instead of
	// hanging forever.
	addr := stallingServer(t, 0)
	start := time.Now()
	_, err := DialTimeouts("DB1", addr, Timeouts{
		Dial:  time.Second,
		Read:  150 * time.Millisecond,
		Write: time.Second,
	})
	if err == nil {
		t.Fatal("dial against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial failed only after %v", elapsed)
	}
}

func TestZeroTimeoutsKeepWorking(t *testing.T) {
	// The default (no deadlines) still round-trips against a live server.
	addr := stallingServer(t, 2)
	c, err := Dial("DB1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := c.TableCard("patient"); err != nil || n != 1 {
		t.Fatalf("TableCard = %d, %v", n, err)
	}
}
