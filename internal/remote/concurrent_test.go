package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// The serving daemon multiplexes many request goroutines over the
// registry's remote clients. These tests put the gob-over-TCP layer
// under that kind of load.

// TestManyClientsOneServer hits a single server from several
// independent connections at once, mixing Exec, metadata and
// data-version traffic, and checks every answer against a local
// evaluation of the same database.
func TestManyClientsOneServer(t *testing.T) {
	cat := hospital.TinyCatalog()
	db, err := cat.Database("DB3")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	q := sqlmini.MustParse(`select trId, price from DB3:billing where price > 0`)
	want, _, err := source.NewLocal(db).Exec(context.Background(), "out", q, nil, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	const perClient = 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial("DB3", addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				switch i % 3 {
				case 0:
					out, _, err := cl.Exec(context.Background(), "out", q, nil, sqlmini.PlanOptions{})
					if err != nil {
						errs <- fmt.Errorf("client %d exec: %w", c, err)
						return
					}
					if !want.Equal(out) {
						errs <- fmt.Errorf("client %d: result differs from local evaluation", c)
						return
					}
				case 1:
					if n, err := cl.TableCard("billing"); err != nil || n != 5 {
						errs <- fmt.Errorf("client %d card: %d, %v", c, n, err)
						return
					}
				case 2:
					if v, err := cl.DataVersion(); err != nil || v != db.Version() {
						errs <- fmt.Errorf("client %d version: %d, %v", c, v, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedClientConcurrentMixedTraffic drives one shared client (the
// registry hands the same *Client to every mediator goroutine) with
// interleaved query shapes, so response matching across the serialized
// connection is exercised, not just raw throughput.
func TestSharedClientConcurrentMixedTraffic(t *testing.T) {
	cat := hospital.TinyCatalog()
	db, err := cat.Database("DB1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial("DB1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	byDate := sqlmini.MustParse(`select SSN, trId from DB1:visitInfo where date = $v.date`)
	local := source.NewLocal(db)
	wantRows := map[string]int{}
	for _, d := range []string{"d1", "d2", "d3"} {
		params := sqlmini.Params{"v": {
			Schema: relstore.MustSchema("date:string"),
			Rows:   []relstore.Tuple{{relstore.String(d)}},
		}}
		out, _, err := local.Exec(context.Background(), "out", byDate, params, sqlmini.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantRows[d] = out.Len()
	}
	if wantRows["d1"] == wantRows["d2"] {
		t.Fatalf("test data no longer distinguishes the dates: %v", wantRows)
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	dates := []string{"d1", "d2", "d3"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				d := dates[(g+i)%len(dates)]
				params := sqlmini.Params{"v": {
					Schema: relstore.MustSchema("date:string"),
					Rows:   []relstore.Tuple{{relstore.String(d)}},
				}}
				out, _, err := client.Exec(context.Background(), "out", byDate, params, sqlmini.PlanOptions{})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					failures.Add(1)
					return
				}
				// The response must belong to *this* request's date — a
				// mismatched response on the shared connection would
				// surface here as the wrong cardinality.
				if out.Len() != wantRows[d] {
					t.Errorf("goroutine %d: %d rows for %s, want %d (cross-matched response?)",
						g, out.Len(), d, wantRows[d])
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.FailNow()
	}
}

// TestStalledServerUnderConcurrentLoad shares one timeout-guarded
// client among many goroutines against a server that answers a couple
// of requests and then goes silent. Every caller must come back — with
// a result or a timeout — rather than hang behind the stalled
// connection.
func TestStalledServerUnderConcurrentLoad(t *testing.T) {
	addr := stallingServer(t, 2)
	client, err := DialTimeouts("DB1", addr, Timeouts{
		Dial: time.Second, Read: 100 * time.Millisecond, Write: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const callers = 6
	var ok, timedOut atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.TableCard("patient")
			switch {
			case err == nil:
				ok.Add(1)
			case isTimeout(err) || errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded):
				timedOut.Add(1)
			default:
				// Reconnect attempts against the one-connection stall
				// server surface as refused/reset connections; any error
				// is an acceptable way *not to hang*.
				timedOut.Add(1)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent callers hung behind the stalled server")
	}
	if ok.Load() > 2 {
		t.Fatalf("%d calls succeeded but the server only answers 2", ok.Load())
	}
	if timedOut.Load() == 0 {
		t.Fatal("no caller observed the stall")
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
