package remote

import (
	"context"
	"sync"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/sqlmini"
)

func TestClientSurvivesServerRestart(t *testing.T) {
	cat := hospital.TinyCatalog()
	db, err := cat.Database("DB1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial("DB1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.TableCard("patient"); err != nil {
		t.Fatal(err)
	}
	// Kill the server: the in-flight connection dies; requests fail.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.TableCard("patient"); err == nil {
		t.Fatal("request against a dead server succeeded")
	}
	// Restart on the same address; the client reconnects transparently.
	srv2 := NewServer(db)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()
	n, err := client.TableCard("patient")
	if err != nil || n != 3 {
		t.Fatalf("after restart: %d, %v", n, err)
	}
}

func TestClientConcurrentRequests(t *testing.T) {
	cat := hospital.TinyCatalog()
	db, err := cat.Database("DB3")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial("DB3", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	q := sqlmini.MustParse(`select trId, price from DB3:billing where price > 0`)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _, err := client.Exec(context.Background(), "out", q, nil, sqlmini.PlanOptions{})
			if err != nil {
				errs <- err
				return
			}
			if out.Len() != 5 {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerRejectsBadSQL(t *testing.T) {
	cat := hospital.TinyCatalog()
	db, _ := cat.Database("DB1")
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial("DB1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Estimation with an unknown parameter errors cleanly, and the
	// connection keeps working afterwards.
	q := sqlmini.MustParse(`select SSN from DB1:patient where SSN = $v.ghost`)
	if _, err := client.Estimate(context.Background(), q, sqlmini.ParamSchemas{"v": nil}, sqlmini.PlanOptions{}); err == nil {
		t.Error("bad parameter estimate succeeded")
	}
	if _, err := client.TableCard("patient"); err != nil {
		t.Errorf("connection unusable after server-side error: %v", err)
	}
}
