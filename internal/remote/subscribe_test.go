package remote

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
)

// subTestDB builds a database with one logged table "visit".
func subTestDB(t *testing.T, rows int) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("DB1")
	visit := db.CreateTable("visit", mustSchema(t, "ssn:string", "day:string"))
	for i := 0; i < rows; i++ {
		if err := visit.InsertValues(sprintfRow("s", i), sprintfRow("d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustSchema(t *testing.T, spec ...string) relstore.Schema {
	t.Helper()
	s, err := relstore.ParseSchema(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sprintfRow(prefix string, i int) string {
	return prefix + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// mirrorMatches reports whether the mirror's table equals the origin's,
// rows and version both.
func mirrorMatches(origin, mirror *relstore.Database, table string) bool {
	ot, err1 := origin.Table(table)
	mt, err2 := mirror.Table(table)
	if err1 != nil || err2 != nil {
		return false
	}
	return ot.Version() == mt.Version() && ot.Equal(mt)
}

func TestMirrorInitialSyncAndDeltaTail(t *testing.T) {
	db := subTestDB(t, 7)
	srv := NewServer(db)
	srv.HeartbeatEvery = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var kicks atomic.Int64
	m := OpenMirror("DB1", addr, MirrorOptions{
		Timeouts:     Timeouts{Dial: 2 * time.Second, Read: 2 * time.Second},
		ReconnectMin: 10 * time.Millisecond,
		OnApply:      func() { kicks.Add(1) },
	})
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if !mirrorMatches(db, m.DB(), "visit") {
		t.Fatalf("mirror does not match origin after initial sync")
	}
	if st := m.Stats(); st.InitialSyncs != 1 {
		t.Fatalf("initial syncs = %d, want 1", st.InitialSyncs)
	}
	if kicks.Load() == 0 {
		t.Fatal("OnApply did not fire for the initial sync")
	}

	// The delta tail: inserts and deletes at the origin flow through the
	// push stream and land at the origin's version numbers.
	visit, _ := db.Table("visit")
	before := visit.Version()
	if err := visit.InsertValues("s99", "d99"); err != nil {
		t.Fatal(err)
	}
	if _, err := visit.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "delta tail to apply", func() bool {
		return mirrorMatches(db, m.DB(), "visit")
	})
	mt, _ := m.DB().Table("visit")
	if mt.Version() != before+2 {
		t.Fatalf("mirror version = %d, want %d (origin watermarks must survive)", mt.Version(), before+2)
	}

	// The mirror answers ChangesSince with origin-meaningful watermarks:
	// the window covering the two deltas replays them exactly.
	cs := mt.ChangesSince(before)
	if cs.Truncated || len(cs.Changes) != 2 {
		t.Fatalf("mirror ChangesSince(%d) = %+v, want 2 untruncated changes", before, cs)
	}
	if cs.Changes[0].Op != relstore.ChangeInsert || cs.Changes[1].Op != relstore.ChangeDelete {
		t.Fatalf("mirror replayed ops = %v,%v, want insert,delete", cs.Changes[0].Op, cs.Changes[1].Op)
	}
}

// TestMirrorTruncationCausePropagation is the end-to-end check that an
// ErrLogTruncated cause survives the whole subscription path: a
// subscriber that falls past the origin's bounded change-log horizon is
// caught up by snapshot, the catch-up is metered under the origin's
// cause (rolled), AND the mirror's own ChangesSince re-reports that
// cause to ITS consumers (the serving-side refresher) for windows older
// than the snapshot.
func TestMirrorTruncationCausePropagation(t *testing.T) {
	db := subTestDB(t, 3)
	visit, _ := db.Table("visit")
	visit.SetChangeLogLimit(4)

	srv := NewServer(db)
	srv.HeartbeatEvery = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	m := OpenMirror("DB1", addr, MirrorOptions{
		Timeouts:     Timeouts{Dial: 2 * time.Second, Read: time.Second},
		ReconnectMin: 10 * time.Millisecond,
	})
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	stale := func() uint64 {
		mt, _ := m.DB().Table("visit")
		return mt.Version()
	}()

	// Partition the subscriber, then roll the origin's log far past its
	// watermark.
	srv.Close()
	for i := 0; i < 10; i++ {
		if err := visit.InsertValues(sprintfRow("x", i), sprintfRow("e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if cs := visit.ChangesSince(stale); !cs.Truncated || cs.Cause != relstore.TruncateRolled {
		t.Fatalf("origin window should be truncated (rolled), got %+v", cs)
	}

	srv2 := NewServer(db)
	srv2.HeartbeatEvery = 50 * time.Millisecond
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	waitFor(t, 10*time.Second, "catch-up after log roll", func() bool {
		return mirrorMatches(db, m.DB(), "visit")
	})
	if st := m.Stats(); st.CatchupRolled < 1 {
		t.Fatalf("catch-up not metered under cause rolled: %+v", st)
	}

	// The cause must propagate to the mirror's own consumers: a stale
	// watermark against the mirror yields a typed *ErrLogTruncated with
	// the origin's cause.
	mt, _ := m.DB().Table("visit")
	cs := mt.ChangesSince(stale)
	terr := cs.TruncationError()
	var lt *relstore.ErrLogTruncated
	if !errors.As(terr, &lt) {
		t.Fatalf("mirror ChangesSince(%d) error = %v, want *ErrLogTruncated", stale, terr)
	}
	if lt.Cause != relstore.TruncateRolled {
		t.Fatalf("propagated cause = %s, want rolled", lt.Cause)
	}
}

func TestMirrorCatchupOnLogReset(t *testing.T) {
	db := subTestDB(t, 5)
	srv := NewServer(db)
	srv.HeartbeatEvery = 20 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := OpenMirror("DB1", addr, MirrorOptions{
		Timeouts:     Timeouts{Dial: 2 * time.Second, Read: 2 * time.Second},
		ReconnectMin: 10 * time.Millisecond,
	})
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// Sort is not expressible as deltas: the origin resets its log, and
	// the live stream must interpose a catch-up with cause reset.
	visit, _ := db.Table("visit")
	visit.Sort(nil)
	waitFor(t, 5*time.Second, "catch-up after reset", func() bool {
		return mirrorMatches(db, m.DB(), "visit") && m.Stats().CatchupReset >= 1
	})
}

func TestMirrorCatchupOnOriginRestart(t *testing.T) {
	db := subTestDB(t, 6)
	srv := NewServer(db)
	srv.HeartbeatEvery = 20 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	m := OpenMirror("DB1", addr, MirrorOptions{
		Timeouts:     Timeouts{Dial: 2 * time.Second, Read: time.Second},
		ReconnectMin: 10 * time.Millisecond,
	})
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// The origin comes back cold: same tables, fresh (lower) versions.
	// The mirror's watermarks are from a future the new incarnation never
	// reached — TruncateRestart — and must be replaced by snapshot.
	db2 := subTestDB(t, 2)
	srv2 := NewServer(db2)
	srv2.HeartbeatEvery = 20 * time.Millisecond
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	waitFor(t, 10*time.Second, "catch-up after origin restart", func() bool {
		return mirrorMatches(db2, m.DB(), "visit") && m.Stats().CatchupRestart >= 1
	})
}

func TestMirrorTracksNewAndDroppedTables(t *testing.T) {
	db := subTestDB(t, 3)
	srv := NewServer(db)
	srv.HeartbeatEvery = 20 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := OpenMirror("DB1", addr, MirrorOptions{
		Timeouts:     Timeouts{Dial: 2 * time.Second, Read: 2 * time.Second},
		ReconnectMin: 10 * time.Millisecond,
	})
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// A table appearing at the origin is not expressible as row deltas;
	// the stream falls back to a catch-up that carries it.
	extra := db.CreateTable("extra", mustSchema(t, "k:int"))
	if err := extra.InsertValues(41); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "new table to appear", func() bool {
		return mirrorMatches(db, m.DB(), "extra")
	})

	db.DropTable("extra")
	waitFor(t, 5*time.Second, "dropped table to disappear", func() bool {
		return !m.DB().HasTable("extra")
	})
}
