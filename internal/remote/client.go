package remote

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Client is a source.Source backed by a remote Server. Requests are
// serialized over a single persistent connection (the engine executes one
// query at a time per client, matching the per-source schedules of §5.3).
type Client struct {
	name string
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a remote source. name is the source's database name as
// used in source-qualified table references.
func Dial(name, addr string) (*Client, error) {
	registerGob()
	c := &Client{name: name, addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	// Verify liveness.
	var resp response
	if err := c.roundTrip(&request{Kind: reqPing}, &resp); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("remote: dialing source %s at %s: %v", c.name, c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func (c *Client) roundTrip(req *request, resp *response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	if err := c.enc.Encode(req); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("remote: sending to %s: %v", c.name, err)
	}
	if err := c.dec.Decode(resp); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("remote: receiving from %s: %v", c.name, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("remote: source %s: %s", c.name, resp.Err)
	}
	return nil
}

// Name implements source.Source.
func (c *Client) Name() string { return c.name }

// TableSchema implements source.Source.
func (c *Client) TableSchema(table string) (relstore.Schema, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqSchema, Table: table}, &resp); err != nil {
		return nil, err
	}
	return relstore.ParseSchema(resp.SchemaSpec)
}

// TableCard implements source.Source.
func (c *Client) TableCard(table string) (int, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqCard, Table: table}, &resp); err != nil {
		return 0, err
	}
	return resp.Card, nil
}

// ColumnDistinct implements source.Source.
func (c *Client) ColumnDistinct(table, column string) (int, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqDistinct, Table: table, Column: column}, &resp); err != nil {
		return 0, err
	}
	return resp.Card, nil
}

// Estimate implements source.Source (the costing API of §5.2).
func (c *Client) Estimate(q *sqlmini.Query, params sqlmini.ParamSchemas, opts sqlmini.PlanOptions) (source.Estimate, error) {
	req := &request{
		Kind:         reqEstimate,
		SQL:          q.String(),
		ParamSchemas: make(map[string][]string, len(params)),
		ParamCards:   opts.ParamCards,
		DefaultCard:  opts.DefaultParamCard,
	}
	for name, schema := range params {
		spec := make([]string, len(schema))
		for i, col := range schema {
			spec[i] = col.String()
		}
		req.ParamSchemas[name] = spec
	}
	var resp response
	if err := c.roundTrip(req, &resp); err != nil {
		return source.Estimate{}, err
	}
	return source.Estimate{Cost: resp.EstCost, Rows: resp.EstRows, Bytes: resp.EstBytes}, nil
}

// Exec implements source.Source: the query ships as SQL text with its
// parameter tables; the result table and the engine-measured evaluation
// time ship back.
func (c *Client) Exec(name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error) {
	req := &request{
		Kind:        reqExec,
		SQL:         q.String(),
		ResultName:  name,
		Params:      make(map[string]wireTable, len(params)),
		ParamCards:  opts.ParamCards,
		DefaultCard: opts.DefaultParamCard,
	}
	for pname, b := range params {
		req.Params[pname] = tableToWire(b.Schema, b.Rows)
	}
	var resp response
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, 0, err
	}
	out, err := tableFromWire(name, resp.Result)
	if err != nil {
		return nil, 0, err
	}
	return out, time.Duration(resp.EvalNanos), nil
}

var _ source.Source = (*Client)(nil)
