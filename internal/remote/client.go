package remote

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// Wire-protocol metrics: request counts, bytes on the wire in both
// directions, and the round-trip latency distribution.
var (
	metricRequests = obs.Default.NewCounter("aig_remote_requests_total",
		"requests sent to remote sources")
	metricSentBytes = obs.Default.NewCounter("aig_remote_sent_bytes_total",
		"bytes written to remote sources")
	metricRecvBytes = obs.Default.NewCounter("aig_remote_recv_bytes_total",
		"bytes read from remote sources")
	metricRoundTrip = obs.Default.NewHistogram("aig_remote_roundtrip_seconds",
		"request round-trip latency to remote sources", obs.DurationBuckets)
)

// Timeouts bounds the client's network operations. A hung or partitioned
// source then surfaces as a timeout error on the issuing request —
// traced like any other node error — instead of blocking an evaluation
// worker forever. Zero values disable the corresponding deadline.
type Timeouts struct {
	// Dial bounds connection establishment.
	Dial time.Duration
	// Read bounds one response read, so it must cover the source-side
	// query execution time, not just network latency.
	Read time.Duration
	// Write bounds one request write (the request carries the parameter
	// tables, so sizeable shipments take real time on slow links).
	Write time.Duration
}

// Client is a source.Source backed by a remote Server. Requests are
// serialized over a single persistent connection (the engine executes one
// query at a time per client, matching the per-source schedules of §5.3).
type Client struct {
	name string
	addr string
	to   Timeouts

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a remote source without deadlines. name is the
// source's database name as used in source-qualified table references.
func Dial(name, addr string) (*Client, error) {
	return DialTimeouts(name, addr, Timeouts{})
}

// DialTimeouts connects to a remote source with the given network
// deadlines, which also bound the liveness check performed here.
func DialTimeouts(name, addr string, to Timeouts) (*Client, error) {
	registerGob()
	c := &Client{name: name, addr: addr, to: to}
	if err := c.connect(); err != nil {
		return nil, err
	}
	// Verify liveness.
	var resp response
	if err := c.roundTrip(&request{Kind: reqPing}, &resp); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.to.Dial)
	if err != nil {
		return fmt.Errorf("remote: dialing source %s at %s: %w", c.name, c.addr, err)
	}
	mc := &meterConn{Conn: conn}
	c.conn = mc
	c.enc = gob.NewEncoder(mc)
	c.dec = gob.NewDecoder(mc)
	return nil
}

// meterConn counts the bytes crossing the wire.
type meterConn struct {
	net.Conn
}

func (m *meterConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	metricRecvBytes.Add(int64(n))
	return n, err
}

func (m *meterConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	metricSentBytes.Add(int64(n))
	return n, err
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func (c *Client) roundTrip(req *request, resp *response) error {
	req.Proto = protoVersion
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	metricRequests.Inc()
	start := time.Now()
	if c.to.Write > 0 {
		c.conn.SetWriteDeadline(start.Add(c.to.Write))
	}
	if err := c.enc.Encode(req); err != nil {
		c.dropConn()
		return fmt.Errorf("remote: sending to %s: %w", c.name, err)
	}
	if c.to.Read > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.to.Read))
	}
	if err := c.dec.Decode(resp); err != nil {
		c.dropConn()
		return fmt.Errorf("remote: receiving from %s: %w", c.name, err)
	}
	metricRoundTrip.Observe(time.Since(start).Seconds())
	if resp.Err != "" {
		return fmt.Errorf("remote: source %s: %s", c.name, resp.Err)
	}
	return nil
}

// dropConn discards the connection after a wire error (the gob streams
// are no longer in sync); the next request reconnects. Callers hold mu.
func (c *Client) dropConn() {
	c.conn.Close()
	c.conn = nil
}

// Name implements source.Source.
func (c *Client) Name() string { return c.name }

// Healthy implements the optional source.Health interface with a ping
// round-trip, bounded by the client's configured timeouts.
func (c *Client) Healthy() error {
	var resp response
	return c.roundTrip(&request{Kind: reqPing}, &resp)
}

// TableSchema implements source.Source.
func (c *Client) TableSchema(table string) (relstore.Schema, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqSchema, Table: table}, &resp); err != nil {
		return nil, err
	}
	return relstore.ParseSchema(resp.SchemaSpec)
}

// TableCard implements source.Source.
func (c *Client) TableCard(table string) (int, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqCard, Table: table}, &resp); err != nil {
		return 0, err
	}
	return resp.Card, nil
}

// ColumnDistinct implements source.Source.
func (c *Client) ColumnDistinct(table, column string) (int, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqDistinct, Table: table, Column: column}, &resp); err != nil {
		return 0, err
	}
	return resp.Card, nil
}

// DataVersion implements source.Source: the engine-side database's
// monotonic data version, so mediator-side result caches invalidate
// when a remote source mutates.
func (c *Client) DataVersion() (uint64, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqVersion}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// TableVersions implements source.Source: the engine-side per-table
// data versions, so the refresher attributes remote mutations to the
// tables that changed.
func (c *Client) TableVersions() (map[string]uint64, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqTableVersions}, &resp); err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// ChangesSince implements source.Source. A restarted or log-bounded
// engine answers with a truncated ChangeSet rather than an error, so
// callers fall back to a full refresh.
func (c *Client) ChangesSince(table string, since uint64) (relstore.ChangeSet, error) {
	var resp response
	if err := c.roundTrip(&request{Kind: reqChanges, Table: table, Since: since}, &resp); err != nil {
		return relstore.ChangeSet{}, err
	}
	return changeSetFromWire(resp.Deltas), nil
}

// tracedTrip wraps roundTrip for the query-path RPCs: when ctx carries a
// tracer, it opens a client-side call span, asks the server to trace by
// setting the request's trace ID, and grafts the returned server-side
// spans under the call span — anchored at the instant just before the
// request hit the wire, so the stitched tree is internally consistent
// without comparing the two machines' clocks (residual skew is bounded
// by the one-way network latency).
func (c *Client) tracedTrip(ctx context.Context, req *request, resp *response) error {
	tr, parent := obs.SpanFromContext(ctx)
	if tr == nil {
		return c.roundTrip(req, resp)
	}
	req.TraceID = tr.TraceID()
	sp := tr.StartSpan("call:"+c.name+"."+req.Kind.String(), parent)
	sp.SetAttr("addr", c.addr)
	anchor := time.Now()
	err := c.roundTrip(req, resp)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	tr.Graft(sp, anchor, spansFromWire(resp.Spans))
	return err
}

// Estimate implements source.Source (the costing API of §5.2).
func (c *Client) Estimate(ctx context.Context, q *sqlmini.Query, params sqlmini.ParamSchemas, opts sqlmini.PlanOptions) (source.Estimate, error) {
	req := &request{
		Kind:         reqEstimate,
		SQL:          q.String(),
		ParamSchemas: make(map[string][]string, len(params)),
		ParamCards:   opts.ParamCards,
		DefaultCard:  opts.DefaultParamCard,
	}
	for name, schema := range params {
		spec := make([]string, len(schema))
		for i, col := range schema {
			spec[i] = col.String()
		}
		req.ParamSchemas[name] = spec
	}
	var resp response
	if err := c.tracedTrip(ctx, req, &resp); err != nil {
		return source.Estimate{}, err
	}
	return source.Estimate{Cost: resp.EstCost, Rows: resp.EstRows, Bytes: resp.EstBytes}, nil
}

// Exec implements source.Source: the query ships as SQL text with its
// parameter tables; the result table and the engine-measured evaluation
// time ship back, along with the server-side spans of a traced request.
func (c *Client) Exec(ctx context.Context, name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error) {
	req := &request{
		Kind:        reqExec,
		SQL:         q.String(),
		ResultName:  name,
		Params:      make(map[string]wireTable, len(params)),
		ParamCards:  opts.ParamCards,
		DefaultCard: opts.DefaultParamCard,
	}
	for pname, b := range params {
		req.Params[pname] = tableToWire(b.Schema, b.Rows)
	}
	var resp response
	if err := c.tracedTrip(ctx, req, &resp); err != nil {
		return nil, 0, err
	}
	out, err := tableFromWire(name, resp.Result)
	if err != nil {
		return nil, 0, err
	}
	return out, time.Duration(resp.EvalNanos), nil
}

var _ source.Source = (*Client)(nil)
