package remote

import (
	"context"
	"encoding/gob"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
)

// Mirror-side subscription metrics. The catch-up counters are split per
// truncation cause, mirroring the refresher's per-cause accounting: a
// rolled log means the mirror fell behind the origin's write rate, a
// reset means wholesale replacement at the origin, a restart means the
// origin came back with lower versions — each wants a different fix.
var (
	metricMirrorInitialSyncs = obs.Default.NewCounter("aig_mirror_catchup_initial_total",
		"mirror catch-up snapshots for initial syncs (no prior state)")
	metricMirrorCatchupRolled = obs.Default.NewCounter("aig_mirror_catchup_rolled_total",
		"mirror catch-up snapshots forced by a rolled change log")
	metricMirrorCatchupReset = obs.Default.NewCounter("aig_mirror_catchup_reset_total",
		"mirror catch-up snapshots forced by a change-log reset")
	metricMirrorCatchupRestart = obs.Default.NewCounter("aig_mirror_catchup_restart_total",
		"mirror catch-up snapshots forced by an origin restart")
	metricMirrorDeltaSets = obs.Default.NewCounter("aig_mirror_delta_sets_total",
		"per-table delta batches applied by mirrors")
	metricMirrorChanges = obs.Default.NewCounter("aig_mirror_changes_applied_total",
		"row deltas applied by mirrors")
	metricMirrorReconnects = obs.Default.NewCounter("aig_mirror_reconnects_total",
		"mirror subscription reconnect attempts")
	metricMirrorHeartbeats = obs.Default.NewCounter("aig_mirror_heartbeats_total",
		"heartbeats received by mirrors")
)

// MirrorOptions configures a Mirror.
type MirrorOptions struct {
	// Timeouts bounds the subscription's network operations. Read bounds
	// the gap between pushed frames, so it must exceed the origin
	// server's heartbeat cadence; zero disables the deadline.
	Timeouts Timeouts
	// ReconnectMin/ReconnectMax bound the exponential backoff between
	// subscription attempts (defaults 100ms and 3s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// StaleAfter is how long a disconnected mirror keeps reporting
	// healthy on its last-known data before Healthy starts failing
	// (default 10s). The mirror serves stale-tolerant reads throughout;
	// this only flips readiness so routers drain traffic away.
	StaleAfter time.Duration
	// OnApply, when set, runs after every state change (delta batch or
	// snapshot install) — the hook serving-side refreshers use to wake
	// up instead of polling.
	OnApply func()
	// Logger receives connection lifecycle events (slog.Default if nil).
	Logger *slog.Logger
}

// MirrorStats is a point-in-time snapshot of a mirror's counters.
type MirrorStats struct {
	Synced    bool
	Connected bool

	InitialSyncs    uint64
	CatchupRolled   uint64
	CatchupReset    uint64
	CatchupRestart  uint64
	DeltaSets       uint64
	ChangesApplied  uint64
	Reconnects      uint64
	Heartbeats      uint64
	LastError       string
	LastFrame       time.Time
	SnapshotTorn    uint64 // catch-ups whose capture was not seqlock-certified
	SnapshotApplied uint64
}

// Mirror maintains a local read replica of a remote database over a
// delta subscription: it dials the origin, subscribes from its current
// watermarks (none on first boot, which streams a full catch-up
// snapshot), applies pushed deltas at the origin's own version numbers,
// and reconnects with backoff when the stream drops. The replica is a
// plain relstore database, so serving stacks evaluate queries against
// it locally — reads never cross the wire — while TableVersions and
// ChangesSince answer with origin-meaningful watermarks.
type Mirror struct {
	name string
	addr string
	opts MirrorOptions
	db   *relstore.Database
	src  *source.Local
	log  *slog.Logger

	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	synced    bool
	syncedCh  chan struct{}
	connected bool
	lastFrame time.Time
	lastErr   error
	stats     MirrorStats
}

// OpenMirror starts mirroring the named database from addr. It returns
// immediately; the subscription runs in the background. Use WaitReady to
// block until the first catch-up completes, Source for the serving-side
// source, Close to stop.
func OpenMirror(name, addr string, opts MirrorOptions) *Mirror {
	registerGob()
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 100 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 3 * time.Second
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 10 * time.Second
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	db := relstore.NewDatabase(name)
	m := &Mirror{
		name:     name,
		addr:     addr,
		opts:     opts,
		db:       db,
		src:      source.NewLocal(db),
		log:      log,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		syncedCh: make(chan struct{}),
	}
	go m.run()
	return m
}

// DB exposes the replica database (read-side only: mutating it breaks
// the watermark contract with the origin).
func (m *Mirror) DB() *relstore.Database { return m.db }

// Source returns the replica as a source.Source. The source also
// implements the optional source.Health interface: it reports unhealthy
// until the first sync completes, and again when the subscription has
// been down longer than StaleAfter.
func (m *Mirror) Source() source.Source { return mirrorSource{Local: m.src, m: m} }

// mirrorSource decorates the replica's local source with the mirror's
// health. It is deliberately NOT a *source.Local: serving-side mutation
// endpoints type-assert on that to reject writes to replicas.
type mirrorSource struct {
	*source.Local
	m *Mirror
}

func (ms mirrorSource) Healthy() error { return ms.m.Healthy() }

// WaitReady blocks until the first catch-up snapshot has been installed
// (the replica can answer schema and data requests), or ctx ends.
func (m *Mirror) WaitReady(ctx context.Context) error {
	select {
	case <-m.syncedCh:
		return nil
	case <-m.stop:
		return fmt.Errorf("remote: mirror %s closed before first sync", m.name)
	case <-ctx.Done():
		m.mu.Lock()
		err := m.lastErr
		m.mu.Unlock()
		if err != nil {
			return fmt.Errorf("remote: mirror %s not synced: %w (last error: %v)", m.name, ctx.Err(), err)
		}
		return fmt.Errorf("remote: mirror %s not synced: %w", m.name, ctx.Err())
	}
}

// Healthy implements the contract behind source.Health: nil while the
// replica is synced and the stream is live (or down for less than
// StaleAfter).
func (m *Mirror) Healthy() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.synced {
		if m.lastErr != nil {
			return fmt.Errorf("remote: mirror %s awaiting first sync: %v", m.name, m.lastErr)
		}
		return fmt.Errorf("remote: mirror %s awaiting first sync", m.name)
	}
	if !m.connected && time.Since(m.lastFrame) > m.opts.StaleAfter {
		return fmt.Errorf("remote: mirror %s disconnected since %s: %v",
			m.name, m.lastFrame.Format(time.RFC3339), m.lastErr)
	}
	return nil
}

// Stats returns a snapshot of the mirror's counters.
func (m *Mirror) Stats() MirrorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Synced = m.synced
	st.Connected = m.connected
	st.LastFrame = m.lastFrame
	if m.lastErr != nil {
		st.LastError = m.lastErr.Error()
	}
	return st
}

// Close stops the subscription and waits for the background loop.
func (m *Mirror) Close() error {
	m.mu.Lock()
	select {
	case <-m.stop:
		m.mu.Unlock()
		return nil
	default:
		close(m.stop)
	}
	m.mu.Unlock()
	<-m.done
	return nil
}

func (m *Mirror) stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// run is the reconnect loop: one session per connection, exponential
// backoff between attempts, reset after any session that made progress.
func (m *Mirror) run() {
	defer close(m.done)
	backoff := m.opts.ReconnectMin
	for {
		if m.stopping() {
			return
		}
		progressed, err := m.session()
		m.setConnected(false, err)
		if m.stopping() {
			return
		}
		if err != nil {
			m.log.Debug("mirror: subscription session ended", "source", m.name, "addr", m.addr, "err", err)
		}
		if progressed {
			backoff = m.opts.ReconnectMin
		}
		metricMirrorReconnects.Inc()
		m.bumpStat(func(s *MirrorStats) { s.Reconnects++ })
		select {
		case <-m.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > m.opts.ReconnectMax {
			backoff = m.opts.ReconnectMax
		}
	}
}

// stagedTable accumulates one table's snapshot chunks before install.
type stagedTable struct {
	schema  relstore.Schema
	version uint64
	rows    []relstore.Tuple
}

// session runs one subscription: dial, subscribe from the current
// watermarks, apply frames until the stream errors. progressed reports
// whether any frame was processed (resets the reconnect backoff).
func (m *Mirror) session() (progressed bool, err error) {
	conn, err := net.DialTimeout("tcp", m.addr, m.opts.Timeouts.Dial)
	if err != nil {
		m.setErr(err)
		return false, err
	}
	defer conn.Close()
	// Unblock the decoder when Close is called mid-read.
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-m.stop:
			conn.Close()
		case <-watch:
		}
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if m.opts.Timeouts.Write > 0 {
		conn.SetWriteDeadline(time.Now().Add(m.opts.Timeouts.Write))
	}
	req := &request{Proto: protoVersion, Kind: reqSubscribe, FromVersions: m.db.TableVersions()}
	if err := enc.Encode(req); err != nil {
		m.setErr(err)
		return false, fmt.Errorf("remote: subscribing to %s: %w", m.name, err)
	}
	m.setConnected(true, nil)

	var (
		staged      map[string]*stagedTable
		stagedCause relstore.TruncateCause
		torn        bool
	)
	for {
		if m.opts.Timeouts.Read > 0 {
			conn.SetReadDeadline(time.Now().Add(m.opts.Timeouts.Read))
		}
		var msg subMessage
		if err := dec.Decode(&msg); err != nil {
			m.setErr(err)
			return progressed, fmt.Errorf("remote: subscription to %s: %w", m.name, err)
		}
		progressed = true
		m.touch()
		switch msg.Kind {
		case subHello:
			// Informational: the catch-up/delta frames that follow carry
			// everything the mirror acts on.
		case subCatchupBegin:
			staged = make(map[string]*stagedTable)
			stagedCause = relstore.TruncateCause(msg.Cause)
			torn = false
		case subSnapshotTable:
			if staged == nil {
				return progressed, fmt.Errorf("remote: subscription to %s: snapshot frame outside catch-up", m.name)
			}
			schema, err := relstore.ParseSchema(msg.Schema)
			if err != nil {
				return progressed, fmt.Errorf("remote: subscription to %s: snapshot schema: %w", m.name, err)
			}
			st := &stagedTable{schema: schema, version: msg.Version}
			st.rows = appendWireRows(st.rows, msg.Rows)
			staged[msg.Table] = st
		case subSnapshotRows:
			st := staged[msg.Table]
			if st == nil {
				return progressed, fmt.Errorf("remote: subscription to %s: rows for unopened snapshot table %q", m.name, msg.Table)
			}
			st.rows = appendWireRows(st.rows, msg.Rows)
		case subCatchupEnd:
			if staged == nil {
				return progressed, fmt.Errorf("remote: subscription to %s: catch-up end without begin", m.name)
			}
			if !msg.Consistent {
				torn = true
			}
			if err := m.installSnapshot(staged, stagedCause, torn); err != nil {
				return progressed, err
			}
			staged = nil
			m.markSynced()
			m.kick()
		case subDeltas:
			applied, err := m.applyDeltas(msg.Sets)
			if err != nil {
				return progressed, err
			}
			if applied > 0 {
				m.kick()
			}
		case subHeartbeat:
			metricMirrorHeartbeats.Inc()
			m.bumpStat(func(s *MirrorStats) { s.Heartbeats++ })
			if err := m.checkDrift(msg.Versions); err != nil {
				return progressed, err
			}
		default:
			// Unknown frame kinds from a newer server are skipped, not
			// fatal: gob already decoded the frame, and the version fields
			// on real deltas keep the state machine sound.
		}
	}
}

// installSnapshot swaps the staged catch-up into the replica database
// and drops local tables the snapshot no longer contains.
func (m *Mirror) installSnapshot(staged map[string]*stagedTable, cause relstore.TruncateCause, torn bool) error {
	for name, st := range staged {
		t := relstore.NewTableWithState(name, st.schema, st.rows, st.version, cause)
		if err := m.db.InstallSnapshotTable(t); err != nil {
			return err
		}
	}
	for _, name := range m.db.TableNames() {
		if _, keep := staged[name]; !keep {
			m.db.DropTable(name)
		}
	}
	switch cause {
	case relstore.TruncateRolled:
		metricMirrorCatchupRolled.Inc()
	case relstore.TruncateReset:
		metricMirrorCatchupReset.Inc()
	case relstore.TruncateRestart:
		metricMirrorCatchupRestart.Inc()
	default:
		metricMirrorInitialSyncs.Inc()
	}
	m.bumpStat(func(s *MirrorStats) {
		s.SnapshotApplied++
		if torn {
			s.SnapshotTorn++
		}
		switch cause {
		case relstore.TruncateRolled:
			s.CatchupRolled++
		case relstore.TruncateReset:
			s.CatchupReset++
		case relstore.TruncateRestart:
			s.CatchupRestart++
		default:
			s.InitialSyncs++
		}
	})
	m.log.Info("mirror: catch-up snapshot installed",
		"source", m.name, "cause", cause.String(), "tables", len(staged), "certified", !torn)
	return nil
}

// applyDeltas replays pushed change sets onto the replica tables. A
// table that cannot apply its window (divergence) is dropped so the
// resubscription falls back to a catch-up snapshot instead of looping on
// the same bad delta.
func (m *Mirror) applyDeltas(sets []wireChangeSet) (int, error) {
	total := 0
	for _, ws := range sets {
		cs := changeSetFromWire(ws)
		t, err := m.db.Table(cs.Table)
		if err != nil {
			// Unknown table: force a full resync on the next session.
			m.setErr(err)
			return total, fmt.Errorf("remote: subscription to %s: deltas for unknown table %q", m.name, cs.Table)
		}
		applied, err := t.ApplyChanges(cs)
		total += applied
		if err != nil {
			m.db.DropTable(cs.Table)
			m.setErr(err)
			return total, fmt.Errorf("remote: subscription to %s: applying deltas: %w", m.name, err)
		}
	}
	if total > 0 {
		metricMirrorChanges.Add(int64(total))
	}
	if len(sets) > 0 {
		metricMirrorDeltaSets.Add(int64(len(sets)))
		m.bumpStat(func(s *MirrorStats) {
			s.DeltaSets += uint64(len(sets))
			s.ChangesApplied += uint64(total)
		})
	}
	return total, nil
}

// checkDrift compares a heartbeat's watermark echo against the replica.
// The stream is ordered and single-writer, so by the time a heartbeat is
// processed every delta it reflects has been applied; any mismatch means
// the session lost sync and must resubscribe.
func (m *Mirror) checkDrift(versions map[string]uint64) error {
	if versions == nil {
		return nil
	}
	local := m.db.TableVersions()
	for name, v := range versions {
		if local[name] != v {
			err := fmt.Errorf("remote: subscription to %s: watermark drift on %q (origin %d, mirror %d)",
				m.name, name, v, local[name])
			m.setErr(err)
			return err
		}
	}
	return nil
}

func (m *Mirror) kick() {
	if m.opts.OnApply != nil {
		m.opts.OnApply()
	}
}

func (m *Mirror) markSynced() {
	m.mu.Lock()
	if !m.synced {
		m.synced = true
		close(m.syncedCh)
	}
	m.mu.Unlock()
}

func (m *Mirror) touch() {
	m.mu.Lock()
	m.lastFrame = time.Now()
	m.mu.Unlock()
}

func (m *Mirror) setConnected(up bool, err error) {
	m.mu.Lock()
	m.connected = up
	if up {
		m.lastErr = nil
		m.lastFrame = time.Now()
	} else if err != nil {
		m.lastErr = err
	}
	m.mu.Unlock()
}

func (m *Mirror) setErr(err error) {
	m.mu.Lock()
	m.lastErr = err
	m.mu.Unlock()
}

func (m *Mirror) bumpStat(fn func(*MirrorStats)) {
	m.mu.Lock()
	fn(&m.stats)
	m.mu.Unlock()
}

func appendWireRows(rows []relstore.Tuple, wire [][]wireValue) []relstore.Tuple {
	for _, wr := range wire {
		row := make(relstore.Tuple, len(wr))
		for j, wv := range wr {
			row[j] = fromWire(wv)
		}
		rows = append(rows, row)
	}
	return rows
}
