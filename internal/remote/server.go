package remote

import (
	"encoding/gob"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
)

// Server serves one relstore database over TCP.
type Server struct {
	local *source.Local

	// HeartbeatEvery is the idle push cadence of delta-subscription
	// streams (zero means the 1s default). Set before Listen.
	HeartbeatEvery time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps a database for serving.
func NewServer(db *relstore.Database) *Server {
	return &Server{local: source.NewLocal(db), conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines
// until Close.
func (s *Server) Listen(addr string) (string, error) {
	registerGob()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				slog.Warn("remote: decoding request failed", "peer", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		if req.Kind == reqSubscribe {
			// The connection becomes a one-way push stream; the
			// subscription loop owns it until the peer (or Close) ends it.
			s.serveSubscription(enc, &req)
			return
		}
		resp := handle(s.local, &req)
		if err := enc.Encode(resp); err != nil {
			slog.Warn("remote: encoding response failed", "peer", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

// Close stops the listener and drops every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}
