// Package remote exposes a relstore database as an AIG data source over
// TCP, and provides the client that makes a remote engine usable wherever
// a source.Source is expected. The wire protocol is a simple
// length-delimited gob stream: each request carries a SQL string plus
// parameter tables, each response a result table and the measured
// engine-side evaluation time. This lets the mediator run against truly
// distributed sources (cmd/aigsource serves a dataset directory), while
// the experiments default to in-process sources with simulated
// communication, as the paper's own evaluation did.
package remote

import (
	"context"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// protoVersion is the wire protocol version this build speaks. Gob's
// field-name matching keeps the stream compatible in both directions:
// version 1 peers simply never see (or send) the tracing fields added in
// version 2, and tracing degrades to off for that hop.
//
//	1: initial protocol (query, costing, versions, change sets)
//	2: adds request.TraceID and response.Spans for distributed tracing
//	3: adds reqSubscribe long-lived delta streams (request.FromVersions,
//	   subMessage push frames with catch-up snapshots)
const protoVersion = 3

// reqKind discriminates request types.
type reqKind uint8

// The request kinds.
const (
	reqPing reqKind = iota
	reqSchema
	reqCard
	reqDistinct
	reqEstimate
	reqExec
	reqVersion
	reqTableVersions
	reqChanges
	reqSubscribe
)

// String names the request kind for span names and log lines.
func (k reqKind) String() string {
	switch k {
	case reqPing:
		return "ping"
	case reqSchema:
		return "schema"
	case reqCard:
		return "card"
	case reqDistinct:
		return "distinct"
	case reqEstimate:
		return "estimate"
	case reqExec:
		return "exec"
	case reqVersion:
		return "version"
	case reqTableVersions:
		return "table_versions"
	case reqChanges:
		return "changes"
	case reqSubscribe:
		return "subscribe"
	default:
		return fmt.Sprintf("kind%d", uint8(k))
	}
}

// wireValue is the gob-encodable form of a relstore.Value.
type wireValue struct {
	Kind uint8
	I    int64
	S    string
}

func toWire(v relstore.Value) wireValue {
	switch v.Kind() {
	case relstore.KindInt:
		return wireValue{Kind: uint8(relstore.KindInt), I: v.AsInt()}
	case relstore.KindString:
		return wireValue{Kind: uint8(relstore.KindString), S: v.AsString()}
	default:
		return wireValue{Kind: uint8(relstore.KindNull)}
	}
}

func fromWire(w wireValue) relstore.Value {
	switch relstore.Kind(w.Kind) {
	case relstore.KindInt:
		return relstore.Int(w.I)
	case relstore.KindString:
		return relstore.String(w.S)
	default:
		return relstore.Null
	}
}

// wireTable is the gob-encodable form of a table or binding.
type wireTable struct {
	Schema []string // "name:kind" specs
	Rows   [][]wireValue
}

func tableToWire(schema relstore.Schema, rows []relstore.Tuple) wireTable {
	w := wireTable{Schema: make([]string, len(schema)), Rows: make([][]wireValue, len(rows))}
	for i, c := range schema {
		w.Schema[i] = c.String()
	}
	for i, row := range rows {
		wr := make([]wireValue, len(row))
		for j, v := range row {
			wr[j] = toWire(v)
		}
		w.Rows[i] = wr
	}
	return w
}

func tableFromWire(name string, w wireTable) (*relstore.Table, error) {
	schema, err := relstore.ParseSchema(w.Schema)
	if err != nil {
		return nil, err
	}
	t := relstore.NewTable(name, schema)
	for _, wr := range w.Rows {
		row := make(relstore.Tuple, len(wr))
		for j, wv := range wr {
			row[j] = fromWire(wv)
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func bindingFromWire(w wireTable) (sqlmini.Binding, error) {
	schema, err := relstore.ParseSchema(w.Schema)
	if err != nil {
		return sqlmini.Binding{}, err
	}
	rows := make([]relstore.Tuple, len(w.Rows))
	for i, wr := range w.Rows {
		row := make(relstore.Tuple, len(wr))
		for j, wv := range wr {
			row[j] = fromWire(wv)
		}
		rows[i] = row
	}
	return sqlmini.Binding{Schema: schema, Rows: rows}, nil
}

// wireChange is the gob-encodable form of one row delta.
type wireChange struct {
	Ver uint64
	Op  uint8
	Row []wireValue
}

// wireChangeSet is the gob-encodable form of a relstore.ChangeSet: the
// answer to a reqChanges request. Truncated and its cause survive the
// trip so remote consumers fall back to a full refresh — and metric the
// reason — exactly like local ones.
type wireChangeSet struct {
	Table     string
	Since     uint64
	Now       uint64
	Truncated bool
	Cause     uint8
	Changes   []wireChange
}

func changeSetToWire(cs relstore.ChangeSet) wireChangeSet {
	w := wireChangeSet{Table: cs.Table, Since: cs.Since, Now: cs.Now, Truncated: cs.Truncated, Cause: uint8(cs.Cause)}
	for _, ch := range cs.Changes {
		wc := wireChange{Ver: ch.Ver, Op: uint8(ch.Op)}
		wc.Row = make([]wireValue, len(ch.Row))
		for i, v := range ch.Row {
			wc.Row[i] = toWire(v)
		}
		w.Changes = append(w.Changes, wc)
	}
	return w
}

func changeSetFromWire(w wireChangeSet) relstore.ChangeSet {
	cs := relstore.ChangeSet{Table: w.Table, Since: w.Since, Now: w.Now, Truncated: w.Truncated, Cause: relstore.TruncateCause(w.Cause)}
	for _, wc := range w.Changes {
		ch := relstore.Change{Ver: wc.Ver, Op: relstore.ChangeOp(wc.Op)}
		for _, wv := range wc.Row {
			ch.Row = append(ch.Row, fromWire(wv))
		}
		cs.Changes = append(cs.Changes, ch)
	}
	return cs
}

// wireAttr is one span attribute, stringified for the wire.
type wireAttr struct {
	K, V string
}

// wireSpan is the gob-encodable form of one exported span. Times are
// offsets from the serving side's handling start, so the client can
// re-anchor them at its own RPC start instant (the clocks never compare
// directly; the residual skew is at most the one-way network latency).
type wireSpan struct {
	Name       string
	Parent     int // index into the same slice; -1 for roots
	StartNanos int64
	DurNanos   int64
	Attrs      []wireAttr
}

func spansToWire(data []obs.SpanData) []wireSpan {
	if len(data) == 0 {
		return nil
	}
	out := make([]wireSpan, len(data))
	for i, d := range data {
		w := wireSpan{
			Name:       d.Name,
			Parent:     d.Parent,
			StartNanos: d.Start.Nanoseconds(),
			DurNanos:   d.Duration.Nanoseconds(),
		}
		for _, a := range d.Attrs {
			w.Attrs = append(w.Attrs, wireAttr{K: a.Key, V: fmt.Sprint(a.Value)})
		}
		out[i] = w
	}
	return out
}

func spansFromWire(ws []wireSpan) []obs.SpanData {
	if len(ws) == 0 {
		return nil
	}
	out := make([]obs.SpanData, len(ws))
	for i, w := range ws {
		d := obs.SpanData{
			Name:     w.Name,
			Parent:   w.Parent,
			Start:    time.Duration(w.StartNanos),
			Duration: time.Duration(w.DurNanos),
		}
		for _, a := range w.Attrs {
			d.Attrs = append(d.Attrs, obs.Attr{Key: a.K, Value: a.V})
		}
		out[i] = d
	}
	return out
}

// request is one client->server message.
type request struct {
	Proto  int
	Kind   reqKind
	Table  string
	Column string
	Since  uint64

	// TraceID, when non-empty, asks the server to trace the handling of
	// this request and ship the spans back on the response.
	TraceID string

	// FromVersions (reqSubscribe only) carries the subscriber's current
	// per-table watermarks; empty means "no state, send everything".
	FromVersions map[string]uint64

	SQL          string
	Params       map[string]wireTable
	ParamSchemas map[string][]string
	ParamCards   map[string]int
	DefaultCard  int
	ResultName   string
}

// response is one server->client message.
type response struct {
	Proto int
	Err   string

	SchemaSpec []string
	Card       int
	Version    uint64
	Versions   map[string]uint64
	Deltas     wireChangeSet

	EstCost  float64
	EstRows  float64
	EstBytes float64

	Result    wireTable
	EvalNanos int64

	// Spans carries the server-side span forest of a traced request,
	// offsets relative to the server's handling start.
	Spans []wireSpan
}

func (r *response) setError(err error) {
	if err != nil {
		r.Err = err.Error()
	}
}

func registerGob() {
	gob.Register(wireValue{})
	gob.Register(wireTable{})
}

// handle executes one request against a local source. When the request
// carries a trace ID the whole handling runs under a server-side tracer
// whose spans ship back on the response, re-anchorable by the caller.
func handle(local *source.Local, req *request) *response {
	resp := &response{Proto: protoVersion}
	ctx := context.Background()
	if req.TraceID != "" {
		tr := obs.NewTracerID(req.TraceID)
		anchor := time.Now()
		root := tr.StartSpan("rpc:"+req.Kind.String(), nil)
		ctx = obs.ContextWithSpan(ctx, tr, root)
		defer func() {
			if resp.Err != "" {
				root.SetAttr("error", resp.Err)
			}
			root.End()
			resp.Spans = spansToWire(tr.Export(anchor))
		}()
	}
	switch req.Kind {
	case reqPing:
	case reqSchema:
		schema, err := local.TableSchema(req.Table)
		if err != nil {
			resp.setError(err)
			return resp
		}
		for _, c := range schema {
			resp.SchemaSpec = append(resp.SchemaSpec, c.String())
		}
	case reqCard:
		n, err := local.TableCard(req.Table)
		resp.Card = n
		resp.setError(err)
	case reqDistinct:
		n, err := local.ColumnDistinct(req.Table, req.Column)
		resp.Card = n
		resp.setError(err)
	case reqVersion:
		v, err := local.DataVersion()
		resp.Version = v
		resp.setError(err)
	case reqTableVersions:
		vers, err := local.TableVersions()
		resp.Versions = vers
		resp.setError(err)
	case reqChanges:
		cs, err := local.ChangesSince(req.Table, req.Since)
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.Deltas = changeSetToWire(cs)
	case reqEstimate:
		q, err := sqlmini.Parse(req.SQL)
		if err != nil {
			resp.setError(err)
			return resp
		}
		params := make(sqlmini.ParamSchemas, len(req.ParamSchemas))
		for name, spec := range req.ParamSchemas {
			s, err := relstore.ParseSchema(spec)
			if err != nil {
				resp.setError(err)
				return resp
			}
			params[name] = s
		}
		est, err := local.Estimate(ctx, q, params, sqlmini.PlanOptions{ParamCards: req.ParamCards, DefaultParamCard: req.DefaultCard})
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.EstCost, resp.EstRows, resp.EstBytes = est.Cost, est.Rows, est.Bytes
	case reqExec:
		q, err := sqlmini.Parse(req.SQL)
		if err != nil {
			resp.setError(err)
			return resp
		}
		params := make(sqlmini.Params, len(req.Params))
		for name, wt := range req.Params {
			b, err := bindingFromWire(wt)
			if err != nil {
				resp.setError(err)
				return resp
			}
			params[name] = b
		}
		out, dur, err := local.Exec(ctx, req.ResultName, q, params, sqlmini.PlanOptions{ParamCards: req.ParamCards, DefaultParamCard: req.DefaultCard})
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.Result = tableToWire(out.Schema(), out.Rows())
		resp.EvalNanos = dur.Nanoseconds()
	default:
		resp.Err = fmt.Sprintf("remote: unknown request kind %d", req.Kind)
	}
	return resp
}
