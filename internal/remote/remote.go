// Package remote exposes a relstore database as an AIG data source over
// TCP, and provides the client that makes a remote engine usable wherever
// a source.Source is expected. The wire protocol is a simple
// length-delimited gob stream: each request carries a SQL string plus
// parameter tables, each response a result table and the measured
// engine-side evaluation time. This lets the mediator run against truly
// distributed sources (cmd/aigsource serves a dataset directory), while
// the experiments default to in-process sources with simulated
// communication, as the paper's own evaluation did.
package remote

import (
	"encoding/gob"
	"fmt"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// reqKind discriminates request types.
type reqKind uint8

// The request kinds.
const (
	reqPing reqKind = iota
	reqSchema
	reqCard
	reqDistinct
	reqEstimate
	reqExec
	reqVersion
	reqTableVersions
	reqChanges
)

// wireValue is the gob-encodable form of a relstore.Value.
type wireValue struct {
	Kind uint8
	I    int64
	S    string
}

func toWire(v relstore.Value) wireValue {
	switch v.Kind() {
	case relstore.KindInt:
		return wireValue{Kind: uint8(relstore.KindInt), I: v.AsInt()}
	case relstore.KindString:
		return wireValue{Kind: uint8(relstore.KindString), S: v.AsString()}
	default:
		return wireValue{Kind: uint8(relstore.KindNull)}
	}
}

func fromWire(w wireValue) relstore.Value {
	switch relstore.Kind(w.Kind) {
	case relstore.KindInt:
		return relstore.Int(w.I)
	case relstore.KindString:
		return relstore.String(w.S)
	default:
		return relstore.Null
	}
}

// wireTable is the gob-encodable form of a table or binding.
type wireTable struct {
	Schema []string // "name:kind" specs
	Rows   [][]wireValue
}

func tableToWire(schema relstore.Schema, rows []relstore.Tuple) wireTable {
	w := wireTable{Schema: make([]string, len(schema)), Rows: make([][]wireValue, len(rows))}
	for i, c := range schema {
		w.Schema[i] = c.String()
	}
	for i, row := range rows {
		wr := make([]wireValue, len(row))
		for j, v := range row {
			wr[j] = toWire(v)
		}
		w.Rows[i] = wr
	}
	return w
}

func tableFromWire(name string, w wireTable) (*relstore.Table, error) {
	schema, err := relstore.ParseSchema(w.Schema)
	if err != nil {
		return nil, err
	}
	t := relstore.NewTable(name, schema)
	for _, wr := range w.Rows {
		row := make(relstore.Tuple, len(wr))
		for j, wv := range wr {
			row[j] = fromWire(wv)
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func bindingFromWire(w wireTable) (sqlmini.Binding, error) {
	schema, err := relstore.ParseSchema(w.Schema)
	if err != nil {
		return sqlmini.Binding{}, err
	}
	rows := make([]relstore.Tuple, len(w.Rows))
	for i, wr := range w.Rows {
		row := make(relstore.Tuple, len(wr))
		for j, wv := range wr {
			row[j] = fromWire(wv)
		}
		rows[i] = row
	}
	return sqlmini.Binding{Schema: schema, Rows: rows}, nil
}

// wireChange is the gob-encodable form of one row delta.
type wireChange struct {
	Ver uint64
	Op  uint8
	Row []wireValue
}

// wireChangeSet is the gob-encodable form of a relstore.ChangeSet: the
// answer to a reqChanges request. Truncated survives the trip so remote
// consumers fall back to a full refresh exactly like local ones.
type wireChangeSet struct {
	Table     string
	Since     uint64
	Now       uint64
	Truncated bool
	Changes   []wireChange
}

func changeSetToWire(cs relstore.ChangeSet) wireChangeSet {
	w := wireChangeSet{Table: cs.Table, Since: cs.Since, Now: cs.Now, Truncated: cs.Truncated}
	for _, ch := range cs.Changes {
		wc := wireChange{Ver: ch.Ver, Op: uint8(ch.Op)}
		wc.Row = make([]wireValue, len(ch.Row))
		for i, v := range ch.Row {
			wc.Row[i] = toWire(v)
		}
		w.Changes = append(w.Changes, wc)
	}
	return w
}

func changeSetFromWire(w wireChangeSet) relstore.ChangeSet {
	cs := relstore.ChangeSet{Table: w.Table, Since: w.Since, Now: w.Now, Truncated: w.Truncated}
	for _, wc := range w.Changes {
		ch := relstore.Change{Ver: wc.Ver, Op: relstore.ChangeOp(wc.Op)}
		for _, wv := range wc.Row {
			ch.Row = append(ch.Row, fromWire(wv))
		}
		cs.Changes = append(cs.Changes, ch)
	}
	return cs
}

// request is one client->server message.
type request struct {
	Kind   reqKind
	Table  string
	Column string
	Since  uint64

	SQL          string
	Params       map[string]wireTable
	ParamSchemas map[string][]string
	ParamCards   map[string]int
	DefaultCard  int
	ResultName   string
}

// response is one server->client message.
type response struct {
	Err string

	SchemaSpec []string
	Card       int
	Version    uint64
	Versions   map[string]uint64
	Deltas     wireChangeSet

	EstCost  float64
	EstRows  float64
	EstBytes float64

	Result    wireTable
	EvalNanos int64
}

func (r *response) setError(err error) {
	if err != nil {
		r.Err = err.Error()
	}
}

func registerGob() {
	gob.Register(wireValue{})
	gob.Register(wireTable{})
}

// handle executes one request against a local source.
func handle(local *source.Local, req *request) *response {
	resp := &response{}
	switch req.Kind {
	case reqPing:
	case reqSchema:
		schema, err := local.TableSchema(req.Table)
		if err != nil {
			resp.setError(err)
			return resp
		}
		for _, c := range schema {
			resp.SchemaSpec = append(resp.SchemaSpec, c.String())
		}
	case reqCard:
		n, err := local.TableCard(req.Table)
		resp.Card = n
		resp.setError(err)
	case reqDistinct:
		n, err := local.ColumnDistinct(req.Table, req.Column)
		resp.Card = n
		resp.setError(err)
	case reqVersion:
		v, err := local.DataVersion()
		resp.Version = v
		resp.setError(err)
	case reqTableVersions:
		vers, err := local.TableVersions()
		resp.Versions = vers
		resp.setError(err)
	case reqChanges:
		cs, err := local.ChangesSince(req.Table, req.Since)
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.Deltas = changeSetToWire(cs)
	case reqEstimate:
		q, err := sqlmini.Parse(req.SQL)
		if err != nil {
			resp.setError(err)
			return resp
		}
		params := make(sqlmini.ParamSchemas, len(req.ParamSchemas))
		for name, spec := range req.ParamSchemas {
			s, err := relstore.ParseSchema(spec)
			if err != nil {
				resp.setError(err)
				return resp
			}
			params[name] = s
		}
		est, err := local.Estimate(q, params, sqlmini.PlanOptions{ParamCards: req.ParamCards, DefaultParamCard: req.DefaultCard})
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.EstCost, resp.EstRows, resp.EstBytes = est.Cost, est.Rows, est.Bytes
	case reqExec:
		q, err := sqlmini.Parse(req.SQL)
		if err != nil {
			resp.setError(err)
			return resp
		}
		params := make(sqlmini.Params, len(req.Params))
		for name, wt := range req.Params {
			b, err := bindingFromWire(wt)
			if err != nil {
				resp.setError(err)
				return resp
			}
			params[name] = b
		}
		out, dur, err := local.Exec(req.ResultName, q, params, sqlmini.PlanOptions{ParamCards: req.ParamCards, DefaultParamCard: req.DefaultCard})
		if err != nil {
			resp.setError(err)
			return resp
		}
		resp.Result = tableToWire(out.Schema(), out.Rows())
		resp.EvalNanos = dur.Nanoseconds()
	default:
		resp.Err = fmt.Sprintf("remote: unknown request kind %d", req.Kind)
	}
	return resp
}
