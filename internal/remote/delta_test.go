package remote

import (
	"reflect"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
)

func TestDeltaAPIOverWire(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := serveCatalog(t, cat)
	src, err := reg.Get("DB1")
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Database("DB1")
	if err != nil {
		t.Fatal(err)
	}

	before, err := src.TableVersions()
	if err != nil {
		t.Fatal(err)
	}
	local := db.TableVersions()
	if !reflect.DeepEqual(before, local) {
		t.Fatalf("remote TableVersions = %v, local = %v", before, local)
	}

	visit, err := db.Table("visitInfo")
	if err != nil {
		t.Fatal(err)
	}
	since := visit.Version()
	if err := visit.InsertValues("s9", "t9", "d9"); err != nil {
		t.Fatal(err)
	}
	if _, err := visit.DeleteAt(0); err != nil {
		t.Fatal(err)
	}

	cs, err := src.ChangesSince("visitInfo", since)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Truncated {
		t.Fatal("unexpected truncation")
	}
	want := visit.ChangesSince(since)
	if !reflect.DeepEqual(cs, want) {
		t.Fatalf("wire ChangeSet = %+v, local = %+v", cs, want)
	}
	if len(cs.Changes) != 2 ||
		cs.Changes[0].Op != relstore.ChangeInsert ||
		cs.Changes[1].Op != relstore.ChangeDelete {
		t.Fatalf("changes = %+v, want insert+delete", cs.Changes)
	}

	// Unknown-window requests report truncation, not an error.
	cs, err = src.ChangesSince("visitInfo", visit.Version()+100)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Truncated {
		t.Fatal("future window must be truncated")
	}

	// Unknown tables are an error, matching the local source.
	if _, err := src.ChangesSince("nope", 0); err == nil {
		t.Fatal("expected error for unknown table")
	}
}
