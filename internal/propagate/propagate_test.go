package propagate

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// TestHospitalCertifies is the paper's §5 result: with billing keyed by
// trId and the visit/procedure foreign keys declared, both XML
// constraints of σ0 are statically provable.
func TestHospitalCertifies(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	cert := Certify(a)
	if len(cert.Results) != 2 {
		t.Fatalf("got %d results, want 2:\n%s", len(cert.Results), cert.Summary())
	}
	for _, r := range cert.Results {
		if r.Verdict != MustHold {
			t.Errorf("%s: verdict %s (%s), want must-hold", r.Constraint, r.Verdict, r.Reason)
		}
	}
	if !cert.Certified {
		t.Errorf("grammar not certified:\n%s", cert.Summary())
	}
	if len(cert.UnusedSources) != 0 {
		t.Errorf("unused source constraints: %v", cert.UnusedSources)
	}

	// The key proof must rest on the billing key, the inclusion proof on
	// both foreign keys.
	key, incl := cert.Results[0], cert.Results[1]
	if key.Constraint.Kind != xconstraint.Key {
		key, incl = incl, key
	}
	wantKeyUses := []string{"key DB3:billing(trId)"}
	if !equalStrings(key.Uses, wantKeyUses) {
		t.Errorf("key proof uses %v, want %v", key.Uses, wantKeyUses)
	}
	wantInclUses := []string{
		"fkey DB1:visitInfo(trId) -> DB3:billing(trId)",
		"fkey DB4:procedure(trId2) -> DB3:billing(trId)",
	}
	if !equalStrings(incl.Uses, wantInclUses) {
		t.Errorf("inclusion proof uses %v, want %v", incl.Uses, wantInclUses)
	}

	if s := cert.Summary(); !strings.Contains(s, "certified: all constraints must hold") {
		t.Errorf("summary does not report certification:\n%s", s)
	}
}

// TestHospitalWithoutDeclarationsIsUnknown: dropping the source
// constraints must revert both verdicts to Unknown — never to a spurious
// proof.
func TestHospitalWithoutDeclarationsIsUnknown(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	a.SourceKeys = nil
	a.SourceFKs = nil
	cert := Certify(a)
	if cert.Certified {
		t.Fatalf("certified without any source constraints:\n%s", cert.Summary())
	}
	for _, r := range cert.Results {
		if r.Verdict != Unknown {
			t.Errorf("%s: verdict %s, want unknown", r.Constraint, r.Verdict)
		}
	}
}

// TestKeyNeedsTheRightKey: a key on the wrong column set must not pin
// the billing relation.
func TestKeyNeedsTheRightKey(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SourceKeys {
		a.SourceKeys[i].Cols = []string{"price"}
	}
	cert := Certify(a)
	for _, r := range cert.Results {
		if r.Constraint.Kind == xconstraint.Key && r.Verdict != Unknown {
			t.Errorf("%s: verdict %s with key on price, want unknown", r.Constraint, r.Verdict)
		}
	}
}

const miniSpec = `
dtd
  <!ELEMENT db (summary, rows)>
  <!ELEMENT summary (name)>
  <!ELEMENT rows (row*)>
  <!ELEMENT row (name)>
  <!ELEMENT name (#PCDATA)>
end

inh db (tag)
inh summary (nm)
inh rows (tag)
inh row (nm)
inh name (val)

rule db
  child summary set nm = inh(db).tag
  child rows copy tag from inh(db)
end

rule summary
  child name set val = inh(summary).nm
end

rule rows
  child row from query [v = inh(rows)]:
    select r.nm from S:t r where r.flag = $v.tag;
end

rule row
  child name set val = inh(row).nm
end

rule name
  text inh(name).val
end

sources
  S:t(nm, grp, flag)
  key S:t(nm, grp)
end

constraints
  db(row.name -> row)
end
`

// TestKeyUnprovableWhenColumnsUnderdetermine: S:t is keyed by (nm, grp)
// but only nm surfaces as the field and only flag is fixed by the
// predicate — two rows sharing nm and flag may differ in grp, so the XML
// key is not provable.
func TestKeyUnprovableWhenColumnsUnderdetermine(t *testing.T) {
	a, err := aigspec.Parse(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	cert := Certify(a)
	if len(cert.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(cert.Results))
	}
	r := cert.Results[0]
	if r.Verdict != Unknown {
		t.Errorf("verdict %s (%s), want unknown", r.Verdict, r.Reason)
	}
	if len(cert.UnusedSources) != 1 {
		t.Errorf("unused sources %v, want the declared key", cert.UnusedSources)
	}
}

// TestKeyProvableWithSingleColumnKey: keying S:t by nm alone pins the
// relation from the selected field, certifying the XML key.
func TestKeyProvableWithSingleColumnKey(t *testing.T) {
	spec := strings.Replace(miniSpec, "key S:t(nm, grp)", "key S:t(nm)", 1)
	a, err := aigspec.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cert := Certify(a)
	r := cert.Results[0]
	if r.Verdict != MustHold {
		t.Fatalf("verdict %s (%s), want must-hold", r.Verdict, r.Reason)
	}
	if !cert.Certified || len(cert.UnusedSources) != 0 {
		t.Errorf("certified=%v unused=%v, want true/none", cert.Certified, cert.UnusedSources)
	}
}

// TestTrivialKeyWithoutStar: a target derivable at most once per context
// is a key with no source premises at all.
func TestTrivialKeyWithoutStar(t *testing.T) {
	spec := strings.Replace(miniSpec, "db(row.name -> row)", "db(summary.name -> summary)", 1)
	a, err := aigspec.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cert := Certify(a)
	r := cert.Results[0]
	if r.Verdict != MustHold {
		t.Fatalf("verdict %s (%s), want must-hold", r.Verdict, r.Reason)
	}
	if len(r.Uses) != 0 {
		t.Errorf("trivial proof uses %v, want none", r.Uses)
	}
}

// TestKeyUnknownOnMultiplePaths: `name` is derivable under db both via
// summary and via row, so the single-generating-rule argument fails.
func TestKeyUnknownOnMultiplePaths(t *testing.T) {
	spec := strings.Replace(miniSpec, "db(row.name -> row)", "db(name.val -> name)", 1)
	// name has no `val` field element; use the element itself as context
	// target pair that has two paths: constraint on name under db.
	a, err := aigspec.Parse(spec)
	if err != nil {
		// `name.val -> name` needs a val subelement; fall back to checking
		// pathsTo directly below.
		a2, err2 := aigspec.Parse(miniSpec)
		if err2 != nil {
			t.Fatal(err2)
		}
		ce := &certifier{a: a2}
		paths, ok := ce.pathsTo("db", "name")
		if !ok || len(paths) != 2 {
			t.Fatalf("pathsTo(db, name) = %d paths, ok=%v; want 2, true", len(paths), ok)
		}
		return
	}
	cert := Certify(a)
	if cert.Results[0].Verdict != Unknown {
		t.Errorf("verdict %s, want unknown (two derivation paths)", cert.Results[0].Verdict)
	}
}

// TestRecursiveDerivationIsUnknownForKeys: treatment is recursive in the
// hospital DTD (treatment -> procedure -> treatment), so a key on
// treatment under patient must stay Unknown, not crash or prove.
func TestRecursiveDerivationIsUnknownForKeys(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	c, err := xconstraint.Parse("patient(treatment.trId -> treatment)")
	if err != nil {
		t.Fatal(err)
	}
	ce := &certifier{a: a, used: map[string]bool{}}
	r := ce.certifyKey(c)
	if r.Verdict != Unknown {
		t.Errorf("verdict %s (%s), want unknown for recursive target", r.Verdict, r.Reason)
	}
}

// TestInclusionViolatedWhenTargetUnderivable: an inclusion whose target
// can never appear under the context, while the source provably can, is
// reported Violated.
func TestInclusionViolatedWhenTargetUnderivable(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	// item can never occur under treatments, but treatment (with its trId
	// field) provably can.
	c, err := xconstraint.Parse("treatments(treatment.trId [= item.trId)")
	if err != nil {
		t.Fatal(err)
	}
	ce := &certifier{a: a, used: map[string]bool{}}
	r := ce.certifyInclusion(c)
	if r.Verdict != Violated {
		t.Errorf("verdict %s (%s), want violated", r.Verdict, r.Reason)
	}
}

// TestInclusionTriviallyHoldsWhenSourceUnderivable: no B under C means
// the inclusion is vacuously true.
func TestInclusionTriviallyHoldsWhenSourceUnderivable(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	c, err := xconstraint.Parse("bill(treatment.trId [= item.trId)")
	if err != nil {
		t.Fatal(err)
	}
	ce := &certifier{a: a, used: map[string]bool{}}
	r := ce.certifyInclusion(c)
	if r.Verdict != MustHold {
		t.Errorf("verdict %s (%s), want must-hold (vacuous)", r.Verdict, r.Reason)
	}
}

// TestInclusionNeedsBothFKs: removing the procedure foreign key leaves a
// B-generating site uncovered, reverting the inclusion to Unknown.
func TestInclusionNeedsBothFKs(t *testing.T) {
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	var kept []int
	for i, fk := range a.SourceFKs {
		if fk.Table != "procedure" {
			kept = append(kept, i)
		}
	}
	if len(kept) != len(a.SourceFKs)-1 {
		t.Fatalf("expected exactly one procedure fkey, have %v", a.SourceFKs)
	}
	fks := a.SourceFKs[:0]
	for _, i := range kept {
		fks = append(fks, a.SourceFKs[i])
	}
	a.SourceFKs = fks
	cert := Certify(a)
	for _, r := range cert.Results {
		if r.Constraint.Kind == xconstraint.Inclusion && r.Verdict != Unknown {
			t.Errorf("%s: verdict %s (%s), want unknown without the procedure fkey",
				r.Constraint, r.Verdict, r.Reason)
		}
	}
	if cert.Certified {
		t.Error("certified despite a missing foreign key")
	}
}

// TestChaseDistinct: a DISTINCT query whose outputs are all determined
// succeeds even when no relation is pinned... provided the select list is
// seeded; otherwise the chase fails.
func TestChaseDistinct(t *testing.T) {
	q, err := sqlmini.Parse("select distinct p.SSN, p.pname from DB1:patient p, DB1:visitInfo i where p.SSN = i.SSN")
	if err != nil {
		t.Fatal(err)
	}
	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	ce := &certifier{a: a, used: map[string]bool{}}
	ok, _, _ := ce.chase(q, []sqlmini.ColRef{{Table: "p", Column: "SSN"}, {Table: "p", Column: "pname"}})
	if !ok {
		t.Error("distinct query with all outputs seeded should chase successfully")
	}
	ok, _, why := ce.chase(q, []sqlmini.ColRef{{Table: "p", Column: "SSN"}})
	if ok {
		t.Error("distinct query with an undetermined output must not chase")
	} else if why == "" {
		t.Error("failed chase should explain why")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
