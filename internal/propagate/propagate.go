// Package propagate implements static constraint propagation and view
// certification (§5): source-side relational constraints — the keys and
// foreign keys declared in a spec's sources section — are symbolically
// pushed through each rule's conjunctive query and the copy chains of
// the grammar, to decide for each declared XML constraint whether it
// must hold on every instance satisfying the source constraints.
//
// Like internal/static, the analysis is exact only on the
// conjunctive-query fragment (equality/comparison/IN predicates, no
// negation) and strictly conservative outside it: every shape the
// certifier does not recognize yields Unknown, never MustHold. A
// MustHold verdict is therefore a proof; Unknown merely reverts to
// runtime checking.
//
// The verdict lattice is three-valued:
//
//	MustHold — every instance satisfying the source constraints
//	           satisfies the XML constraint; runtime checking is
//	           redundant.
//	Unknown  — the certifier cannot decide; runtime checks stay on.
//	Violated — some instance satisfying the source constraints
//	           violates the XML constraint (the constraint is
//	           unsatisfiable as written, e.g. an inclusion whose
//	           target can never be produced under the context).
package propagate

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/static"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// Verdict is the certification outcome for one constraint.
type Verdict uint8

// The verdicts, ordered from strongest to weakest guarantee.
const (
	MustHold Verdict = iota
	Unknown
	Violated
)

func (v Verdict) String() string {
	switch v {
	case MustHold:
		return "must-hold"
	case Unknown:
		return "unknown"
	case Violated:
		return "violated"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Result is the verdict for one declared XML constraint.
type Result struct {
	Constraint xconstraint.Constraint
	Verdict    Verdict
	// Reason explains the verdict: the proof sketch for MustHold, the
	// first unprovable obligation for Unknown, the witness argument for
	// Violated.
	Reason string
	// Uses lists the source constraints (rendered with String) the proof
	// depends on; empty unless Verdict == MustHold.
	Uses []string
}

// Certification is the outcome of certifying a whole grammar.
type Certification struct {
	Results []Result
	// Certified reports whether every declared constraint is MustHold —
	// the condition under which a server may skip per-document
	// re-verification. (DTD conformance is guaranteed by construction:
	// the evaluator derives documents from the grammar itself.)
	Certified bool
	// UnusedSources lists declared source constraints no certification
	// proof depends on (rendered with String), in declaration order.
	UnusedSources []string
}

// Summary renders a short human-readable report.
func (c *Certification) Summary() string {
	var b strings.Builder
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-9s %s", r.Verdict, r.Constraint)
		if r.Reason != "" {
			fmt.Fprintf(&b, "  (%s)", r.Reason)
		}
		b.WriteByte('\n')
	}
	if c.Certified {
		b.WriteString("certified: all constraints must hold; runtime verification is redundant\n")
	} else {
		b.WriteString("not certified: runtime verification stays on\n")
	}
	return b.String()
}

// Certify runs the propagation analysis on a validated,
// pre-specialization grammar. It never fails: unprovable constraints
// come back Unknown.
func Certify(a *aig.AIG) *Certification {
	ce := &certifier{a: a, used: make(map[string]bool)}
	out := &Certification{Certified: true}
	for _, c := range a.Constraints {
		var r Result
		switch c.Kind {
		case xconstraint.Key:
			r = ce.certifyKey(c)
		case xconstraint.Inclusion:
			r = ce.certifyInclusion(c)
		default:
			r = Result{Constraint: c, Verdict: Unknown, Reason: "unrecognized constraint kind"}
		}
		if r.Verdict != MustHold {
			out.Certified = false
		} else {
			for _, u := range r.Uses {
				ce.used[u] = true
			}
		}
		out.Results = append(out.Results, r)
	}
	for _, k := range a.SourceKeys {
		if !ce.used["key "+k.String()] {
			out.UnusedSources = append(out.UnusedSources, "key "+k.String())
		}
	}
	for _, k := range a.SourceFKs {
		if !ce.used["fkey "+k.String()] {
			out.UnusedSources = append(out.UnusedSources, "fkey "+k.String())
		}
	}
	return out
}

type certifier struct {
	a    *aig.AIG
	used map[string]bool
	// an caches the §4 reachability analysis, computed on first use by
	// the provably-violated check.
	an *static.Analysis
}

// ---------------------------------------------------------------------------
// Derivation paths

// edge is one parent -> child derivation step.
type edge struct {
	parent, child string
	kind          dtd.ProdKind
	occ           int // occurrences of child in the parent's production
}

// pathsTo enumerates the derivation paths from `from` down to `to` over
// the DTD's production graph. ok is false when the relevant subgraph —
// types reachable from `from` that can reach `to` — contains a cycle, in
// which case the family of paths is infinite and the caller must stay
// conservative.
func (ce *certifier) pathsTo(from, to string) (paths [][]edge, ok bool) {
	d := ce.a.DTD
	// relevant: reachable from `from` and co-reachable to `to`.
	reach := map[string]bool{}
	var down func(e string)
	down = func(e string) {
		if reach[e] {
			return
		}
		reach[e] = true
		p, _ := d.Production(e)
		for _, c := range p.Children {
			down(c)
		}
	}
	down(from)
	// Co-reachability to `to`: reverse-edge BFS within the reach set, so
	// cycles cannot hide routes (a DFS with in-progress memoization
	// would under-approximate here, which must not happen — missing
	// paths could turn into unsound trivial MustHold verdicts).
	rev := map[string][]string{}
	for e := range reach {
		p, _ := d.Production(e)
		for _, c := range p.Children {
			if reach[c] {
				rev[c] = append(rev[c], e)
			}
		}
	}
	co := map[string]bool{to: true}
	queue := []string{to}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, pr := range rev[x] {
			if !co[pr] {
				co[pr] = true
				queue = append(queue, pr)
			}
		}
	}
	relevant := func(e string) bool { return reach[e] && co[e] }
	if !relevant(from) {
		return nil, true
	}
	// Cycle check on the relevant subgraph (nodes strictly before `to`
	// plus `to` itself: a cycle through any of them makes path
	// enumeration meaningless).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var acyclic func(e string) bool
	acyclic = func(e string) bool {
		color[e] = gray
		if e != to { // do not descend past the target
			p, _ := d.Production(e)
			for _, c := range p.Children {
				if !relevant(c) {
					continue
				}
				switch color[c] {
				case gray:
					return false
				case white:
					if !acyclic(c) {
						return false
					}
				}
			}
		} else {
			// The target must not be able to re-derive itself: nested
			// occurrences would escape the path enumeration.
			p, _ := d.Production(e)
			for _, c := range p.Children {
				if reach[c] && reachesOrIs(d, c, to) {
					return false
				}
			}
		}
		color[e] = black
		return true
	}
	if !acyclic(from) {
		return nil, false
	}
	var cur []edge
	var walk func(e string)
	walk = func(e string) {
		if e == to {
			paths = append(paths, append([]edge(nil), cur...))
			return
		}
		p, _ := d.Production(e)
		occ := map[string]int{}
		for _, c := range p.Children {
			occ[c]++
		}
		done := map[string]bool{}
		for _, c := range p.Children {
			if done[c] || !relevant(c) {
				continue
			}
			done[c] = true
			cur = append(cur, edge{parent: e, child: c, kind: p.Kind, occ: occ[c]})
			walk(c)
			cur = cur[:len(cur)-1]
		}
	}
	walk(from)
	return paths, true
}

// reachesOrIs reports whether elem's subtree can contain a `to` element
// (including elem itself), over the plain production graph.
func reachesOrIs(d *dtd.DTD, elem, to string) bool {
	seen := map[string]bool{}
	var visit func(e string) bool
	visit = func(e string) bool {
		if e == to {
			return true
		}
		if seen[e] {
			return false
		}
		seen[e] = true
		p, _ := d.Production(e)
		for _, c := range p.Children {
			if visit(c) {
				return true
			}
		}
		return false
	}
	return visit(elem)
}

// ---------------------------------------------------------------------------
// Field origins and copy chains

// fieldOrigin resolves which member of Inh(elem) becomes the PCDATA of
// elem's `field` subelement: the rule for the field child must copy
// Inh(elem).m into the field's text-source member. Returns the member
// name, or ok=false when the flow is anything else.
func (ce *certifier) fieldOrigin(elem, field string) (string, bool) {
	fr := ce.a.Rules[field]
	if fr == nil || fr.TextSrc == (aig.SourceRef{}) {
		return "", false
	}
	ts := fr.TextSrc
	if ts.Side != aig.InhSide || ts.Elem != field || ts.Member == "" {
		return "", false
	}
	er := ce.a.Rules[elem]
	if er == nil {
		return "", false
	}
	ir := er.Inh[field]
	if ir == nil || ir.IsQuery() {
		return "", false
	}
	for _, cp := range ir.Copies {
		if cp.TargetMember == ts.Member {
			if cp.Src.Side == aig.InhSide && cp.Src.Elem == elem && cp.Src.Member != "" {
				return cp.Src.Member, true
			}
			return "", false
		}
	}
	return "", false
}

// traceBelow walks the pure-copy suffix of a path: given that member m of
// Inh(path[last].child) originates the field value, it returns the member
// of Inh(stop) the value was copied from, following the edges of
// path[stopIdx+1:]. Every traversed edge must be a sequence edge whose
// inherited rule copies the member from the parent's Inh.
func (ce *certifier) traceBelow(path []edge, stopIdx int, m string) (string, bool) {
	for i := len(path) - 1; i > stopIdx; i-- {
		e := path[i]
		if e.kind != dtd.ProdSeq || e.occ != 1 {
			return "", false
		}
		r := ce.a.Rules[e.parent]
		if r == nil {
			return "", false
		}
		ir := r.Inh[e.child]
		if ir == nil || ir.IsQuery() {
			return "", false
		}
		found := false
		for _, cp := range ir.Copies {
			if cp.TargetMember == m {
				if cp.Src.Side != aig.InhSide || cp.Src.Elem != e.parent || cp.Src.Member == "" {
					return "", false
				}
				m = cp.Src.Member
				found = true
				break
			}
		}
		if !found {
			return "", false
		}
	}
	return m, true
}

// boundColumn finds the select column of a query that binds member m of
// the spawned child's inherited attribute, mirroring the row-binding
// rules of validation: by output name when every column names a scalar
// member, positionally otherwise.
func boundColumn(q *sqlmini.Query, decl aig.AttrDecl, m string) (sqlmini.ColRef, bool) {
	scalars := decl.ScalarSchema()
	byName := true
	for _, s := range q.Select {
		if scalars.ColumnIndex(s.OutputName()) < 0 {
			byName = false
			break
		}
	}
	if byName {
		for _, s := range q.Select {
			if s.OutputName() == m {
				return s.Expr, true
			}
		}
		return sqlmini.ColRef{}, false
	}
	if len(q.Select) != len(scalars) {
		return sqlmini.ColRef{}, false
	}
	for i, col := range scalars {
		if col.Name == m {
			return q.Select[i].Expr, true
		}
	}
	return sqlmini.ColRef{}, false
}

// ---------------------------------------------------------------------------
// The chase: equivalence classes and key propagation

// colKey is the class key for an alias-qualified column; qualify
// resolves unqualified references against the FROM list first.
func colKey(alias, col string) string { return "c:" + alias + "." + col }

// qualify resolves a column reference to the FROM alias that binds it.
// Unqualified references resolve only in single-relation queries.
func qualify(q *sqlmini.Query, c sqlmini.ColRef) (string, bool) {
	if c.Table != "" {
		for _, t := range q.From {
			if t.BindName() == c.Table {
				return c.Table, true
			}
		}
		return "", false
	}
	if len(q.From) == 1 {
		return q.From[0].BindName(), true
	}
	return "", false
}

// queryClasses builds the equality equivalence classes of a query's
// predicates and the set of class roots whose value is fixed within one
// execution (bound to a constant or to a scalar parameter field). ok is
// false when a reference cannot be resolved.
func queryClasses(q *sqlmini.Query) (uf *unionFind, fixed map[string]bool, ok bool) {
	uf = newUnionFind()
	var fixedKeys []string
	key := func(c sqlmini.ColRef) (string, bool) {
		a, ok := qualify(q, c)
		if !ok {
			return "", false
		}
		return colKey(a, c.Column), true
	}
	for _, p := range q.Where {
		switch p.Kind {
		case sqlmini.PredColCol:
			if p.Op == sqlmini.OpEq {
				l, lok := key(p.Left)
				r, rok := key(p.Right)
				if !lok || !rok {
					return nil, nil, false
				}
				uf.union(l, r)
			}
		case sqlmini.PredColConst:
			if p.Op == sqlmini.OpEq {
				l, lok := key(p.Left)
				if !lok {
					return nil, nil, false
				}
				ck := "k:" + p.Const.Key()
				uf.union(l, ck)
				fixedKeys = append(fixedKeys, ck)
			}
		case sqlmini.PredColParam:
			if p.Op == sqlmini.OpEq {
				l, lok := key(p.Left)
				if !lok {
					return nil, nil, false
				}
				pk := "p:" + p.Param + "." + p.ParamField
				uf.union(l, pk)
				fixedKeys = append(fixedKeys, pk)
			}
		case sqlmini.PredColInList:
			if len(p.List) == 1 {
				l, lok := key(p.Left)
				if !lok {
					return nil, nil, false
				}
				ck := "k:" + p.List[0].Key()
				uf.union(l, ck)
				fixedKeys = append(fixedKeys, ck)
			}
		}
	}
	fixed = make(map[string]bool, len(fixedKeys))
	for _, k := range fixedKeys {
		fixed[uf.find(k)] = true
	}
	return uf, fixed, true
}

// chase decides whether the seed columns functionally determine the
// query's output rows, by propagating the declared source keys: a FROM
// relation all of whose key columns are determined is pinned to a single
// row, determining all its columns. It reports success when either every
// FROM relation is pinned (each valuation of the FROM tuple is unique
// given the seeds), or the query is DISTINCT and every select column is
// determined (duplicate outputs collapse). uses lists the keys the proof
// consumed.
func (ce *certifier) chase(q *sqlmini.Query, seeds []sqlmini.ColRef) (ok bool, uses []string, why string) {
	uf, fixed, cok := queryClasses(q)
	if !cok {
		return false, nil, "unresolvable column reference"
	}
	determined := make(map[string]bool)
	for r := range fixed {
		determined[r] = true
	}
	for _, s := range seeds {
		a, qok := qualify(q, s)
		if !qok {
			return false, nil, fmt.Sprintf("cannot resolve column %s", s)
		}
		determined[uf.find(colKey(a, s.Column))] = true
	}
	pinned := make(map[string]bool)
	usedSet := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, t := range q.From {
			alias := t.BindName()
			if pinned[alias] || t.IsParam() {
				continue
			}
			for _, k := range ce.a.SourceKeys {
				if k.Source != t.Source || k.Table != t.Table {
					continue
				}
				all := true
				for _, c := range k.Cols {
					if !determined[uf.find(colKey(alias, c))] {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				pinned[alias] = true
				usedSet["key "+k.String()] = true
				schema, err := ce.a.Sources.TableSchema(t.Source, t.Table)
				if err == nil {
					for _, col := range schema {
						if !determined[uf.find(colKey(alias, col.Name))] {
							determined[uf.find(colKey(alias, col.Name))] = true
							changed = true
						}
					}
				}
				changed = true
				break
			}
		}
	}
	for u := range usedSet {
		uses = append(uses, u)
	}
	sort.Strings(uses)
	allPinned := true
	for _, t := range q.From {
		if !pinned[t.BindName()] {
			allPinned = false
			break
		}
	}
	if allPinned {
		return true, uses, ""
	}
	if q.Distinct {
		allOut := true
		for _, s := range q.Select {
			a, qok := qualify(q, s.Expr)
			if !qok || !determined[uf.find(colKey(a, s.Expr.Column))] {
				allOut = false
				break
			}
		}
		if allOut {
			return true, uses, ""
		}
	}
	for _, t := range q.From {
		if !pinned[t.BindName()] {
			return false, nil, fmt.Sprintf("relation %s is not pinned by any declared key", t.BindName())
		}
	}
	return false, nil, "no relation pinned"
}

type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// classColumns returns every alias-qualified column in the same equality
// class as the given column, as (alias, column) pairs.
func classColumns(q *sqlmini.Query, uf *unionFind, c sqlmini.ColRef) [][2]string {
	alias, ok := qualify(q, c)
	if !ok {
		return nil
	}
	root := uf.find(colKey(alias, c.Column))
	var out [][2]string
	for _, t := range q.From {
		bn := t.BindName()
		// Enumerate columns that appeared in the union-find plus the seed
		// column itself; we only know about columns mentioned somewhere,
		// so also add c explicitly.
		for k := range uf.parent {
			if !strings.HasPrefix(k, "c:"+bn+".") {
				continue
			}
			if uf.find(k) == root {
				out = append(out, [2]string{bn, strings.TrimPrefix(k, "c:"+bn+".")})
			}
		}
	}
	found := false
	for _, p := range out {
		if p[0] == alias && p[1] == c.Column {
			found = true
		}
	}
	if !found {
		out = append(out, [2]string{alias, c.Column})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
