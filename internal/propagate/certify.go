package propagate

import (
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/static"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// unknown builds an Unknown result with a reason.
func unknown(c xconstraint.Constraint, format string, args ...any) Result {
	return Result{Constraint: c, Verdict: Unknown, Reason: fmt.Sprintf(format, args...)}
}

// certifyKey decides a key constraint C(A.(l...) -> A): within every C
// subtree, the A elements' field tuples are pairwise distinct.
//
// Proof shape: all A elements of one C subtree must stem from a single
// execution of one generating rule — the unique derivation path C..A may
// contain at most one multiplicity-introducing (star) edge, with only
// single-occurrence edges elsewhere. If that generating rule is a query,
// the chase must show the field columns functionally determine the
// output row under the declared source keys; if it iterates a set-typed
// member, the fields must cover the member's whole tuple (set semantics
// deduplicate). With no star edge at all, at most one A exists per C and
// the key holds trivially.
func (ce *certifier) certifyKey(c xconstraint.Constraint) Result {
	a := ce.a
	paths, ok := ce.pathsTo(c.Context, c.Target)
	if !ok {
		return unknown(c, "recursive derivation between %s and %s", c.Context, c.Target)
	}
	if len(paths) == 0 {
		return Result{Constraint: c, Verdict: MustHold,
			Reason: fmt.Sprintf("no %s element can occur under %s", c.Target, c.Context)}
	}
	if len(paths) > 1 {
		return unknown(c, "%s is derivable from %s along %d distinct paths", c.Target, c.Context, len(paths))
	}
	path := paths[0]
	starIdx := -1
	for i, e := range path {
		multi := e.kind == dtd.ProdStar || e.occ > 1
		if !multi {
			continue
		}
		if e.kind != dtd.ProdStar {
			return unknown(c, "child %s occurs %d times in the production of %s", e.child, e.occ, e.parent)
		}
		if starIdx >= 0 {
			return unknown(c, "two multiplicity-introducing edges on the path (%s* and %s*)",
				path[starIdx].child, e.child)
		}
		starIdx = i
	}
	if starIdx < 0 {
		return Result{Constraint: c, Verdict: MustHold,
			Reason: fmt.Sprintf("at most one %s element per %s subtree", c.Target, c.Context)}
	}
	// Edges above the star must not introduce multiplicity (seq occ 1 or
	// choice); edges below it are checked by the copy trace.
	for _, e := range path[:starIdx] {
		if e.kind != dtd.ProdSeq && e.kind != dtd.ProdChoice {
			return unknown(c, "edge %s -> %s above the generating rule is not single-occurrence", e.parent, e.child)
		}
	}
	star := path[starIdx]
	r := a.Rules[star.parent]
	if r == nil || r.Inh[star.child] == nil {
		return unknown(c, "no generating rule for %s -> %s*", star.parent, star.child)
	}
	ir := r.Inh[star.child]

	// Trace each field back to a member of Inh(star.child).
	childDecl := a.Inh[star.child]
	var members []string
	for _, f := range c.TargetFields {
		m, ok := ce.fieldOrigin(c.Target, f)
		if !ok {
			return unknown(c, "cannot trace the value of field %s.%s to an inherited member", c.Target, f)
		}
		m, ok = ce.traceBelow(path, starIdx, m)
		if !ok {
			return unknown(c, "field %s.%s does not flow by pure copies from the generating rule", c.Target, f)
		}
		members = append(members, m)
	}

	if !ir.IsQuery() {
		// Star driven by iterating a collection member: set semantics give
		// distinct tuples, so the key holds when the fields cover the
		// member's entire tuple.
		if len(ir.Copies) != 1 {
			return unknown(c, "unrecognized star rule for %s", star.child)
		}
		src := ir.Copies[0].Src
		var decl aig.AttrDecl
		if src.Side == aig.InhSide {
			decl = a.Inh[src.Elem]
		} else {
			decl = a.Syn[src.Elem]
		}
		m, ok := decl.Member(src.Member)
		if !ok || m.Kind != aig.Set {
			return unknown(c, "star rule for %s iterates %s, which is not a set", star.child, src)
		}
		covered := make(map[string]bool, len(members))
		for _, mm := range members {
			covered[mm] = true
		}
		for _, col := range m.Fields {
			if !covered[col.Name] {
				return unknown(c, "iterated set column %s is not covered by the key fields", col.Name)
			}
		}
		return Result{Constraint: c, Verdict: MustHold,
			Reason: fmt.Sprintf("fields cover the tuple of set %s, whose elements are distinct", src)}
	}

	if ir.Query == nil || ir.TargetCollection != "" {
		return unknown(c, "generating rule for %s is not a direct row-binding query", star.child)
	}
	q := ir.Query
	var seeds []sqlmini.ColRef
	for i, m := range members {
		col, ok := boundColumn(q, childDecl, m)
		if !ok {
			// A member bound by a copy assignment is fixed per execution
			// and contributes nothing to row distinctness; skip it.
			if copyBound(ir, m) {
				continue
			}
			return unknown(c, "field %s.%s is not bound by the generating query", c.Target, c.TargetFields[i])
		}
		seeds = append(seeds, col)
	}
	ok, uses, why := ce.chase(q, seeds)
	if !ok {
		return unknown(c, "key fields do not determine the query output: %s", why)
	}
	return Result{Constraint: c, Verdict: MustHold, Uses: uses,
		Reason: fmt.Sprintf("fields determine each output row of the %s -> %s query", star.parent, star.child)}
}

// copyBound reports whether the rule's copy assignments bind member m.
func copyBound(ir *aig.InhRule, m string) bool {
	for _, cp := range ir.Copies {
		if cp.TargetMember == m {
			return true
		}
	}
	return false
}

// certifyInclusion decides an inclusion constraint C(B.lB ⊆ A.lA):
// within every C subtree, every B field tuple occurs as some A field
// tuple.
//
// Proof shape (the paper's §5 pattern): the target A is produced at a
// unique star edge below C whose generating query scans a single source
// table T, either unconditionally or filtered by `col in $V` where $V is
// a synthesized collection provably gathering every B field value of the
// subtree; every query that generates B field values selects them from a
// column with a declared foreign key into T's filter (or output) column,
// so a matching T row — hence a matching A element — must exist.
func (ce *certifier) certifyInclusion(c xconstraint.Constraint) Result {
	a := ce.a
	if len(c.SourceFields) != 1 {
		return unknown(c, "composite inclusion constraints are outside the certified fragment")
	}

	bPaths, bOK := ce.pathsTo(c.Context, c.Source)
	bReachable := !bOK || len(bPaths) > 0
	if bOK && len(bPaths) == 0 {
		return Result{Constraint: c, Verdict: MustHold,
			Reason: fmt.Sprintf("no %s element can occur under %s", c.Source, c.Context)}
	}

	// Targets are matched among strict descendants of a context node, so
	// reachability must go through a child of C's production.
	cp, _ := a.DTD.Production(c.Context)
	strictlyReaches := false
	for _, ch := range cp.Children {
		if reachesOrIs(a.DTD, ch, c.Target) {
			strictlyReaches = true
			break
		}
	}
	if !strictlyReaches {
		if ce.provablyProducible(c) && bReachable {
			return Result{Constraint: c, Verdict: Violated,
				Reason: fmt.Sprintf("%s elements occur under %s on some instance, but no %s can ever be derived there",
					c.Source, c.Context, c.Target)}
		}
		return unknown(c, "no %s is derivable under %s, and the analysis cannot decide whether %s occurs",
			c.Target, c.Context, c.Source)
	}

	aPaths, ok := ce.pathsTo(c.Context, c.Target)
	if !ok {
		return unknown(c, "recursive derivation between %s and %s", c.Context, c.Target)
	}
	if len(aPaths) != 1 {
		return unknown(c, "%s is derivable from %s along %d paths; need exactly one", c.Target, c.Context, len(aPaths))
	}
	path := aPaths[0]

	// The target's fields must always be present when the element is.
	tp, _ := a.DTD.Production(c.Target)
	if tp.Kind != dtd.ProdSeq {
		return unknown(c, "fields of %s are not guaranteed present (production is not a sequence)", c.Target)
	}

	// Exactly one star edge; everything above it must be a mandatory
	// (sequence, single-occurrence) edge so the A-generating execution
	// exists in every C subtree; everything below must be pure copies.
	starIdx := -1
	for i, e := range path {
		if e.kind == dtd.ProdStar {
			if starIdx >= 0 {
				return unknown(c, "two star edges on the path to %s", c.Target)
			}
			starIdx = i
			continue
		}
		if e.kind != dtd.ProdSeq || e.occ != 1 {
			return unknown(c, "edge %s -> %s on the path to %s is not a mandatory sequence edge", e.parent, e.child, c.Target)
		}
	}
	if starIdx < 0 {
		return unknown(c, "no generating star edge on the path to %s", c.Target)
	}
	star := path[starIdx]
	r := a.Rules[star.parent]
	if r == nil || r.Inh[star.child] == nil || !r.Inh[star.child].IsQuery() {
		return unknown(c, "no generating query for %s -> %s*", star.parent, star.child)
	}
	ir := r.Inh[star.child]
	if ir.Query == nil || ir.TargetCollection != "" {
		return unknown(c, "generating rule for %s is not a direct row-binding query", star.child)
	}
	q := ir.Query
	if len(q.From) != 1 || q.From[0].IsParam() {
		return unknown(c, "generating query for %s scans %d relations; need a single source table", star.child, len(q.From))
	}
	t := q.From[0]

	// Locate the output column carrying the A field value.
	mA, ok := ce.fieldOrigin(c.Target, c.TargetFields[0])
	if !ok {
		return unknown(c, "cannot trace the value of field %s.%s", c.Target, c.TargetFields[0])
	}
	mA, ok = ce.traceBelow(path, starIdx, mA)
	if !ok {
		return unknown(c, "field %s.%s does not flow by pure copies from the generating query", c.Target, c.TargetFields[0])
	}
	colA, ok := boundColumn(q, a.Inh[star.child], mA)
	if !ok {
		return unknown(c, "field %s.%s is not bound by the generating query", c.Target, c.TargetFields[0])
	}

	uf, _, cok := queryClasses(q)
	if !cok {
		return unknown(c, "unresolvable column in the generating query")
	}

	var uses []string
	var fkTargetCols []string // columns of t that a B value provably lands in
	switch len(q.Where) {
	case 0:
		// Unconditioned scan: every T row yields an A element; the output
		// column's class names the T columns a foreign key may target.
		for _, pair := range classColumns(q, uf, colA) {
			if pair[0] == t.BindName() {
				fkTargetCols = append(fkTargetCols, pair[1])
			}
		}
	case 1:
		p := q.Where[0]
		if p.Kind != sqlmini.PredColInParam {
			return unknown(c, "generating query predicate is not `column in $param`")
		}
		alias, aok := qualify(q, p.Left)
		if !aok || alias != t.BindName() {
			return unknown(c, "cannot resolve the filtered column of the generating query")
		}
		// The output value must equal the filtered column, so the matched
		// row surfaces the B value itself.
		sameClass := false
		for _, pair := range classColumns(q, uf, colA) {
			if pair[0] == alias && pair[1] == p.Left.Column {
				sameClass = true
			}
		}
		if !sameClass {
			return unknown(c, "output column %s is not equal to the filtered column %s", colA, p.Left)
		}
		// $V must gather every B field value of the C subtree.
		gok, why := ce.paramGathersB(path, starIdx, ir, p.Param, c)
		if !gok {
			return unknown(c, "%s", why)
		}
		fkTargetCols = []string{p.Left.Column}
	default:
		return unknown(c, "generating query for %s has %d predicates; need at most one `in $param` filter", star.child, len(q.Where))
	}
	if len(fkTargetCols) == 0 {
		return unknown(c, "no source-table column carries the %s field value", c.Target)
	}

	// Every rule that generates B field values must select them from a
	// column with a declared foreign key into one of fkTargetCols.
	bok, bUses, why := ce.bValuesCovered(c, t.Source, t.Table, fkTargetCols)
	if !bok {
		return unknown(c, "%s", why)
	}
	uses = append(uses, bUses...)
	sortUnique(&uses)
	return Result{Constraint: c, Verdict: MustHold, Uses: uses,
		Reason: fmt.Sprintf("every %s value reaches %s:%s by foreign key and resurfaces as an %s element",
			c.Source, t.Source, t.Table, c.Target)}
}

// paramGathersB proves that the generating query's set parameter gathers
// every B field value of the C subtree: the parameter traces by pure
// copies up the A path to a synthesized collection Syn(S).m of a
// mandatory sibling S; every derivation of B from C passes through the
// S edge; and Syn(S).m provably collects the field tuples of all B
// descendants of S (the co-inductive covers check).
func (ce *certifier) paramGathersB(path []edge, starIdx int, ir *aig.InhRule, param string, c xconstraint.Constraint) (bool, string) {
	a := ce.a
	ref, ok := ir.QueryParams[param]
	if !ok {
		return false, fmt.Sprintf("parameter $%s has no source", param)
	}
	// Walk up from the star parent: each hop must be a pure copy of the
	// member from the parent's Inh, until the copy source is a sibling's
	// synthesized attribute.
	idx := starIdx // path[idx].parent is the element the ref is relative to
	for {
		if ref.Side == aig.SynSide {
			break
		}
		holder := path[idx].parent
		if ref.Elem != holder || ref.Member == "" {
			return false, fmt.Sprintf("parameter $%s is not a traceable member copy", param)
		}
		if idx == 0 {
			return false, fmt.Sprintf("parameter $%s originates above the context %s", param, c.Context)
		}
		idx--
		e := path[idx]
		r := a.Rules[e.parent]
		if r == nil || e.kind != dtd.ProdSeq || e.occ != 1 {
			return false, fmt.Sprintf("parameter $%s does not flow down a mandatory sequence edge", param)
		}
		irUp := r.Inh[e.child]
		if irUp == nil || irUp.IsQuery() {
			return false, fmt.Sprintf("parameter $%s is not copied at %s -> %s", param, e.parent, e.child)
		}
		found := false
		for _, cp := range irUp.Copies {
			if cp.TargetMember == ref.Member {
				ref = cp.Src
				found = true
				break
			}
		}
		if !found {
			return false, fmt.Sprintf("member %s of Inh(%s) has no copy source", ref.Member, e.child)
		}
	}
	// ref is Syn(S).m; S must be a single-occurrence sequence child of
	// the element at path[idx].parent.
	S, m := ref.Elem, ref.Member
	holder := path[idx].parent
	hp, _ := a.DTD.Production(holder)
	if hp.Kind != dtd.ProdSeq {
		return false, fmt.Sprintf("collection source %s is not a sequence child of %s", S, holder)
	}
	occ := 0
	for _, ch := range hp.Children {
		if ch == S {
			occ++
		}
	}
	if occ != 1 {
		return false, fmt.Sprintf("collection source %s occurs %d times under %s", S, occ, holder)
	}
	// Every derivation of B from C must pass through the holder -> S
	// edge, so the single S subtree contains every B of the C subtree.
	if !ce.allPathsThrough(c.Context, c.Source, holder, S) {
		return false, fmt.Sprintf("%s elements can occur outside the %s subtree that feeds $%s", c.Source, S, param)
	}
	// And Syn(S).m must provably cover all B field tuples below S.
	if !ce.covers(S, m, c, map[string]int{}) {
		return false, fmt.Sprintf("Syn(%s).%s is not proven to collect every %s.%s value", S, m, c.Source, c.SourceFields[0])
	}
	return true, ""
}

// allPathsThrough reports whether every derivation path from `from` to
// `to` in the production graph traverses the parent -> child edge.
func (ce *certifier) allPathsThrough(from, to, parent, child string) bool {
	d := ce.a.DTD
	seen := map[string]bool{}
	var visit func(e string) bool // true when `to` is reachable avoiding the edge
	visit = func(e string) bool {
		if e == to {
			return true
		}
		if seen[e] {
			return false
		}
		seen[e] = true
		p, _ := d.Production(e)
		for _, ch := range p.Children {
			if e == parent && ch == child {
				continue
			}
			if visit(ch) {
				return true
			}
		}
		return false
	}
	return !visit(from)
}

// covers is the co-inductive gathering check: Syn(elem).member contains
// the field tuple of every c.Source descendant-or-self of an elem
// instance. Cycles in the static dependency graph correspond to strictly
// deeper subtrees at run time, so assuming the claim while it is on the
// recursion stack is sound (structural induction on the document).
// Only failures are memoized: a true result reached under an on-stack
// assumption that later fails must not be reused, so true results are
// re-derived on demand (grammars are small; termination is guaranteed by
// the on-stack marks).
func (ce *certifier) covers(elem, member string, c xconstraint.Constraint, state map[string]int) bool {
	key := elem + "." + member
	switch state[key] {
	case 1:
		return true // co-inductive hypothesis
	case 3:
		return false
	}
	state[key] = 1
	ok := ce.coversEval(elem, member, c, state)
	if ok {
		delete(state, key)
	} else {
		state[key] = 3
	}
	return ok
}

func (ce *certifier) coversEval(elem, member string, c xconstraint.Constraint, state map[string]int) bool {
	a := ce.a
	p, _ := a.DTD.Production(elem)
	if p.Kind == dtd.ProdChoice {
		return false // branch-dependent synthesis is outside the fragment
	}
	needSelf := elem == c.Source
	needChildren := map[string]bool{}
	occ := map[string]int{}
	for _, ch := range p.Children {
		occ[ch]++
		if reachesOrIs(a.DTD, ch, c.Source) {
			needChildren[ch] = true
		}
	}
	if !needSelf && len(needChildren) == 0 {
		return true // vacuous: no B below this element
	}
	r := a.Rules[elem]
	if r == nil || r.Syn == nil {
		return false
	}
	expr, ok := r.Syn.Exprs[member]
	if !ok {
		return false
	}
	var terms []aig.SynExpr
	if u, isUnion := expr.(aig.UnionOf); isUnion {
		terms = u.Terms
	} else {
		terms = []aig.SynExpr{expr}
	}
	selfCovered := !needSelf
	covered := map[string]bool{}
	for _, t := range terms {
		switch e := t.(type) {
		case aig.SingletonOf:
			if needSelf && ce.singletonIsFieldTuple(elem, e, c) {
				selfCovered = true
			}
		case aig.CollectChildren:
			// collect() unions over every child instance of a star
			// production.
			if p.Kind == dtd.ProdStar && needChildren[e.Child] &&
				ce.covers(e.Child, e.Member, c, state) {
				covered[e.Child] = true
			}
		case aig.CollectionOf:
			if e.Src.Side == aig.SynSide && needChildren[e.Src.Elem] && occ[e.Src.Elem] == 1 &&
				ce.covers(e.Src.Elem, e.Src.Member, c, state) {
				covered[e.Src.Elem] = true
			}
		}
	}
	if !selfCovered {
		return false
	}
	for ch := range needChildren {
		if !covered[ch] {
			return false
		}
	}
	return true
}

// singletonIsFieldTuple reports whether a singleton expression on elem
// (the B type itself) evaluates to exactly elem's field tuple: each
// component reads Syn(f).v of the corresponding field child, where that
// synthesized member provably equals the child's PCDATA.
func (ce *certifier) singletonIsFieldTuple(elem string, e aig.SingletonOf, c xconstraint.Constraint) bool {
	if len(e.Srcs) != len(c.SourceFields) {
		return false
	}
	for i, src := range e.Srcs {
		f := c.SourceFields[i]
		if src.Side != aig.SynSide || src.Elem != f || src.Member == "" {
			return false
		}
		// Syn(f).member must mirror the PCDATA: both the text source and
		// the synthesized member read the same Inh(f) scalar.
		fr := ce.a.Rules[f]
		if fr == nil || fr.Syn == nil {
			return false
		}
		sc, ok := fr.Syn.Exprs[src.Member].(aig.ScalarOf)
		if !ok || fr.TextSrc != sc.Src {
			return false
		}
	}
	return true
}

// bValuesCovered checks that every rule generating the B field value
// binds it from a source column with a declared foreign key into one of
// the given columns of refSource:refTable. It returns the foreign keys
// used.
func (ce *certifier) bValuesCovered(c xconstraint.Constraint, refSource, refTable string, refCols []string) (bool, []string, string) {
	a := ce.a
	mB, ok := ce.fieldOrigin(c.Source, c.SourceFields[0])
	if !ok {
		return false, nil, fmt.Sprintf("cannot trace the value of field %s.%s", c.Source, c.SourceFields[0])
	}
	refCol := map[string]bool{}
	for _, rc := range refCols {
		refCol[rc] = true
	}
	var uses []string
	sites := 0
	for _, elem := range a.DTD.Types() {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		check := func(ir *aig.InhRule) (bool, string) {
			if ir == nil || ir.Child != c.Source {
				return true, ""
			}
			sites++
			if !ir.IsQuery() {
				return false, fmt.Sprintf("rule %s -> %s binds %s by copy; value origin unprovable", elem, c.Source, mB)
			}
			if ir.Query == nil {
				return false, fmt.Sprintf("rule %s -> %s uses a decomposed chain", elem, c.Source)
			}
			if copyBound(ir, mB) {
				return false, fmt.Sprintf("rule %s -> %s binds %s by copy; value origin unprovable", elem, c.Source, mB)
			}
			q := ir.Query
			col, ok := boundColumn(q, a.Inh[c.Source], mB)
			if !ok {
				return false, fmt.Sprintf("rule %s -> %s does not bind %s from the query", elem, c.Source, mB)
			}
			uf, _, cok := queryClasses(q)
			if !cok {
				return false, fmt.Sprintf("unresolvable column in the %s -> %s query", elem, c.Source)
			}
			aliasOf := map[string]sqlmini.TableRef{}
			for _, t := range q.From {
				aliasOf[t.BindName()] = t
			}
			for _, pair := range classColumns(q, uf, col) {
				t := aliasOf[pair[0]]
				if t.IsParam() {
					continue
				}
				for _, fk := range a.SourceFKs {
					if fk.Source == t.Source && fk.Table == t.Table &&
						len(fk.Cols) == 1 && fk.Cols[0] == pair[1] &&
						fk.RefSource == refSource && fk.RefTable == refTable &&
						len(fk.RefCols) == 1 && refCol[fk.RefCols[0]] {
						uses = append(uses, "fkey "+fk.String())
						return true, ""
					}
				}
			}
			return false, fmt.Sprintf("no declared foreign key carries %s values of the %s -> %s query into %s:%s",
				mB, elem, c.Source, refSource, refTable)
		}
		children := make([]string, 0, len(r.Inh))
		for ch := range r.Inh {
			children = append(children, ch)
		}
		sortStrings(children)
		for _, ch := range children {
			if ok, why := check(r.Inh[ch]); !ok {
				return false, nil, why
			}
		}
		for _, b := range r.Branches {
			if ok, why := check(b.Inh); !ok {
				return false, nil, why
			}
		}
	}
	if sites == 0 {
		return false, nil, fmt.Sprintf("no rule generates %s elements", c.Source)
	}
	return true, uses, ""
}

// provablyProducible under-approximates "some instance satisfying the
// source constraints yields a C element containing a B element with all
// its fields": C reachable from the root, a derivation path from C to B
// whose star edges have satisfiable queries, and B's production a
// sequence (fields always present).
func (ce *certifier) provablyProducible(c xconstraint.Constraint) bool {
	a := ce.a
	if ce.an == nil {
		an, err := static.Analyze(a)
		if err != nil {
			return false
		}
		ce.an = an
	}
	if !ce.an.CanReach[c.Context] {
		return false
	}
	bp, _ := a.DTD.Production(c.Source)
	if bp.Kind != dtd.ProdSeq {
		return false
	}
	have := map[string]int{}
	for _, ch := range bp.Children {
		have[ch]++
	}
	for _, f := range c.SourceFields {
		if have[f] != 1 {
			return false
		}
	}
	// A derivation path from C, through a child (the checker matches B
	// among strict descendants), where every star edge has a satisfiable
	// generating query (so some database populates it).
	seen := map[string]bool{c.Context: true}
	var visit func(e string) bool
	visit = func(e string) bool {
		if e == c.Source {
			return true
		}
		if seen[e] {
			return false
		}
		seen[e] = true
		p, _ := a.DTD.Production(e)
		for _, ch := range p.Children {
			if p.Kind == dtd.ProdStar {
				r := a.Rules[e]
				if r == nil || r.Inh[ch] == nil {
					continue
				}
				if q := r.Inh[ch].Query; q != nil && !static.Satisfiable(q) {
					continue
				}
			}
			if visit(ch) {
				return true
			}
		}
		return false
	}
	cprod, _ := a.DTD.Production(c.Context)
	for _, ch := range cprod.Children {
		if visit(ch) {
			return true
		}
	}
	return false
}

// sortUnique sorts a string slice and removes duplicates in place.
func sortUnique(s *[]string) {
	in := *s
	if len(in) < 2 {
		return
	}
	seen := map[string]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	*s = out
	sortStrings(*s)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
