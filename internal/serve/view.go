package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/propagate"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
)

// ParamDecl describes one bindable root parameter of a prepared view: a
// scalar member of the root element's inherited attribute.
type ParamDecl struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// View is one prepared XML view: an AIG whose request-independent
// processing — parse, validation, constraint compilation, multi-source
// query decomposition, and a plan dry run — happened once at
// registration. A request only binds the root inherited attribute and
// evaluates through the shared mediator.
type View struct {
	name string

	// a is the validated grammar as written; sa is the specialized form
	// (constraints compiled to guards, multi-source queries decomposed)
	// every evaluation starts from.
	a  *aig.AIG
	sa *aig.AIG

	med *mediator.Mediator

	// sources is the sorted set of source names the specialized
	// grammar's queries reference — the views' cache entries depend on
	// exactly these data versions.
	sources []string
	params  []ParamDecl
	plan    string

	// certified reports that every declared constraint was statically
	// proven (internal/propagate) to hold under the spec's source keys
	// and foreign keys, letting evaluations skip output re-verification.
	certified bool
	cert      *propagate.Certification

	// deps is the view's judgeable table-dependency map, extracted once
	// from the specialized grammar: the static half of incremental view
	// maintenance the background refresher judges deltas against.
	deps *ivm.Deps

	// fa is the fragment grammar: the validated grammar query-decomposed
	// but with constraints never compiled to guards — the guard-free form
	// aig.EvalPartial requires. partialOK reports that fragment requests
	// may use it directly: with no constraints, or with every constraint
	// statically certified, the guard-free evaluation renders the same
	// subtrees a full (guarded) evaluation would. Otherwise fragments fall
	// back to full render + post-hoc filtering, so a document a guard
	// would abort never leaks through the fragment path.
	fa        *aig.AIG
	partialOK bool

	// fragPlans memoizes per-path fragment compilation (pushdown analysis
	// and the path-filtered dependency map), keyed by canonical rendering.
	fragMu    sync.Mutex
	fragPlans map[string]*fragPlan

	// estDepth is the adaptive warm start for recursion unfolding: the
	// depth that sufficed last time, so steady-state requests on stable
	// data evaluate exactly once instead of re-probing upward.
	estDepth atomic.Int32
	maxDepth int

	// reqSec is the per-view request-latency histogram; kept traces feed
	// it exemplars so its buckets link to retrievable flight-recorder
	// traces.
	reqSec *obs.Histogram

	// lastTrace holds the span tree of the most recent traced
	// evaluation, for GET /views/{name}/trace.
	traceMu   sync.Mutex
	lastTrace []byte
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// Params returns the bindable root parameters.
func (v *View) Params() []ParamDecl { return append([]ParamDecl(nil), v.params...) }

// Sources returns the source names the view reads.
func (v *View) Sources() []string { return append([]string(nil), v.sources...) }

// Plan returns the optimized dependency-graph plan rendered at prepare
// time (at the initial unfolding depth).
func (v *View) Plan() string { return v.plan }

// Deps returns the view's judgeable table dependencies.
func (v *View) Deps() *ivm.Deps { return v.deps }

// Certified reports whether every declared constraint is statically
// proven to hold, making runtime re-verification redundant.
func (v *View) Certified() bool { return v.certified }

// Certification returns the static certification computed at prepare
// time.
func (v *View) Certification() *propagate.Certification { return v.cert }

// prepareView runs the request-independent half of Fig. 5 once: parse
// is the caller's job (specs arrive as *aig.AIG), then validate against
// the live registry, compile the constraints into guards, decompose
// multi-source queries, and dry-run plan compilation at the initial
// unfolding depth so a broken view fails at startup, not on the first
// request.
func prepareView(name string, a *aig.AIG, reg *source.Registry, opts mediator.Options, unfold, maxUnfold int) (*View, error) {
	if err := a.Validate(reg); err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	sa, err := specialize.CompileConstraints(a)
	if err != nil {
		return nil, fmt.Errorf("view %s: compiling constraints: %w", name, err)
	}
	sa, err = specialize.DecomposeQueries(sa, reg, reg, opts.PlanOpts)
	if err != nil {
		return nil, fmt.Errorf("view %s: decomposing queries: %w", name, err)
	}

	deps, err := ivm.Extract(sa, reg)
	if err != nil {
		return nil, fmt.Errorf("view %s: extracting table dependencies: %w", name, err)
	}

	// The fragment grammar decomposes the validated grammar without the
	// constraint-compilation step: partial evaluation must be guard-free
	// (a guard could abort on a subtree the fragment never evaluates).
	fa, err := specialize.DecomposeQueries(a, reg, reg, opts.PlanOpts)
	if err != nil {
		return nil, fmt.Errorf("view %s: decomposing fragment grammar: %w", name, err)
	}

	// Static certification runs on the grammar as written (the chase and
	// the gathering proofs read the pre-specialization rule shapes).
	cert := propagate.Certify(a)

	v := &View{
		name:      name,
		a:         a,
		sa:        sa,
		fa:        fa,
		med:       mediator.New(reg, opts),
		sources:   querySources(sa),
		params:    rootParams(a),
		deps:      deps,
		maxDepth:  maxUnfold,
		cert:      cert,
		certified: cert.Certified && len(a.Constraints) > 0,
		fragPlans: make(map[string]*fragPlan),
	}
	v.partialOK = len(a.Constraints) == 0 || v.certified
	v.estDepth.Store(int32(unfold))

	unf, err := specialize.Unfold(sa, unfold)
	if err != nil {
		return nil, fmt.Errorf("view %s: unfolding: %w", name, err)
	}
	plan, err := v.med.Explain(unf)
	if err != nil {
		return nil, fmt.Errorf("view %s: planning: %w", name, err)
	}
	if len(a.Constraints) > 0 {
		plan += "\n-- static certification --\n" + cert.Summary()
	}
	v.plan = plan
	return v, nil
}

// querySources collects the sorted set of source names referenced by any
// query of the grammar (child queries, decomposed chains, and choice
// conditions).
func querySources(a *aig.AIG) []string {
	set := make(map[string]struct{})
	add := func(qs ...interface{ Sources() []string }) {
		for _, q := range qs {
			for _, s := range q.Sources() {
				set[s] = struct{}{}
			}
		}
	}
	addInh := func(ir *aig.InhRule) {
		if ir == nil {
			return
		}
		if ir.Query != nil {
			add(ir.Query)
		}
		for _, q := range ir.Chain {
			add(q)
		}
	}
	for _, r := range a.Rules {
		for _, ir := range r.Inh {
			addInh(ir)
		}
		if r.Cond != nil {
			add(r.Cond)
		}
		for _, b := range r.Branches {
			addInh(b.Inh)
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// rootParams lists the scalar members of the root element's inherited
// attribute — the values a request may bind.
func rootParams(a *aig.AIG) []ParamDecl {
	var out []ParamDecl
	for _, m := range a.Inh[a.DTD.Root].Members {
		if m.Kind == aig.Scalar {
			out = append(out, ParamDecl{Name: m.Name, Kind: m.ValueKind.String()})
		}
	}
	return out
}

// bindParams builds the root inherited attribute from request
// parameters. Every parameter must name a scalar member of the root
// attribute; members left unbound stay null, as with aigrun -param.
func (v *View) bindParams(params map[string]string) (*aig.AttrValue, error) {
	root := v.sa.DTD.Root
	decl := v.sa.Inh[root]
	val := aig.NewAttrValue(decl)
	for name, raw := range params {
		m, ok := decl.Member(name)
		if !ok || m.Kind != aig.Scalar {
			return nil, fmt.Errorf("view %s: Inh(%s) has no scalar member %q", v.name, root, name)
		}
		pv, err := relstore.ParseValue(m.ValueKind, raw)
		if err != nil {
			return nil, fmt.Errorf("view %s: parameter %s: %w", v.name, name, err)
		}
		if err := val.SetScalar(name, pv); err != nil {
			return nil, fmt.Errorf("view %s: parameter %s: %w", v.name, name, err)
		}
	}
	return val, nil
}

// canonicalParams renders a parameter map in canonical order for cache
// keying: names sorted, values escaped so that neither '=' nor '&' in a
// value can collide with the separators.
func canonicalParams(params map[string]string) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(escapeKeyPart(n))
		b.WriteByte('=')
		b.WriteString(escapeKeyPart(params[n]))
	}
	return b.String()
}

// keyPartReplacer escapes the cache-key separator characters. Built
// once: a Replacer compiles its matching machine lazily on first use,
// which is far too expensive to redo on every cache-key part.
var keyPartReplacer = strings.NewReplacer("%", "%25", "&", "%26", "=", "%3D", "\x00", "%00")

func escapeKeyPart(s string) string {
	return keyPartReplacer.Replace(s)
}

// setLastTrace stores the rendered span tree of the latest evaluation.
func (v *View) setLastTrace(b []byte) {
	v.traceMu.Lock()
	v.lastTrace = b
	v.traceMu.Unlock()
}

// LastTrace returns the span tree of the most recent traced evaluation
// (nil before the first one).
func (v *View) LastTrace() []byte {
	v.traceMu.Lock()
	defer v.traceMu.Unlock()
	return v.lastTrace
}
