package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission-control outcomes. The two rejections map to distinct HTTP
// statuses: a full queue is the client's signal to back off (429), a
// queue timeout is the server's admission that it cannot turn work
// around in time (503).
var (
	errQueueFull    = errors.New("serve: admission queue full")
	errQueueTimeout = errors.New("serve: timed out waiting for an evaluation slot")
)

// admission is a bounded-concurrency semaphore with a bounded, timed
// wait queue. At most slots evaluations run concurrently; at most
// maxQueue further callers wait, each for at most timeout. Everything
// beyond that is rejected immediately, so load beyond capacity degrades
// into fast, explicit rejections instead of unbounded queuing.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	timeout  time.Duration

	// onQueue is called with the instantaneous queue depth after every
	// change, for the queue-depth gauge.
	onQueue func(depth int64)
}

// newAdmission builds a semaphore with the given bounds. slots < 1 is
// raised to 1; maxQueue < 0 means no waiting at all.
func newAdmission(slots int, maxQueue int, timeout time.Duration) *admission {
	if slots < 1 {
		slots = 1
	}
	return &admission{
		slots:    make(chan struct{}, slots),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
	}
}

// acquire claims an evaluation slot, waiting in the bounded queue if
// none is free. It returns the time spent queued.
func (a *admission) acquire(ctx context.Context) (time.Duration, error) {
	// Fast path: a slot is free, no queuing.
	select {
	case a.slots <- struct{}{}:
		return 0, nil
	default:
	}
	depth := a.queued.Add(1)
	if depth > a.maxQueue {
		a.queued.Add(-1)
		return 0, errQueueFull
	}
	a.notifyQueue(depth)
	start := time.Now()
	defer func() {
		a.notifyQueue(a.queued.Add(-1))
	}()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return time.Since(start), nil
	case <-timer.C:
		return time.Since(start), errQueueTimeout
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// release returns a slot.
func (a *admission) release() { <-a.slots }

// inUse returns the number of occupied slots.
func (a *admission) inUse() int { return len(a.slots) }

// queueDepth returns the number of waiting callers.
func (a *admission) queueDepth() int64 { return a.queued.Load() }

func (a *admission) notifyQueue(depth int64) {
	if a.onQueue != nil {
		a.onQueue(depth)
	}
}
