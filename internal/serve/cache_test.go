package serve

import (
	"fmt"
	"sync"
	"testing"
)

func entry(s string) *cacheEntry { return &cacheEntry{body: []byte(s)} }

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	evicted := 0
	c := newLRU(2)
	c.onEvict = func() { evicted++ }

	c.Add("a", entry("A"))
	c.Add("b", entry("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b is now the oldest
		t.Fatal("a missing before capacity reached")
	}
	c.Add("c", entry("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if evicted != 1 || c.Len() != 2 {
		t.Fatalf("evicted=%d len=%d, want 1/2", evicted, c.Len())
	}
}

func TestLRURefreshReplacesEntry(t *testing.T) {
	c := newLRU(2)
	c.Add("a", entry("old"))
	c.Add("a", entry("new"))
	if c.Len() != 1 {
		t.Fatalf("len=%d after re-adding the same key, want 1", c.Len())
	}
	if e, _ := c.Get("a"); string(e.body) != "new" {
		t.Fatalf("entry=%q, want the refreshed value", e.body)
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newLRU(capacity)
		c.Add("a", entry("A"))
		if _, ok := c.Get("a"); ok {
			t.Fatalf("capacity %d: cache stored an entry while disabled", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("capacity %d: len=%d, want 0", capacity, c.Len())
		}
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				c.Add(k, entry(k))
				if e, ok := c.Get(k); ok && string(e.body) != k {
					t.Errorf("key %s returned body %q", k, e.body)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("len=%d exceeds capacity 8", c.Len())
	}
}
