package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/xmltree"
	"github.com/aigrepro/aig/internal/xpath"
)

// fragURL builds a fragment request URL with the path properly encoded.
func fragURL(base, date, path string) string {
	q := url.Values{}
	q.Set("date", date)
	q.Set("path", path)
	return base + "/views/report?" + q.Encode()
}

// getFrag fetches a fragment, returning status, body, cache state, and
// the match count (header or trailer, whichever the response carried).
func getFrag(t *testing.T, u string) (int, string, string, string) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	matches := resp.Header.Get("X-Aig-Fragment-Matches")
	if matches == "" {
		// Streamed responses ship the count as a trailer, visible only
		// after the body is fully read.
		matches = resp.Trailer.Get("X-Aig-Fragment-Matches")
	}
	return resp.StatusCode, string(body), resp.Header.Get("X-Aig-Cache"), matches
}

// oracleFragment filters a full rendered document down to the path's
// matches — the reference the served fragment must byte-equal.
func oracleFragment(t *testing.T, fullBody, path string) (string, int) {
	t.Helper()
	doc, err := xmltree.Parse(strings.NewReader(fullBody))
	if err != nil {
		t.Fatal(err)
	}
	p, err := xpath.Parse(path)
	if err != nil {
		t.Fatal(err)
	}
	sel := xpath.Select(doc, p)
	var buf bytes.Buffer
	for _, n := range sel {
		if err := n.WriteIndented(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String(), len(sel)
}

func TestFragmentMissHitDerived(t *testing.T) {
	_, ts, _, metrics := testServer(t, Config{}, nil)

	// Cold fragment request: evaluated partially, streamed, cached.
	code, frag1, state, matches := getFrag(t, fragURL(ts.URL, "d1", "//patient"))
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first fragment: %d/%s", code, state)
	}
	if matches != "3" {
		t.Fatalf("first fragment matches %q, want 3", matches)
	}
	if !strings.Contains(frag1, "<patient>") || strings.Contains(frag1, "<report>") {
		t.Fatalf("fragment body should hold patients without the report wrapper:\n%s", frag1)
	}

	// Warm fragment request hits its own cache entry, byte-identical.
	code, frag2, state, matches := getFrag(t, fragURL(ts.URL, "d1", "//patient"))
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("repeat fragment: %d/%s", code, state)
	}
	if frag2 != frag1 || matches != "3" {
		t.Fatal("cache hit returned a different fragment")
	}

	// The partial body must equal the post-hoc filter of the full doc.
	_, full, fullState := get(t, ts.URL+"/views/report?date=d1")
	if fullState != "miss" {
		t.Fatalf("full request state %q, want miss (fragment entries must not satisfy full requests)", fullState)
	}
	want, n := oracleFragment(t, full, "//patient")
	if frag1 != want || n != 3 {
		t.Fatalf("fragment differs from post-hoc filter:\n--- served\n%s\n--- oracle\n%s", frag1, want)
	}

	// With the full document now cached, a fresh path derives from it
	// without evaluating.
	evalsBefore := counter(metrics, "aig_serve_evaluations_total")
	code, frag3, state, _ := getFrag(t, fragURL(ts.URL, "d1", "//treatment/tname"))
	if code != http.StatusOK || state != "derived" {
		t.Fatalf("derivable fragment: %d/%s", code, state)
	}
	if wantT, _ := oracleFragment(t, full, "//treatment/tname"); frag3 != wantT {
		t.Fatalf("derived fragment differs from oracle:\n%s", frag3)
	}
	if evals := counter(metrics, "aig_serve_evaluations_total"); evals != evalsBefore {
		t.Fatalf("deriving from the cached document evaluated: %d -> %d", evalsBefore, evals)
	}
	if n := counter(metrics, "aig_serve_fragment_requests_total"); n != 3 {
		t.Fatalf("fragment requests counter %d, want 3", n)
	}
}

func TestFragmentMatchesOracleAcrossPaths(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)
	_, full, _ := get(t, ts.URL+"/views/report?date=d1")

	for _, path := range []string{
		"/report",
		"/report/patient",
		"/report/patient/SSN",
		"//patient[pname='alice']",
		"//patient[2]",
		"//bill/item",
		"//treatment[tname='xray']",
		"//*[trId='t2']",
	} {
		code, frag, _, _ := getFrag(t, fragURL(ts.URL, "d1", path))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		want, _ := oracleFragment(t, full, path)
		if frag != want {
			t.Errorf("%s: served fragment differs from post-hoc filter\n--- served\n%s\n--- oracle\n%s", path, frag, want)
		}
	}
}

func TestFragmentZeroMatchesAndBadPath(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)

	code, body, _, matches := getFrag(t, fragURL(ts.URL, "d1", "/nothing"))
	if code != http.StatusOK || body != "" || matches != "0" {
		t.Fatalf("unmatchable path: %d, %d bytes, matches %q; want empty 200 with 0", code, len(body), matches)
	}

	code, body, _, _ = getFrag(t, fragURL(ts.URL, "d1", "//patient["))
	if code != http.StatusBadRequest || !strings.Contains(body, "path:") {
		t.Fatalf("malformed path: %d %q, want 400 with a positioned parse error", code, body)
	}
}

func TestFragmentSpellingVariantsShareOneEntry(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)

	if code, _, state, _ := getFrag(t, fragURL(ts.URL, "d1", `//patient[pname="alice"]`)); code != 200 || state != "miss" {
		t.Fatalf("first spelling: %d/%s", code, state)
	}
	// Same path modulo quoting canonicalizes to the same plan and key.
	if code, _, state, _ := getFrag(t, fragURL(ts.URL, "d1", "//patient[pname='alice']")); code != 200 || state != "hit" {
		t.Fatalf("canonical respelling: %d/%s, want hit", code, state)
	}
}

func TestFragmentConcurrentRequestsCoalesce(t *testing.T) {
	gate := make(chan struct{})
	_, ts, _, metrics := testServer(t, Config{}, gate)

	const n = 4
	var wg sync.WaitGroup
	bodies := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _, _ := getFrag(t, fragURL(ts.URL, "d1", "//patient"))
			codes[i], bodies[i] = code, body
		}(i)
	}
	waitFor(t, "all fragment requests in flight", func() bool {
		return counter(metrics, "aig_serve_cache_misses_total") == n
	})
	close(gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d returned a different fragment", i)
		}
	}
	if evals := counter(metrics, "aig_serve_evaluations_total"); evals != 1 {
		t.Fatalf("evaluations=%d, want exactly 1 for identical concurrent fragment requests", evals)
	}
	if c := counter(metrics, "aig_serve_coalesced_requests_total"); c != n-1 {
		t.Fatalf("coalesced=%d, want %d", c, n-1)
	}
}

// TestFragmentRefreshScopedInvalidation is the payoff of path-filtered
// dependency maps: a mutation that rebuilds the full document but lands
// outside the fragment's reachable scans leaves the fragment entry warm
// (restamped), while a mutation inside the fragment's scans rebuilds it.
func TestFragmentRefreshScopedInvalidation(t *testing.T) {
	s, ts, cat, metrics := testServer(t, Config{RefreshInterval: 2 * time.Millisecond}, nil)
	t.Cleanup(s.Close)

	u := fragURL(ts.URL, "d1", "/report/patient/SSN")
	code, frag1, state, _ := getFrag(t, u)
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first fragment: %d/%s", code, state)
	}

	// Billing feeds only the bill subtree, which /report/patient/SSN can
	// never reach: the full document changes (t1's bill gains an item)
	// but the fragment is provably identical and must be restamped.
	tableOf(t, cat, "DB3", "billing").MustInsert(relstore.Tuple{
		relstore.String("t1"), relstore.Int(999)})

	waitFor(t, "a post-mutation refresh", func() bool {
		return counter(metrics, "aig_serve_refresh_delta_total") >= 1
	})
	code, frag2, state, _ := getFrag(t, u)
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("post-billing-mutation fragment: %d/%s, want a warm hit", code, state)
	}
	if frag2 != frag1 {
		t.Fatal("out-of-scope mutation changed the fragment body")
	}

	// A new patient with a d1 visit lands squarely in the fragment's
	// scans: the refresher must rebuild, and the warm hit reflects it.
	tableOf(t, cat, "DB1", "patient").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("zed"), relstore.String("gold")})
	tableOf(t, cat, "DB1", "visitInfo").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("t1"), relstore.String("d1")})

	waitFor(t, "a warm fragment hit reflecting the new patient", func() bool {
		code, body, state, _ := getFrag(t, u)
		return code == http.StatusOK && state == "hit" && strings.Contains(body, "s9")
	})
}

func TestFragmentNoStoreBypassStreams(t *testing.T) {
	_, ts, _, metrics := testServer(t, Config{}, nil)

	req, _ := http.NewRequest(http.MethodGet, fragURL(ts.URL, "d1", "//patient"), nil)
	req.Header.Set("Cache-Control", "no-store")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Aig-Cache") != "bypass" {
		t.Fatalf("bypass fragment: %d/%s", resp.StatusCode, resp.Header.Get("X-Aig-Cache"))
	}
	if resp.Trailer.Get("X-Aig-Fragment-Matches") != "3" {
		t.Fatalf("bypass trailer matches %q, want 3", resp.Trailer.Get("X-Aig-Fragment-Matches"))
	}
	if !strings.Contains(string(body), "<patient>") {
		t.Fatal("bypass fragment body missing patients")
	}
	// Nothing cached: the next normal fragment request still misses.
	if _, _, state, _ := getFrag(t, fragURL(ts.URL, "d1", "//patient")); state != "miss" {
		t.Fatalf("post-bypass state %q, want miss", state)
	}
	if n := counter(metrics, "aig_serve_fragment_requests_total"); n != 2 {
		t.Fatalf("fragment requests counter %d, want 2", n)
	}
}

func TestTTFBHistogramObserved(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)

	if code, _, _, _ := getFrag(t, fragURL(ts.URL, "d1", "//patient")); code != http.StatusOK {
		t.Fatal("fragment request failed")
	}
	_, metricsText, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "# TYPE aig_serve_ttfb_seconds histogram") {
		t.Fatal("/metrics missing the TTFB histogram")
	}
	if !strings.Contains(metricsText, `aig_serve_ttfb_seconds_count`) {
		t.Fatal("/metrics missing TTFB observations")
	}
}

// TestFragmentSingularViewAlias covers the GET /view/{name} spelling.
func TestFragmentSingularViewAlias(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)
	q := url.Values{}
	q.Set("date", "d1")
	q.Set("path", "//patient/SSN")
	code, body, _, _ := getFrag(t, ts.URL+"/view/report?"+q.Encode())
	if code != http.StatusOK || !strings.Contains(body, "<SSN>") {
		t.Fatalf("/view alias: %d\n%s", code, body)
	}
}
