// Package serve is the long-running mediator daemon of the repo's
// serving story: it turns the one-shot evaluation pipeline (parse →
// validate → constraint-compile → decompose → evaluate) into a
// registry of *prepared views* whose request-independent work happens
// once at startup, then answers HTTP requests that only bind the root
// inherited attribute (the paper's on-demand materialization of §5 —
// e.g. one patient's report) and evaluate through the shared
// mediator.
//
// Three mechanisms make it hold up under concurrent traffic:
//
//   - a result cache: an LRU keyed by view + canonicalized parameters +
//     a per-source data-version stamp, so entries are structurally
//     invalidated the moment any referenced source mutates;
//   - request coalescing: concurrent identical requests (same key,
//     same data versions) share a single evaluation;
//   - admission control: a bounded-concurrency semaphore with a
//     bounded, timed wait queue — excess load is rejected with 429/503
//     instead of queuing without bound — plus a graceful drain for
//     clean shutdown.
//
// Everything is wired into the obs layer: per-request spans (when
// tracing is enabled), latency and queue-wait histograms, cache
// hit/miss/eviction counters, and gauges for in-flight evaluations and
// queue depth, all served from /metrics in Prometheus text format.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/obs/store"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// Config tunes a Server. The zero value gets sensible defaults from
// NewServer.
type Config struct {
	// MaxConcurrent bounds simultaneous evaluations (default 8).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for an evaluation slot beyond
	// MaxConcurrent (default 64). Requests past the bound get 429.
	MaxQueue int
	// QueueTimeout bounds the wait for a slot (default 2s). Requests
	// that wait longer get 503.
	QueueTimeout time.Duration
	// CacheEntries is the result cache capacity (default 256);
	// 0 disables caching (use -1 to mean "explicitly zero" is not
	// needed — 0 from the zero Config is replaced by the default, so
	// pass a negative value to disable).
	CacheEntries int
	// Unfold is the initial recursion-unfolding depth (default 4);
	// MaxUnfold the limit (default 64). Views adapt upward per request
	// and remember the depth that sufficed.
	Unfold, MaxUnfold int
	// Mediator, when non-nil, overrides the mediator options shared by
	// all views (default mediator.DefaultOptions).
	Mediator *mediator.Options
	// VerifyOutput re-checks every materialized document against the
	// view's DTD and constraints before serving it. Views whose
	// constraints are all statically certified (internal/propagate) skip
	// the re-check: the proof makes it redundant.
	VerifyOutput bool
	// VerifyAlways keeps runtime verification on even for certified
	// views — the escape hatch for distrusting the certifier. Only
	// meaningful with VerifyOutput.
	VerifyAlways bool
	// TraceRequests threads a per-request obs.Tracer through the
	// mediator; each view keeps its latest span tree for
	// GET /views/{name}/trace.
	TraceRequests bool
	// FlightRecorder enables full request tracing with tail-sampled
	// retention: every request runs under a propagated trace context
	// (Traceparent in/out, spans across cache, singleflight, admission,
	// mediator, and remote sources), and completed traces are kept in a
	// bounded ring when they erred, ran slow, or won the sampling draw —
	// served at GET /debug/traces and /debug/traces/{id}.
	FlightRecorder bool
	// TraceCapacity is the flight recorder's ring size (default 256).
	TraceCapacity int
	// TraceSlowThreshold is the latency at or above which a trace is
	// always kept (default 250ms; negative disables the slow rule).
	TraceSlowThreshold time.Duration
	// TraceSampleRate is the keep probability for fast, healthy traces
	// (default 0.01; negative means keep none of them).
	TraceSampleRate float64
	// EnableDebug exposes net/http/pprof and expvar under /debug/. The
	// endpoints reveal process internals; enable only on trusted
	// listeners.
	EnableDebug bool
	// Logger, when non-nil, receives one structured line per request and
	// background operation, correlated by trace and request ID (default
	// slog.Default()).
	Logger *slog.Logger
	// RefreshInterval enables the background refresher: every interval it
	// re-stamps or re-evaluates cached entries whose sources mutated, so
	// steady traffic keeps hitting a warm cache instead of paying a full
	// evaluation after every write. 0 (the default) disables refreshing —
	// entries then go structurally stale and the next request misses.
	RefreshInterval time.Duration
	// AllowMutate exposes POST /mutate, a demo/benchmark endpoint that
	// applies row-level writes to local sources. Off by default.
	AllowMutate bool
	// SimWork, when positive, spends that much simulated service time per
	// view request while holding an admission slot, before the cache is
	// even consulted. It exists for capacity benchmarking on machines with
	// fewer cores than the modeled fleet: with a fixed per-request floor,
	// throughput is bounded by MaxConcurrent/SimWork per replica rather
	// than by raw CPU, so horizontal scaling is measurable on one box.
	// Off (0) in production.
	SimWork time.Duration
	// CacheDir, when set, persists the result cache across restarts: the
	// cache is dumped there on a clean Drain, and LoadCache (called after
	// view registration) restores entries whose data-version stamps still
	// hold — or can be proven current by delta judgement — so a restarted
	// daemon serves warm hits instead of re-evaluating.
	CacheDir string
	// Metrics is the registry the server's instruments live in
	// (default obs.Default).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.Unfold <= 0 {
		c.Unfold = 4
	}
	if c.MaxUnfold < c.Unfold {
		c.MaxUnfold = 64
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 256
	}
	if c.TraceSlowThreshold == 0 {
		c.TraceSlowThreshold = 250 * time.Millisecond
	}
	if c.TraceSlowThreshold < 0 {
		c.TraceSlowThreshold = 0
	}
	if c.TraceSampleRate == 0 {
		c.TraceSampleRate = 0.01
	}
	if c.TraceSampleRate < 0 {
		c.TraceSampleRate = 0
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// serveMetrics bundles the server's instruments.
type serveMetrics struct {
	requests        *obs.Counter
	errors          *obs.Counter
	hits            *obs.Counter
	misses          *obs.Counter
	coalesced       *obs.Counter
	evaluations     *obs.Counter
	rejectedFull    *obs.Counter
	rejectedTimeout *obs.Counter
	evictions       *obs.Counter

	fragments     *obs.Counter
	staleSkips    *obs.Counter
	refreshCycles *obs.Counter
	refreshDelta  *obs.Counter
	refreshFull   *obs.Counter
	refreshErrors *obs.Counter
	mutations     *obs.Counter

	// Truncated delta windows during refresh judgement, by cause: a
	// rolled or reset log means the refresher fell behind the write rate,
	// a restart means a source came back without its durable state.
	refreshTruncRolled  *obs.Counter
	refreshTruncReset   *obs.Counter
	refreshTruncRestart *obs.Counter

	// Cache persistence (Config.CacheDir): entries dumped on drain and
	// their fates on the next load.
	cacheSaved       *obs.Counter
	cacheRestored    *obs.Counter
	cacheRevalidated *obs.Counter
	cacheDropped     *obs.Counter

	inflightEvals *obs.Gauge
	queueDepth    *obs.Gauge
	cacheEntries  *obs.Gauge
	refreshDirty  *obs.Gauge

	requestSec    *obs.Histogram
	ttfbSec       *obs.Histogram
	queueWaitSec  *obs.Histogram
	evalSec       *obs.Histogram
	refreshSec    *obs.Histogram
	refreshLagSec *obs.Histogram
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	return serveMetrics{
		requests:            r.NewCounter("aig_serve_requests_total", "view requests received"),
		errors:              r.NewCounter("aig_serve_errors_total", "view requests failed with an internal error"),
		hits:                r.NewCounter("aig_serve_cache_hits_total", "view requests answered from the result cache"),
		misses:              r.NewCounter("aig_serve_cache_misses_total", "view requests not answered from the result cache"),
		coalesced:           r.NewCounter("aig_serve_coalesced_requests_total", "view requests that shared another request's in-flight evaluation"),
		evaluations:         r.NewCounter("aig_serve_evaluations_total", "mediator evaluations executed"),
		rejectedFull:        r.NewCounter("aig_serve_rejected_queue_full_total", "view requests rejected because the admission queue was full (429)"),
		rejectedTimeout:     r.NewCounter("aig_serve_rejected_queue_timeout_total", "view requests rejected after waiting too long for an evaluation slot (503)"),
		evictions:           r.NewCounter("aig_serve_cache_evictions_total", "result-cache entries evicted by capacity"),
		fragments:           r.NewCounter("aig_serve_fragment_requests_total", "view requests answered as path-selected fragments"),
		staleSkips:          r.NewCounter("aig_serve_cache_stale_skips_total", "evaluation results not cached because the data-version stamp moved mid-evaluation"),
		refreshCycles:       r.NewCounter("aig_serve_refresh_cycles_total", "background refresh cycles run"),
		refreshDelta:        r.NewCounter("aig_serve_refresh_delta_total", "cache entries kept warm by delta judgement (restamped without re-evaluation)"),
		refreshFull:         r.NewCounter("aig_serve_refresh_full_total", "cache entries refreshed by full re-evaluation"),
		refreshErrors:       r.NewCounter("aig_serve_refresh_errors_total", "background refresh attempts that failed"),
		mutations:           r.NewCounter("aig_serve_mutations_total", "row mutations applied through POST /mutate"),
		refreshTruncRolled:  r.NewCounter("aig_serve_refresh_truncated_rolled_total", "refresh judgements lost to a rolled change log (refresher behind the write rate)"),
		refreshTruncReset:   r.NewCounter("aig_serve_refresh_truncated_reset_total", "refresh judgements lost to a reset change log (table sorted or replaced)"),
		refreshTruncRestart: r.NewCounter("aig_serve_refresh_truncated_restart_total", "refresh judgements lost to a source restart (watermark from a previous incarnation)"),
		cacheSaved:          r.NewCounter("aig_serve_cache_persist_saved_total", "cache entries written to the persistent dump on drain"),
		cacheRestored:       r.NewCounter("aig_serve_cache_persist_restored_total", "persisted cache entries installed with their stamp still exact"),
		cacheRevalidated:    r.NewCounter("aig_serve_cache_persist_revalidated_total", "persisted cache entries installed after delta judgement proved them current"),
		cacheDropped:        r.NewCounter("aig_serve_cache_persist_dropped_total", "persisted cache entries dropped at load (stale, unprovable, or unknown view)"),
		inflightEvals:       r.NewGauge("aig_serve_inflight_evaluations", "evaluations currently holding an admission slot"),
		queueDepth:          r.NewGauge("aig_serve_queue_depth", "requests waiting for an evaluation slot"),
		cacheEntries:        r.NewGauge("aig_serve_cache_entries", "entries in the result cache"),
		refreshDirty:        r.NewGauge("aig_serve_refresh_dirty_queue", "cached entries observed stale at the start of the latest refresh cycle"),
		requestSec:          r.NewHistogram("aig_serve_request_seconds", "view request latency", obs.DurationBuckets),
		ttfbSec:             r.NewHistogram("aig_serve_ttfb_seconds", "time from request arrival to the first response body byte", obs.DurationBuckets),
		queueWaitSec:        r.NewHistogram("aig_serve_queue_wait_seconds", "time spent waiting for an evaluation slot", obs.DurationBuckets),
		evalSec:             r.NewHistogram("aig_serve_evaluate_seconds", "mediator evaluation wall time", obs.DurationBuckets),
		refreshSec:          r.NewHistogram("aig_serve_refresh_seconds", "per-entry background refresh wall time", obs.DurationBuckets),
		refreshLagSec:       r.NewHistogram("aig_serve_refresh_lag_seconds", "time from first observing an entry stale to serving it warm again", obs.DurationBuckets),
	}
}

// Server is the daemon: a prepared-view registry over one source
// registry, plus the cache / coalescing / admission machinery and the
// HTTP surface.
type Server struct {
	cfg  Config
	reg  *source.Registry
	opts mediator.Options

	mu    sync.RWMutex
	views map[string]*View

	cache  *lru
	flight flightGroup
	adm    *admission
	m      serveMetrics

	// traces is the flight recorder (nil when disabled).
	traces *store.Store
	logger *slog.Logger

	refresher *refresher

	draining atomic.Bool
	inflight atomic.Int64

	mux *http.ServeMux
}

// NewServer builds a server over the given sources.
func NewServer(reg *source.Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	opts := mediator.DefaultOptions()
	if cfg.Mediator != nil {
		opts = *cfg.Mediator
	}
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		opts:   opts,
		views:  make(map[string]*View),
		cache:  newLRU(cfg.CacheEntries),
		adm:    newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		m:      newServeMetrics(cfg.Metrics),
		logger: cfg.Logger,
	}
	s.cache.onEvict = s.m.evictions.Inc
	s.adm.onQueue = func(depth int64) { s.m.queueDepth.Set(float64(depth)) }
	if cfg.FlightRecorder {
		s.traces = store.New(cfg.TraceCapacity, store.Policy{
			SlowThreshold: cfg.TraceSlowThreshold,
			SampleRate:    cfg.TraceSampleRate,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /views", s.handleList)
	mux.HandleFunc("GET /views/{name}", s.handleView)
	mux.HandleFunc("POST /views/{name}", s.handleView)
	// Singular alias, the fragment-serving spelling: GET /view/{name}?path=...
	mux.HandleFunc("GET /view/{name}", s.handleView)
	mux.HandleFunc("GET /views/{name}/explain", s.handleExplain)
	mux.HandleFunc("GET /views/{name}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	if cfg.EnableDebug {
		s.registerDebug(mux)
	}
	if cfg.AllowMutate {
		mux.HandleFunc("POST /mutate", s.handleMutate)
	}
	s.mux = mux

	if cfg.RefreshInterval > 0 && cfg.CacheEntries > 0 {
		s.refresher = newRefresher(s, cfg.RefreshInterval)
		s.refresher.start()
	}
	return s
}

// KickRefresh nudges the background refresher to run a cycle now
// instead of waiting for its next tick. Mirrored sources call it from
// their delta-apply hook, turning the refresher from poll-based to
// push-based invalidation: cached entries go warm again one cycle
// after the write lands, not one RefreshInterval after. Coalescing is
// inherent (a buffered signal of one); no-op without a refresher.
func (s *Server) KickRefresh() {
	if s.refresher == nil {
		return
	}
	select {
	case s.refresher.kick <- struct{}{}:
	default:
	}
}

// Close stops the background refresher (if any). Idempotent; safe on a
// server that never started one.
func (s *Server) Close() {
	if s.refresher != nil {
		s.refresher.stopOnce()
	}
}

// AddView prepares and registers a view under the given name,
// replacing any previous view of that name.
func (s *Server) AddView(name string, a *aig.AIG) (*View, error) {
	v, err := prepareView(name, a, s.reg, s.opts, s.cfg.Unfold, s.cfg.MaxUnfold)
	if err != nil {
		return nil, err
	}
	v.reqSec = s.cfg.Metrics.NewHistogram(
		"aig_serve_view_request_seconds_"+sanitizeMetricName(name),
		"view request latency for view "+name, obs.DurationBuckets)
	s.mu.Lock()
	s.views[name] = v
	s.mu.Unlock()
	return v, nil
}

// AddSpec parses an aigspec source text and registers it as a view.
func (s *Server) AddSpec(name, specText string) (*View, error) {
	a, err := aigspec.Parse(specText)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	return s.AddView(name, a)
}

// View returns the named prepared view, or nil.
func (s *Server) View(name string) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[name]
}

// ViewNames returns the registered view names in sorted order.
func (s *Server) ViewNames() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.views))
	for n := range s.views {
		out = append(out, n)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain marks the server as draining (new view requests get 503,
// /healthz reports unhealthy so load balancers stop sending traffic)
// and waits for in-flight requests to finish or ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.Close()
	// An atomic counter rather than a WaitGroup: requests keep arriving
	// (and bouncing off the draining check) while we wait, and a
	// WaitGroup forbids Add concurrent with Wait once the counter may
	// reach zero.
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s.inflight.Load() == 0 {
			if s.cfg.CacheDir != "" {
				if err := s.SaveCache(s.cfg.CacheDir); err != nil {
					s.logger.Error("cache save failed", "dir", s.cfg.CacheDir, "err", err)
				}
			}
			return nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// stamp renders the data-version stamp of the sources a view reads:
// the part of the cache key that moves when a source mutates. The
// second return is the seqlock check — true when every component is
// even, i.e. no source had a mutation in flight at the moment of the
// read. Only settled stamps participate in consistency proofs; an
// unsettled one still keys a request (it just never matches a settled
// recheck, so nothing is cached under it).
func (s *Server) stamp(v *View) (string, bool, error) {
	versions, err := s.reg.DataVersions(v.sources)
	if err != nil {
		return "", false, err
	}
	settled := true
	parts := make([]string, 0, len(versions))
	for _, name := range v.sources {
		if versions[name]%2 != 0 {
			settled = false
		}
		parts = append(parts, fmt.Sprintf("%s=%d", name, versions[name]))
	}
	return strings.Join(parts, ";"), settled, nil
}

// tableVersions snapshots the per-table versions of every source a view
// reads — the ChangesSince baseline stored alongside a cached entry.
func (s *Server) tableVersions(v *View) (map[string]map[string]uint64, error) {
	out := make(map[string]map[string]uint64, len(v.sources))
	for _, name := range v.sources {
		src, err := s.reg.Get(name)
		if err != nil {
			return nil, err
		}
		tv, err := src.TableVersions()
		if err != nil {
			return nil, fmt.Errorf("source %s: %w", name, err)
		}
		out[name] = tv
	}
	return out, nil
}

// requestParams extracts view parameters from the query string, a POST
// form body, or a JSON object body, and validates them against the
// view's root attribute. "path" is reserved for fragment selection: it
// is popped out before validation and returned separately, so no view
// may declare a root parameter of that name through HTTP.
func requestParams(r *http.Request, v *View) (map[string]string, string, error) {
	params := make(map[string]string)
	if r.Method == http.MethodPost && strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var body map[string]string
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return nil, "", fmt.Errorf("decoding JSON parameters: %w", err)
		}
		for k, val := range body {
			params[k] = val
		}
		// Query-string parameters still apply (and win on conflict).
		for k, vals := range r.URL.Query() {
			if len(vals) > 0 {
				params[k] = vals[0]
			}
		}
	} else {
		if err := r.ParseForm(); err != nil {
			return nil, "", fmt.Errorf("parsing parameters: %w", err)
		}
		for k, vals := range r.Form {
			if len(vals) > 0 {
				params[k] = vals[0]
			}
		}
	}
	path := params["path"]
	delete(params, "path")
	// Validate names and values now, so bad requests are 400s that never
	// reach the cache or the admission queue.
	if _, err := v.bindParams(params); err != nil {
		return nil, "", err
	}
	return params, path, nil
}

// handleView answers GET/POST /views/{name}.
func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if s.draining.Load() {
		s.m.requestSec.Observe(time.Since(start).Seconds())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	v := s.View(r.PathValue("name"))
	if v == nil {
		s.m.requestSec.Observe(time.Since(start).Seconds())
		http.Error(w, "no such view", http.StatusNotFound)
		return
	}

	// The request has a real view from here on: begin its trace. All
	// error paths below must write through rw so the status lands in the
	// trace summary and the log line.
	rt, ctx, rw := s.beginRequestTrace(w, r, v, start)
	defer rt.finish()

	params, path, err := requestParams(r, v)
	if err != nil {
		rt.fail(err)
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rt.params = canonicalParams(params)
	if err := s.simWork(ctx); err != nil {
		rt.fail(err)
		s.writeError(rw, err)
		return
	}
	if path != "" {
		s.serveFragment(ctx, rt, rw, r, v, params, path)
		return
	}
	stamp, _, err := s.stamp(v)
	if err != nil {
		s.m.errors.Inc()
		rt.fail(err)
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	prefix := v.name + "\x00" + rt.params
	key := prefix + "\x00" + stamp

	if noStoreRequest(r) {
		// Benchmark/baseline escape hatch: evaluate without consulting or
		// populating the cache (and without coalescing, so every request
		// pays the full evaluation it is measuring).
		s.m.misses.Inc()
		rt.setCache("bypass")
		entry, berr := s.evaluateAdmitted(ctx, v, params)
		if berr != nil {
			rt.fail(berr)
			s.writeError(rw, berr)
			return
		}
		entry.stamp = stamp
		s.writeEntry(rw, entry, "bypass")
		return
	}

	tr, parent := obs.SpanFromContext(ctx)
	lookupSpan := tr.StartSpan("cache.lookup", parent)
	e, ok := s.cache.Get(key)
	lookupSpan.SetAttr("hit", ok).End()
	if ok {
		s.m.hits.Inc()
		rt.setCache("hit")
		s.writeEntry(rw, e, "hit")
		return
	}
	s.m.misses.Inc()

	e, err, leader := s.missFlight(ctx, v, params, prefix, stamp, true)
	if !leader {
		s.m.coalesced.Inc()
	}
	if err != nil {
		rt.fail(err)
		s.writeError(rw, err)
		return
	}
	state := "miss"
	if !leader {
		state = "coalesced"
	}
	rt.setCache(state)
	s.writeEntry(rw, e, state)
}

// simWork spends the configured simulated service time under the
// admission semaphore, so capacity benchmarks see the same 429/503
// admission behavior as real evaluations. No-op unless Config.SimWork
// is set.
func (s *Server) simWork(ctx context.Context) error {
	d := s.cfg.SimWork
	if d <= 0 {
		return nil
	}
	waited, err := s.adm.acquire(ctx)
	s.m.queueWaitSec.Observe(waited.Seconds())
	if err != nil {
		return err
	}
	defer func() {
		s.adm.release()
		s.m.inflightEvals.Set(float64(s.adm.inUse()))
	}()
	s.m.inflightEvals.Set(float64(s.adm.inUse()))
	time.Sleep(d)
	return nil
}

// noStoreRequest reports whether the client asked to bypass the result
// cache entirely (Cache-Control: no-store).
func noStoreRequest(r *http.Request) bool {
	return strings.Contains(strings.ToLower(r.Header.Get("Cache-Control")), "no-store")
}

// missFlight is the shared cache-fill path of request misses and
// background full refreshes: coalesce on the would-be cache key,
// evaluate, and cache the result only if the data-version stamp is
// still the one the key was computed from. That recheck is what makes
// every cached entry exact for its stamp — if a source mutated while
// the evaluation ran, the result may reflect a mix of versions and is
// served to the waiting clients but never cached (a later request or
// refresh cycle rebuilds it under the new stamp).
func (s *Server) missFlight(ctx context.Context, v *View, params map[string]string, prefix, stamp string, admit bool) (*cacheEntry, error, bool) {
	key := prefix + "\x00" + stamp
	return s.flight.Do(ctx, key, func() (*cacheEntry, error) {
		var entry *cacheEntry
		var eerr error
		// The per-table version snapshot must be taken inside the
		// stamp-recheck window too: when the recheck passes, nothing
		// mutated between reading the stamp, these versions, and the
		// data itself, so all three are mutually consistent.
		tableVers, tverr := s.tableVersions(v)
		if admit {
			entry, eerr = s.evaluateAdmitted(ctx, v, params)
		} else {
			entry, eerr = s.evaluate(ctx, v, params)
		}
		if eerr != nil {
			return nil, eerr
		}
		entry.view = v.name
		entry.params = params
		entry.keyPrefix = prefix
		entry.stamp = stamp
		entry.tableVers = tableVers
		if tverr == nil {
			// Cache only when the recheck stamp is settled (even — no
			// write in flight) and identical to the key's stamp: by the
			// seqlock argument nothing mutated between reading the stamp,
			// the table versions, and the data, so the entry is exact for
			// its stamp.
			if s2, settled, serr := s.stamp(v); serr == nil && settled && s2 == stamp {
				s.cache.Add(key, entry)
				s.m.cacheEntries.Set(float64(s.cache.Len()))
			} else {
				s.m.staleSkips.Inc()
			}
		}
		return entry, nil
	})
}

// evaluateAdmitted runs evaluate under the admission semaphore, the way
// client-triggered evaluations go.
func (s *Server) evaluateAdmitted(ctx context.Context, v *View, params map[string]string) (*cacheEntry, error) {
	tr, parent := obs.SpanFromContext(ctx)
	sp := tr.StartSpan("admission", parent)
	waited, aerr := s.adm.acquire(ctx)
	s.m.queueWaitSec.Observe(waited.Seconds())
	sp.SetAttr("waited_sec", waited.Seconds())
	if aerr != nil {
		sp.SetAttr("error", aerr.Error()).End()
		return nil, aerr
	}
	sp.End()
	defer func() {
		s.adm.release()
		s.m.inflightEvals.Set(float64(s.adm.inUse()))
	}()
	s.m.inflightEvals.Set(float64(s.adm.inUse()))
	return s.evaluate(ctx, v, params)
}

// evaluate runs one mediator evaluation for a prepared view and
// renders the document. The tracer ctx carries (the flight recorder's,
// or a refresh/mutate trace) flows through the whole evaluation stack;
// with none and legacy TraceRequests set, a standalone tracer is made so
// GET /views/{name}/trace still works.
func (s *Server) evaluate(ctx context.Context, v *View, params map[string]string) (*cacheEntry, error) {
	rootInh, err := v.bindParams(params)
	if err != nil {
		return nil, err
	}

	tr, parent := obs.SpanFromContext(ctx)
	if tr == nil && s.cfg.TraceRequests {
		tr = obs.NewTracer()
		ctx = obs.ContextWithSpan(ctx, tr, nil)
	}

	est := int(v.estDepth.Load())
	t0 := time.Now()
	res, depth, err := v.med.EvaluateRecursiveContext(ctx, v.sa, rootInh, est, v.maxDepth)
	s.m.evalSec.Observe(time.Since(t0).Seconds())
	s.m.evaluations.Inc()
	if err != nil {
		return nil, err
	}
	v.estDepth.Store(int32(depth))

	// Certified views skip the re-check: every constraint is statically
	// proven to hold on every instance satisfying the source constraints,
	// so the verify span would only re-establish what the certifier
	// already knows. VerifyAlways forces the check back on.
	if s.cfg.VerifyOutput && (!v.certified || s.cfg.VerifyAlways) {
		sp := tr.StartSpan("verify", parent)
		sp.SetAttr("certified", v.certified)
		cerr := dtd.Conforms(v.a.DTD, res.Doc)
		var viol []error
		if cerr == nil {
			for _, violation := range xconstraint.CheckAll(v.a.Constraints, res.Doc) {
				viol = append(viol, violation)
			}
		}
		sp.End()
		if cerr != nil {
			return nil, fmt.Errorf("view %s: output violates the DTD: %w", v.name, cerr)
		}
		if len(viol) != 0 {
			return nil, fmt.Errorf("view %s: output violates constraints: %v", v.name, viol[0])
		}
	}

	sp := tr.StartSpan("render", parent)
	var buf strings.Builder
	werr := res.Doc.WriteIndented(&buf)
	sp.SetAttr("bytes", buf.Len()).End()
	if werr != nil {
		return nil, werr
	}
	if s.cfg.TraceRequests && tr != nil {
		var tb strings.Builder
		if terr := tr.WriteJSON(&tb); terr == nil {
			v.setLastTrace([]byte(tb.String()))
		}
	}
	return &cacheEntry{
		body:    []byte(buf.String()),
		depth:   depth,
		evalSec: res.Report.WallSec,
		created: time.Now(),
	}, nil
}

// writeEntry sends a materialized result with the serving headers.
func (s *Server) writeEntry(w http.ResponseWriter, e *cacheEntry, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/xml; charset=utf-8")
	h.Set("X-Aig-Cache", cacheState)
	h.Set("X-Aig-Unfold-Depth", fmt.Sprint(e.depth))
	h.Set("X-Aig-Eval-Seconds", fmt.Sprintf("%.6f", e.evalSec))
	if e.stamp != "" {
		h.Set("X-Aig-Stamp", e.stamp)
	}
	w.Write(e.body)
}

// writeError maps evaluation and admission errors to HTTP statuses:
// queue full → 429, queue timeout (or client gone) → 503, anything
// else → 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.m.rejectedFull.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, errQueueTimeout), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.m.rejectedTimeout.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		s.m.errors.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// viewInfo is the JSON shape of one view in GET /views.
type viewInfo struct {
	Name      string      `json:"name"`
	Params    []ParamDecl `json:"params"`
	Sources   []string    `json:"sources"`
	Depth     int         `json:"unfold_depth"`
	Certified bool        `json:"certified"`
}

// handleList answers GET /views.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []viewInfo
	for _, name := range s.ViewNames() {
		v := s.View(name)
		if v == nil {
			continue
		}
		out = append(out, viewInfo{
			Name:      v.name,
			Params:    v.Params(),
			Sources:   v.Sources(),
			Depth:     int(v.estDepth.Load()),
			Certified: v.certified,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// handleExplain answers GET /views/{name}/explain with the plan
// rendered at prepare time.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	v := s.View(r.PathValue("name"))
	if v == nil {
		http.Error(w, "no such view", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, v.Plan())
}

// handleTrace answers GET /views/{name}/trace with the span tree of
// the most recent traced evaluation.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	v := s.View(r.PathValue("name"))
	if v == nil {
		http.Error(w, "no such view", http.StatusNotFound)
		return
	}
	trace := v.LastTrace()
	if trace == nil {
		http.Error(w, "no traced evaluation yet (is TraceRequests enabled?)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(trace)
}

// handleMetrics answers GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WritePrometheus(w)
	if s.cfg.Metrics != obs.Default {
		obs.Default.WritePrometheus(w)
	}
}

// handleHealth answers GET /healthz: 200 only when the replica can
// actually serve — views are prepared, every source that reports health
// is healthy, and the server is not draining. Anything else is 503 so
// load balancers (the cluster router) route around this replica. A
// draining replica additionally sends Retry-After: the condition is
// terminal for this process but the fleet endpoint recovers as soon as
// a replacement registers.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.mu.RLock()
	nviews := len(s.views)
	s.mu.RUnlock()
	if nviews == 0 {
		http.Error(w, "no views prepared", http.StatusServiceUnavailable)
		return
	}
	for _, name := range s.reg.Names() {
		src, err := s.reg.Get(name)
		if err != nil {
			http.Error(w, "source "+name+": "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		h, ok := src.(source.Health)
		if !ok {
			continue
		}
		if herr := h.Healthy(); herr != nil {
			http.Error(w, "source "+name+": "+herr.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}
