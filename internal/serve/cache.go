package serve

import (
	"container/list"
	"sync"
	"time"
)

// cacheEntry is one materialized view result: the rendered XML bytes
// plus the evaluation facts the server reports in response headers and
// the provenance the background refresher needs to keep the entry warm
// (which view and parameters produced it, under which data-version
// stamp, at which per-table versions).
type cacheEntry struct {
	body    []byte
	depth   int
	evalSec float64
	created time.Time

	view   string
	params map[string]string
	// keyPrefix is the stamp-independent part of the cache key
	// (view + canonical params): the entry's logical identity across
	// refreshes.
	keyPrefix string
	// stamp is the per-source data-version stamp the entry was
	// materialized under: the body equals a from-scratch evaluation at
	// exactly these versions.
	stamp string
	// tableVers records the per-table versions at the stamp, the
	// baseline ChangesSince windows are judged from.
	tableVers map[string]map[string]uint64

	// path marks a fragment entry: the canonical path expression whose
	// matches the body holds ("" for full documents). The refresher
	// judges fragment entries against the path-filtered dependency map.
	path string
	// matches is the number of elements the path selected.
	matches int
}

// restamped returns a copy of the entry carrying a newer stamp: the
// judge proved the body unchanged, only the provenance moves.
func (e *cacheEntry) restamped(stamp string, tableVers map[string]map[string]uint64) *cacheEntry {
	out := *e
	out.stamp = stamp
	out.tableVers = tableVers
	return &out
}

// lru is a fixed-capacity least-recently-used cache from full cache
// keys (view + canonical params + data-version stamp) to rendered
// results. Invalidation is structural: a source mutation changes the
// stamp and therefore the key, so stale entries are never *hit* — they
// linger unreferenced until capacity evicts them, which is the usual
// trade of version-keyed caches (no scan on write, no coordination with
// the mutating source).
type lru struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruItem
	items    map[string]*list.Element

	onEvict func() // metrics hook, called outside hot-path decisions but under mu
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newLRU builds a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses, Add drops).
func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the entry under key, refreshing its recency.
func (c *lru) Get(key string) (*cacheEntry, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Add inserts (or refreshes) an entry, evicting the least recently used
// entries beyond capacity.
func (c *lru) Add(key string, e *cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruItem).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Snapshot returns the current (key, entry) pairs without touching
// recency — the refresher's working set. Entries are shared, not
// copied; they are immutable once cached.
func (c *lru) Snapshot() []lruItem {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruItem, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		it := el.Value.(*lruItem)
		out = append(out, lruItem{key: it.key, entry: it.entry})
	}
	return out
}

// Remove drops the entry under key, if present.
func (c *lru) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Replace atomically removes oldKey and installs e under newKey — a
// refresh moving an entry to a newer data-version stamp.
func (c *lru) Replace(oldKey, newKey string, e *cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[oldKey]; ok {
		c.order.Remove(el)
		delete(c.items, oldKey)
	}
	c.mu.Unlock()
	c.Add(newKey, e)
}
