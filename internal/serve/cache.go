package serve

import (
	"container/list"
	"sync"
	"time"
)

// cacheEntry is one materialized view result: the rendered XML bytes
// plus the evaluation facts the server reports in response headers.
type cacheEntry struct {
	body    []byte
	depth   int
	evalSec float64
	created time.Time
}

// lru is a fixed-capacity least-recently-used cache from full cache
// keys (view + canonical params + data-version stamp) to rendered
// results. Invalidation is structural: a source mutation changes the
// stamp and therefore the key, so stale entries are never *hit* — they
// linger unreferenced until capacity evicts them, which is the usual
// trade of version-keyed caches (no scan on write, no coordination with
// the mutating source).
type lru struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruItem
	items    map[string]*list.Element

	onEvict func() // metrics hook, called outside hot-path decisions but under mu
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newLRU builds a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses, Add drops).
func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the entry under key, refreshing its recency.
func (c *lru) Get(key string) (*cacheEntry, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Add inserts (or refreshes) an entry, evicting the least recently used
// entries beyond capacity.
func (c *lru) Add(key string, e *cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruItem).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
