package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
)

// tableOf resolves a catalog table or fails the test.
func tableOf(t *testing.T, cat *relstore.Catalog, db, name string) *relstore.Table {
	t.Helper()
	tab, err := cat.Table(db, name)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRefresherKeepsCacheWarmAfterRelevantMutation(t *testing.T) {
	s, ts, cat, metrics := testServer(t, Config{RefreshInterval: 2 * time.Millisecond}, nil)
	t.Cleanup(s.Close)

	code, body1, state := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first request: %d/%s", code, state)
	}
	if strings.Contains(body1, "zed") {
		t.Fatal("new patient present before the mutation")
	}

	// A new patient with a d1 visit genuinely changes the document; the
	// patient table has no judgeable predicates, so the refresher must
	// take the full re-evaluation path and still end with a warm hit.
	tableOf(t, cat, "DB1", "patient").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("zed"), relstore.String("gold")})
	tableOf(t, cat, "DB1", "visitInfo").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("t1"), relstore.String("d1")})

	waitFor(t, "a warm hit reflecting the mutation", func() bool {
		code, body, state := get(t, ts.URL+"/views/report?date=d1")
		return code == http.StatusOK && state == "hit" && strings.Contains(body, "zed")
	})
	if full := counter(metrics, "aig_serve_refresh_full_total"); full == 0 {
		t.Error("refresher never took the full re-evaluation path")
	}
}

func TestRefresherRestampsProvablyIrrelevantMutation(t *testing.T) {
	s, ts, cat, metrics := testServer(t, Config{RefreshInterval: 2 * time.Millisecond}, nil)
	t.Cleanup(s.Close)

	_, body1, state := get(t, ts.URL+"/views/report?date=d1")
	if state != "miss" {
		t.Fatalf("first request state %q", state)
	}
	evalsBefore := counter(metrics, "aig_serve_evaluations_total")

	// A visit on another date fails the root-bound date predicate on
	// every visitInfo scan: the judge proves the d1 document unchanged
	// and the entry is restamped, not re-evaluated.
	tableOf(t, cat, "DB1", "visitInfo").MustInsert(relstore.Tuple{
		relstore.String("s2"), relstore.String("t4"), relstore.String("d9")})

	waitFor(t, "a delta restamp", func() bool {
		return counter(metrics, "aig_serve_refresh_delta_total") >= 1
	})
	code, body2, state := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("post-restamp request: %d/%s", code, state)
	}
	if body2 != body1 {
		t.Fatal("restamped entry serves a different document")
	}
	if evals := counter(metrics, "aig_serve_evaluations_total"); evals != evalsBefore {
		t.Errorf("restamp re-evaluated: %d -> %d evaluations", evalsBefore, evals)
	}
	if full := counter(metrics, "aig_serve_refresh_full_total"); full != 0 {
		t.Errorf("irrelevant mutation took the full path %d times", full)
	}
}

func TestRefresherTruncatedLogFallsBackToFullRefresh(t *testing.T) {
	s, ts, cat, metrics := testServer(t, Config{RefreshInterval: 2 * time.Millisecond}, nil)
	t.Cleanup(s.Close)

	// With delta logging disabled every ChangesSince window comes back
	// truncated: even a provably irrelevant mutation must take the full
	// re-evaluation path.
	visit := tableOf(t, cat, "DB1", "visitInfo")
	visit.SetChangeLogLimit(-1)

	_, body1, _ := get(t, ts.URL+"/views/report?date=d1")
	visit.MustInsert(relstore.Tuple{
		relstore.String("s2"), relstore.String("t4"), relstore.String("d9")})

	waitFor(t, "a full refresh", func() bool {
		return counter(metrics, "aig_serve_refresh_full_total") >= 1
	})
	code, body2, state := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("post-refresh request: %d/%s", code, state)
	}
	if body2 != body1 {
		t.Fatal("irrelevant mutation changed the document")
	}
	if delta := counter(metrics, "aig_serve_refresh_delta_total"); delta != 0 {
		t.Errorf("truncated window restamped %d times; must not trust unknown deltas", delta)
	}
}

func TestMutateEndpoint(t *testing.T) {
	_, ts, cat, metrics := testServer(t, Config{AllowMutate: true}, nil)
	visit := tableOf(t, cat, "DB1", "visitInfo")
	before := visit.Len()

	post := func(query string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/mutate?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := post("source=DB1&table=visitInfo&op=insert&values=s9,t9,d9"); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, body)
	}
	if visit.Len() != before+1 {
		t.Fatalf("insert did not land: %d rows", visit.Len())
	}
	if code, body := post("source=DB1&table=visitInfo&op=delete&values=s9,t9,d9"); code != http.StatusOK || !strings.Contains(body, `"affected":1`) {
		t.Fatalf("delete by values: %d %s", code, body)
	}
	if visit.Len() != before {
		t.Fatalf("delete did not land: %d rows", visit.Len())
	}
	if code, _ := post("source=DB1&table=visitInfo&op=delete"); code != http.StatusOK {
		t.Fatal("delete last row failed")
	}
	if visit.Len() != before-1 {
		t.Fatalf("delete-last did not land: %d rows", visit.Len())
	}

	for _, bad := range []struct {
		query string
		code  int
	}{
		{"source=DB1&table=visitInfo&op=frobnicate", http.StatusBadRequest},
		{"source=DB1&table=visitInfo&op=insert", http.StatusBadRequest},
		{"source=DB1&table=visitInfo&op=insert&values=onlyone", http.StatusBadRequest},
		{"source=DB9&table=visitInfo&op=insert&values=a,b,c", http.StatusNotFound},
		{"source=DB1&table=nope&op=insert&values=a,b,c", http.StatusNotFound},
		{"source=DB1&op=insert", http.StatusBadRequest},
	} {
		if code, body := post(bad.query); code != bad.code {
			t.Errorf("POST /mutate?%s = %d (%s), want %d", bad.query, code, body, bad.code)
		}
	}
	if n := counter(metrics, "aig_serve_mutations_total"); n != 3 {
		t.Errorf("mutations counter %d, want 3", n)
	}
}

func TestMutateDisabledByDefault(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)
	resp, err := http.Post(ts.URL+"/mutate?source=DB1&table=visitInfo&op=delete", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/mutate without AllowMutate: %d, want 404", resp.StatusCode)
	}
}

func TestNoStoreBypassesCache(t *testing.T) {
	_, ts, _, metrics := testServer(t, Config{}, nil)

	bypass := func() string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/views/report?date=d1", nil)
		req.Header.Set("Cache-Control", "no-store")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bypass request: %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Aig-Cache")
	}
	if st := bypass(); st != "bypass" {
		t.Fatalf("cache state %q, want bypass", st)
	}
	if st := bypass(); st != "bypass" {
		t.Fatalf("second bypass state %q", st)
	}
	// Nothing was cached: a normal request still misses and evaluates.
	_, _, state := get(t, ts.URL+"/views/report?date=d1")
	if state != "miss" {
		t.Fatalf("post-bypass request state %q, want miss", state)
	}
	if evals := counter(metrics, "aig_serve_evaluations_total"); evals != 3 {
		t.Errorf("evaluations %d, want 3 (two bypasses + one miss)", evals)
	}
}

// TestNoStaleHitUnderConcurrentMutation is the serving-correctness
// stress test: while a writer keeps mutating the sources (mixing
// relevant rows, provably irrelevant rows, and deletions) and the
// background refresher keeps the cache warm, every cache *hit* must
// carry a body byte-identical to a from-scratch evaluation at the
// stamp in its X-Aig-Stamp header. The writer journals the ground
// truth after each mutation; hammer goroutines collect hits; the final
// check replays every hit against the journal. Run under -race this
// also exercises the COW tables and the seqlock stamp protocol.
func TestNoStaleHitUnderConcurrentMutation(t *testing.T) {
	s, ts, cat, _ := testServer(t, Config{RefreshInterval: time.Millisecond}, nil)
	t.Cleanup(s.Close)
	v := s.View("report")
	params := map[string]string{"date": "d1"}

	journal := make(map[string]string)
	var jmu sync.Mutex
	record := func() {
		t.Helper()
		stamp, settled, err := s.stamp(v)
		if err != nil || !settled {
			t.Fatalf("stamp after mutation: settled=%v err=%v", settled, err)
		}
		e, err := s.evaluate(context.Background(), v, params)
		if err != nil {
			t.Fatalf("ground-truth evaluation: %v", err)
		}
		if again, _, _ := s.stamp(v); again != stamp {
			t.Fatal("stamp moved during ground-truth evaluation; the test must be the only writer")
		}
		jmu.Lock()
		journal[stamp] = string(e.body)
		jmu.Unlock()
	}
	record() // the initial state is also served

	type hitRec struct{ stamp, body string }
	var hmu sync.Mutex
	var hits []hitRec
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/views/report?date=d1")
				if err != nil {
					t.Error(err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("hammer request: status %d, err %v", resp.StatusCode, rerr)
					return
				}
				if resp.Header.Get("X-Aig-Cache") == "hit" {
					hmu.Lock()
					hits = append(hits, hitRec{resp.Header.Get("X-Aig-Stamp"), string(body)})
					hmu.Unlock()
				}
			}
		}()
	}

	visit := tableOf(t, cat, "DB1", "visitInfo")
	relevant := relstore.Tuple{relstore.String("s2"), relstore.String("t1"), relstore.String("d1")}
	for i := 0; i < 24; i++ {
		switch i % 3 {
		case 0: // changes the d1 document (bob gains an xray)
			visit.MustInsert(relevant.Clone())
		case 1: // changes it back
			key := relevant.Key()
			if visit.DeleteWhere(func(r relstore.Tuple) bool { return r.Key() == key }) == 0 {
				t.Fatal("relevant row vanished")
			}
		case 2: // provably irrelevant: exercises the restamp path
			visit.MustInsert(relstore.Tuple{
				relstore.String("s3"), relstore.String("t5"), relstore.String("d9")})
		}
		record()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	hmu.Lock()
	defer hmu.Unlock()
	jmu.Lock()
	defer jmu.Unlock()
	if len(hits) == 0 {
		t.Fatal("the hammers never saw a cache hit; the refresher is not keeping the cache warm")
	}
	for _, h := range hits {
		want, ok := journal[h.stamp]
		if !ok {
			t.Fatalf("hit served at stamp %q, which the writer never journaled", h.stamp)
		}
		if h.body != want {
			t.Fatalf("stale render: hit at stamp %s does not match ground truth\ngot:\n%s\nwant:\n%s", h.stamp, h.body, want)
		}
	}
	t.Logf("verified %d hits across %d journaled stamps", len(hits), len(journal))
}
