package serve

import (
	"context"
	"sync"

	"github.com/aigrepro/aig/internal/obs"
)

// flightGroup coalesces concurrent duplicate work: the first caller of
// Do under a key becomes the leader and runs fn; callers arriving while
// the leader is in flight wait and share the leader's result. Keys
// include the data-version stamp, so a request arriving after a source
// mutation uses a fresh key and is *not* folded into an evaluation over
// the older data.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done  chan struct{}
	entry *cacheEntry
	err   error

	// leaderTrace is the leader's trace ID (empty when the leader ran
	// untraced); waiters record it so a coalesced request's trace points
	// at the trace that actually holds the evaluation spans.
	leaderTrace string
}

// Do executes fn once per key per flight, returning fn's result to
// every concurrent caller. leader reports whether this caller ran fn.
// A traced waiter gets a "singleflight.wait" span carrying the leader's
// trace ID, so a coalesced request's otherwise-empty trace links to the
// trace where the evaluation actually happened.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*cacheEntry, error)) (entry *cacheEntry, err error, leader bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, inFlight := g.calls[key]; inFlight {
		g.mu.Unlock()
		tr, parent := obs.SpanFromContext(ctx)
		sp := tr.StartSpan("singleflight.wait", parent)
		<-c.done
		if c.leaderTrace != "" {
			sp.SetAttr("leader_trace", c.leaderTrace)
		}
		sp.End()
		return c.entry, c.err, false
	}
	c := &flightCall{done: make(chan struct{})}
	if tr, _ := obs.SpanFromContext(ctx); tr != nil {
		c.leaderTrace = tr.TraceID()
	}
	g.calls[key] = c
	g.mu.Unlock()

	c.entry, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.entry, c.err, true
}
