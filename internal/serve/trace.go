package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/obs/store"
)

// This file is the serving side of the flight recorder: the per-request
// trace lifecycle (begin → span tree grows through the evaluation stack
// → finish decides retention), and the /debug endpoints that expose what
// the recorder kept.
//
// Trace identity is W3C-compatible: a request carrying a valid
// Traceparent header joins the caller's trace (its spans appear under
// the caller's trace ID at /debug/traces/{id}); otherwise a fresh trace
// ID is minted. Either way the response echoes the trace ID, a fresh
// request ID for log correlation, and an outbound Traceparent.

// statusRecorder captures the response status for the trace summary and
// the structured log line, and the first-body-byte time for the TTFB
// histogram — the latency a streaming fragment client actually feels.
type statusRecorder struct {
	http.ResponseWriter
	status    int
	firstByte time.Time
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.firstByte.IsZero() && len(b) > 0 {
		w.firstByte = time.Now()
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streamed fragment elements
// leave the process as they are produced, not at handler return.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestTrace is the lifecycle of one traced request (or background
// operation). With the flight recorder disabled it degrades to the
// plain latency observation the server always made.
type requestTrace struct {
	s     *Server
	v     *View
	kind  string
	start time.Time

	tr    *obs.Tracer
	root  *obs.Span
	reqID string

	rw         *statusRecorder // nil for background kinds
	method     string
	params     string
	cacheState string
	errMsg     string
}

// beginRequestTrace starts the trace of one HTTP view request: mints or
// adopts the trace ID, opens the root span, stamps the correlation
// headers on the response, and returns the ctx evaluation work must run
// under. The returned writer must be used for the rest of the handler
// so the final status lands in the trace.
func (s *Server) beginRequestTrace(w http.ResponseWriter, r *http.Request, v *View, start time.Time) (*requestTrace, context.Context, *statusRecorder) {
	rw := &statusRecorder{ResponseWriter: w}
	rt := &requestTrace{s: s, v: v, kind: "request", start: start, rw: rw}
	ctx := r.Context()
	if s.traces != nil {
		traceID, ok := obs.ParseTraceparent(r.Header.Get("Traceparent"))
		if ok {
			rt.reqID = obs.NewRequestID()
		} else {
			traceID, rt.reqID = obs.NewTraceRequestID()
		}
		rt.method = r.Method
		rt.tr = obs.NewTracerID(traceID)
		// Identifying attrs (view, method, request_id) are attached at
		// finish, and only if the trace is kept — the drop path should
		// not pay for them.
		rt.root = rt.tr.StartSpan("request", nil)
		ctx = obs.ContextWithSpan(ctx, rt.tr, rt.root)
		// Direct map writes with pre-canonical keys and one shared backing
		// array: Header.Set would re-canonicalize each key and allocate a
		// single-element slice per header, every request.
		h := w.Header()
		vals := [3]string{traceID, rt.reqID, obs.FormatTraceparentSpan(traceID, rt.reqID)}
		h["X-Aig-Trace-Id"] = vals[0:1:1]
		h["X-Aig-Request-Id"] = vals[1:2:2]
		h["Traceparent"] = vals[2:3:3]
	}
	return rt, ctx, rw
}

// beginBackgroundTrace starts the trace of one background operation
// (refresh, mutate): no HTTP request to adopt a Traceparent from, so a
// fresh trace ID is always minted. With the recorder disabled it
// returns an inert requestTrace and context.Background().
func (s *Server) beginBackgroundTrace(kind string, v *View, start time.Time) (*requestTrace, context.Context) {
	rt := &requestTrace{s: s, v: v, kind: kind, start: start}
	ctx := context.Background()
	if s.traces != nil {
		rt.tr = obs.NewTracerID(obs.NewTraceID())
		rt.root = rt.tr.StartSpan(kind, nil)
		ctx = obs.ContextWithSpan(ctx, rt.tr, rt.root)
	}
	return rt, ctx
}

// fail records the error that decided this request's outcome.
func (rt *requestTrace) fail(err error) {
	if err != nil {
		rt.errMsg = err.Error()
	}
}

// setCache records the cache disposition ("hit", "miss", "coalesced",
// "bypass") for the summary and the response already carries it.
func (rt *requestTrace) setCache(state string) { rt.cacheState = state }

// finish closes the root span, runs tail sampling, feeds the latency
// histograms (with an exemplar when the trace was kept, so /metrics
// links its buckets to retrievable traces), and emits the structured
// log line.
func (rt *requestTrace) finish() {
	s := rt.s
	dur := time.Since(rt.start)
	sec := dur.Seconds()
	status := 0
	if rt.rw != nil {
		status = rt.rw.status
		if status == 0 {
			status = http.StatusOK
		}
		if rt.errMsg == "" && status >= 400 {
			rt.errMsg = http.StatusText(status)
		}
	}

	kept := false
	if rt.tr != nil {
		rt.root.End()
		// Decide first, materialize after: almost every trace is dropped
		// here, and the warm path should not pay for a record and span
		// attributes nobody will ever read.
		if reason := s.traces.Decide(dur, rt.errMsg != ""); reason != "" {
			kept = true
			view := ""
			if rt.v != nil {
				view = rt.v.name
				rt.root.SetAttr("view", view)
				if rt.v.certified {
					rt.root.SetAttr("certified", true)
				}
			}
			if rt.method != "" {
				rt.root.SetAttr("method", rt.method)
			}
			if rt.reqID != "" {
				rt.root.SetAttr("request_id", rt.reqID)
			}
			if rt.errMsg != "" {
				rt.root.SetAttr("error", rt.errMsg)
			}
			if rt.cacheState != "" {
				rt.root.SetAttr("cache", rt.cacheState)
			}
			s.traces.Insert(&store.Trace{
				ID:         rt.tr.TraceID(),
				Kind:       rt.kind,
				View:       view,
				Params:     rt.params,
				Start:      rt.start,
				Duration:   dur,
				Status:     status,
				CacheState: rt.cacheState,
				Error:      rt.errMsg,
				Tracer:     rt.tr,
			}, reason)
		}
	}

	if rt.kind == "request" {
		if kept {
			s.m.requestSec.ObserveExemplar(sec, rt.tr.TraceID())
			rt.v.reqSec.ObserveExemplar(sec, rt.tr.TraceID())
		} else {
			s.m.requestSec.Observe(sec)
			rt.v.reqSec.Observe(sec)
		}
		if rt.rw != nil && !rt.rw.firstByte.IsZero() {
			ttfb := rt.rw.firstByte.Sub(rt.start).Seconds()
			if kept {
				s.m.ttfbSec.ObserveExemplar(ttfb, rt.tr.TraceID())
			} else {
				s.m.ttfbSec.Observe(ttfb)
			}
		}
	}

	if lg := s.logger; lg != nil {
		// Per-request success lines sit at debug so the warm path stays
		// syscall-free at the default level; the traffic worth reading —
		// failures, traces the recorder kept, and low-rate background
		// kinds — still lands in the log.
		level := slog.LevelDebug
		msg := rt.kind + " served"
		switch {
		case rt.errMsg != "":
			level, msg = slog.LevelWarn, rt.kind+" failed"
		case kept || rt.kind != "request":
			level = slog.LevelInfo
		}
		if lg.Enabled(context.Background(), level) {
			attrs := []slog.Attr{
				slog.String("kind", rt.kind),
				slog.Float64("duration_ms", float64(dur.Microseconds())/1000),
			}
			if rt.v != nil {
				attrs = append(attrs, slog.String("view", rt.v.name))
			}
			if status != 0 {
				attrs = append(attrs, slog.Int("status", status))
			}
			if rt.cacheState != "" {
				attrs = append(attrs, slog.String("cache", rt.cacheState))
			}
			if rt.tr != nil {
				attrs = append(attrs, slog.String("trace_id", rt.tr.TraceID()))
			}
			if rt.reqID != "" {
				attrs = append(attrs, slog.String("request_id", rt.reqID))
			}
			if kept {
				attrs = append(attrs, slog.Bool("trace_kept", true))
			}
			if rt.errMsg != "" {
				attrs = append(attrs, slog.String("err", rt.errMsg))
			}
			lg.LogAttrs(context.Background(), level, msg, attrs...)
		}
	}
}

// traceFilter parses the /debug/traces query parameters.
func traceFilter(r *http.Request) store.Filter {
	q := r.URL.Query()
	f := store.Filter{
		View:  q.Get("view"),
		Kind:  q.Get("kind"),
		Limit: 50,
	}
	if ms, err := strconv.ParseFloat(q.Get("min_ms"), 64); err == nil && ms > 0 {
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if q.Get("errors") == "true" || q.Get("errors") == "1" {
		f.ErrorsOnly = true
	}
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
		f.Limit = n
	}
	return f
}

// handleTraces answers GET /debug/traces: the flight recorder's kept
// trace summaries, newest first, filterable by view, kind, minimum
// latency and errors-only.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "flight recorder disabled (enable Config.FlightRecorder / aigd -trace)", http.StatusNotFound)
		return
	}
	list := s.traces.List(traceFilter(r))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"kept":   s.traces.Len(),
		"traces": list,
	})
}

// handleTraceByID answers GET /debug/traces/{id}: one kept trace with
// its full span tree, as JSON (default) or an indented text tree
// (?format=text).
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		http.Error(w, "flight recorder disabled (enable Config.FlightRecorder / aigd -trace)", http.StatusNotFound)
		return
	}
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such trace (evicted, dropped by sampling, or never seen)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s %s view=%s params=%q status=%d cache=%s %.3fms kept=%s\n",
			t.ID, t.Kind, t.View, t.Params, t.Status, t.CacheState, t.DurationMs, t.KeptReason)
		if t.Error != "" {
			fmt.Fprintf(w, "error: %s\n", t.Error)
		}
		t.Tracer.WriteText(w)
		return
	}
	var spans bytes.Buffer
	if err := t.Tracer.WriteJSON(&spans); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		*store.Trace
		Spans json.RawMessage `json:"spans"`
	}{t, json.RawMessage(bytes.TrimSpace(spans.Bytes()))})
}

// registerDebug wires the guarded runtime-introspection endpoints:
// pprof profiles and expvar. They expose internals (stacks, heap
// contents, command line), so they are opt-in via Config.EnableDebug
// and meant for trusted/loopback listeners.
func (s *Server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
}

// sanitizeMetricName maps a view name into the Prometheus metric-name
// alphabet (anything else becomes '_').
func sanitizeMetricName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
