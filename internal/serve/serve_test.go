package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/aigspec"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// gatedSource wraps a source so that every Exec blocks until the gate
// channel is closed — the deterministic way to hold an evaluation in
// flight while a test lines up concurrent requests behind it.
type gatedSource struct {
	source.Source
	gate chan struct{}
}

func (g *gatedSource) Exec(ctx context.Context, name string, q *sqlmini.Query, params sqlmini.Params, opts sqlmini.PlanOptions) (*relstore.Table, time.Duration, error) {
	<-g.gate
	return g.Source.Exec(ctx, name, q, params, opts)
}

// TableData gates the direct-read route the partial evaluator uses, so
// fragment evaluations block on the same gate as full ones.
func (g *gatedSource) TableData(table string) (*relstore.Table, error) {
	<-g.gate
	return g.Source.(source.TableDataProvider).TableData(table)
}

// testServer builds a hospital-view server over TinyCatalog with a
// private metrics registry. gateDB1, when non-nil, gates DB1's Exec.
func testServer(t *testing.T, cfg Config, gateDB1 chan struct{}) (*Server, *httptest.Server, *relstore.Catalog, *obs.Registry) {
	t.Helper()
	cat := hospital.TinyCatalog()
	reg := source.NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		var src source.Source = source.NewLocal(db)
		if gateDB1 != nil && name == "DB1" {
			src = &gatedSource{Source: src, gate: gateDB1}
		}
		reg.Add(src)
	}
	metrics := obs.NewRegistry()
	cfg.Metrics = metrics
	s := NewServer(reg, cfg)
	if _, err := s.AddSpec("report", hospital.SpecText); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cat, metrics
}

// get fetches a URL, returning status, body and the X-Aig-Cache header.
func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("X-Aig-Cache")
}

// counter reads a counter from the test's private registry.
func counter(reg *obs.Registry, name string) int64 {
	return reg.NewCounter(name, "").Value()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServeViewAndCacheHit(t *testing.T) {
	_, ts, _, metrics := testServer(t, Config{}, nil)

	code, body1, state1 := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body1)
	}
	if state1 != "miss" {
		t.Fatalf("first request cache state %q, want miss", state1)
	}
	for _, want := range []string{"<report>", "<SSN>s1</SSN>", "alice", "<price>100</price>"} {
		if !strings.Contains(body1, want) {
			t.Fatalf("body missing %q:\n%s", want, body1)
		}
	}

	code, body2, state2 := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK || state2 != "hit" {
		t.Fatalf("repeat request: status %d, cache state %q, want 200/hit", code, state2)
	}
	if body1 != body2 {
		t.Fatal("cache hit returned a different document")
	}
	if h, m := counter(metrics, "aig_serve_cache_hits_total"), counter(metrics, "aig_serve_cache_misses_total"); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if n := counter(metrics, "aig_serve_evaluations_total"); n != 1 {
		t.Fatalf("evaluations=%d, want 1", n)
	}

	// A different parameter binding is its own cache entry.
	code, body3, state3 := get(t, ts.URL+"/views/report?date=d2")
	if code != http.StatusOK || state3 != "miss" {
		t.Fatalf("d2 request: status %d, cache state %q", code, state3)
	}
	if body3 == body1 {
		t.Fatal("d1 and d2 reports are identical")
	}
}

func TestCacheInvalidationOnSourceMutation(t *testing.T) {
	_, ts, cat, metrics := testServer(t, Config{}, nil)

	_, body1, _ := get(t, ts.URL+"/views/report?date=d1")
	if _, _, state := get(t, ts.URL+"/views/report?date=d1"); state != "hit" {
		t.Fatalf("warm request state %q, want hit", state)
	}

	// The test hook: mutate a source the view reads. Alice (gold) gets a
	// t3 visit on d1; gold covers t3, so her treatments and bill grow.
	visit, err := cat.Table("DB1", "visitInfo")
	if err != nil {
		t.Fatal(err)
	}
	if err := visit.InsertValues("s1", "t3", "d1"); err != nil {
		t.Fatal(err)
	}

	code, body2, state := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK {
		t.Fatalf("post-mutation status %d", code)
	}
	if state != "miss" {
		t.Fatalf("post-mutation cache state %q, want miss (stale entry must not be hit)", state)
	}
	if body2 == body1 {
		t.Fatal("document unchanged after source mutation")
	}
	// Bob and carol already had t3 ("cast") visits on d1; the mutation
	// adds alice's, so exactly one more cast treatment is reported.
	if got, want := strings.Count(body2, "<tname>cast</tname>"), strings.Count(body1, "<tname>cast</tname>")+1; got != want {
		t.Fatalf("mutated report has %d cast treatments, want %d:\n%s", got, want, body2)
	}
	if n := counter(metrics, "aig_serve_evaluations_total"); n != 2 {
		t.Fatalf("evaluations=%d, want 2 (one per data version)", n)
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	gate := make(chan struct{})
	_, ts, _, metrics := testServer(t, Config{}, gate)

	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/views/report?date=d1")
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			codes[i], bodies[i] = resp.StatusCode, string(b)
		}(i)
	}
	// Wait until every request has registered (all either lead or wait
	// on the same flight), then let the single evaluation proceed.
	waitFor(t, "all requests in flight", func() bool {
		return counter(metrics, "aig_serve_cache_misses_total") == n
	})
	close(gate)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d returned a different document", i)
		}
	}
	if n := counter(metrics, "aig_serve_evaluations_total"); n != 1 {
		t.Fatalf("evaluations=%d, want exactly 1 for identical concurrent requests", n)
	}
	if c := counter(metrics, "aig_serve_coalesced_requests_total"); c != n-1 {
		t.Fatalf("coalesced=%d, want %d", c, n-1)
	}
}

func TestAdmissionControlRejectsExcessLoad(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  150 * time.Millisecond,
		CacheEntries:  -1, // no cache: every request must evaluate
	}
	_, ts, _, metrics := testServer(t, cfg, gate)

	type result struct {
		code int
		err  error
	}
	fire := func(date string) chan result {
		ch := make(chan result, 1)
		go func() {
			resp, err := http.Get(ts.URL + "/views/report?date=" + date)
			if err != nil {
				ch <- result{0, err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ch <- result{resp.StatusCode, nil}
		}()
		return ch
	}

	// First request takes the only slot and blocks inside the gated
	// evaluation.
	r1 := fire("d1")
	waitFor(t, "first evaluation holding the slot", func() bool {
		return metrics.NewGauge("aig_serve_inflight_evaluations", "").Value() == 1
	})

	// Second request (distinct params, no coalescing) waits in the
	// queue of capacity 1.
	r2 := fire("d2")
	waitFor(t, "second request queued", func() bool {
		return metrics.NewGauge("aig_serve_queue_depth", "").Value() == 1
	})

	// Third request finds slot and queue both full: immediate 429.
	res3 := <-fire("d3")
	if res3.err != nil || res3.code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: code %d err %v, want 429", res3.code, res3.err)
	}

	// The queued request times out with 503 while the slot stays held.
	res2 := <-r2
	if res2.err != nil || res2.code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: code %d err %v, want 503", res2.code, res2.err)
	}

	close(gate)
	res1 := <-r1
	if res1.err != nil || res1.code != http.StatusOK {
		t.Fatalf("admitted request: code %d err %v, want 200", res1.code, res1.err)
	}
	if n := counter(metrics, "aig_serve_rejected_queue_full_total"); n != 1 {
		t.Fatalf("queue-full rejections=%d, want 1", n)
	}
	if n := counter(metrics, "aig_serve_rejected_queue_timeout_total"); n != 1 {
		t.Fatalf("queue-timeout rejections=%d, want 1", n)
	}
}

func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	s, ts, _, _ := testServer(t, Config{}, gate)

	// Hold one request in flight.
	inFlight := make(chan int, 1)
	go func() {
		code, _, _ := get(t, ts.URL+"/views/report?date=d1")
		inFlight <- code
	}()
	waitFor(t, "request in flight", func() bool { return s.adm.inUse() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(t.Context()) }()
	waitFor(t, "draining flag", func() bool { return s.draining.Load() })

	// New work is refused while draining; health reports unhealthy.
	if code, _, _ := get(t, ts.URL+"/views/report?date=d2"); code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", code)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", code)
	}

	// The in-flight request still completes, then the drain finishes.
	close(gate)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)

	if code, _, _ := get(t, ts.URL+"/views/nonesuch?date=d1"); code != http.StatusNotFound {
		t.Fatalf("unknown view: status %d, want 404", code)
	}
	if code, body, _ := get(t, ts.URL+"/views/report?bogus=1"); code != http.StatusBadRequest {
		t.Fatalf("unknown parameter: status %d (%s), want 400", code, body)
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	cfg := Config{TraceRequests: true, VerifyOutput: true}
	_, ts, _, _ := testServer(t, cfg, nil)

	// GET /views lists the prepared view with its parameters and
	// source dependencies.
	code, body, _ := get(t, ts.URL+"/views")
	if code != http.StatusOK {
		t.Fatalf("/views: status %d", code)
	}
	var infos []viewInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/views JSON: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "report" {
		t.Fatalf("/views = %+v", infos)
	}
	if got := fmt.Sprint(infos[0].Sources); got != "[DB1 DB2 DB3 DB4]" {
		t.Fatalf("view sources = %s, want [DB1 DB2 DB3 DB4]", got)
	}
	if len(infos[0].Params) == 0 || infos[0].Params[0].Name != "date" {
		t.Fatalf("view params = %+v, want date first", infos[0].Params)
	}

	// The prepared plan is served without evaluating.
	code, plan, _ := get(t, ts.URL+"/views/report/explain")
	if code != http.StatusOK || !strings.Contains(plan, "report") {
		t.Fatalf("/explain: status %d, plan %q", code, plan)
	}

	// No trace before the first evaluation; a span forest afterwards.
	if code, _, _ = get(t, ts.URL+"/views/report/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace before evaluation: status %d, want 404", code)
	}
	if code, _, _ = get(t, ts.URL+"/views/report?date=d1"); code != http.StatusOK {
		t.Fatalf("traced evaluation: status %d", code)
	}
	code, trace, _ := get(t, ts.URL+"/views/report/trace")
	if code != http.StatusOK || !strings.Contains(trace, "\"evaluate\"") {
		t.Fatalf("/trace: status %d, body %.120s", code, trace)
	}

	// /metrics exposes the serving instruments in Prometheus format.
	code, metricsText, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE aig_serve_requests_total counter",
		"# TYPE aig_serve_request_seconds histogram",
		"aig_serve_cache_misses_total 1",
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText)
		}
	}
}

func TestPOSTBindsParams(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)

	// Form-encoded POST.
	resp, err := http.Post(ts.URL+"/views/report", "application/x-www-form-urlencoded",
		strings.NewReader("date=d1"))
	if err != nil {
		t.Fatal(err)
	}
	formBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("form POST: status %d", resp.StatusCode)
	}

	// JSON POST binds the same parameters and hits the form request's
	// cache entry.
	resp, err = http.Post(ts.URL+"/views/report", "application/json",
		strings.NewReader(`{"date":"d1"}`))
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON POST: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Aig-Cache") != "hit" {
		t.Fatalf("JSON POST cache state %q, want hit (same canonical key)", resp.Header.Get("X-Aig-Cache"))
	}
	if string(jsonBody) != string(formBody) {
		t.Fatal("form and JSON POST returned different documents")
	}
}

// TestServeMatchesDirectEvaluation pins the served document to the
// paper pipeline run by hand, so the daemon is a transport, not a
// different evaluator.
func TestServeMatchesDirectEvaluation(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{VerifyOutput: true}, nil)

	_, served, _ := get(t, ts.URL+"/views/report?date=d1")

	a, err := aigspec.Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	cat := hospital.TinyCatalog()
	reg := source.RegistryFromCatalog(cat)
	v, err := NewServer(reg, Config{Metrics: obs.NewRegistry()}).AddView("ref", a)
	if err != nil {
		t.Fatal(err)
	}
	rootInh, err := v.bindParams(map[string]string{"date": "d1"})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := v.med.EvaluateRecursive(v.sa, rootInh, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := res.Doc.WriteIndented(&want); err != nil {
		t.Fatal(err)
	}
	if served != want.String() {
		t.Fatalf("served document differs from direct evaluation:\n--- served\n%s\n--- direct\n%s", served, want.String())
	}
}
