package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 0, time.Second)
	for i := 0; i < 2; i++ {
		wait, err := a.acquire(context.Background())
		if err != nil || wait != 0 {
			t.Fatalf("acquire %d: wait=%v err=%v, want free slot", i, wait, err)
		}
	}
	if a.inUse() != 2 {
		t.Fatalf("inUse=%d, want 2", a.inUse())
	}
	a.release()
	a.release()
	if a.inUse() != 0 {
		t.Fatalf("inUse=%d after release, want 0", a.inUse())
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 0, time.Second)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// maxQueue 0: with the slot held, nobody may wait.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("err=%v, want errQueueFull", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 1, 20*time.Millisecond)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	wait, err := a.acquire(context.Background())
	if !errors.Is(err, errQueueTimeout) {
		t.Fatalf("err=%v, want errQueueTimeout", err)
	}
	if wait < 20*time.Millisecond {
		t.Fatalf("reported wait %v shorter than the timeout", wait)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed out after %v, far beyond the 20ms bound", elapsed)
	}
	if a.queueDepth() != 0 {
		t.Fatalf("queueDepth=%d after timeout, want 0", a.queueDepth())
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := a.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestAdmissionQueuedCallerGetsFreedSlot(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	var depths []int64
	var mu sync.Mutex
	a.onQueue = func(d int64) {
		mu.Lock()
		depths = append(depths, d)
		mu.Unlock()
	}
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		acquired <- err
	}()
	waitFor(t, "caller queued", func() bool { return a.queueDepth() == 1 })
	a.release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(depths) != 2 || depths[0] != 1 || depths[1] != 0 {
		t.Fatalf("queue-depth notifications = %v, want [1 0]", depths)
	}
}

func TestAdmissionNeverExceedsSlots(t *testing.T) {
	const slots = 3
	a := newAdmission(slots, 64, time.Second)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inUse.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-1)
			a.release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("peak concurrency %d exceeded %d slots", p, slots)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var runs atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	leaders := make([]bool, n)
	entries := make([]*cacheEntry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err, leader := g.Do(context.Background(), "k", func() (*cacheEntry, error) {
				close(started)
				runs.Add(1)
				<-block
				return entry("shared"), nil
			})
			if err != nil {
				t.Error(err)
			}
			leaders[i], entries[i] = leader, e
		}(i)
	}
	<-started
	// Give followers a moment to pile onto the in-flight call, then
	// release the leader.
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()

	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	nLeaders := 0
	for i := range leaders {
		if leaders[i] {
			nLeaders++
		}
		if string(entries[i].body) != "shared" {
			t.Fatalf("caller %d got body %q", i, entries[i].body)
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", nLeaders)
	}

	// After the flight lands, the key is reusable: a fresh call runs fn
	// again instead of returning the stale result.
	_, _, leader := g.Do(context.Background(), "k", func() (*cacheEntry, error) {
		runs.Add(1)
		return entry("second"), nil
	})
	if !leader || runs.Load() != 2 {
		t.Fatalf("post-flight call: leader=%v runs=%d, want true/2", leader, runs.Load())
	}
}
