package serve

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
)

// uncertifiedSpec is the hospital spec with its source key and foreign
// key declarations stripped, so no constraint is statically provable.
var uncertifiedSpec = regexp.MustCompile(`(?m)^\s*(key|fkey) .*\n`).ReplaceAllString(hospital.SpecText, "")

// TestCertifiedViewSkipsVerify: the certified hospital view must not run
// the verify span even with VerifyOutput on; VerifyAlways restores it;
// an uncertified view always verifies.
func TestCertifiedViewSkipsVerify(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		spec       string
		wantVerify bool
	}{
		{"certified-skips", Config{VerifyOutput: true, TraceRequests: true}, hospital.SpecText, false},
		{"verify-always", Config{VerifyOutput: true, VerifyAlways: true, TraceRequests: true}, hospital.SpecText, true},
		{"uncertified-verifies", Config{VerifyOutput: true, TraceRequests: true}, uncertifiedSpec, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts, _, _ := testServer(t, tc.cfg, nil)
			if tc.spec != hospital.SpecText {
				if _, err := s.AddSpec("report", tc.spec); err != nil {
					t.Fatal(err)
				}
			}
			code, body, _ := get(t, ts.URL+"/views/report?date=d1")
			if code != http.StatusOK {
				t.Fatalf("status %d, body %s", code, body)
			}
			if !strings.Contains(body, "<report>") {
				t.Fatalf("unexpected body:\n%s", body)
			}
			trace := s.View("report").LastTrace()
			if trace == nil {
				t.Fatal("no trace recorded")
			}
			hasVerify := strings.Contains(string(trace), `"verify"`)
			if hasVerify != tc.wantVerify {
				t.Errorf("verify span present=%v, want %v; trace:\n%s", hasVerify, tc.wantVerify, trace)
			}
		})
	}
}

// TestCertifiedInViewsAndExplain: certification surfaces in the /views
// listing and the Explain plan.
func TestCertifiedInViewsAndExplain(t *testing.T) {
	s, ts, _, _ := testServer(t, Config{}, nil)
	v := s.View("report")
	if !v.Certified() {
		t.Fatalf("hospital view not certified:\n%s", v.Certification().Summary())
	}

	code, body, _ := get(t, ts.URL+"/views")
	if code != http.StatusOK {
		t.Fatalf("GET /views: %d", code)
	}
	var infos []viewInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Certified {
		t.Errorf("GET /views = %s, want certified view", body)
	}

	code, plan, _ := get(t, ts.URL+"/views/report/explain")
	if code != http.StatusOK {
		t.Fatalf("GET /views/report/explain: %d", code)
	}
	for _, want := range []string{"static certification", "must-hold", "certified: all constraints must hold"} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain output missing %q:\n%s", want, plan)
		}
	}
}

// TestUncertifiedViewStillServes: dropping the declarations must not
// break serving — verification stays on and passes at runtime.
func TestUncertifiedViewStillServes(t *testing.T) {
	s, ts, _, _ := testServer(t, Config{VerifyOutput: true}, nil)
	if _, err := s.AddSpec("report", uncertifiedSpec); err != nil {
		t.Fatal(err)
	}
	if s.View("report").Certified() {
		t.Fatal("view certified without any source constraint declarations")
	}
	code, body, _ := get(t, ts.URL+"/views/report?date=d1")
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
}
