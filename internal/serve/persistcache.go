package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Cache persistence: the result cache saved across daemon restarts. On
// a clean shutdown (Drain) the cache is dumped to CacheDir; on startup,
// after the views are registered, LoadCache walks the dump and decides
// per entry:
//
//   - the entry's data-version stamp still matches the live sources →
//     install as-is (a "restored" entry: the first request is a cache
//     hit, not a re-evaluation);
//   - the stamp moved but the change-log judge proves every delta in
//     the window irrelevant for the entry's binding → install restamped
//     (a "revalidated" entry: still no re-evaluation, and never stale —
//     the proof is the same one the background refresher relies on);
//   - anything else (view gone, judge can't prove, truncated window) →
//     drop. Serving a possibly-stale body is never an option.
//
// The dump is written atomically (temp file + rename), so a crash
// mid-save leaves the previous dump intact; a missing or corrupt dump
// just means a cold cache.

// cacheDumpFile is the dump's name under Config.CacheDir.
const cacheDumpFile = "cache.gob"

// cacheDumpMagic versions the dump format; a mismatch drops the dump.
const cacheDumpMagic = "AIGCACHE1"

// persistedEntry is the gob form of one cache entry.
type persistedEntry struct {
	View      string
	KeyPrefix string
	Stamp     string
	Params    map[string]string
	TableVers map[string]map[string]uint64
	Body      []byte
	Depth     int
	EvalSec   float64
	// Path and Matches carry fragment provenance ("" / 0 for full
	// documents); gob decodes their absence in older dumps as zero.
	Path    string
	Matches int
	// CreatedUnixNano preserves the entry's age across the restart.
	CreatedUnixNano int64
}

// persistedCache is the gob form of the whole dump.
type persistedCache struct {
	Magic   string
	Entries []persistedEntry
}

// SaveCache dumps the current result cache to dir atomically. A nil
// error with zero entries is fine (an empty dump is still written, so a
// later load does not resurrect an older one).
func (s *Server) SaveCache(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dump := persistedCache{Magic: cacheDumpMagic}
	for _, it := range s.cache.Snapshot() {
		e := it.entry
		dump.Entries = append(dump.Entries, persistedEntry{
			View:            e.view,
			KeyPrefix:       e.keyPrefix,
			Stamp:           e.stamp,
			Params:          e.params,
			TableVers:       e.tableVers,
			Body:            e.body,
			Depth:           e.depth,
			EvalSec:         e.evalSec,
			Path:            e.path,
			Matches:         e.matches,
			CreatedUnixNano: e.created.UnixNano(),
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&dump); err != nil {
		return fmt.Errorf("serve: cache dump encode: %w", err)
	}
	tmp := filepath.Join(dir, cacheDumpFile+".tmp")
	final := filepath.Join(dir, cacheDumpFile)
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	s.m.cacheSaved.Add(int64(len(dump.Entries)))
	s.logger.Info("cache saved", "dir", dir, "entries", len(dump.Entries))
	return nil
}

// LoadCache restores a previous dump from dir. Call it after every view
// is registered: entries of unknown views are dropped. A missing dump
// is a cold start, not an error. Returns the number of entries
// installed (restored plus revalidated).
func (s *Server) LoadCache(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, cacheDumpFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var dump persistedCache
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dump); err != nil {
		return 0, fmt.Errorf("serve: cache dump decode: %w", err)
	}
	if dump.Magic != cacheDumpMagic {
		return 0, fmt.Errorf("serve: cache dump magic %q, want %q", dump.Magic, cacheDumpMagic)
	}

	installed := 0
	states := make(map[string]viewState)
	for _, pe := range dump.Entries {
		e := &cacheEntry{
			body:      pe.Body,
			depth:     pe.Depth,
			evalSec:   pe.EvalSec,
			created:   time.Unix(0, pe.CreatedUnixNano),
			view:      pe.View,
			params:    pe.Params,
			keyPrefix: pe.KeyPrefix,
			stamp:     pe.Stamp,
			tableVers: pe.TableVers,
			path:      pe.Path,
			matches:   pe.Matches,
		}
		st, seen := states[pe.View]
		if !seen {
			if v := s.View(pe.View); v != nil {
				st = s.snapshotView(v)
			}
			states[pe.View] = st
		}
		if !st.ok {
			s.m.cacheDropped.Inc()
			continue
		}
		deps := st.v.deps
		if e.path != "" {
			fp, perr := st.v.fragmentPlan(e.path, s.reg)
			if perr != nil {
				s.m.cacheDropped.Inc()
				continue
			}
			deps = st.v.fragDeps(fp)
		}
		switch {
		case e.stamp == st.stamp:
			s.cache.Add(e.keyPrefix+"\x00"+e.stamp, e)
			s.m.cacheRestored.Inc()
			installed++
		case s.judgeUnaffected(e, st, deps):
			// Data moved while the daemon was down, but every delta is
			// provably irrelevant for this binding: carry the body over
			// under the live stamp.
			s.cache.Add(e.keyPrefix+"\x00"+st.stamp, e.restamped(st.stamp, st.tv))
			s.m.cacheRevalidated.Inc()
			installed++
		default:
			s.m.cacheDropped.Inc()
		}
	}
	s.m.cacheEntries.Set(float64(s.cache.Len()))
	s.logger.Info("cache loaded", "dir", dir,
		"dumped", len(dump.Entries), "installed", installed)
	return installed, nil
}
