package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
)

// handleMutate answers POST /mutate (registered only with
// Config.AllowMutate): row-level writes against local sources, the
// write half of mutation demos and warm-cache benchmarks.
//
//	POST /mutate?source=DB1&table=visitInfo&op=insert&values=s1,t9,d9
//	POST /mutate?source=DB1&table=visitInfo&op=delete&values=s1,t9,d9
//	POST /mutate?source=DB1&table=visitInfo&op=delete            (last row)
//
// Values are comma-separated and parsed against the table schema.
// op=delete with values removes every matching row; without values it
// removes the last row.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	rt, _ := s.beginBackgroundTrace("mutate", nil, time.Now())
	rw := &statusRecorder{ResponseWriter: w}
	rt.rw = rw
	defer rt.finish()

	q := r.URL.Query()
	srcName, table, op := q.Get("source"), q.Get("table"), q.Get("op")
	rt.params = canonicalParams(map[string]string{"source": srcName, "table": table, "op": op})
	rt.root.SetAttr("source", srcName).SetAttr("table", table).SetAttr("op", op)
	if srcName == "" || table == "" || op == "" {
		http.Error(rw, "source, table and op are required", http.StatusBadRequest)
		return
	}
	src, err := s.reg.Get(srcName)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusNotFound)
		return
	}
	local, ok := src.(*source.Local)
	if !ok {
		http.Error(rw, fmt.Sprintf("source %s is not local; /mutate only writes local sources", srcName), http.StatusBadRequest)
		return
	}
	t, err := local.DB().Table(table)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusNotFound)
		return
	}

	var row relstore.Tuple
	if raw := q.Get("values"); raw != "" {
		parts := strings.Split(raw, ",")
		if len(parts) != len(t.Schema()) {
			http.Error(rw, fmt.Sprintf("%d values for %d columns", len(parts), len(t.Schema())), http.StatusBadRequest)
			return
		}
		row = make(relstore.Tuple, len(parts))
		for i, p := range parts {
			v, perr := relstore.ParseValue(t.Schema()[i].Kind, p)
			if perr != nil {
				http.Error(rw, perr.Error(), http.StatusBadRequest)
				return
			}
			row[i] = v
		}
	}

	var affected int
	switch op {
	case "insert":
		if row == nil {
			http.Error(rw, "insert requires values", http.StatusBadRequest)
			return
		}
		if err := t.Insert(row); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		affected = 1
	case "delete":
		if row != nil {
			key := row.Key()
			affected = t.DeleteWhere(func(r relstore.Tuple) bool { return r.Key() == key })
		} else {
			if t.Len() == 0 {
				http.Error(rw, "table is empty", http.StatusConflict)
				return
			}
			if _, err := t.DeleteAt(t.Len() - 1); err != nil {
				http.Error(rw, err.Error(), http.StatusConflict)
				return
			}
			affected = 1
		}
	default:
		http.Error(rw, fmt.Sprintf("unknown op %q (want insert or delete)", op), http.StatusBadRequest)
		return
	}
	s.m.mutations.Inc()
	rt.root.SetAttr("affected", affected)

	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]any{
		"source":   srcName,
		"table":    table,
		"op":       op,
		"affected": affected,
		"version":  t.Version(),
		"rows":     t.Len(),
	})
}
