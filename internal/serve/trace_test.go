package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/source"
)

// tracedTestServer builds the hospital-view server with DB1 behind a
// real TCP remote server, so a request's trace must stitch daemon-side
// spans together with spans shipped back over the wire.
func tracedTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cat := hospital.TinyCatalog()
	reg := source.NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "DB1" {
			rsrv := remote.NewServer(db)
			addr, err := rsrv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rsrv.Close() })
			client, err := remote.Dial(name, addr)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { client.Close() })
			reg.Add(client)
		} else {
			reg.Add(source.NewLocal(db))
		}
	}
	cfg.Metrics = obs.NewRegistry()
	s := NewServer(reg, cfg)
	if _, err := s.AddSpec("report", hospital.SpecText); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestFlightRecorderStitchedTrace drives one miss through a server
// whose DB1 is remote and asserts the kept trace holds the whole story:
// the request root, the evaluation phases, and the remote call's
// client-side and server-side spans grafted into one tree.
func TestFlightRecorderStitchedTrace(t *testing.T) {
	_, ts := tracedTestServer(t, Config{FlightRecorder: true, TraceSampleRate: 1})

	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/views/report?date=d1", nil)
	req.Header.Set("Traceparent", "00-"+wantTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Aig-Trace-Id"); got != wantTrace {
		t.Fatalf("X-Aig-Trace-Id %q, want the incoming trace ID %q", got, wantTrace)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, wantTrace) {
		t.Fatalf("response Traceparent %q does not carry trace ID %q", tp, wantTrace)
	}
	if resp.Header.Get("X-Aig-Request-Id") == "" {
		t.Fatal("no X-Aig-Request-Id header")
	}

	// The summary list must know the trace under the caller's ID.
	lresp, err := http.Get(ts.URL + "/debug/traces?view=report")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Kept   int `json:"kept"`
		Traces []struct {
			ID         string  `json:"id"`
			Kind       string  `json:"kind"`
			View       string  `json:"view"`
			Cache      string  `json:"cache"`
			DurationMs float64 `json:"duration_ms"`
			Kept       string  `json:"kept"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Kept == 0 || len(list.Traces) == 0 {
		t.Fatalf("flight recorder kept nothing: %+v", list)
	}
	got := list.Traces[0]
	if got.ID != wantTrace || got.Kind != "request" || got.View != "report" || got.Cache != "miss" {
		t.Fatalf("trace summary %+v, want id=%s kind=request view=report cache=miss", got, wantTrace)
	}
	if got.Kept != "sampled" {
		t.Fatalf("kept reason %q, want sampled (rate 1.0, fast, healthy)", got.Kept)
	}

	// The full tree must stitch daemon-side spans with the remote
	// server's spans shipped over the wire.
	tresp, err := http.Get(ts.URL + "/debug/traces/" + wantTrace + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	raw, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	tree := string(raw)
	for _, span := range []string{
		"request",   // root
		"admission", // serve-side admission wait
		"evaluate",  // mediator root
		"execute",   // evaluation phase
		"node:",     // per-query-node span
		"call:DB1.", // client side of the remote call
		"rpc:",      // server side, grafted over the wire
		"scan:DB1.", // per-table scan inside the remote server
		"render",    // document rendering
	} {
		if !strings.Contains(tree, span) {
			t.Fatalf("trace tree missing span %q:\n%s", span, tree)
		}
	}

	// JSON form of the same trace parses and carries the spans.
	jresp, err := http.Get(ts.URL + "/debug/traces/" + wantTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var full struct {
		ID    string          `json:"id"`
		Spans json.RawMessage `json:"spans"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.ID != wantTrace || len(full.Spans) == 0 {
		t.Fatalf("JSON trace: id=%q spans=%dB", full.ID, len(full.Spans))
	}
}

// TestFlightRecorderCacheAndErrorFilters exercises the list filters:
// a hit-serving trace, an erroring trace, and the errors-only view.
func TestFlightRecorderCacheAndErrorFilters(t *testing.T) {
	_, ts := tracedTestServer(t, Config{FlightRecorder: true, TraceSampleRate: 1})

	for i := 0; i < 2; i++ { // miss, then hit
		code, _, _ := get(t, ts.URL+"/views/report?date=d1")
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	// A bad parameter fails with 400; the error rule must keep it even
	// at sample rate 0.
	if code, _, _ := get(t, ts.URL+"/views/report?nosuch=param"); code != http.StatusBadRequest {
		t.Fatalf("bad-param status %d, want 400", code)
	}

	fetch := func(query string) []struct {
		Cache string `json:"cache"`
		Error string `json:"error"`
		Kept  string `json:"kept"`
	} {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Traces []struct {
				Cache string `json:"cache"`
				Error string `json:"error"`
				Kept  string `json:"kept"`
			} `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Traces
	}

	all := fetch("?view=report")
	if len(all) != 3 {
		t.Fatalf("kept %d traces, want 3 (miss, hit, error)", len(all))
	}
	states := map[string]bool{}
	for _, tr := range all {
		states[tr.Cache] = true
	}
	if !states["miss"] || !states["hit"] {
		t.Fatalf("cache states %v, want both miss and hit", states)
	}

	errs := fetch("?errors=true")
	if len(errs) != 1 || errs[0].Error == "" || errs[0].Kept != "error" {
		t.Fatalf("errors-only filter returned %+v, want exactly the 400 trace kept by the error rule", errs)
	}

	if vempty := fetch("?view=nosuchview"); len(vempty) != 0 {
		t.Fatalf("view filter leaked %d traces", len(vempty))
	}
}

// TestFlightRecorderTailSamplingDropsFast proves the recorder's default
// posture: with sampling off, fast healthy requests leave no trace, but
// the response still carries correlation headers.
func TestFlightRecorderTailSamplingDropsFast(t *testing.T) {
	_, ts := tracedTestServer(t, Config{FlightRecorder: true, TraceSampleRate: -1})

	resp, err := http.Get(ts.URL + "/views/report?date=d1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Aig-Trace-Id") == "" {
		t.Fatal("dropped trace must still answer with X-Aig-Trace-Id")
	}
	lresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 0 {
		t.Fatalf("fast healthy request was kept (%d traces); want dropped", len(list.Traces))
	}
	if code, _, _ := get(t, ts.URL+"/debug/traces/"+resp.Header.Get("X-Aig-Trace-Id")); code != http.StatusNotFound {
		t.Fatalf("dropped trace lookup status %d, want 404", code)
	}
}

// TestDebugEndpointsDisabledByDefault locks the guarded surface: no
// flight recorder → /debug/traces is 404; no EnableDebug → pprof and
// expvar are absent.
func TestDebugEndpointsDisabledByDefault(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{}, nil)
	for _, path := range []string{"/debug/traces", "/debug/traces/abc", "/debug/pprof/", "/debug/vars"} {
		code, _, _ := get(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, code)
		}
	}
}

// TestDebugEndpointsEnabled is the flip side: EnableDebug serves pprof
// and expvar.
func TestDebugEndpointsEnabled(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{EnableDebug: true}, nil)
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		code, body, _ := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s status %d, body %s", path, code, body)
		}
	}
}

// TestMetricsExemplar: a kept trace's ID must surface as an OpenMetrics
// exemplar on the request-latency histogram, linking /metrics buckets
// to retrievable traces.
func TestMetricsExemplar(t *testing.T) {
	_, ts := tracedTestServer(t, Config{FlightRecorder: true, TraceSampleRate: 1})
	resp, err := http.Get(ts.URL + "/views/report?date=d1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Aig-Trace-Id")
	if traceID == "" {
		t.Fatal("no trace ID header")
	}
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if !strings.Contains(body, `# {trace_id="`+traceID+`"}`) {
		t.Fatalf("metrics output has no exemplar for trace %s", traceID)
	}
	if !strings.Contains(body, "aig_serve_view_request_seconds_report_bucket") {
		t.Fatal("per-view latency histogram missing from /metrics")
	}
}

// TestMutateTraced: POST /mutate runs as a "mutate"-kind trace.
func TestMutateTraced(t *testing.T) {
	_, ts, _, _ := testServer(t, Config{AllowMutate: true, FlightRecorder: true, TraceSampleRate: 1}, nil)
	resp, err := http.Post(ts.URL+"/mutate?source=DB1&table=visitInfo&op=insert&values=s1,t9,d9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	lresp, err := http.Get(ts.URL + "/debug/traces?kind=mutate")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Traces []struct {
			Kind   string `json:"kind"`
			Params string `json:"params"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Kind != "mutate" {
		t.Fatalf("mutate traces %+v, want exactly one kind=mutate", list.Traces)
	}
	if !strings.Contains(list.Traces[0].Params, "visitInfo") {
		t.Fatalf("mutate trace params %q missing table", list.Traces[0].Params)
	}
}
