package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/source"
)

// sickSource wraps a source with a controllable health verdict.
type sickSource struct {
	source.Source
	err error
}

func (s *sickSource) Healthy() error { return s.err }

// TestHealthzReadiness walks /healthz through its states: not ready
// before views are prepared, ok once they are, not ready again when a
// health-reporting source degrades.
func TestHealthzReadiness(t *testing.T) {
	cat := hospital.TinyCatalog()
	reg := source.NewRegistry()
	sick := make(map[string]*sickSource)
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		ss := &sickSource{Source: source.NewLocal(db)}
		sick[name] = ss
		reg.Add(ss)
	}
	s := NewServer(reg, Config{Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// No prepared views: the replica cannot answer anything useful yet,
	// so a router must not send it traffic.
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no views") {
		t.Fatalf("healthz before views = %d %q, want 503 no views", code, body)
	}

	if _, err := s.AddSpec("report", hospital.SpecText); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz ready = %d %q, want 200 ok", code, body)
	}

	// A degraded source (mirror behind, remote engine gone) makes the
	// whole replica not ready, with the reason in the body.
	sick["DB1"].err = errors.New("mirror not synced")
	code, body, _ = get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "DB1") || !strings.Contains(body, "mirror not synced") {
		t.Fatalf("healthz with sick source = %d %q, want 503 naming DB1", code, body)
	}
	sick["DB1"].err = nil
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after recovery = %d, want 200", code)
	}
}

// TestHealthzDrainRetryAfter checks the drain signal: 503 plus a
// Retry-After hint, so well-behaved balancers back off but keep probing.
func TestHealthzDrainRetryAfter(t *testing.T) {
	s, ts, _, _ := testServer(t, Config{}, nil)
	go s.Drain(t.Context())
	waitFor(t, "drain to begin", func() bool { return s.draining.Load() })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("healthz while draining lacks Retry-After")
	}
}

// TestKickRefreshRunsCycleEarly proves push-based invalidation: with a
// refresh interval far longer than the test, a mutation plus KickRefresh
// still gets the stale entry rebuilt almost immediately.
func TestKickRefreshRunsCycleEarly(t *testing.T) {
	s, ts, cat, metrics := testServer(t, Config{RefreshInterval: time.Hour}, nil)

	if code, _, _ := get(t, ts.URL+"/views/report?date=d1"); code != http.StatusOK {
		t.Fatalf("prime request failed: %d", code)
	}

	db, err := cat.Database("DB1")
	if err != nil {
		t.Fatal(err)
	}
	visit, err := db.Table("visitInfo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := visit.DeleteAt(0); err != nil {
		t.Fatal(err)
	}

	cycles := counter(metrics, "aig_serve_refresh_cycles_total")
	s.KickRefresh()
	waitFor(t, "kicked refresh cycle", func() bool {
		return counter(metrics, "aig_serve_refresh_cycles_total") > cycles &&
			counter(metrics, "aig_serve_refresh_delta_total")+counter(metrics, "aig_serve_refresh_full_total") > 0
	})

	// The rebuilt entry serves as a hit at the new stamp — the point of
	// kicking: no request pays the post-write miss.
	_, _, state := get(t, ts.URL+"/views/report?date=d1")
	if state != "hit" {
		t.Fatalf("post-kick request cache state = %q, want hit", state)
	}
}

// TestSimWorkFloorAppliesToHits checks the capacity-benchmark floor:
// with SimWork set, even cache hits pay the simulated service time
// under the admission semaphore.
func TestSimWorkFloorAppliesToHits(t *testing.T) {
	const floor = 40 * time.Millisecond
	_, ts, _, metrics := testServer(t, Config{SimWork: floor}, nil)

	if code, _, _ := get(t, ts.URL+"/views/report?date=d1"); code != http.StatusOK {
		t.Fatalf("prime request failed: %d", code)
	}
	start := time.Now()
	_, _, state := get(t, ts.URL+"/views/report?date=d1")
	if el := time.Since(start); state != "hit" || el < floor {
		t.Fatalf("hit with sim-work took %v (state %q), want >= %v", el, state, floor)
	}
	// The floor runs under admission: the wait histogram saw both
	// requests even though the second never evaluated.
	if n := metrics.NewHistogram("aig_serve_queue_wait_seconds", "", obs.DurationBuckets).Count(); n < 2 {
		t.Fatalf("queue wait observations = %d, want >= 2", n)
	}
}
