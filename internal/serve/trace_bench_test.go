package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/source"
)

// BenchmarkWarmHit measures the handler's warm cache-hit path — the one
// the smoke script's overhead guard gates — with the flight recorder off
// and with it on but sampling off (every request traced, every healthy
// fast trace dropped at completion).
func BenchmarkWarmHit(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"recorder-off", Config{}},
		{"recorder-on-sampling-off", Config{FlightRecorder: true, TraceSampleRate: -1, TraceSlowThreshold: -1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cat := hospital.TinyCatalog()
			reg := source.NewRegistry()
			for _, name := range cat.DatabaseNames() {
				db, err := cat.Database(name)
				if err != nil {
					b.Fatal(err)
				}
				reg.Add(source.NewLocal(db))
			}
			bc.cfg.Metrics = obs.NewRegistry()
			s := NewServer(reg, bc.cfg)
			if _, err := s.AddSpec("report", hospital.SpecText); err != nil {
				b.Fatal(err)
			}
			h := s.Handler()
			req := httptest.NewRequest(http.MethodGet, "/views/report?date=d1", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("warmup status %d", rec.Code)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		})
	}
}
