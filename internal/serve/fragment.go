package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/xmltree"
	"github.com/aigrepro/aig/internal/xpath"
)

// This file is the fragment half of the serving story: GET
// /views/{name}?path=... answers with only the elements the path
// selects, evaluated partially (subtrees the path cannot reach are
// never bound, their queries never run) and serialized as they are
// produced, so first-byte latency and bytes-on-the-wire stop scaling
// with document size.
//
// Fragments get their own cache entries, keyed (view, params, path,
// stamp) with the path spliced into the key prefix as "\x00p:<path>" —
// the full-document prefix never contains "\x00p:", so the two key
// spaces cannot collide. A fragment miss first tries to derive the
// fragment from a cached full document (parse + post-hoc filter, no
// source queries); only when neither entry exists does it evaluate.

// fragPlan is one path compiled against one view: the pushdown/pruning
// analysis over the fragment grammar plus the path-filtered dependency
// map the refresher judges fragment entries against.
type fragPlan struct {
	// expr is the canonical rendering (Parse(expr).String() == expr);
	// cache keys and the memoization map use it, so "/a[2 ]"-style
	// spelling variants share one plan and one cache line.
	expr string
	path *xpath.Path
	c    *xpath.Compiled
	// deps is restricted to the scans the path can reach. For views that
	// cannot use partial evaluation (uncertified constraints), fragment
	// bodies derive from full documents and judging falls back to the
	// view's unfiltered deps instead.
	deps *ivm.Deps
}

// fragmentPlan parses, compiles, and memoizes a path against the view.
func (v *View) fragmentPlan(expr string, schemas ivm.SchemaSource) (*fragPlan, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("path: %w", err)
	}
	canon := p.String()
	v.fragMu.Lock()
	defer v.fragMu.Unlock()
	if fp, ok := v.fragPlans[canon]; ok {
		return fp, nil
	}
	c, err := xpath.Compile(v.fa, p)
	if err != nil {
		return nil, err
	}
	deps, err := ivm.ExtractFiltered(v.fa, schemas, c.LiveScans(v.fa))
	if err != nil {
		return nil, err
	}
	fp := &fragPlan{expr: canon, path: p, c: c, deps: deps}
	v.fragPlans[canon] = fp
	return fp, nil
}

// fragDeps returns the dependency map fragment entries of this plan are
// judged against: path-filtered when partial evaluation produced the
// body, the view's full map when the body derived from a guarded full
// render.
func (v *View) fragDeps(fp *fragPlan) *ivm.Deps {
	if v.partialOK {
		return fp.deps
	}
	return v.deps
}

// fragPrefix builds the stamp-independent fragment key prefix from the
// full-document prefix.
func fragPrefix(fullPrefix, expr string) string {
	return fullPrefix + "\x00p:" + escapeKeyPart(expr)
}

// serveFragment answers a view request carrying a path parameter. It
// owns the response from here on.
func (s *Server) serveFragment(ctx context.Context, rt *requestTrace, rw *statusRecorder, r *http.Request, v *View, params map[string]string, rawPath string) {
	fp, err := v.fragmentPlan(rawPath, s.reg)
	if err != nil {
		rt.fail(err)
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	s.m.fragments.Inc()

	stamp, _, err := s.stamp(v)
	if err != nil {
		s.m.errors.Inc()
		rt.fail(err)
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	fullPrefix := v.name + "\x00" + rt.params
	prefix := fragPrefix(fullPrefix, fp.expr)
	key := prefix + "\x00" + stamp

	if noStoreRequest(r) {
		s.m.misses.Inc()
		rt.setCache("bypass")
		st := newFragStream(rw, fp, stamp, "bypass")
		entry, berr := s.fragmentAdmitted(ctx, v, params, fp, st)
		s.finishFragStream(rt, rw, st, entry, berr, "bypass")
		return
	}

	tr, parent := obs.SpanFromContext(ctx)
	lookupSpan := tr.StartSpan("cache.lookup", parent)
	e, ok := s.cache.Get(key)
	lookupSpan.SetAttr("hit", ok).End()
	if ok {
		s.m.hits.Inc()
		rt.setCache("hit")
		s.writeFragment(rw, e, "hit")
		return
	}
	s.m.misses.Inc()

	// A cached full document makes the fragment derivable without
	// touching any source: parse it back and filter post hoc.
	if full, ok := s.cache.Get(fullPrefix + "\x00" + stamp); ok {
		fe, derr := deriveFragment(full, fp)
		if derr != nil {
			rt.fail(derr)
			s.writeError(rw, derr)
			return
		}
		fe.view, fe.params, fe.keyPrefix, fe.stamp = v.name, params, prefix, stamp
		fe.tableVers = full.tableVers
		s.cache.Add(key, fe)
		s.m.cacheEntries.Set(float64(s.cache.Len()))
		rt.setCache("derived")
		s.writeFragment(rw, fe, "derived")
		return
	}

	// Evaluate. The leader streams elements as they are produced while
	// buffering them for the cache and for coalesced followers.
	st := newFragStream(rw, fp, stamp, "miss")
	entry, ferr, leader := s.fragmentFlight(ctx, v, params, fp, prefix, stamp, true, st)
	if !leader {
		s.m.coalesced.Inc()
		st = nil // a follower never streamed; serve the shared buffer
	}
	state := "miss"
	if !leader {
		state = "coalesced"
	}
	rt.setCache(state)
	s.finishFragStream(rt, rw, st, entry, ferr, state)
}

// fragStream tees fragment elements to the client as they are emitted.
// Headers are written lazily at the first byte — an evaluation that
// fails before emitting anything can still answer with a clean error
// status — and the match count travels as an HTTP trailer, since it is
// unknown when the header block ships.
type fragStream struct {
	rw    *statusRecorder
	fp    *fragPlan
	stamp string
	state string
	wrote bool
}

func newFragStream(rw *statusRecorder, fp *fragPlan, stamp, state string) *fragStream {
	return &fragStream{rw: rw, fp: fp, stamp: stamp, state: state}
}

// element ships one rendered fragment element to the client.
func (st *fragStream) element(b []byte) error {
	if !st.wrote {
		st.wrote = true
		h := st.rw.Header()
		h.Set("Trailer", "X-Aig-Fragment-Matches")
		h.Set("Content-Type", "application/xml; charset=utf-8")
		h.Set("X-Aig-Cache", st.state)
		h.Set("X-Aig-Fragment-Path", st.fp.expr)
		if st.stamp != "" {
			h.Set("X-Aig-Stamp", st.stamp)
		}
	}
	if _, err := st.rw.Write(b); err != nil {
		return err
	}
	st.rw.Flush()
	return nil
}

// finishFragStream completes a fragment response: a leader that already
// streamed only ships the trailer; anyone else gets the buffered entry.
// A failure after the first streamed byte cannot be turned into an error
// status anymore — the connection is aborted so the client sees a
// truncated chunked body, not a silently short 200.
func (s *Server) finishFragStream(rt *requestTrace, rw *statusRecorder, st *fragStream, entry *cacheEntry, err error, state string) {
	if err != nil {
		rt.fail(err)
		if st != nil && st.wrote {
			panic(http.ErrAbortHandler)
		}
		s.writeError(rw, err)
		return
	}
	if st != nil && st.wrote {
		rw.Header().Set("X-Aig-Fragment-Matches", fmt.Sprint(entry.matches))
		return
	}
	s.writeFragment(rw, entry, state)
}

// writeFragment sends a buffered fragment with the serving headers.
// Zero-match fragments are a 200 with an empty body: the request was
// valid, the path just selects nothing at these parameters.
func (s *Server) writeFragment(w http.ResponseWriter, e *cacheEntry, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/xml; charset=utf-8")
	h.Set("X-Aig-Cache", cacheState)
	h.Set("X-Aig-Fragment-Path", e.path)
	h.Set("X-Aig-Fragment-Matches", fmt.Sprint(e.matches))
	if e.stamp != "" {
		h.Set("X-Aig-Stamp", e.stamp)
	}
	w.Write(e.body)
}

// fragmentFlight is missFlight for fragments: coalesce on the fragment
// key, evaluate (streaming through st when the caller is interactive),
// and cache only if the stamp held through the evaluation.
func (s *Server) fragmentFlight(ctx context.Context, v *View, params map[string]string, fp *fragPlan, prefix, stamp string, admit bool, st *fragStream) (*cacheEntry, error, bool) {
	key := prefix + "\x00" + stamp
	return s.flight.Do(ctx, key, func() (*cacheEntry, error) {
		tableVers, tverr := s.tableVersions(v)
		var entry *cacheEntry
		var eerr error
		if admit {
			entry, eerr = s.fragmentAdmitted(ctx, v, params, fp, st)
		} else {
			entry, eerr = s.evaluateFragment(ctx, v, params, fp, st)
		}
		if eerr != nil {
			return nil, eerr
		}
		entry.view = v.name
		entry.params = params
		entry.keyPrefix = prefix
		entry.stamp = stamp
		entry.tableVers = tableVers
		if tverr == nil {
			if s2, settled, serr := s.stamp(v); serr == nil && settled && s2 == stamp {
				s.cache.Add(key, entry)
				s.m.cacheEntries.Set(float64(s.cache.Len()))
			} else {
				s.m.staleSkips.Inc()
			}
		}
		return entry, nil
	})
}

// fragmentAdmitted runs evaluateFragment under the admission semaphore.
func (s *Server) fragmentAdmitted(ctx context.Context, v *View, params map[string]string, fp *fragPlan, st *fragStream) (*cacheEntry, error) {
	tr, parent := obs.SpanFromContext(ctx)
	sp := tr.StartSpan("admission", parent)
	waited, aerr := s.adm.acquire(ctx)
	s.m.queueWaitSec.Observe(waited.Seconds())
	sp.SetAttr("waited_sec", waited.Seconds())
	if aerr != nil {
		sp.SetAttr("error", aerr.Error()).End()
		return nil, aerr
	}
	sp.End()
	defer func() {
		s.adm.release()
		s.m.inflightEvals.Set(float64(s.adm.inUse()))
	}()
	s.m.inflightEvals.Set(float64(s.adm.inUse()))
	return s.evaluateFragment(ctx, v, params, fp, st)
}

// evaluateFragment produces a fragment body. Views eligible for partial
// evaluation walk the guard-free fragment grammar under the path's
// cursor — skipped subtrees never run their queries — emitting each
// matched element to st the moment it is rendered. Everything else
// evaluates the full guarded view (through the shared evaluate path, so
// verification and abort semantics are identical to a full-document
// request) and filters post hoc.
func (s *Server) evaluateFragment(ctx context.Context, v *View, params map[string]string, fp *fragPlan, st *fragStream) (*cacheEntry, error) {
	if !v.partialOK {
		full, err := s.evaluate(ctx, v, params)
		if err != nil {
			return nil, err
		}
		fe, err := deriveFragment(full, fp)
		if err != nil {
			return nil, err
		}
		if st != nil && len(fe.body) > 0 {
			if serr := st.element(fe.body); serr != nil {
				return nil, serr
			}
		}
		return fe, nil
	}

	rootInh, err := v.bindParams(params)
	if err != nil {
		return nil, err
	}
	tr, parent := obs.SpanFromContext(ctx)
	sp := tr.StartSpan("eval.partial", parent)
	sp.SetAttr("path", fp.expr)
	env := &aig.Env{
		Schemas:  s.reg,
		Data:     s.reg,
		Stats:    s.reg,
		PlanOpts: s.opts.PlanOpts,
		MaxDepth: v.maxDepth,
		Counters: &aig.Counters{},
	}
	t0 := time.Now()
	var buf bytes.Buffer
	matches := 0
	err = v.fa.EvalPartial(env, rootInh, fp.c.NewCursor(), func(n *xmltree.Node) error {
		var eb strings.Builder
		if werr := n.WriteIndented(&eb); werr != nil {
			return werr
		}
		b := []byte(eb.String())
		buf.Write(b)
		matches++
		if st != nil {
			return st.element(b)
		}
		return nil
	})
	evalSec := time.Since(t0).Seconds()
	s.m.evalSec.Observe(evalSec)
	s.m.evaluations.Inc()
	sp.SetAttr("matches", matches)
	sp.SetAttr("queries", env.Counters.QueriesRun)
	sp.SetAttr("bytes", buf.Len()).End()
	if err != nil {
		return nil, err
	}
	return &cacheEntry{
		body:    buf.Bytes(),
		evalSec: evalSec,
		created: time.Now(),
		path:    fp.expr,
		matches: matches,
	}, nil
}

// deriveFragment filters an already-rendered full document down to the
// path's matches — the no-source-queries route used when the full entry
// is cached and the fallback for views partial evaluation cannot serve.
func deriveFragment(full *cacheEntry, fp *fragPlan) (*cacheEntry, error) {
	doc, err := xmltree.Parse(bytes.NewReader(full.body))
	if err != nil {
		return nil, fmt.Errorf("re-parsing cached document: %w", err)
	}
	var buf bytes.Buffer
	sel := xpath.Select(doc, fp.path)
	for _, n := range sel {
		if err := n.WriteIndented(&buf); err != nil {
			return nil, err
		}
	}
	return &cacheEntry{
		body:    buf.Bytes(),
		depth:   full.depth,
		evalSec: full.evalSec,
		created: time.Now(),
		path:    fp.expr,
		matches: len(sel),
	}, nil
}
