package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
)

// warmServer builds a server over an existing catalog (the "durable
// sources" a restarted daemon reconnects to) with its own metrics
// registry, mirroring testServer but reusing cat.
func warmServer(t *testing.T, cat *relstore.Catalog, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	reg := source.NewRegistry()
	for _, name := range cat.DatabaseNames() {
		db, err := cat.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		reg.Add(source.NewLocal(db))
	}
	metrics := obs.NewRegistry()
	cfg.Metrics = metrics
	s := NewServer(reg, cfg)
	if _, err := s.AddSpec("report", hospital.SpecText); err != nil {
		t.Fatal(err)
	}
	return s, metrics
}

// serveOne runs one request through the handler directly.
func serveOne(t *testing.T, s *Server, url string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header().Get("X-Aig-Cache")
}

// TestWarmRestartServesRestoredEntries is the warm-restart story: a
// daemon drains (dumping its cache), a new instance starts against the
// unchanged sources, loads the dump, and the first request is a cache
// hit — zero evaluations — with the byte-identical body.
func TestWarmRestartServesRestoredEntries(t *testing.T) {
	cat := hospital.TinyCatalog()
	dir := t.TempDir()

	s1, _ := warmServer(t, cat, Config{CacheDir: dir})
	code, body1, state := serveOne(t, s1, "/views/report?date=d1")
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("first instance: %d/%s", code, state)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, m2 := warmServer(t, cat, Config{CacheDir: dir})
	n, err := s2.LoadCache(dir)
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if n != 1 {
		t.Fatalf("installed %d entries, want 1", n)
	}
	if r := counter(m2, "aig_serve_cache_persist_restored_total"); r != 1 {
		t.Errorf("restored counter %d, want 1 (stamp should match exactly)", r)
	}
	code, body2, state := serveOne(t, s2, "/views/report?date=d1")
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("restarted instance: %d/%s, want 200/hit", code, state)
	}
	if body2 != body1 {
		t.Fatal("restored entry serves a different document")
	}
	if evals := counter(m2, "aig_serve_evaluations_total"); evals != 0 {
		t.Errorf("restart re-evaluated %d times; the restored entry should have served", evals)
	}
}

// TestWarmRestartRevalidatesIrrelevantMutation: data moved while the
// daemon was down, but the delta judge proves it irrelevant for the
// cached binding, so the entry is revalidated — installed under the new
// stamp — and still serves without an evaluation.
func TestWarmRestartRevalidatesIrrelevantMutation(t *testing.T) {
	cat := hospital.TinyCatalog()
	dir := t.TempDir()

	s1, _ := warmServer(t, cat, Config{CacheDir: dir})
	_, body1, _ := serveOne(t, s1, "/views/report?date=d1")
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Lands between stop and start: a visit on another date, excluded by
	// the root-bound date predicate on every visitInfo scan.
	tableOf(t, cat, "DB1", "visitInfo").MustInsert(relstore.Tuple{
		relstore.String("s2"), relstore.String("t4"), relstore.String("d9")})

	s2, m2 := warmServer(t, cat, Config{CacheDir: dir})
	if n, err := s2.LoadCache(dir); err != nil || n != 1 {
		t.Fatalf("LoadCache: n=%d err=%v", n, err)
	}
	if r := counter(m2, "aig_serve_cache_persist_revalidated_total"); r != 1 {
		t.Errorf("revalidated counter %d, want 1", r)
	}
	code, body2, state := serveOne(t, s2, "/views/report?date=d1")
	if code != http.StatusOK || state != "hit" {
		t.Fatalf("restarted instance: %d/%s, want 200/hit", code, state)
	}
	if body2 != body1 {
		t.Fatal("revalidated entry serves a different document")
	}
	if evals := counter(m2, "aig_serve_evaluations_total"); evals != 0 {
		t.Errorf("revalidation re-evaluated %d times", evals)
	}
}

// TestWarmRestartNeverServesStaleBytes: a *relevant* mutation lands
// while the daemon is down. The persisted entry's stamp no longer
// matches and the judge cannot prove the delta irrelevant, so the entry
// is dropped; the first request misses, evaluates, and reflects the
// mutation.
func TestWarmRestartNeverServesStaleBytes(t *testing.T) {
	cat := hospital.TinyCatalog()
	dir := t.TempDir()

	s1, _ := warmServer(t, cat, Config{CacheDir: dir})
	_, body1, _ := serveOne(t, s1, "/views/report?date=d1")
	if strings.Contains(body1, "zed") {
		t.Fatal("new patient present before the mutation")
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	tableOf(t, cat, "DB1", "patient").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("zed"), relstore.String("gold")})
	tableOf(t, cat, "DB1", "visitInfo").MustInsert(relstore.Tuple{
		relstore.String("s9"), relstore.String("t1"), relstore.String("d1")})

	s2, m2 := warmServer(t, cat, Config{CacheDir: dir})
	if n, err := s2.LoadCache(dir); err != nil || n != 0 {
		t.Fatalf("LoadCache installed %d entries (err %v), want 0 — the entry is stale", n, err)
	}
	if d := counter(m2, "aig_serve_cache_persist_dropped_total"); d != 1 {
		t.Errorf("dropped counter %d, want 1", d)
	}
	code, body2, state := serveOne(t, s2, "/views/report?date=d1")
	if code != http.StatusOK || state != "miss" {
		t.Fatalf("restarted instance: %d/%s, want 200/miss", code, state)
	}
	if !strings.Contains(body2, "zed") {
		t.Fatal("restarted instance served stale bytes: mutation missing from the document")
	}
}

// TestLoadCacheMissingAndCorrupt: a missing dump is a cold start; a
// corrupt dump is an error, not a panic or a silent stale install.
func TestLoadCacheMissingAndCorrupt(t *testing.T) {
	cat := hospital.TinyCatalog()
	s, _ := warmServer(t, cat, Config{})
	if n, err := s.LoadCache(t.TempDir()); n != 0 || err != nil {
		t.Fatalf("missing dump: n=%d err=%v, want 0/nil", n, err)
	}
}
