package serve

import (
	"errors"
	"sync"
	"time"

	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/obs"
	"github.com/aigrepro/aig/internal/relstore"
)

// refresher is the background half of incremental view maintenance:
// a loop that watches the per-source data versions and, whenever cached
// entries fall behind, either proves them still exact (delta judgement
// via ivm.Deps — the entry is restamped to the new version without
// re-evaluating) or rebuilds them by a full evaluation. Either way the
// cache stays warm across writes: steady read traffic keeps hitting
// instead of paying an evaluation after every mutation.
//
// Soundness leans on two version reads bracketing every decision. A
// cycle reads a view's stamp, snapshots its per-table versions, and
// reads the stamp again; only if the two stamps agree is the snapshot
// trusted (nothing mutated in between, so stamp, table versions, and
// data are one consistent state). Restamping additionally relies on the
// change-log judge: all deltas between an entry's recorded table
// versions and the snapshot must be provably irrelevant for the entry's
// parameter binding. Full rebuilds go through the same
// stamp-recheck-before-cache path as request misses.
type refresher struct {
	s        *Server
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	kick chan struct{}
	once sync.Once

	// dirtyAt tracks, per logical entry (cache-key prefix), when the
	// refresher first observed it stale — the start point of the
	// refresh-lag measurement.
	dirtyAt map[string]time.Time
}

func newRefresher(s *Server, interval time.Duration) *refresher {
	return &refresher{
		s:        s,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
		dirtyAt:  make(map[string]time.Time),
	}
}

func (r *refresher) start() { go r.loop() }

// stopOnce stops the loop and waits for the in-flight cycle to finish.
func (r *refresher) stopOnce() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

func (r *refresher) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		case <-r.kick:
			// Push-based invalidation: a subscription delta landed, run a
			// cycle now instead of waiting out the tick. The ticker stays as
			// the fallback for sources without push.
		}
		if r.s.draining.Load() {
			return
		}
		r.cycle()
	}
}

// viewState is one view's consistent version snapshot for a cycle.
type viewState struct {
	v     *View
	stamp string
	tv    map[string]map[string]uint64
	ok    bool
}

// snapshotView reads stamp, table versions, stamp again, accepting only
// a quiescent window. Under sustained writes faster than two version
// round trips no snapshot is consistent; the view's entries simply wait
// for a later cycle.
func (s *Server) snapshotView(v *View) viewState {
	st := viewState{v: v}
	for attempt := 0; attempt < 3; attempt++ {
		s1, settled, err := s.stamp(v)
		if err != nil {
			s.m.refreshErrors.Inc()
			return st
		}
		if !settled {
			continue
		}
		tv, err := s.tableVersions(v)
		if err != nil {
			s.m.refreshErrors.Inc()
			return st
		}
		s2, _, err := s.stamp(v)
		if err != nil {
			s.m.refreshErrors.Inc()
			return st
		}
		if s1 == s2 {
			st.stamp, st.tv, st.ok = s1, tv, true
			return st
		}
	}
	return st
}

// cycle runs one refresh pass over the whole cache.
func (r *refresher) cycle() {
	s := r.s
	s.m.refreshCycles.Inc()

	items := s.cache.Snapshot()
	states := make(map[string]viewState)
	live := make(map[string]bool, len(items))

	var dirty []lruItem
	for _, it := range items {
		live[it.entry.keyPrefix] = true
		st, ok := states[it.entry.view]
		if !ok {
			if v := s.View(it.entry.view); v != nil {
				st = s.snapshotView(v)
			}
			states[it.entry.view] = st
		}
		if !st.ok {
			continue
		}
		if it.entry.stamp == st.stamp {
			delete(r.dirtyAt, it.entry.keyPrefix)
			continue
		}
		dirty = append(dirty, it)
	}
	s.m.refreshDirty.Set(float64(len(dirty)))

	for _, it := range dirty {
		select {
		case <-r.stop:
			return
		default:
		}
		r.refreshOne(it, states[it.entry.view])
	}

	// Entries evicted from the cache no longer need lag tracking.
	for prefix := range r.dirtyAt {
		if !live[prefix] {
			delete(r.dirtyAt, prefix)
		}
	}
}

// refreshOne brings one stale entry up to the cycle's snapshot, by
// restamp when the judge proves the deltas irrelevant, by full
// re-evaluation otherwise. Each refresh runs as its own "refresh"-kind
// trace, so slow background rebuilds are as retrievable from the flight
// recorder as slow client requests.
func (r *refresher) refreshOne(it lruItem, st viewState) {
	s := r.s
	e := it.entry
	start := time.Now()
	dirtySince, seen := r.dirtyAt[e.keyPrefix]
	if !seen {
		dirtySince = start
		r.dirtyAt[e.keyPrefix] = start
	}

	rt, ctx := s.beginBackgroundTrace("refresh", st.v, start)
	rt.params = canonicalParams(e.params)
	defer rt.finish()

	// Fragment entries are judged against the dependency map filtered to
	// the scans their path can reach: a delta landing outside that set
	// restamps the fragment even when it would rebuild the full document.
	deps := st.v.deps
	var fp *fragPlan
	if e.path != "" {
		var perr error
		fp, perr = st.v.fragmentPlan(e.path, s.reg)
		if perr != nil {
			// A cached fragment whose path no longer compiles (the view was
			// replaced): drop it rather than refresh it forever.
			s.cache.Remove(it.key)
			s.m.refreshErrors.Inc()
			rt.fail(perr)
			return
		}
		deps = st.v.fragDeps(fp)
	}

	tr, parent := obs.SpanFromContext(ctx)
	judgeSpan := tr.StartSpan("ivm.judge", parent)
	unaffected := s.judgeUnaffected(e, st, deps)
	judgeSpan.SetAttr("unaffected", unaffected).End()

	if unaffected {
		newKey := e.keyPrefix + "\x00" + st.stamp
		s.cache.Replace(it.key, newKey, e.restamped(st.stamp, st.tv))
		s.m.cacheEntries.Set(float64(s.cache.Len()))
		s.m.refreshDelta.Inc()
		rt.setCache("restamp")
	} else {
		// Full rebuild through the shared miss path: coalesces with any
		// concurrent client miss on the same key and only caches if the
		// stamp holds through the evaluation. The stale entry is removed
		// either way — its key can never be hit again (stamps are
		// monotone), so keeping it would only crowd the LRU.
		var err error
		if fp != nil {
			_, err, _ = s.fragmentFlight(ctx, st.v, e.params, fp, e.keyPrefix, st.stamp, false, nil)
		} else {
			_, err, _ = s.missFlight(ctx, st.v, e.params, e.keyPrefix, st.stamp, false)
		}
		s.cache.Remove(it.key)
		s.m.cacheEntries.Set(float64(s.cache.Len()))
		rt.setCache("rebuild")
		if err != nil {
			s.m.refreshErrors.Inc()
			rt.fail(err)
			return
		}
		s.m.refreshFull.Inc()
	}

	s.m.refreshSec.Observe(time.Since(start).Seconds())
	s.m.refreshLagSec.Observe(time.Since(dirtySince).Seconds())
	delete(r.dirtyAt, e.keyPrefix)
}

// judgeUnaffected proves, if it can, that the entry's body is identical
// at the cycle's snapshot: for every dependency table whose version
// moved, every logged change in the window is judged irrelevant for the
// entry's parameter binding. Any gap in the proof — unparseable
// parameters, a truncated change log, a table appearing or vanishing, a
// delta the judge cannot exclude — falls back to full re-evaluation.
// deps is the dependency map to judge against: the view's full map for
// document entries, the path-filtered map for fragment entries.
func (s *Server) judgeUnaffected(e *cacheEntry, st viewState, deps *ivm.Deps) bool {
	if deps == nil {
		return false
	}
	params, err := deps.ParseParams(e.params)
	if err != nil {
		return false
	}
	for _, sourceName := range st.v.sources {
		old := e.tableVers[sourceName]
		cur := st.tv[sourceName]
		for table, cv := range cur {
			ov, ok := old[table]
			if !ok {
				// A table the entry never saw: relevant only if scanned.
				if deps.DependsOn(sourceName, table) {
					return false
				}
				continue
			}
			if cv == ov {
				continue
			}
			if !deps.DependsOn(sourceName, table) {
				continue
			}
			src, gerr := s.reg.Get(sourceName)
			if gerr != nil {
				return false
			}
			cs, cerr := src.ChangesSince(table, ov)
			if cerr != nil {
				return false
			}
			if terr := cs.TruncationError(); terr != nil {
				// The window is gone; metric why before falling back. A
				// rolled or reset log is normal churn, a restart means a
				// source lost its watermark continuity (it runs without
				// durable state, or recovered from an older snapshot).
				var lt *relstore.ErrLogTruncated
				if errors.As(terr, &lt) {
					switch lt.Cause {
					case relstore.TruncateReset:
						s.m.refreshTruncReset.Inc()
					case relstore.TruncateRestart:
						s.m.refreshTruncRestart.Inc()
					default:
						s.m.refreshTruncRolled.Inc()
					}
				}
				return false
			}
			// The log may already extend past the snapshot (writes keep
			// landing); that is fine — if every change up to cs.Now is
			// irrelevant, the body is unchanged at every version in the
			// window, including the snapshot's.
			if deps.Judge(sourceName, table, cs, params) != ivm.Unaffected {
				return false
			}
		}
		for table := range old {
			if _, ok := cur[table]; !ok && deps.DependsOn(sourceName, table) {
				return false // dependency table dropped
			}
		}
	}
	return true
}
