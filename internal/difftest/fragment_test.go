package difftest

import (
	"testing"

	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/xpath"
)

// fragSeeds is the deterministic seed range the fragment oracle sweeps.
const fragSeeds = 40

// TestFragmentOracle sweeps generated instances through the fragment
// oracle: for every generated path, after every mutation, the partial
// evaluator's fragment must byte-equal the post-hoc oracle, and the
// filtered-deps judge must never rule a fragment-changing delta
// irrelevant. The sweep must exercise both maintenance verdicts.
func TestFragmentOracle(t *testing.T) {
	n := fragSeeds
	muts := 15
	if testing.Short() {
		n, muts = 10, 8
	}
	var steps, checks, restamps, fulls, skipped, pathless int
	cfg := randaig.DefaultConfig()
	for seed := int64(0); seed < int64(n); seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		paths := GenerateFragmentPaths(inst, seed, 3)
		if len(paths) == 0 {
			pathless++
			continue
		}
		seq := GenerateMutations(inst, seed, muts)
		out := CheckFragment(inst, paths, seq, FragmentOptions{})
		if out.Divergence != nil {
			t.Fatalf("seed %d (paths %q) diverged:\n%s", seed, paths, out.Divergence.Error())
		}
		if out.Skipped {
			skipped++
			continue
		}
		steps += out.Steps
		checks += out.Checks
		restamps += out.Restamps
		fulls += out.Fulls
	}
	if checks == 0 {
		t.Fatal("no path comparison ran across the whole sweep")
	}
	if steps == 0 {
		t.Fatal("no mutation applied across the whole sweep")
	}
	if restamps == 0 {
		t.Error("no delta was ever proven irrelevant for a fragment — restamp path untested")
	}
	if fulls == 0 {
		t.Error("no delta ever invalidated a fragment — rebuild path untested")
	}
	t.Logf("%d instances (%d skipped, %d without paths), %d steps, %d comparisons: %d restamps, %d rebuilds",
		n, skipped, pathless, steps, checks, restamps, fulls)
}

// TestGenerateFragmentPathsDeterministicAndValid requires the path
// generator to be deterministic per seed and every emitted expression to
// round-trip through the parser.
func TestGenerateFragmentPathsDeterministicAndValid(t *testing.T) {
	inst, err := randaig.Generate(5, randaig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := GenerateFragmentPaths(inst, 5, 8)
	second := GenerateFragmentPaths(inst, 5, 8)
	if len(first) == 0 {
		t.Fatal("generator produced no paths")
	}
	if len(first) != len(second) {
		t.Fatalf("generator not deterministic: %d vs %d paths", len(first), len(second))
	}
	for i, expr := range first {
		if expr != second[i] {
			t.Fatalf("path %d differs across runs: %q vs %q", i, expr, second[i])
		}
		p, err := xpath.Parse(expr)
		if err != nil {
			t.Fatalf("generated path %q does not parse: %v", expr, err)
		}
		if rt, err := xpath.Parse(p.String()); err != nil || rt.String() != p.String() {
			t.Fatalf("canonical form of %q does not round-trip: %q (%v)", expr, p.String(), err)
		}
	}
}

// TestFragmentFaultInjection corrupts the partial evaluator's output and
// proves the oracle reports it, ShrinkFragment minimizes the mutation
// sequence while preserving the divergence, and the persisted regression
// replays under the fault but is clean without it.
func TestFragmentFaultInjection(t *testing.T) {
	opts := FragmentOptions{Fault: func(_, got string) string {
		if got == "" {
			return got
		}
		return got + "<corrupt/>"
	}}
	cfg := randaig.DefaultConfig()

	var inst *randaig.Instance
	var paths []string
	var seq []Mutation
	var out FragmentOutcome
	for seed := int64(0); seed < 30; seed++ {
		cand, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		ps := GenerateFragmentPaths(cand, seed, 4)
		if len(ps) == 0 {
			continue
		}
		s := GenerateMutations(cand, seed, 12)
		o := CheckFragment(cand, ps, s, opts)
		if o.Divergence != nil {
			inst, paths, seq, out = cand, ps, s, o
			break
		}
	}
	if inst == nil {
		t.Fatal("no seed in range produced a matching fragment under the corrupted evaluator")
	}
	if out.Divergence.Leg != "fragment" {
		t.Fatalf("divergence on leg %q, want fragment", out.Divergence.Leg)
	}

	shrunk, div, checks := ShrinkFragment(inst, paths, seq, opts, 150)
	if div == nil {
		t.Fatal("shrink lost the divergence")
	}
	if checks == 0 {
		t.Fatal("shrink performed no checks")
	}
	if len(shrunk) > len(seq) {
		t.Errorf("shrink grew the sequence: %d > %d", len(shrunk), len(seq))
	}
	t.Logf("shrunk %d -> %d mutations in %d checks", len(seq), len(shrunk), checks)

	// Persist and replay the {seed, config, paths, mutations} quadruple.
	dir := t.TempDir()
	reg := Regression{
		Seed: inst.Seed, Config: cfg, Mode: "fragment",
		Paths: paths, Mutations: shrunk, Leg: "fragment", Note: "injected corrupt partial evaluator",
	}
	if _, err := SaveRegression(dir, reg); err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, loaded := range corpus {
		replayed, err := loaded.Instance()
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		again := CheckFragment(replayed, loaded.Paths, loaded.Mutations, opts)
		if again.Divergence == nil {
			t.Fatal("replayed regression does not reproduce under the fault")
		}
		// Without the fault the same run must be clean: the mismatch came
		// from the injected corruption, not the shrink.
		clean := CheckFragment(replayed, loaded.Paths, loaded.Mutations, FragmentOptions{})
		if clean.Divergence != nil {
			t.Fatalf("shrunk sequence diverges without the fault:\n%s", clean.Divergence.Error())
		}
	}
}

// TestFragmentDeterministicReplay re-runs the same {instance, paths,
// mutations} triple and requires identical outcomes — CheckFragment must
// not leak state into the instance it was handed.
func TestFragmentDeterministicReplay(t *testing.T) {
	inst, err := randaig.Generate(7, randaig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	paths := GenerateFragmentPaths(inst, 7, 3)
	if len(paths) == 0 {
		t.Skip("seed 7 produced no paths")
	}
	seq := GenerateMutations(inst, 7, 10)
	first := CheckFragment(inst, paths, seq, FragmentOptions{})
	second := CheckFragment(inst, paths, seq, FragmentOptions{})
	if first.Divergence != nil || second.Divergence != nil {
		t.Fatalf("unexpected divergence: %+v / %+v", first.Divergence, second.Divergence)
	}
	if first.Steps != second.Steps || first.Checks != second.Checks ||
		first.Restamps != second.Restamps || first.Fulls != second.Fulls {
		t.Fatalf("outcomes differ across replays: %+v vs %+v", first, second)
	}
}
