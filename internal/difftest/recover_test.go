package difftest

import (
	"encoding/json"
	"testing"
)

func TestCheckRecoverySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		out, ops := CheckRecovery(seed, RecoverConfig{Mutations: 12})
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged @%d: %s\nops: %v\nwant:\n%s\ngot:\n%s",
				seed, out.TruncateAt, out.Divergence.Detail, ops, out.Divergence.Want, out.Divergence.Got)
		}
		if out.Records == 0 || out.Crashes == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, out)
		}
	}
}

func TestCheckRecoveryWithAutoSnapshots(t *testing.T) {
	// Snapshot every 3 records so the sweep crosses rotations: crashes
	// must land on snapshot state + short replay tails.
	out, _ := CheckRecovery(3, RecoverConfig{Mutations: 12, SnapshotEvery: 3})
	if out.Divergence != nil {
		t.Fatalf("diverged @%d: %s", out.TruncateAt, out.Divergence.Detail)
	}
	if out.Snapshots == 0 {
		t.Fatalf("auto-snapshot cadence never rotated: %+v", out)
	}
}

func TestCheckRecoveryLogCaps(t *testing.T) {
	// A tiny delta log and a disabled log stress the truncation-cause
	// bookkeeping that must survive crashes byte-exactly.
	for _, cap := range []int{1, -1} {
		out, _ := CheckRecovery(5, RecoverConfig{Mutations: 10, LogCap: cap})
		if out.Divergence != nil {
			t.Fatalf("logcap %d diverged @%d: %s", cap, out.TruncateAt, out.Divergence.Detail)
		}
	}
}

func TestRecoverOpsRoundTripJSON(t *testing.T) {
	// Regressions replay from JSON: the generated sequence must survive a
	// marshal round trip and reproduce the identical outcome.
	cfg := RecoverConfig{Mutations: 10}
	out, ops := CheckRecovery(7, cfg)
	if out.Divergence != nil {
		t.Fatalf("seed 7 diverged: %s", out.Divergence.Detail)
	}
	data, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}
	var back []RecoverOp
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	out2 := ReplayRecovery(7, cfg, back)
	if out2.Divergence != nil {
		t.Fatalf("round-tripped ops diverged: %s", out2.Divergence.Detail)
	}
	if out2.Records != out.Records || out2.Crashes != out.Crashes {
		t.Fatalf("round trip changed outcome: %+v vs %+v", out, out2)
	}
}

func TestShrinkRecoveryBudget(t *testing.T) {
	// No real divergence to shrink (the store is correct), so exercise the
	// no-repro path: shrink of a passing sequence returns nil divergence.
	_, ops := CheckRecovery(2, RecoverConfig{Mutations: 8})
	kept, div, checks := ShrinkRecovery(2, RecoverConfig{Mutations: 8}, ops, 5)
	if div != nil {
		t.Fatalf("shrink fabricated a divergence: %+v", div)
	}
	if len(kept) != len(ops) {
		t.Fatalf("shrink of passing sequence dropped ops: %d -> %d", len(ops), len(kept))
	}
	if checks != 1 {
		t.Fatalf("want 1 check for non-reproducing input, got %d", checks)
	}
}
