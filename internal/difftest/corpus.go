package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/randaig"
)

// Regression is one persisted failing instance: enough to regenerate it
// deterministically ({seed, config}) and re-minimize it ({ops}), plus
// bookkeeping about what diverged.
type Regression struct {
	Seed   int64          `json:"seed"`
	Config randaig.Config `json:"config"`
	Ops    []randaig.Op   `json:"ops,omitempty"`
	// Leg is the oracle leg that diverged when the regression was filed.
	Leg string `json:"leg,omitempty"`
	// Note is a human explanation (what was wrong, when it was fixed).
	Note string `json:"note,omitempty"`
	// Mode selects the oracle to replay the regression under: "" means
	// Check (the evaluation-path matrix), "ivm" means CheckIVM, "certify"
	// means CheckCertify and "fragment" means CheckFragment, each over
	// the recorded mutation sequence.
	Mode string `json:"mode,omitempty"`
	// Mutations is the shrunken mutation sequence for Mode "ivm",
	// "certify" and "fragment".
	Mutations []Mutation `json:"mutations,omitempty"`
	// Paths is the fragment path set for Mode "fragment".
	Paths []string `json:"paths,omitempty"`
	// LogCap is the change-log limit CheckIVM ran with (Mode "ivm").
	LogCap int `json:"log_cap,omitempty"`
	// RecoverOps and RecoverCfg are the shrunken operation sequence and
	// torture configuration for Mode "recover" (ReplayRecovery). RecoverCfg
	// pins the diverging crash offset in TruncateAt when one is known.
	RecoverOps []RecoverOp    `json:"recover_ops,omitempty"`
	RecoverCfg *RecoverConfig `json:"recover_cfg,omitempty"`
}

// Instance regenerates the shrunken instance from the recorded seed,
// config and op sequence.
func (r Regression) Instance() (*randaig.Instance, error) {
	inst, err := randaig.Generate(r.Seed, r.Config)
	if err != nil {
		return nil, fmt.Errorf("difftest: regression seed %d: %v", r.Seed, err)
	}
	return inst.ApplyAll(r.Ops)
}

// SaveRegression writes the regression as seed-<n>.json (or
// seed-<n>-<k>.json when that name is taken) under dir, creating dir if
// needed. It returns the path written.
func SaveRegression(dir string, r Regression) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	base := fmt.Sprintf("seed-%d", r.Seed)
	for k := 0; ; k++ {
		name := base + ".json"
		if k > 0 {
			name = fmt.Sprintf("%s-%d.json", base, k)
		}
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err == nil {
			continue
		}
		return path, os.WriteFile(path, data, 0o644)
	}
}

// LoadCorpus reads every *.json regression under dir, sorted by file
// name. A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) (map[string]Regression, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]Regression)
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var r Regression
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("difftest: corpus file %s: %v", name, err)
		}
		out[name] = r
	}
	return out, nil
}
