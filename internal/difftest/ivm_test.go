package difftest

import (
	"testing"

	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/randaig"
)

// ivmSeeds is the deterministic seed range the IVM oracle sweeps.
const ivmSeeds = 60

// TestIVMOracle sweeps generated instances through the incremental
// maintenance oracle: after every mutation the judge-maintained document
// must match a from-scratch evaluation. The sweep must exercise both
// refresher paths — restamps (judge proved irrelevance) and full
// refreshes.
func TestIVMOracle(t *testing.T) {
	n := ivmSeeds
	muts := 25
	if testing.Short() {
		n, muts = 12, 10
	}
	var steps, restamps, fulls, skipped int
	cfg := randaig.DefaultConfig()
	for seed := int64(0); seed < int64(n); seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		seq := GenerateMutations(inst, seed, muts)
		out := CheckIVM(inst, seq, IVMOptions{})
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, out.Divergence.Error())
		}
		if out.Skipped {
			skipped++
			continue
		}
		steps += out.Steps
		restamps += out.Restamps
		fulls += out.Fulls
	}
	if steps == 0 {
		t.Fatal("no mutation applied across the whole sweep")
	}
	if restamps == 0 {
		t.Error("no mutation was ever proven irrelevant — restamp path untested")
	}
	if fulls == 0 {
		t.Error("no mutation ever forced a full refresh — refresh path untested")
	}
	t.Logf("%d instances (%d skipped), %d steps: %d restamps, %d full refreshes", n, skipped, steps, restamps, fulls)
}

// TestIVMTruncationForcesFullRefresh disables delta logging, so every
// change window comes back truncated: the judge must refuse every proof
// and the maintained document must still track the oracle via full
// refreshes only.
func TestIVMTruncationForcesFullRefresh(t *testing.T) {
	cfg := randaig.DefaultConfig()
	var steps int
	for seed := int64(0); seed < 20 && steps == 0; seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		seq := GenerateMutations(inst, seed, 12)
		out := CheckIVM(inst, seq, IVMOptions{LogCap: -1})
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, out.Divergence.Error())
		}
		if out.Skipped || out.Steps == 0 {
			continue
		}
		steps = out.Steps
		if out.Restamps != 0 {
			t.Fatalf("seed %d: %d restamps with delta logging disabled — judge accepted a truncated window", seed, out.Restamps)
		}
		if out.Truncated == 0 {
			t.Fatalf("seed %d: no truncated change window observed", seed)
		}
		if out.Fulls != out.Steps {
			t.Fatalf("seed %d: %d full refreshes for %d steps", seed, out.Fulls, out.Steps)
		}
	}
	if steps == 0 {
		t.Fatal("no seed produced an applicable mutation sequence")
	}
}

// TestIVMFaultInjection simulates an unsound judge (every verdict forced
// to Unaffected, so the cached document is never refreshed) and proves
// the oracle catches the resulting stale document, that ShrinkIVM
// minimizes the mutation sequence while preserving the divergence, and
// that the persisted regression replays.
func TestIVMFaultInjection(t *testing.T) {
	opts := IVMOptions{Fault: func(int, ivm.Verdict) ivm.Verdict { return ivm.Unaffected }}
	cfg := randaig.DefaultConfig()

	var inst *randaig.Instance
	var seq []Mutation
	var out IVMOutcome
	for seed := int64(0); seed < 30; seed++ {
		cand, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		s := GenerateMutations(cand, seed, 20)
		o := CheckIVM(cand, s, opts)
		if o.Divergence != nil {
			inst, seq, out = cand, s, o
			break
		}
	}
	if inst == nil {
		t.Fatal("no seed in range produced a document-changing mutation under the broken judge")
	}
	if out.Divergence.Leg != "ivm" {
		t.Fatalf("divergence on leg %q, want ivm", out.Divergence.Leg)
	}

	shrunk, div, checks := ShrinkIVM(inst, seq, opts, 150)
	if div == nil {
		t.Fatal("shrink lost the divergence")
	}
	if checks == 0 {
		t.Fatal("shrink performed no checks")
	}
	if len(shrunk) >= len(seq) {
		t.Errorf("shrink did not reduce the sequence: %d >= %d", len(shrunk), len(seq))
	}
	t.Logf("shrunk %d -> %d mutations in %d checks", len(seq), len(shrunk), checks)

	// Persist and replay the {seed, config, mutations} triple.
	dir := t.TempDir()
	reg := Regression{
		Seed: inst.Seed, Config: cfg, Mode: "ivm",
		Mutations: shrunk, Leg: "ivm", Note: "injected unsound judge",
	}
	if _, err := SaveRegression(dir, reg); err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, loaded := range corpus {
		replayed, err := loaded.Instance()
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		again := CheckIVM(replayed, loaded.Mutations, opts)
		if again.Divergence == nil {
			t.Fatal("replayed regression does not reproduce under the fault")
		}
		// With a sound judge the same sequence must be clean: the stale
		// document came from the injected fault, not the shrink.
		clean := CheckIVM(replayed, loaded.Mutations, IVMOptions{LogCap: loaded.LogCap})
		if clean.Divergence != nil {
			t.Fatalf("shrunk sequence diverges without the fault:\n%s", clean.Divergence.Error())
		}
	}
}

// TestIVMDeterministicReplay re-runs the same {instance, mutations} pair
// and requires identical outcomes — CheckIVM must not leak state into
// the instance it was handed.
func TestIVMDeterministicReplay(t *testing.T) {
	inst, err := randaig.Generate(3, randaig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := GenerateMutations(inst, 3, 15)
	first := CheckIVM(inst, seq, IVMOptions{})
	second := CheckIVM(inst, seq, IVMOptions{})
	if first.Divergence != nil || second.Divergence != nil {
		t.Fatalf("unexpected divergence: %+v / %+v", first.Divergence, second.Divergence)
	}
	if first.Steps != second.Steps || first.Restamps != second.Restamps || first.Fulls != second.Fulls {
		t.Fatalf("outcomes differ across replays: %+v vs %+v", first, second)
	}
	// The generator itself must be deterministic too.
	again := GenerateMutations(inst, 3, 15)
	if len(again) != len(seq) {
		t.Fatalf("generator not deterministic: %d vs %d mutations", len(again), len(seq))
	}
	for i := range seq {
		if seq[i].String() != again[i].String() {
			t.Fatalf("mutation %d differs: %s vs %s", i, seq[i], again[i])
		}
	}
}
