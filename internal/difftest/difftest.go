// Package difftest is the differential oracle for AIG evaluation: it
// runs one randaig instance through every evaluation path the system
// has and asserts that they all agree — the paper's central claim that
// specialization (constraint compilation §3.3, multi-source
// decomposition §3.4, copy elimination §4, merging and scheduling §5,
// recursion unfolding §5.5) preserves the conceptual semantics of §3.2.
//
// The oracle matrix for one instance:
//
//	plain        conceptual Eval of the constraint-free unfolded grammar
//	             (must always succeed — the ground-truth document)
//	recursion    conceptual Eval of the raw recursive grammar (data-bounded)
//	             == plain, when the instance is recursive
//	conceptual   conceptual Eval of the fully specialized grammar
//	             (compiled + decomposed + unfolded) — the reference outcome
//	decompose    conceptual Eval of compiled + unfolded (no decomposition)
//	             == conceptual
//	constraints  xconstraint.CheckAll on the plain document agrees with
//	             whether the reference aborted on a compiled guard
//	conform      both documents conform to the DTD
//	mediator[…]  mediator.Evaluate across merge × copy-elim × scheduler,
//	             plus one degenerate-network cell == conceptual
//	recursive[…] mediator.EvaluateRecursive at several estimated depths
//	             == conceptual, when the instance is recursive
//	remote       mediator.Evaluate against TCP-served sources == conceptual
//
// Document agreement is canonical-serialization equality; error
// agreement means both sides abort with *aig.AbortError (guard order may
// differ, so the specific guard is not compared).
package difftest

import (
	"errors"
	"fmt"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/remote"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
	"github.com/aigrepro/aig/internal/xmltree"
)

// Options configures one oracle run.
type Options struct {
	// Remote includes the TCP remote-source leg (slower: starts one server
	// per database).
	Remote bool
	// Fault, when non-nil, is called with each mediator leg's document
	// before comparison. Tests use it to corrupt a leg and verify the
	// oracle catches and shrinks the divergence; production runs leave it
	// nil.
	Fault func(leg string, doc *xmltree.Node)
}

// Divergence describes one disagreement between evaluation paths.
type Divergence struct {
	Seed   int64  `json:"seed"`
	Leg    string `json:"leg"`
	Detail string `json:"detail"`
	// Want/Got carry the reference and divergent outcomes (canonical
	// serializations, or error strings prefixed with "error: ").
	Want string `json:"want,omitempty"`
	Got  string `json:"got,omitempty"`
}

// Error renders the divergence compactly.
func (d *Divergence) Error() string {
	msg := fmt.Sprintf("difftest: seed %d: leg %s: %s", d.Seed, d.Leg, d.Detail)
	if d.Want != "" || d.Got != "" {
		msg += fmt.Sprintf("\n  want: %s\n  got:  %s", clip(d.Want, 400), clip(d.Got, 400))
	}
	return msg
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + fmt.Sprintf("… (%d bytes)", len(s))
}

// Outcome summarizes one oracle run.
type Outcome struct {
	// Divergence is nil when every path agreed.
	Divergence *Divergence
	// Evals counts the evaluations performed (oracle throughput metric).
	Evals int
	// Aborted reports whether the reference outcome was a guard abort.
	Aborted bool
}

// Check runs the instance through the oracle matrix and returns the
// first divergence found (legs run in a fixed order, so the result is
// deterministic).
func Check(inst *randaig.Instance, opts Options) Outcome {
	o := &oracle{inst: inst, opts: opts}
	div := o.run()
	return Outcome{Divergence: div, Evals: o.evals, Aborted: o.refAborted}
}

type oracle struct {
	inst  *randaig.Instance
	opts  Options
	evals int

	refDoc     *xmltree.Node // reference document (nil when aborted)
	refErr     error
	refAborted bool
}

func (o *oracle) diverge(leg, detail, want, got string) *Divergence {
	return &Divergence{Seed: o.inst.Seed, Leg: leg, Detail: detail, Want: want, Got: got}
}

func isAbort(err error) bool {
	var ab *aig.AbortError
	return errors.As(err, &ab)
}

// refOutcome renders the reference outcome for divergence messages.
func (o *oracle) refOutcome() string {
	if o.refErr != nil {
		return "error: " + o.refErr.Error()
	}
	return o.refDoc.Canonical()
}

// compare checks one leg's outcome against the reference.
func (o *oracle) compare(leg string, doc *xmltree.Node, err error) *Divergence {
	switch {
	case o.refErr == nil && err == nil:
		want, got := o.refDoc.Canonical(), doc.Canonical()
		if want != got {
			return o.diverge(leg, "documents differ", want, got)
		}
	case o.refErr != nil && err != nil:
		if isAbort(o.refErr) != isAbort(err) {
			return o.diverge(leg, "error kinds differ", o.refOutcome(), "error: "+err.Error())
		}
	default:
		return o.diverge(leg, "success/failure mismatch", o.refOutcome(), render(doc, err))
	}
	return nil
}

func render(doc *xmltree.Node, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return doc.Canonical()
}

func (o *oracle) run() *Divergence {
	inst := o.inst
	env := inst.Env()
	schemas := inst.Schemas()
	stats := inst.Stats()

	// Ground truth: the constraint-free grammar, unfolded, conceptually.
	plain := inst.AIG.Clone()
	plain.Constraints = nil
	plainU, err := specialize.Unfold(plain, inst.UnfoldDepth)
	if err != nil {
		return o.diverge("setup", "unfold of plain grammar failed: "+err.Error(), "", "")
	}
	o.evals++
	plainDoc, err := plainU.Eval(env, inst.RootInh)
	if err != nil {
		return o.diverge("plain", "constraint-free evaluation failed: "+err.Error(), "", "")
	}

	// The raw recursive grammar terminates on the DAG data and must
	// produce the same document as its unfolding.
	if inst.Recursive {
		o.evals++
		recDoc, err := plain.Eval(env, inst.RootInh)
		if err != nil {
			return o.diverge("recursion", "raw recursive evaluation failed: "+err.Error(), "", "")
		}
		if recDoc.Canonical() != plainDoc.Canonical() {
			return o.diverge("recursion", "unfolded and raw recursive documents differ",
				plainDoc.Canonical(), recDoc.Canonical())
		}
	}

	// Reference: the fully specialized grammar, conceptually.
	comp, err := specialize.CompileConstraints(inst.AIG)
	if err != nil {
		return o.diverge("setup", "constraint compilation failed: "+err.Error(), "", "")
	}
	dec, err := specialize.DecomposeQueries(comp, schemas, stats, sqlmini.PlanOptions{})
	if err != nil {
		return o.diverge("setup", "query decomposition failed: "+err.Error(), "", "")
	}
	decU, err := specialize.Unfold(dec, inst.UnfoldDepth)
	if err != nil {
		return o.diverge("setup", "unfold of specialized grammar failed: "+err.Error(), "", "")
	}
	o.evals++
	o.refDoc, o.refErr = decU.Eval(env, inst.RootInh)
	if o.refErr != nil {
		if !isAbort(o.refErr) {
			return o.diverge("conceptual", "specialized evaluation failed with a non-abort error: "+o.refErr.Error(), "", "")
		}
		o.refAborted = true
		o.refDoc = nil
	}

	// Specialization must not change the document (when no guard fires).
	if o.refErr == nil && o.refDoc.Canonical() != plainDoc.Canonical() {
		return o.diverge("conceptual", "specialized document differs from plain document",
			plainDoc.Canonical(), o.refDoc.Canonical())
	}

	// Decomposition alone must agree with the full pipeline.
	compU, err := specialize.Unfold(comp, inst.UnfoldDepth)
	if err != nil {
		return o.diverge("setup", "unfold of compiled grammar failed: "+err.Error(), "", "")
	}
	o.evals++
	doc2, err2 := compU.Eval(env, inst.RootInh)
	if d := o.compare("decompose", doc2, err2); d != nil {
		return d
	}

	// The compiled guards must agree with the declarative tree checker.
	violations := xconstraint.CheckAll(inst.AIG.Constraints, plainDoc)
	if o.refAborted != (len(violations) > 0) {
		detail := fmt.Sprintf("guards aborted=%v but tree checker found %d violations", o.refAborted, len(violations))
		for _, v := range violations {
			detail += "\n  " + v.Error()
		}
		return o.diverge("constraints", detail, "", "")
	}

	// Both documents conform to the DTD.
	checker := dtd.NewChecker(inst.AIG.DTD)
	if err := checker.Check(plainDoc); err != nil {
		return o.diverge("conform", "plain document does not conform: "+err.Error(), "", "")
	}
	if o.refDoc != nil {
		if err := checker.Check(o.refDoc); err != nil {
			return o.diverge("conform", "specialized document does not conform: "+err.Error(), "", "")
		}
	}

	// Mediator across the option matrix.
	reg := source.RegistryFromCatalog(inst.Catalog)
	for _, cell := range matrix() {
		o.evals++
		leg := cell.leg
		med := mediator.New(reg, cell.opts)
		res, err := med.Evaluate(decU, inst.RootInh)
		var doc *xmltree.Node
		if err == nil {
			doc = res.Doc
			if o.opts.Fault != nil {
				o.opts.Fault(leg, doc)
			}
		}
		if d := o.compare(leg, doc, err); d != nil {
			return d
		}
	}

	// Runtime re-unrolling at several (under)estimated depths.
	if inst.Recursive {
		for _, est := range []int{1, 2} {
			o.evals++
			leg := fmt.Sprintf("recursive[est=%d]", est)
			med := mediator.New(reg, mediator.DefaultOptions())
			res, _, err := med.EvaluateRecursive(dec, inst.RootInh, est, inst.UnfoldDepth+2)
			var doc *xmltree.Node
			if err == nil {
				doc = res.Doc
			}
			if d := o.compare(leg, doc, err); d != nil {
				return d
			}
		}
	}

	// TCP remote sources.
	if o.opts.Remote {
		if d := o.remoteLeg(decU); d != nil {
			return d
		}
	}
	return nil
}

// matrixCell is one mediator option combination.
type matrixCell struct {
	leg  string
	opts mediator.Options
}

// matrix enumerates the mediator option cross-product: merge × copy
// elimination × scheduler, plus one degenerate-network cell.
func matrix() []matrixCell {
	scheds := []struct {
		name string
		algo mediator.ScheduleAlgo
	}{
		{"level", mediator.ScheduleLevel},
		{"fifo", mediator.ScheduleFIFO},
		{"dynamic", mediator.ScheduleDynamic},
	}
	var cells []matrixCell
	for _, merge := range []bool{true, false} {
		for _, copyElim := range []bool{true, false} {
			for _, s := range scheds {
				cells = append(cells, matrixCell{
					leg: fmt.Sprintf("mediator[merge=%v,copyelim=%v,sched=%s]", merge, copyElim, s.name),
					opts: mediator.Options{
						Merge: merge, CopyElim: copyElim,
						Schedule: s.algo, Net: mediator.DefaultNet(),
					},
				})
			}
		}
	}
	// A pathological network model must change cost, never semantics.
	slow := mediator.NetModel{
		BandwidthBytesPerSec: 1000,
		LatencySec:           0.5,
		QueryOverheadSec:     0.25,
		MediatorRowCostSec:   0.01,
	}
	cells = append(cells, matrixCell{
		leg:  "mediator[net=slow]",
		opts: mediator.Options{Merge: true, CopyElim: true, Schedule: mediator.ScheduleLevel, Net: slow},
	})
	return cells
}

// remoteLeg serves every database over loopback TCP and evaluates the
// specialized grammar through remote clients.
func (o *oracle) remoteLeg(decU *aig.AIG) *Divergence {
	var sources []source.Source
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	for _, name := range o.inst.Catalog.DatabaseNames() {
		db, err := o.inst.Catalog.Database(name)
		if err != nil {
			return o.diverge("remote", "catalog: "+err.Error(), "", "")
		}
		srv := remote.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return o.diverge("remote", "listen: "+err.Error(), "", "")
		}
		cleanup = append(cleanup, func() { srv.Close() })
		client, err := remote.Dial(name, addr)
		if err != nil {
			return o.diverge("remote", "dial: "+err.Error(), "", "")
		}
		cleanup = append(cleanup, func() { client.Close() })
		sources = append(sources, client)
	}
	o.evals++
	med := mediator.New(source.NewRegistry(sources...), mediator.DefaultOptions())
	res, err := med.Evaluate(decU, o.inst.RootInh)
	var doc *xmltree.Node
	if err == nil {
		doc = res.Doc
	}
	return o.compare("remote", doc, err)
}
