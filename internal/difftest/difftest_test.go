package difftest

import (
	"testing"

	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/xmltree"
)

// oracleSeeds is the fixed deterministic seed range the main oracle test
// sweeps. CI and local runs see the exact same instances.
const oracleSeeds = 220

// TestDifferentialOracle pushes every generated instance through the
// full (non-remote) oracle matrix: conceptual vs specialized vs the
// mediator option cross-product vs runtime re-unrolling, plus the
// constraint and DTD-conformance cross-checks.
func TestDifferentialOracle(t *testing.T) {
	n := oracleSeeds
	if testing.Short() {
		n = 40
	}
	cfg := randaig.DefaultConfig()
	var evals, aborted, recursive int
	for seed := int64(0); seed < int64(n); seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		out := Check(inst, Options{})
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, out.Divergence.Error())
		}
		evals += out.Evals
		if out.Aborted {
			aborted++
		}
		if inst.Recursive {
			recursive++
		}
	}
	// The sweep must exercise both the abort path and recursion legs.
	if aborted == 0 {
		t.Error("no instance aborted on a compiled guard — constraint leg untested")
	}
	if recursive == 0 {
		t.Error("no recursive instance — EvaluateRecursive leg untested")
	}
	t.Logf("%d instances, %d oracle evaluations, %d aborts, %d recursive", n, evals, aborted, recursive)
}

// TestRemoteLeg repeats a slice of the sweep with TCP-served sources.
func TestRemoteLeg(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	cfg := randaig.DefaultConfig()
	for seed := int64(0); seed < int64(n); seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		out := Check(inst, Options{Remote: true})
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, out.Divergence.Error())
		}
	}
}

// faultLeg is the mediator cell the fault-injection test corrupts.
const faultLeg = "mediator[merge=true,copyelim=false,sched=fifo]"

// breakLeg deterministically corrupts one mediator leg's document,
// simulating an evaluator bug confined to one option combination.
func breakLeg(leg string, doc *xmltree.Node) {
	if leg == faultLeg {
		doc.Children = append(doc.Children, xmltree.NewElement("injected_bug"))
	}
}

// TestFaultInjection proves the oracle catches a single-leg bug, that
// Shrink minimizes the failing instance while preserving the
// divergence, and that the {seed, config, ops} triple replays.
func TestFaultInjection(t *testing.T) {
	opts := Options{Fault: breakLeg}
	cfg := randaig.DefaultConfig()
	inst, err := randaig.Generate(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Check(inst, opts)
	if out.Divergence == nil {
		t.Fatal("injected fault not detected")
	}
	if out.Divergence.Leg != faultLeg {
		t.Fatalf("divergence on leg %q, want %q", out.Divergence.Leg, faultLeg)
	}

	res := Shrink(inst, opts, out.Divergence, 120)
	if res.Divergence == nil || res.Divergence.Leg != faultLeg {
		t.Fatalf("shrink lost the divergence: %+v", res.Divergence)
	}
	if res.Checks == 0 {
		t.Fatal("shrink performed no checks")
	}
	// The injected bug is instance-independent, so shrinking must strip
	// all constraints and empty at least one table.
	if len(res.Instance.AIG.Constraints) != 0 {
		t.Errorf("shrunk instance still has %d constraints", len(res.Instance.AIG.Constraints))
	}
	shrunkRows, origRows := totalRows(res.Instance), totalRows(inst)
	if shrunkRows >= origRows {
		t.Errorf("shrink did not reduce rows: %d >= %d", shrunkRows, origRows)
	}
	t.Logf("shrunk with %d ops in %d checks: rows %d -> %d", len(res.Ops), res.Checks, origRows, shrunkRows)

	// Replay from the persisted triple.
	reg := Regression{Seed: inst.Seed, Config: cfg, Ops: res.Ops, Leg: faultLeg}
	replayed, err := reg.Instance()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	again := Check(replayed, opts)
	if again.Divergence == nil || again.Divergence.Leg != faultLeg {
		t.Fatalf("replayed instance does not reproduce: %+v", again.Divergence)
	}
	// Without the fault the shrunken instance is healthy: the divergence
	// came from the injected bug, not from the shrink ops.
	if clean := Check(replayed, Options{}); clean.Divergence != nil {
		t.Fatalf("shrunk instance diverges without the fault:\n%s", clean.Divergence.Error())
	}
}

func totalRows(inst *randaig.Instance) int {
	var n int
	for _, dbn := range inst.Catalog.DatabaseNames() {
		db, err := inst.Catalog.Database(dbn)
		if err != nil {
			continue
		}
		for _, tn := range db.TableNames() {
			if tab, err := db.Table(tn); err == nil {
				n += tab.Len()
			}
		}
	}
	return n
}

// TestRegressions replays the persisted corpus: every filed instance
// must stay divergence-free (each file records a since-fixed bug).
func TestRegressions(t *testing.T) {
	corpus, err := LoadCorpus("testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Skip("empty regression corpus")
	}
	for name, reg := range corpus {
		t.Run(name, func(t *testing.T) {
			if reg.Mode == "recover" {
				// Recovery regressions carry no randaig instance: replay the
				// recorded op sequence under the recorded torture config.
				cfg := RecoverConfig{}
				if reg.RecoverCfg != nil {
					cfg = *reg.RecoverCfg
				}
				if div := ReplayRecovery(reg.Seed, cfg, reg.RecoverOps).Divergence; div != nil {
					t.Fatalf("regression resurfaced (note: %s):\n%s", reg.Note, div.Error())
				}
				return
			}
			inst, err := reg.Instance()
			if err != nil {
				t.Fatalf("regenerate: %v", err)
			}
			var div *Divergence
			switch reg.Mode {
			case "ivm":
				div = CheckIVM(inst, reg.Mutations, IVMOptions{LogCap: reg.LogCap}).Divergence
			case "certify":
				div = CheckCertify(inst, reg.Mutations, CertifyOptions{}).Divergence
			case "fragment":
				div = CheckFragment(inst, reg.Paths, reg.Mutations, FragmentOptions{}).Divergence
			default:
				div = Check(inst, Options{}).Divergence
			}
			if div != nil {
				t.Fatalf("regression resurfaced (note: %s):\n%s", reg.Note, div.Error())
			}
		})
	}
}

// TestCorpusRoundTrip checks Save/Load fidelity in a temp dir.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := Regression{
		Seed:   42,
		Config: randaig.DefaultConfig(),
		Ops:    []randaig.Op{{Kind: randaig.OpDropConstraint, Index: 0}},
		Leg:    "mediator[net=slow]",
		Note:   "example",
	}
	path, err := SaveRegression(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	// A second save under the same seed must not clobber the first.
	path2, err := SaveRegression(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if path == path2 {
		t.Fatalf("second save reused path %s", path)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(corpus))
	}
	got := corpus["seed-42.json"]
	if got.Seed != reg.Seed || got.Leg != reg.Leg || len(got.Ops) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
