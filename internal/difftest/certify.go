package difftest

import (
	"fmt"
	"sort"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/propagate"
	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/xmltree"
)

// DiscoverSourceConstraints scans a populated catalog for relational
// constraints that are true of its current data: single-column keys
// (plus minimal two-column keys no single column subsumes) and
// single-column foreign keys whose referenced column is itself a
// discovered key. The result is what a spec author who knew the data
// could honestly declare in the sources section — the premises the
// certification soundness oracle hands to propagate.Certify.
//
// Discovered constraints are facts about one database state, not
// invariants: after a mutation they must be re-checked (KeyHolds,
// FKHolds) before any verdict proved from them may be asserted.
func DiscoverSourceConstraints(cat *relstore.Catalog) ([]aig.SourceKey, []aig.SourceFK) {
	type col struct {
		source string
		table  *relstore.Table
		idx    int
	}
	var keys []aig.SourceKey
	var cols []col
	keyed := make(map[string]bool) // "source:table:col" with a single-column key

	forEachTable(cat, func(source string, t *relstore.Table) {
		schema := t.Schema()
		single := make([]bool, len(schema))
		for i := range schema {
			cols = append(cols, col{source, t, i})
			if columnsUnique(t, []int{i}) {
				single[i] = true
				keys = append(keys, aig.SourceKey{
					Source: source, Table: t.Name(), Cols: []string{schema[i].Name},
				})
				keyed[source+":"+t.Name()+":"+schema[i].Name] = true
			}
		}
		// Minimal pairs only: a pair containing a key column adds nothing.
		for i := range schema {
			for j := i + 1; j < len(schema); j++ {
				if single[i] || single[j] || !columnsUnique(t, []int{i, j}) {
					continue
				}
				keys = append(keys, aig.SourceKey{
					Source: source, Table: t.Name(),
					Cols: []string{schema[i].Name, schema[j].Name},
				})
			}
		}
	})

	var fks []aig.SourceFK
	for _, from := range cols {
		if from.table.Len() == 0 {
			continue // vacuous inclusions are pure noise
		}
		fromName := from.table.Schema()[from.idx].Name
		for _, to := range cols {
			toName := to.table.Schema()[to.idx].Name
			if from.source == to.source && from.table.Name() == to.table.Name() && fromName == toName {
				continue
			}
			if from.table.Schema()[from.idx].Kind != to.table.Schema()[to.idx].Kind {
				continue
			}
			if !keyed[to.source+":"+to.table.Name()+":"+toName] {
				continue
			}
			if !columnIncluded(from.table, from.idx, to.table, to.idx) {
				continue
			}
			fks = append(fks, aig.SourceFK{
				Source: from.source, Table: from.table.Name(), Cols: []string{fromName},
				RefSource: to.source, RefTable: to.table.Name(), RefCols: []string{toName},
			})
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	sort.Slice(fks, func(i, j int) bool { return fks[i].String() < fks[j].String() })
	return keys, fks
}

// columnsUnique reports whether no two rows of t agree on all of cols.
func columnsUnique(t *relstore.Table, cols []int) bool {
	seen := make(map[string]bool, t.Len())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		key := ""
		for _, c := range cols {
			key += row[c].Key() + "\x00"
		}
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}

// columnIncluded reports π_fromCol(from) ⊆ π_toCol(to).
func columnIncluded(from *relstore.Table, fromCol int, to *relstore.Table, toCol int) bool {
	have := make(map[string]bool, to.Len())
	for i := 0; i < to.Len(); i++ {
		have[to.Row(i)[toCol].Key()] = true
	}
	for i := 0; i < from.Len(); i++ {
		if !have[from.Row(i)[fromCol].Key()] {
			return false
		}
	}
	return true
}

// KeyHolds reports whether a declared key is true of the catalog's
// current data.
func KeyHolds(cat *relstore.Catalog, k aig.SourceKey) bool {
	t, err := cat.Table(k.Source, k.Table)
	if err != nil {
		return false
	}
	idx, ok := columnIndexes(t.Schema(), k.Cols)
	return ok && columnsUnique(t, idx)
}

// FKHolds reports whether a declared single-column-per-side foreign key
// is true of the catalog's current data (multi-column foreign keys are
// checked tuple-wise).
func FKHolds(cat *relstore.Catalog, fk aig.SourceFK) bool {
	from, err := cat.Table(fk.Source, fk.Table)
	if err != nil {
		return false
	}
	to, err := cat.Table(fk.RefSource, fk.RefTable)
	if err != nil {
		return false
	}
	fromIdx, ok1 := columnIndexes(from.Schema(), fk.Cols)
	toIdx, ok2 := columnIndexes(to.Schema(), fk.RefCols)
	if !ok1 || !ok2 || len(fromIdx) != len(toIdx) {
		return false
	}
	have := make(map[string]bool, to.Len())
	for i := 0; i < to.Len(); i++ {
		row, key := to.Row(i), ""
		for _, c := range toIdx {
			key += row[c].Key() + "\x00"
		}
		have[key] = true
	}
	for i := 0; i < from.Len(); i++ {
		row, key := from.Row(i), ""
		for _, c := range fromIdx {
			key += row[c].Key() + "\x00"
		}
		if !have[key] {
			return false
		}
	}
	return true
}

func columnIndexes(schema relstore.Schema, names []string) ([]int, bool) {
	out := make([]int, len(names))
	for i, n := range names {
		c := schema.ColumnIndex(n)
		if c < 0 {
			return nil, false
		}
		out[i] = c
	}
	return out, true
}

// CertifyOptions configures one certification-soundness oracle run.
type CertifyOptions struct {
	// AssumePremises, when set, skips the per-step premise re-check and
	// asserts every must-hold verdict even after a mutation falsified a
	// premise its proof depends on — fault injection for testing the
	// oracle itself (a verdict is only a proof under its premises, so
	// assuming them unconditionally is exactly the unsoundness the
	// premise tracking exists to prevent).
	AssumePremises bool
}

// CertifyOutcome summarizes one certification-soundness oracle run.
type CertifyOutcome struct {
	// Divergence is nil when no must-hold verdict was contradicted by a
	// runtime violation — a non-nil value is a soundness bug in the
	// certifier.
	Divergence *Divergence
	// Keys and FKs count the source constraints discovered on the
	// instance's data; MustHold, Unknown and Violated the verdicts the
	// certifier reached from them.
	Keys, FKs                   int
	MustHold, Unknown, Violated int
	// Steps counts applied mutations; Asserted the per-step must-hold
	// checks actually executed; Voided the checks skipped because a
	// mutation broke a premise the proof depends on; Unevaluated the
	// steps where the mutated data no longer evaluates to a document.
	Steps, Asserted, Voided, Unevaluated int
	// Evals counts document evaluations (oracle throughput metric).
	Evals int
}

// CheckCertify is the soundness oracle for the static certifier
// (internal/propagate): it discovers the relational constraints that
// genuinely hold on the instance's data, declares them as source
// premises, certifies the instance's XML constraints from them, and
// then — initially and after every mutation whose proof premises
// survive — asserts that no constraint the certifier judged MustHold is
// ever violated on the evaluated document. Verdicts are proofs under
// premises, so a mutation that falsifies a used premise voids the
// obligation rather than asserting it; a violation while every used
// premise still holds is reported on leg "certify".
//
// The run mutates a clone of the instance's catalog, never the
// instance itself, so CheckCertify can be re-run (shrinking, corpus
// replay) on the same instance.
func CheckCertify(inst *randaig.Instance, muts []Mutation, opts CertifyOptions) CertifyOutcome {
	mkDiv := func(detail, want, got string) *Divergence {
		return &Divergence{Seed: inst.Seed, Leg: "certify", Detail: detail, Want: want, Got: got}
	}
	inst = &randaig.Instance{
		Seed: inst.Seed, Cfg: inst.Cfg, AIG: inst.AIG,
		Catalog: cloneCatalog(inst.Catalog), RootInh: inst.RootInh,
		Recursive: inst.Recursive, UnfoldDepth: inst.UnfoldDepth,
	}

	keys, fks := DiscoverSourceConstraints(inst.Catalog)
	a := inst.AIG.Clone()
	a.SourceKeys, a.SourceFKs = keys, fks
	cert := propagate.Certify(a)

	out := CertifyOutcome{Keys: len(keys), FKs: len(fks)}
	var proved []propagate.Result
	for _, r := range cert.Results {
		switch r.Verdict {
		case propagate.MustHold:
			out.MustHold++
			proved = append(proved, r)
		case propagate.Violated:
			out.Violated++
		default:
			out.Unknown++
		}
	}
	if len(proved) == 0 {
		return out
	}

	// Premise checkers, keyed the way Result.Uses renders them.
	premise := make(map[string]func() bool)
	for _, k := range keys {
		k := k
		premise["key "+k.String()] = func() bool { return KeyHolds(inst.Catalog, k) }
	}
	for _, fk := range fks {
		fk := fk
		premise["fkey "+fk.String()] = func() bool { return FKHolds(inst.Catalog, fk) }
	}

	// The document under test is the constraint-free evaluation: guards
	// would abort on the very violations the oracle wants to observe.
	plain := inst.AIG.Clone()
	plain.Constraints = nil
	plainU, err := specialize.Unfold(plain, inst.UnfoldDepth)
	if err != nil {
		out.Divergence = mkDiv("unfold of plain grammar failed: "+err.Error(), "", "")
		return out
	}
	evaluate := func() (*xmltree.Node, error) {
		out.Evals++
		return plainU.Eval(inst.Env(), inst.RootInh)
	}

	assert := func(step int, m *Mutation, doc *xmltree.Node, intact map[string]bool) *Divergence {
		for _, r := range proved {
			ok := true
			for _, u := range r.Uses {
				if !intact[u] {
					ok = false
					break
				}
			}
			if !ok {
				out.Voided++
				continue
			}
			out.Asserted++
			if vs := r.Constraint.Check(doc); len(vs) > 0 {
				detail := fmt.Sprintf("certified constraint %s violated at runtime (proof: %s)", r.Constraint, r.Reason)
				if m != nil {
					detail = fmt.Sprintf("step %d (%s): %s", step, m, detail)
				}
				return mkDiv(detail, "no violations", vs[0].Error())
			}
		}
		return nil
	}

	doc, err := evaluate()
	if err != nil {
		out.Divergence = mkDiv("initial evaluation failed: "+err.Error(), "", "")
		return out
	}
	// Every discovered premise holds on the initial data by construction,
	// so the initial obligations are all live.
	allLive := make(map[string]bool, len(premise))
	for u := range premise {
		allLive[u] = true
	}
	if d := assert(0, nil, doc, allLive); d != nil {
		out.Divergence = d
		return out
	}

	for i, m := range muts {
		changed, err := m.apply(inst.Catalog)
		if err != nil {
			out.Divergence = mkDiv(fmt.Sprintf("step %d: applying %s: %v", i, m, err), "", "")
			return out
		}
		if !changed {
			continue
		}
		out.Steps++

		intact := make(map[string]bool, len(premise))
		for u, holds := range premise {
			if opts.AssumePremises || holds() {
				intact[u] = true
			}
		}

		// Mutations can push the data into states the generator never
		// produces (a choice condition matching zero rows); with no
		// document there is nothing the certifier's claim ranges over.
		m := m
		doc, err := evaluate()
		if err != nil {
			if isAbort(err) {
				out.Divergence = mkDiv(fmt.Sprintf("step %d: guard abort in constraint-free grammar: %v", i, err), "", "")
				return out
			}
			out.Unevaluated++
			continue
		}
		if d := assert(i, &m, doc, intact); d != nil {
			out.Divergence = d
			return out
		}
	}
	return out
}

// ShrinkCertify minimizes a diverging mutation sequence ddmin-style,
// exactly as ShrinkIVM does for the maintenance oracle: ever-smaller
// chunks of mutations are dropped while the "certify" leg keeps
// diverging. budget <= 0 means DefaultShrinkBudget checks.
func ShrinkCertify(inst *randaig.Instance, muts []Mutation, opts CertifyOptions, budget int) ([]Mutation, *Divergence, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	checks := 0
	reproduces := func(candidate []Mutation) (*Divergence, bool) {
		if checks >= budget {
			return nil, false
		}
		checks++
		out := CheckCertify(inst, candidate, opts)
		return out.Divergence, out.Divergence != nil
	}

	cur := muts
	var last *Divergence
	if d, ok := reproduces(cur); ok {
		last = d
	} else {
		return cur, nil, checks
	}
	for size := len(cur) / 2; size >= 1; {
		removedAny := false
		for start := 0; start+size <= len(cur); {
			candidate := append(append([]Mutation(nil), cur[:start]...), cur[start+size:]...)
			if d, ok := reproduces(candidate); ok {
				cur, last = candidate, d
				removedAny = true
				continue
			}
			start += size
		}
		if !removedAny {
			size /= 2
		} else if size > len(cur)/2 {
			size = len(cur) / 2
		}
		if checks >= budget {
			break
		}
	}
	return cur, last, checks
}
