package difftest

import (
	"fmt"
	"math/rand"

	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xmltree"
)

// Mutation is one replayable row-level write against an instance's
// catalog. Values are carried as schema-parsed texts so a mutation
// sequence round-trips through regression JSON.
type Mutation struct {
	Source string   `json:"source"`
	Table  string   `json:"table"`
	Op     string   `json:"op"` // "insert" or "delete"
	Row    []string `json:"row"`
}

func (m Mutation) String() string {
	return fmt.Sprintf("%s %s:%s %v", m.Op, m.Source, m.Table, m.Row)
}

// apply performs the mutation, reporting whether it changed anything
// (a delete of an absent row is a no-op).
func (m Mutation) apply(cat *relstore.Catalog) (bool, error) {
	t, err := cat.Table(m.Source, m.Table)
	if err != nil {
		return false, err
	}
	row, err := parseRow(t.Schema(), m.Row)
	if err != nil {
		return false, err
	}
	switch m.Op {
	case "insert":
		return true, t.Insert(row)
	case "delete":
		key := row.Key()
		return t.DeleteWhere(func(r relstore.Tuple) bool { return r.Key() == key }) > 0, nil
	default:
		return false, fmt.Errorf("difftest: unknown mutation op %q", m.Op)
	}
}

func parseRow(schema relstore.Schema, texts []string) (relstore.Tuple, error) {
	if len(texts) != len(schema) {
		return nil, fmt.Errorf("difftest: %d values for %d columns", len(texts), len(schema))
	}
	row := make(relstore.Tuple, len(texts))
	for i, s := range texts {
		v, err := relstore.ParseValue(schema[i].Kind, s)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func renderRow(row relstore.Tuple) []string {
	out := make([]string, len(row))
	for i, v := range row {
		out[i] = v.Text()
	}
	return out
}

// GenerateMutations derives a deterministic mutation sequence for an
// instance: inserts that mostly recombine existing column values (so
// joins keep matching and the document actually changes) and deletes of
// currently present rows. Generation tracks the evolving state on a
// catalog clone, so deletes always name rows that exist at their point
// in the sequence.
func GenerateMutations(inst *randaig.Instance, seed int64, n int) []Mutation {
	rng := rand.New(rand.NewSource(seed))
	cat := cloneCatalog(inst.Catalog)

	type target struct {
		source string
		table  *relstore.Table
	}
	var targets []target
	for _, dbName := range cat.DatabaseNames() {
		db, err := cat.Database(dbName)
		if err != nil {
			continue
		}
		for _, tn := range db.TableNames() {
			if t, err := db.Table(tn); err == nil {
				targets = append(targets, target{dbName, t})
			}
		}
	}
	if len(targets) == 0 {
		return nil
	}

	var out []Mutation
	for attempts := 0; len(out) < n && attempts < n*50; attempts++ {
		tg := targets[rng.Intn(len(targets))]
		t := tg.table
		if t.Len() > 0 && rng.Intn(10) < 3 { // ~30% deletes
			row := t.Row(rng.Intn(t.Len()))
			m := Mutation{Source: tg.source, Table: t.Name(), Op: "delete", Row: renderRow(row)}
			if ok, err := m.apply(cat); err == nil && ok {
				out = append(out, m)
			}
			continue
		}
		row := make(relstore.Tuple, len(t.Schema()))
		for c := range t.Schema() {
			if t.Len() > 0 && rng.Intn(10) < 7 {
				// Reuse a value already present in this column.
				row[c] = t.Row(rng.Intn(t.Len()))[c]
				continue
			}
			switch t.Schema()[c].Kind {
			case relstore.KindInt:
				row[c] = relstore.Int(int64(rng.Intn(20)))
			default:
				row[c] = relstore.String(fmt.Sprintf("z%d", rng.Intn(40)))
			}
		}
		m := Mutation{Source: tg.source, Table: t.Name(), Op: "insert", Row: renderRow(row)}
		if ok, err := m.apply(cat); err == nil && ok {
			out = append(out, m)
		}
	}
	return out
}

func cloneCatalog(cat *relstore.Catalog) *relstore.Catalog {
	out := relstore.NewCatalog()
	for _, name := range cat.DatabaseNames() {
		if db, err := cat.Database(name); err == nil {
			out.Add(db.Clone())
		}
	}
	return out
}

// IVMOptions configures one incremental-maintenance oracle run.
type IVMOptions struct {
	// LogCap overrides every base table's change-log limit before the
	// run: 0 keeps the default, a small positive value forces frequent
	// truncation (exercising the full-refresh fallback), negative
	// disables delta logging entirely.
	LogCap int
	// Fault, when set, rewrites the judge's verdict at each step —
	// fault-injection hook for testing the oracle itself (forcing
	// Unaffected simulates an unsound judge keeping stale documents).
	Fault func(step int, v ivm.Verdict) ivm.Verdict
}

// IVMOutcome summarizes one incremental-maintenance oracle run.
type IVMOutcome struct {
	// Divergence is nil when incremental maintenance matched the oracle
	// at every step.
	Divergence *Divergence
	// Steps counts applied mutations; Restamps how many the judge proved
	// irrelevant (cached document kept); Fulls how many forced a
	// re-evaluation; Truncated how many judgements hit a truncated
	// change-log window.
	Steps, Restamps, Fulls, Truncated int
	// Skipped reports the instance was unusable for the IVM oracle (its
	// initial evaluation aborts on a guard, so there is no document to
	// maintain).
	Skipped bool
}

// CheckIVM is the incremental-view-maintenance differential oracle: it
// evaluates the instance's specialized grammar once, then replays the
// mutation sequence the way the serving layer's refresher would —
// judging each step's change-log deltas with ivm.Deps and either
// keeping the cached document (judge says provably unaffected) or
// re-evaluating — and after every step compares the maintained document
// byte-for-byte against a from-scratch evaluation. Any mismatch is a
// soundness bug in change capture, dependency extraction, or the judge,
// and is reported on leg "ivm".
//
// The run mutates a clone of the instance's catalog, never the instance
// itself, so CheckIVM can be re-run (shrinking, corpus replay) on the
// same instance.
func CheckIVM(inst *randaig.Instance, muts []Mutation, opts IVMOptions) IVMOutcome {
	mkDiv := func(detail, want, got string) *Divergence {
		return &Divergence{Seed: inst.Seed, Leg: "ivm", Detail: detail, Want: want, Got: got}
	}
	inst = &randaig.Instance{
		Seed: inst.Seed, Cfg: inst.Cfg, AIG: inst.AIG,
		Catalog: cloneCatalog(inst.Catalog), RootInh: inst.RootInh,
		Recursive: inst.Recursive, UnfoldDepth: inst.UnfoldDepth,
	}

	comp, err := specialize.CompileConstraints(inst.AIG)
	if err != nil {
		return IVMOutcome{Divergence: mkDiv("constraint compilation failed: "+err.Error(), "", "")}
	}
	dec, err := specialize.DecomposeQueries(comp, inst.Schemas(), inst.Stats(), sqlmini.PlanOptions{})
	if err != nil {
		return IVMOutcome{Divergence: mkDiv("query decomposition failed: "+err.Error(), "", "")}
	}
	decU, err := specialize.Unfold(dec, inst.UnfoldDepth)
	if err != nil {
		return IVMOutcome{Divergence: mkDiv("unfold failed: "+err.Error(), "", "")}
	}
	deps, err := ivm.Extract(dec, inst.Schemas())
	if err != nil {
		return IVMOutcome{Divergence: mkDiv("dependency extraction failed: "+err.Error(), "", "")}
	}
	params, err := deps.ParamsFromInh(inst.RootInh)
	if err != nil {
		return IVMOutcome{Divergence: mkDiv("root parameter binding failed: "+err.Error(), "", "")}
	}

	if opts.LogCap != 0 {
		forEachTable(inst.Catalog, func(_ string, t *relstore.Table) {
			t.SetChangeLogLimit(opts.LogCap)
		})
	}

	// Mutations can push the data into states the generator never
	// produces (e.g. a choice-condition query matching zero rows), so
	// evaluation errors are part of the judged outcome, not harness
	// failures: the maintained state and the oracle must agree on them.
	evaluate := func() (*xmltree.Node, error) {
		return decU.Eval(inst.Env(), inst.RootInh)
	}
	outcomeStr := func(doc *xmltree.Node, err error) string {
		if err != nil {
			return "error: " + err.Error()
		}
		return doc.Canonical()
	}

	cachedDoc, cachedErr := evaluate()
	if cachedErr != nil {
		if isAbort(cachedErr) {
			return IVMOutcome{Skipped: true}
		}
		return IVMOutcome{Divergence: mkDiv("initial evaluation failed: "+cachedErr.Error(), "", "")}
	}
	baseline := snapshotVersions(inst.Catalog)

	var out IVMOutcome
	for i, m := range muts {
		changed, err := m.apply(inst.Catalog)
		if err != nil {
			return IVMOutcome{Divergence: mkDiv(fmt.Sprintf("step %d: applying %s: %v", i, m, err), "", "")}
		}
		if !changed {
			continue
		}
		out.Steps++

		// The refresher's decision: replay each moved table's deltas
		// through the judge.
		verdict := ivm.Unaffected
		now := snapshotVersions(inst.Catalog)
		for key, cur := range now {
			old, ok := baseline[key]
			if !ok || cur == old {
				if !ok && deps.DependsOn(key.source, key.table) {
					verdict = ivm.MaybeAffected
				}
				continue
			}
			if !deps.DependsOn(key.source, key.table) {
				continue
			}
			cs, cerr := changesSince(inst.Catalog, key.source, key.table, old)
			if cerr != nil {
				return IVMOutcome{Divergence: mkDiv(fmt.Sprintf("step %d: deltas for %s:%s: %v", i, key.source, key.table, cerr), "", "")}
			}
			if cs.Truncated {
				out.Truncated++
			}
			if deps.Judge(key.source, key.table, cs, params) != ivm.Unaffected {
				verdict = ivm.MaybeAffected
			}
		}
		baseline = now
		if opts.Fault != nil {
			verdict = opts.Fault(i, verdict)
		}

		if verdict == ivm.Unaffected {
			out.Restamps++
		} else {
			out.Fulls++
			cachedDoc, cachedErr = evaluate()
		}

		truthDoc, truthErr := evaluate()
		if isAbort(truthErr) && isAbort(cachedErr) {
			continue // both abort on a guard: equal outcome, as in compare()
		}
		want, got := outcomeStr(truthDoc, truthErr), outcomeStr(cachedDoc, cachedErr)
		if want != got {
			out.Divergence = mkDiv(
				fmt.Sprintf("step %d (%s, verdict %v): maintained document differs from oracle", i, m, verdict),
				want, got)
			return out
		}
	}
	return out
}

type tableKey struct{ source, table string }

func forEachTable(cat *relstore.Catalog, fn func(source string, t *relstore.Table)) {
	for _, dbName := range cat.DatabaseNames() {
		db, err := cat.Database(dbName)
		if err != nil {
			continue
		}
		for _, tn := range db.TableNames() {
			if t, err := db.Table(tn); err == nil {
				fn(dbName, t)
			}
		}
	}
}

func snapshotVersions(cat *relstore.Catalog) map[tableKey]uint64 {
	out := make(map[tableKey]uint64)
	forEachTable(cat, func(source string, t *relstore.Table) {
		out[tableKey{source, t.Name()}] = t.Version()
	})
	return out
}

func changesSince(cat *relstore.Catalog, source, table string, since uint64) (relstore.ChangeSet, error) {
	t, err := cat.Table(source, table)
	if err != nil {
		return relstore.ChangeSet{}, err
	}
	return t.ChangesSince(since), nil
}

// ShrinkIVM minimizes a diverging mutation sequence ddmin-style: it
// tries dropping ever-smaller chunks of mutations while the "ivm" leg
// keeps diverging (CheckIVM runs each candidate against a fresh catalog
// clone). budget <= 0 means DefaultShrinkBudget checks.
func ShrinkIVM(inst *randaig.Instance, muts []Mutation, opts IVMOptions, budget int) ([]Mutation, *Divergence, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	checks := 0
	reproduces := func(candidate []Mutation) (*Divergence, bool) {
		if checks >= budget {
			return nil, false
		}
		checks++
		out := CheckIVM(inst, candidate, opts)
		return out.Divergence, out.Divergence != nil
	}

	cur := muts
	var last *Divergence
	if d, ok := reproduces(cur); ok {
		last = d
	} else {
		return cur, nil, checks
	}
	for size := len(cur) / 2; size >= 1; {
		removedAny := false
		for start := 0; start+size <= len(cur); {
			candidate := append(append([]Mutation(nil), cur[:start]...), cur[start+size:]...)
			if d, ok := reproduces(candidate); ok {
				cur, last = candidate, d
				removedAny = true
				continue // same start now covers the next chunk
			}
			start += size
		}
		if !removedAny {
			size /= 2
		} else if size > len(cur)/2 {
			size = len(cur) / 2
		}
		if checks >= budget {
			break
		}
	}
	return cur, last, checks
}
