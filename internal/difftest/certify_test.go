package difftest

import (
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/relstore"
)

// certifySeeds is the deterministic seed range the certification
// soundness oracle sweeps in tests (CI sweeps a larger range via
// aigdiff -certify).
const certifySeeds = 60

// TestDiscoverSourceConstraints pins the discovery semantics on a
// hand-built catalog: unique columns become keys, minimal pairs are
// kept only when no single column subsumes them, and foreign keys
// require genuine inclusion into a keyed column.
func TestDiscoverSourceConstraints(t *testing.T) {
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB1")
	cat.Add(db)

	ref := relstore.NewTable("ref", relstore.Schema{
		{Name: "id", Kind: relstore.KindString},
		{Name: "grp", Kind: relstore.KindString},
	})
	ref.MustInsert(relstore.Tuple{relstore.String("a"), relstore.String("g1")})
	ref.MustInsert(relstore.Tuple{relstore.String("b"), relstore.String("g1")})
	db.AddTable(ref)

	use := relstore.NewTable("use", relstore.Schema{
		{Name: "fid", Kind: relstore.KindString},
		{Name: "n", Kind: relstore.KindInt},
	})
	use.MustInsert(relstore.Tuple{relstore.String("a"), relstore.Int(1)})
	use.MustInsert(relstore.Tuple{relstore.String("a"), relstore.Int(2)})
	use.MustInsert(relstore.Tuple{relstore.String("b"), relstore.Int(1)})
	db.AddTable(use)

	keys, fks := DiscoverSourceConstraints(cat)

	wantKeys := map[string]bool{
		"DB1:ref(id)":     true, // unique column
		"DB1:use(fid, n)": true, // minimal pair: neither column unique alone
	}
	gotKeys := map[string]bool{}
	for _, k := range keys {
		gotKeys[k.String()] = true
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("missing discovered key %s (got %v)", k, keys)
		}
	}
	if gotKeys["DB1:ref(grp)"] {
		t.Error("grp is not unique but was discovered as a key")
	}
	if gotKeys["DB1:ref(id, grp)"] {
		t.Error("non-minimal pair (id, grp) discovered despite (id) being a key")
	}

	var found bool
	for _, fk := range fks {
		if fk.String() == "DB1:use(fid) -> DB1:ref(id)" {
			found = true
		}
		if fk.Source == "DB1" && fk.Table == "ref" && fk.Cols[0] == "grp" {
			t.Errorf("fk from non-included or non-keyed column: %s", fk)
		}
	}
	if !found {
		t.Errorf("missing fk use(fid) -> ref(id), got %v", fks)
	}

	// The premise checkers must track mutations.
	k := aig.SourceKey{Source: "DB1", Table: "ref", Cols: []string{"id"}}
	fk := aig.SourceFK{Source: "DB1", Table: "use", Cols: []string{"fid"},
		RefSource: "DB1", RefTable: "ref", RefCols: []string{"id"}}
	if !KeyHolds(cat, k) || !FKHolds(cat, fk) {
		t.Fatal("discovered premises do not hold on the data they came from")
	}
	ref.MustInsert(relstore.Tuple{relstore.String("a"), relstore.String("g2")})
	if KeyHolds(cat, k) {
		t.Error("key still reported held after inserting a duplicate id")
	}
	use.MustInsert(relstore.Tuple{relstore.String("zz"), relstore.Int(9)})
	if FKHolds(cat, fk) {
		t.Error("fk still reported held after inserting a dangling reference")
	}
}

// TestCertifyOracleSweep is the soundness sweep: across seeded
// instances and mutation sequences, no constraint the certifier judged
// must-hold may ever be violated at runtime while the premises of its
// proof still hold. The sweep must be non-vacuous — some instances have
// to certify, assert, and void obligations, or the oracle tests
// nothing.
func TestCertifyOracleSweep(t *testing.T) {
	n, muts := certifySeeds, 25
	if testing.Short() {
		n, muts = 12, 10
	}
	cfg := randaig.DefaultConfig()
	var agg CertifyOutcome
	for seed := int64(0); seed < int64(n); seed++ {
		inst, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		seq := GenerateMutations(inst, seed, muts)
		out := CheckCertify(inst, seq, CertifyOptions{})
		if out.Divergence != nil {
			t.Fatalf("seed %d: certifier unsound:\n%s", seed, out.Divergence.Error())
		}
		agg.Keys += out.Keys
		agg.FKs += out.FKs
		agg.MustHold += out.MustHold
		agg.Unknown += out.Unknown
		agg.Violated += out.Violated
		agg.Steps += out.Steps
		agg.Asserted += out.Asserted
		agg.Voided += out.Voided
		agg.Unevaluated += out.Unevaluated
	}
	if agg.MustHold == 0 {
		t.Error("no constraint certified across the sweep — oracle is vacuous")
	}
	if agg.Asserted == 0 {
		t.Error("no must-hold obligation was ever asserted")
	}
	if agg.Voided == 0 {
		t.Error("no mutation ever falsified a used premise — premise tracking untested")
	}
	t.Logf("%d instances: %d keys, %d fks discovered; verdicts %d must-hold / %d unknown / %d violated; %d steps, %d asserted, %d voided, %d unevaluated",
		n, agg.Keys, agg.FKs, agg.MustHold, agg.Unknown, agg.Violated,
		agg.Steps, agg.Asserted, agg.Voided, agg.Unevaluated)
}

// TestCertifyFaultInjection turns off premise tracking (AssumePremises:
// verdicts are asserted even after mutations falsified the premises
// they were proved from) and requires that the oracle catches the
// resulting false assertion, that ShrinkCertify minimizes the mutation
// sequence while preserving the divergence, and that the persisted
// regression replays — and is clean again once premises are respected.
func TestCertifyFaultInjection(t *testing.T) {
	fault := CertifyOptions{AssumePremises: true}
	cfg := randaig.DefaultConfig()

	var inst *randaig.Instance
	var seq []Mutation
	var out CertifyOutcome
	for seed := int64(0); seed < 300; seed++ {
		cand, err := randaig.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		s := GenerateMutations(cand, seed, 30)
		o := CheckCertify(cand, s, fault)
		if o.Divergence != nil {
			inst, seq, out = cand, s, o
			break
		}
	}
	if inst == nil {
		t.Fatal("no seed in range broke a premise visibly enough to trip the faulted oracle")
	}
	if out.Divergence.Leg != "certify" {
		t.Fatalf("divergence on leg %q, want certify", out.Divergence.Leg)
	}

	shrunk, div, checks := ShrinkCertify(inst, seq, fault, 150)
	if div == nil {
		t.Fatal("shrink lost the divergence")
	}
	if len(shrunk) >= len(seq) {
		t.Errorf("shrink did not reduce the sequence: %d >= %d", len(shrunk), len(seq))
	}
	t.Logf("shrunk %d -> %d mutations in %d checks", len(seq), len(shrunk), checks)

	dir := t.TempDir()
	reg := Regression{
		Seed: inst.Seed, Config: cfg, Mode: "certify",
		Mutations: shrunk, Leg: "certify", Note: "injected premise-blind assertion",
	}
	if _, err := SaveRegression(dir, reg); err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, loaded := range corpus {
		replayed, err := loaded.Instance()
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if again := CheckCertify(replayed, loaded.Mutations, fault); again.Divergence == nil {
			t.Fatal("replayed regression does not reproduce under the fault")
		}
		// With premise tracking on, the same sequence must be clean: the
		// violation is licensed by the broken premise, not a certifier bug.
		if clean := CheckCertify(replayed, loaded.Mutations, CertifyOptions{}); clean.Divergence != nil {
			t.Fatalf("shrunk sequence diverges without the fault:\n%s", clean.Divergence.Error())
		}
	}
}

// TestCertifyDeterministicReplay re-runs the same {instance, mutations}
// pair and requires identical outcomes — CheckCertify must not leak
// state into the instance it was handed.
func TestCertifyDeterministicReplay(t *testing.T) {
	inst, err := randaig.Generate(5, randaig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := GenerateMutations(inst, 5, 15)
	first := CheckCertify(inst, seq, CertifyOptions{})
	second := CheckCertify(inst, seq, CertifyOptions{})
	if first.Divergence != nil || second.Divergence != nil {
		t.Fatalf("unexpected divergence: %+v / %+v", first.Divergence, second.Divergence)
	}
	if first != second {
		t.Fatalf("outcomes differ across replays:\n%+v\n%+v", first, second)
	}
}
