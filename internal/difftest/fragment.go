package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/ivm"
	"github.com/aigrepro/aig/internal/randaig"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xmltree"
	"github.com/aigrepro/aig/internal/xpath"
)

// GenerateFragmentPaths derives a deterministic set of syntactically
// valid path expressions from the instance's DTD: random walks down the
// production graph rendered as child/descendant steps, sprinkled with
// wildcards, positional predicates, and child-text equality tests whose
// values mix plausible instance data with misses. Duplicates are
// dropped, so the result may be shorter than n.
func GenerateFragmentPaths(inst *randaig.Instance, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	a := inst.AIG

	// Text values seen in the catalog seed the equality predicates, so
	// some of them actually select something.
	var values []string
	forEachTable(inst.Catalog, func(_ string, t *relstore.Table) {
		for i := 0; i < t.Len() && len(values) < 64; i++ {
			row := t.Row(i)
			if len(row) > 0 {
				values = append(values, row[rng.Intn(len(row))].Text())
			}
		}
	})
	values = append(values, "", "z1", "nope")

	textChildren := func(t string) []string {
		prod, ok := a.DTD.Production(t)
		if !ok {
			return nil
		}
		var out []string
		for _, c := range prod.Children {
			if cp, ok := a.DTD.Production(c); ok && cp.Kind == dtd.ProdText {
				out = append(out, a.Label(c))
			}
		}
		return out
	}

	step := func(t string) string {
		var sb strings.Builder
		if rng.Intn(10) < 3 {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		if rng.Intn(10) == 0 {
			sb.WriteString("*")
		} else {
			sb.WriteString(a.Label(t))
		}
		if tc := textChildren(t); len(tc) > 0 && rng.Intn(10) < 3 {
			fmt.Fprintf(&sb, "[%s='%s']", tc[rng.Intn(len(tc))],
				strings.ReplaceAll(values[rng.Intn(len(values))], "'", ""))
		}
		if rng.Intn(10) < 2 {
			fmt.Fprintf(&sb, "[%d]", 1+rng.Intn(3))
		}
		return sb.String()
	}

	seen := make(map[string]bool)
	var out []string
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		t := a.DTD.Root
		var sb strings.Builder
		depth := 1 + rng.Intn(4)
		for d := 0; d < depth; d++ {
			// Deep walks usually skip the root and dive somewhere below it.
			if d > 0 || rng.Intn(10) < 7 {
				sb.WriteString(step(t))
			}
			prod, ok := a.DTD.Production(t)
			if !ok || len(prod.Children) == 0 {
				break
			}
			t = prod.Children[rng.Intn(len(prod.Children))]
		}
		p := sb.String()
		if p == "" || seen[p] {
			continue
		}
		if _, err := xpath.Parse(p); err != nil {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// FragmentOutcome summarizes one fragment oracle run.
type FragmentOutcome struct {
	// Divergence is nil when the partial evaluator matched the post-hoc
	// oracle at every step for every path.
	Divergence *Divergence
	// Steps counts applied mutations, Checks individual path comparisons,
	// Restamps how many (path, step) pairs the filtered-deps judge proved
	// irrelevant (cached fragment kept and byte-verified), Fulls the rest.
	Steps, Checks, Restamps, Fulls int
	// Skipped reports the instance was unusable (its constraint-free
	// evaluation fails even before mutations).
	Skipped bool
}

// FragmentOptions tunes one fragment oracle run.
type FragmentOptions struct {
	// Fault, when set, corrupts the partial evaluator's emitted fragment
	// before comparison — a test hook simulating an unsound partial
	// evaluation that the oracle must catch.
	Fault func(path, fragment string) string
}

// fragState is one path's compiled plan plus the incremental-maintenance
// bookkeeping the oracle replays alongside the byte comparison.
type fragState struct {
	expr     string
	path     *xpath.Path
	compiled *xpath.Compiled
	deps     *ivm.Deps
	params   map[string]relstore.Value
	// cached is the fragment at the last step the path was (re)built;
	// baseline the table versions it was built at.
	cached   string
	baseline map[tableKey]uint64
}

// CheckFragment is the fragment serving differential oracle. For each
// generated path it asserts, after every mutation, that the partial
// evaluator's emitted fragment byte-equals the post-hoc oracle (full
// constraint-free render, then xpath.Select over the tree), and — the
// refresher's soundness property — that whenever the path-filtered
// dependency judge rules a step's deltas irrelevant, the previously
// cached fragment bytes are in fact unchanged. Mutations run against a
// catalog clone, so the instance can be reused (shrinking, replay).
//
// Steps where the full evaluation itself fails are skipped for the byte
// comparison: partial evaluation legitimately avoids errors raised in
// subtrees it never enters, so only a partial-evaluation failure while
// the oracle succeeds is a divergence.
func CheckFragment(inst *randaig.Instance, paths []string, muts []Mutation, opts FragmentOptions) FragmentOutcome {
	mkDiv := func(detail, want, got string) *Divergence {
		return &Divergence{Seed: inst.Seed, Leg: "fragment", Detail: detail, Want: want, Got: got}
	}
	inst = &randaig.Instance{
		Seed: inst.Seed, Cfg: inst.Cfg, AIG: inst.AIG,
		Catalog: cloneCatalog(inst.Catalog), RootInh: inst.RootInh,
		Recursive: inst.Recursive, UnfoldDepth: inst.UnfoldDepth,
	}

	// The fragment grammar: constraint-free (partial evaluation must be
	// guard-free), decomposed and unfolded like the serving layer's.
	plain := inst.AIG.Clone()
	plain.Constraints = nil
	dec, err := specialize.DecomposeQueries(plain, inst.Schemas(), inst.Stats(), sqlmini.PlanOptions{})
	if err != nil {
		return FragmentOutcome{Divergence: mkDiv("query decomposition failed: "+err.Error(), "", "")}
	}
	decU, err := specialize.Unfold(dec, inst.UnfoldDepth)
	if err != nil {
		return FragmentOutcome{Divergence: mkDiv("unfold failed: "+err.Error(), "", "")}
	}

	var states []*fragState
	for _, expr := range paths {
		p, err := xpath.Parse(expr)
		if err != nil {
			return FragmentOutcome{Divergence: mkDiv(fmt.Sprintf("path %q does not parse: %v", expr, err), "", "")}
		}
		c, err := xpath.Compile(decU, p)
		if err != nil {
			return FragmentOutcome{Divergence: mkDiv(fmt.Sprintf("path %q does not compile: %v", expr, err), "", "")}
		}
		deps, err := ivm.ExtractFiltered(decU, inst.Schemas(), c.LiveScans(decU))
		if err != nil {
			return FragmentOutcome{Divergence: mkDiv(fmt.Sprintf("path %q: dependency extraction failed: %v", expr, err), "", "")}
		}
		params, err := deps.ParamsFromInh(inst.RootInh)
		if err != nil {
			return FragmentOutcome{Divergence: mkDiv("root parameter binding failed: "+err.Error(), "", "")}
		}
		states = append(states, &fragState{expr: expr, path: p, compiled: c, deps: deps, params: params})
	}

	renderNodes := func(nodes []*xmltree.Node) (string, error) {
		var sb strings.Builder
		for _, n := range nodes {
			if err := n.WriteIndented(&sb); err != nil {
				return "", err
			}
		}
		return sb.String(), nil
	}
	partialFragment := func(fs *fragState) (string, error) {
		var sb strings.Builder
		err := decU.EvalPartial(inst.Env(), inst.RootInh, fs.compiled.NewCursor(), func(n *xmltree.Node) error {
			return n.WriteIndented(&sb)
		})
		return sb.String(), err
	}

	var out FragmentOutcome

	// checkAll compares every path at the current catalog state; step -1
	// is the pre-mutation baseline.
	checkAll := func(step int, stepDesc string) *Divergence {
		doc, err := decU.Eval(inst.Env(), inst.RootInh)
		if err != nil {
			if step < 0 {
				out.Skipped = true
			}
			return nil // no oracle to compare against at this state
		}
		now := snapshotVersions(inst.Catalog)
		for _, fs := range states {
			out.Checks++
			want, rerr := renderNodes(xpath.Select(doc, fs.path))
			if rerr != nil {
				return mkDiv(fmt.Sprintf("%s: path %q: rendering oracle fragment: %v", stepDesc, fs.expr, rerr), "", "")
			}
			got, perr := partialFragment(fs)
			if perr != nil {
				return mkDiv(fmt.Sprintf("%s: path %q: partial evaluation failed while the oracle succeeded: %v", stepDesc, fs.expr, perr), want, "")
			}
			if opts.Fault != nil {
				got = opts.Fault(fs.expr, got)
			}
			if got != want {
				return mkDiv(fmt.Sprintf("%s: path %q: partial fragment differs from post-hoc oracle", stepDesc, fs.expr), want, got)
			}

			// The refresher's judgement, replayed: an Unaffected verdict
			// from the path-filtered deps must imply unchanged bytes.
			if fs.baseline != nil {
				unaffected := true
				for key, cur := range now {
					old, ok := fs.baseline[key]
					if !ok || cur == old {
						if !ok && fs.deps.DependsOn(key.source, key.table) {
							unaffected = false
						}
						continue
					}
					if !fs.deps.DependsOn(key.source, key.table) {
						continue
					}
					cs, cerr := changesSince(inst.Catalog, key.source, key.table, old)
					if cerr != nil || cs.Truncated ||
						fs.deps.Judge(key.source, key.table, cs, fs.params) != ivm.Unaffected {
						unaffected = false
					}
				}
				if unaffected {
					out.Restamps++
					if fs.cached != want {
						return mkDiv(fmt.Sprintf("%s: path %q: filtered deps judged the deltas irrelevant but the fragment changed", stepDesc, fs.expr),
							want, fs.cached)
					}
				} else {
					out.Fulls++
				}
			}
			fs.cached, fs.baseline = want, now
		}
		return nil
	}

	if d := checkAll(-1, "baseline"); d != nil {
		out.Divergence = d
		return out
	}
	if out.Skipped {
		return out
	}
	for i, m := range muts {
		changed, err := m.apply(inst.Catalog)
		if err != nil {
			out.Divergence = mkDiv(fmt.Sprintf("step %d: applying %s: %v", i, m, err), "", "")
			return out
		}
		if !changed {
			continue
		}
		out.Steps++
		if d := checkAll(i, fmt.Sprintf("step %d (%s)", i, m)); d != nil {
			out.Divergence = d
			return out
		}
	}
	return out
}

// ShrinkFragment minimizes a diverging fragment run ddmin-style over the
// mutation sequence, holding the path set fixed. budget <= 0 means
// DefaultShrinkBudget checks.
func ShrinkFragment(inst *randaig.Instance, paths []string, muts []Mutation, opts FragmentOptions, budget int) ([]Mutation, *Divergence, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	checks := 0
	reproduces := func(candidate []Mutation) (*Divergence, bool) {
		if checks >= budget {
			return nil, false
		}
		checks++
		out := CheckFragment(inst, paths, candidate, opts)
		return out.Divergence, out.Divergence != nil
	}

	cur := muts
	var last *Divergence
	if d, ok := reproduces(cur); ok {
		last = d
	} else {
		return cur, nil, checks
	}
	for size := len(cur) / 2; size >= 1; {
		removedAny := false
		for start := 0; start+size <= len(cur); {
			candidate := append(append([]Mutation(nil), cur[:start]...), cur[start+size:]...)
			if d, ok := reproduces(candidate); ok {
				cur, last = candidate, d
				removedAny = true
				continue
			}
			start += size
		}
		if !removedAny {
			size /= 2
		} else if size > len(cur)/2 {
			size = len(cur) / 2
		}
		if checks >= budget {
			break
		}
	}
	return cur, last, checks
}
