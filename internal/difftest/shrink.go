package difftest

import (
	"github.com/aigrepro/aig/internal/randaig"
)

// DefaultShrinkBudget bounds the number of oracle re-runs one shrink is
// allowed (each candidate costs a full Check).
const DefaultShrinkBudget = 300

// ShrinkResult is a minimized failing instance together with the
// replayable op sequence that produces it from the original seed.
type ShrinkResult struct {
	Instance   *randaig.Instance
	Ops        []randaig.Op
	Divergence *Divergence
	// Checks is the number of oracle runs the shrink consumed.
	Checks int
}

// Shrink greedily minimizes a diverging instance while preserving the
// divergence on the same leg. It tries, in order: dropping constraints,
// pruning sequence children, and reducing table rows (ddmin-style
// chunk halving). Every accepted step is recorded as a replayable
// randaig.Op. budget <= 0 means DefaultShrinkBudget.
func Shrink(inst *randaig.Instance, opts Options, div *Divergence, budget int) ShrinkResult {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	s := &shrinker{opts: opts, leg: div.Leg, budget: budget}
	cur, ops, last := inst, []randaig.Op(nil), div

	// Passes repeat until a full sweep makes no progress (row reduction
	// can unlock further child pruning and vice versa).
	for {
		progressed := false
		for _, pass := range []func(*randaig.Instance) (randaig.Op, *randaig.Instance, *Divergence, bool){
			s.dropConstraint, s.pruneChild, s.reduceRows,
		} {
			for {
				op, next, d, ok := pass(cur)
				if !ok {
					break
				}
				cur, last = next, d
				ops = append(ops, op)
				progressed = true
			}
		}
		if !progressed || s.exhausted() {
			break
		}
	}
	return ShrinkResult{Instance: cur, Ops: ops, Divergence: last, Checks: s.checks}
}

type shrinker struct {
	opts   Options
	leg    string
	budget int
	checks int
}

func (s *shrinker) exhausted() bool { return s.checks >= s.budget }

// reproduces re-runs the oracle and reports whether the same leg still
// diverges.
func (s *shrinker) reproduces(inst *randaig.Instance) (*Divergence, bool) {
	if s.exhausted() {
		return nil, false
	}
	s.checks++
	out := Check(inst, s.opts)
	if out.Divergence != nil && out.Divergence.Leg == s.leg {
		return out.Divergence, true
	}
	return nil, false
}

// try applies one op and keeps it when the divergence survives.
func (s *shrinker) try(inst *randaig.Instance, op randaig.Op) (*randaig.Instance, *Divergence, bool) {
	next, err := inst.Apply(op)
	if err != nil {
		return nil, nil, false
	}
	d, ok := s.reproduces(next)
	if !ok {
		return nil, nil, false
	}
	return next, d, true
}

// dropConstraint removes the highest-indexed constraint that is not
// needed to reproduce.
func (s *shrinker) dropConstraint(inst *randaig.Instance) (randaig.Op, *randaig.Instance, *Divergence, bool) {
	for i := len(inst.AIG.Constraints) - 1; i >= 0; i-- {
		op := randaig.Op{Kind: randaig.OpDropConstraint, Index: i}
		if next, d, ok := s.try(inst, op); ok {
			return op, next, d, true
		}
	}
	return randaig.Op{}, nil, nil, false
}

// pruneChild removes one sequence child whose absence preserves the
// divergence. Apply rejects prunes that break static validity, so this
// only ever proposes well-formed candidates.
func (s *shrinker) pruneChild(inst *randaig.Instance) (randaig.Op, *randaig.Instance, *Divergence, bool) {
	for _, elem := range inst.AIG.DTD.Types() {
		p, ok := inst.AIG.DTD.Production(elem)
		if !ok || len(p.Children) < 2 {
			continue
		}
		seen := map[string]bool{}
		for _, child := range p.Children {
			if seen[child] {
				continue
			}
			seen[child] = true
			op := randaig.Op{Kind: randaig.OpPruneChild, Elem: elem, Child: child}
			if next, d, ok := s.try(inst, op); ok {
				return op, next, d, true
			}
		}
	}
	return randaig.Op{}, nil, nil, false
}

// reduceRows shrinks one table's row set, trying the empty set first
// and then ddmin-style complements of ever-smaller chunks.
func (s *shrinker) reduceRows(inst *randaig.Instance) (randaig.Op, *randaig.Instance, *Divergence, bool) {
	for _, dbName := range inst.Catalog.DatabaseNames() {
		db, err := inst.Catalog.Database(dbName)
		if err != nil {
			continue
		}
		for _, tn := range db.TableNames() {
			t, err := db.Table(tn)
			if err != nil || t.Len() == 0 {
				continue
			}
			n := t.Len()
			// Empty table outright?
			op := randaig.Op{Kind: randaig.OpKeepRows, Source: dbName, Table: tn, Keep: []int{}}
			if next, d, ok := s.try(inst, op); ok {
				return op, next, d, true
			}
			// Keep the complement of one chunk, halving chunk granularity.
			for chunks := 2; chunks <= n; chunks *= 2 {
				size := (n + chunks - 1) / chunks
				for start := 0; start < n; start += size {
					var keep []int
					for i := 0; i < n; i++ {
						if i < start || i >= start+size {
							keep = append(keep, i)
						}
					}
					if len(keep) == 0 || len(keep) == n {
						continue
					}
					op := randaig.Op{Kind: randaig.OpKeepRows, Source: dbName, Table: tn, Keep: keep}
					if next, d, ok := s.try(inst, op); ok {
						return op, next, d, true
					}
				}
			}
		}
	}
	return randaig.Op{}, nil, nil, false
}
