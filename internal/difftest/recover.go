package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/relstore/iofault"
)

// Crash-recovery oracle: run a seeded operation sequence against a
// persisted database on the fault-injectable in-memory filesystem,
// fingerprinting the full durable state (rows in order, versions, every
// ChangesSince window) after every operation. Then crash the store at
// chosen WAL offsets — every frame boundary, plus every byte of the
// tail record — recover each image, and require the recovered state to
// equal the fingerprint taken at exactly the surviving WAL prefix. Any
// mismatch is a durability bug: lost, duplicated, half-applied or
// reordered mutations, wrong versions, or a change log that would make
// IVM restamp stale documents.

// RecoverOp is one replayable operation of a recovery torture run. The
// set deliberately covers every WAL record kind: row inserts/deletes,
// position deletes, sorts, distinct, change-log limit changes, table
// adds and drops, manual version bumps, plus explicit snapshots (which
// journal nothing but rotate the log mid-sequence).
type RecoverOp struct {
	Kind  string   `json:"kind"`
	Table string   `json:"table,omitempty"`
	Row   []string `json:"row,omitempty"`
	Index int      `json:"index,omitempty"` // deleteat position; addtable row count
	Cols  []int    `json:"cols,omitempty"`
	Limit int      `json:"limit,omitempty"`
}

func (op RecoverOp) String() string {
	switch op.Kind {
	case "insert", "delete":
		return fmt.Sprintf("%s %s %v", op.Kind, op.Table, op.Row)
	case "deleteat":
		return fmt.Sprintf("deleteat %s[%d]", op.Table, op.Index)
	case "sort":
		return fmt.Sprintf("sort %s %v", op.Table, op.Cols)
	case "loglimit":
		return fmt.Sprintf("loglimit %s %d", op.Table, op.Limit)
	case "addtable":
		return fmt.Sprintf("addtable %s rows=%d", op.Table, op.Index)
	default:
		return op.Kind + " " + op.Table
	}
}

// RecoverConfig shapes one torture run.
type RecoverConfig struct {
	// Mutations is the operation count (0 means 20).
	Mutations int `json:"mutations"`
	// SnapshotEvery is the automatic snapshot cadence in WAL records
	// (0 disables automatic snapshots so crashes exercise long replay
	// tails; explicit snapshot ops still rotate).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// LogCap overrides the base tables' change-log limit (0 keeps the
	// default, negative disables delta logging).
	LogCap int `json:"log_cap,omitempty"`
	// TruncateAt, when positive, crashes at that single WAL offset
	// (regression replay); otherwise every frame boundary and every byte
	// of the tail record is swept.
	TruncateAt int64 `json:"truncate_at,omitempty"`
}

func (c RecoverConfig) mutations() int {
	if c.Mutations <= 0 {
		return 20
	}
	return c.Mutations
}

func (c RecoverConfig) snapEvery() int {
	if c.SnapshotEvery == 0 {
		return -1 // explicit ops only, unless configured
	}
	return c.SnapshotEvery
}

// RecoverOutcome summarizes one torture run.
type RecoverOutcome struct {
	// Divergence is nil when every crash image recovered exactly.
	Divergence *Divergence
	// Records is the number of WAL records the run journaled, Snapshots
	// how many snapshot rotations it took, and Crashes how many crash
	// points were recovered and compared.
	Records   int
	Snapshots int
	Crashes   int
	// TruncateAt is the WAL offset of the diverging crash (-1 if none).
	TruncateAt int64
}

// buildRecoverBase is the deterministic starting database for a seed.
func buildRecoverBase(seed int64) *relstore.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDatabase("R")
	a := db.CreateTable("a", relstore.MustSchema("k:string", "n:int"))
	b := db.CreateTable("b", relstore.MustSchema("x:int", "y:string"))
	for i, n := 0, 3+rng.Intn(5); i < n; i++ {
		a.MustInsert(relstore.Tuple{relstore.String(fmt.Sprintf("k%d", rng.Intn(8))), relstore.Int(int64(rng.Intn(10)))})
	}
	for i, n := 0, 2+rng.Intn(4); i < n; i++ {
		b.MustInsert(relstore.Tuple{relstore.Int(int64(rng.Intn(10))), relstore.String(fmt.Sprintf("y%d", rng.Intn(8)))})
	}
	return db
}

// applyRecoverOp performs one op. Preconditions may have been shrunk
// away (a delete whose row is gone, a table that was never added);
// those degrade to no-ops, mirroring what the journaled store does.
func applyRecoverOp(db *relstore.Database, p *relstore.Persister, op RecoverOp) error {
	t, terr := db.Table(op.Table)
	switch op.Kind {
	case "insert":
		if terr != nil {
			return nil
		}
		row, err := parseRow(t.Schema(), op.Row)
		if err != nil {
			return nil
		}
		return t.Insert(row)
	case "delete":
		if terr != nil {
			return nil
		}
		row, err := parseRow(t.Schema(), op.Row)
		if err != nil {
			return nil
		}
		key := row.Key()
		t.DeleteWhere(func(r relstore.Tuple) bool { return r.Key() == key })
		return nil
	case "deleteat":
		if terr != nil {
			return nil
		}
		t.DeleteAt(op.Index) // out of range after shrinking: no-op
		return nil
	case "sort":
		if terr != nil {
			return nil
		}
		t.Sort(op.Cols)
		return nil
	case "distinct":
		if terr != nil {
			return nil
		}
		t.Distinct()
		return nil
	case "loglimit":
		if terr != nil {
			return nil
		}
		t.SetChangeLogLimit(op.Limit)
		return nil
	case "addtable":
		nt := relstore.NewTable(op.Table, relstore.MustSchema("p:string", "q:int"))
		for i := 0; i < op.Index; i++ {
			nt.MustInsert(relstore.Tuple{relstore.String(fmt.Sprintf("p%d", i)), relstore.Int(int64(i))})
		}
		db.AddTable(nt)
		return nil
	case "droptable":
		db.DropTable(op.Table)
		return nil
	case "bump":
		db.BumpVersion()
		return nil
	case "snapshot":
		if p != nil {
			return p.Snapshot()
		}
		return nil
	default:
		return fmt.Errorf("difftest: unknown recover op %q", op.Kind)
	}
}

// GenerateRecoverOps derives a deterministic op sequence for a seed,
// tracking the evolving state on an unpersisted copy so generated ops
// are valid at their point in the sequence.
func GenerateRecoverOps(seed int64, cfg RecoverConfig) []RecoverOp {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed1e55))
	db := buildRecoverBase(seed)

	randomRow := func(t *relstore.Table) []string {
		out := make([]string, len(t.Schema()))
		for c, col := range t.Schema() {
			if col.Kind == relstore.KindInt {
				out[c] = fmt.Sprint(rng.Intn(10))
			} else {
				out[c] = fmt.Sprintf("%s%d", col.Name, rng.Intn(8))
			}
		}
		return out
	}

	var ops []RecoverOp
	for len(ops) < cfg.mutations() {
		names := db.TableNames()
		tn := names[rng.Intn(len(names))]
		t, err := db.Table(tn)
		if err != nil {
			continue
		}
		var op RecoverOp
		switch w := rng.Intn(100); {
		case w < 40:
			op = RecoverOp{Kind: "insert", Table: tn, Row: randomRow(t)}
		case w < 55:
			if t.Len() == 0 {
				continue
			}
			op = RecoverOp{Kind: "delete", Table: tn, Row: renderRow(t.Row(rng.Intn(t.Len())))}
		case w < 65:
			if t.Len() == 0 {
				continue
			}
			op = RecoverOp{Kind: "deleteat", Table: tn, Index: rng.Intn(t.Len())}
		case w < 72:
			var cols []int
			if rng.Intn(2) == 0 {
				cols = []int{rng.Intn(len(t.Schema()))}
			}
			op = RecoverOp{Kind: "sort", Table: tn, Cols: cols}
		case w < 78:
			op = RecoverOp{Kind: "distinct", Table: tn}
		case w < 83:
			limits := []int{-1, 1, 3, 8, 0}
			op = RecoverOp{Kind: "loglimit", Table: tn, Limit: limits[rng.Intn(len(limits))]}
		case w < 88:
			op = RecoverOp{Kind: "addtable", Table: "c", Index: rng.Intn(4)}
		case w < 92:
			if !db.HasTable("c") {
				continue
			}
			op = RecoverOp{Kind: "droptable", Table: "c"}
		case w < 96:
			op = RecoverOp{Kind: "bump"}
		default:
			op = RecoverOp{Kind: "snapshot"}
		}
		if err := applyRecoverOp(db, nil, op); err != nil {
			continue
		}
		ops = append(ops, op)
	}
	return ops
}

// recoverFingerprint renders the complete durable state of a database:
// rows in order, table and database versions, and the ChangesSince
// answer at every watermark (content, truncation flag and cause).
func recoverFingerprint(db *relstore.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "db %s v%d\n", db.Name(), db.Version())
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "table %s %s v%d\n", name, t.Schema(), t.Version())
		for _, row := range t.Rows() {
			fmt.Fprintf(&b, "  row %s\n", row)
		}
		for since := uint64(0); since <= t.Version()+1; since++ {
			cs := t.ChangesSince(since)
			fmt.Fprintf(&b, "  since %d: now=%d trunc=%v cause=%s", since, cs.Now, cs.Truncated, cs.Cause)
			for _, ch := range cs.Changes {
				fmt.Fprintf(&b, " [v%d %s %s]", ch.Ver, ch.Op, ch.Row)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// CheckRecovery generates the seed's op sequence and tortures it,
// returning the outcome and the sequence (for shrinking and corpus
// filing).
func CheckRecovery(seed int64, cfg RecoverConfig) (RecoverOutcome, []RecoverOp) {
	ops := GenerateRecoverOps(seed, cfg)
	return ReplayRecovery(seed, cfg, ops), ops
}

// ReplayRecovery tortures one explicit op sequence: journal it, then
// crash-and-recover at every chosen WAL offset, comparing against the
// per-prefix fingerprint oracle.
func ReplayRecovery(seed int64, cfg RecoverConfig, ops []RecoverOp) RecoverOutcome {
	out := RecoverOutcome{TruncateAt: -1}
	mkDiv := func(at int64, detail, want, got string) RecoverOutcome {
		out.Divergence = &Divergence{Seed: seed, Leg: "recover", Detail: detail, Want: want, Got: got}
		out.TruncateAt = at
		return out
	}

	fs := iofault.New()
	db := buildRecoverBase(seed)
	if cfg.LogCap != 0 {
		for _, tn := range db.TableNames() {
			if t, err := db.Table(tn); err == nil {
				t.SetChangeLogLimit(cfg.LogCap)
			}
		}
	}
	popts := relstore.PersistOptions{FS: fs, Fsync: relstore.FsyncAlways, SnapshotEvery: cfg.snapEvery()}
	p, err := db.Persist(popts)
	if err != nil {
		return mkDiv(-1, "persist: "+err.Error(), "", "")
	}

	// The oracle: one fingerprint per WAL watermark. Ops that journal
	// nothing (no-ops, snapshots) leave the state — and so the
	// fingerprint — unchanged at their watermark.
	fps := map[uint64]string{p.Seq(): recoverFingerprint(db)}
	for i, op := range ops {
		if err := applyRecoverOp(db, p, op); err != nil {
			return mkDiv(-1, fmt.Sprintf("op %d (%s): %v", i, op, err), "", "")
		}
		fps[p.Seq()] = recoverFingerprint(db)
	}
	out.Records = int(p.Seq())
	out.Snapshots = int(p.SnapshotSeq()) // records covered by the last rotation

	wal := fs.Bytes(relstore.WALFile)
	startSeq, ends, err := relstore.InspectWAL(wal)
	if err != nil {
		return mkDiv(-1, "inspect wal: "+err.Error(), "", "")
	}

	// Crash points: each frame boundary and its preceding byte (whole
	// records lost, frames torn mid-header), every byte of the tail
	// record, and a cut inside the WAL header.
	var offsets []int64
	if cfg.TruncateAt > 0 {
		offsets = []int64{cfg.TruncateAt}
	} else {
		seen := map[int64]bool{}
		add := func(off int64) {
			if off >= 0 && off <= int64(len(wal)) && !seen[off] {
				seen[off] = true
				offsets = append(offsets, off)
			}
		}
		add(0)
		add(3)
		for _, e := range ends {
			add(e - 1)
			add(e)
		}
		tailStart := ends[len(ends)-1]
		if len(ends) >= 2 {
			tailStart = ends[len(ends)-2]
		}
		for off := tailStart; off <= int64(len(wal)); off++ {
			add(off)
		}
		sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	}

	for _, off := range offsets {
		img := fs.Image()
		img.Truncate(relstore.WALFile, off)
		rdb, _, err := relstore.Recover(db.Name(), relstore.PersistOptions{FS: img, Fsync: relstore.FsyncAlways})
		if err != nil {
			return mkDiv(off, fmt.Sprintf("truncate@%d: recover: %v", off, err), "", "")
		}
		out.Crashes++
		records := 0
		for i, e := range ends {
			if i > 0 && e <= off {
				records++
			}
		}
		wantSeq := startSeq - 1 + uint64(records)
		want, ok := fps[wantSeq]
		if !ok {
			return mkDiv(off, fmt.Sprintf("truncate@%d: no oracle fingerprint at seq %d", off, wantSeq), "", "")
		}
		if got := recoverFingerprint(rdb); got != want {
			return mkDiv(off,
				fmt.Sprintf("truncate@%d (seq %d of %d): recovered state differs from pre-crash oracle", off, wantSeq, startSeq-1+uint64(len(ends)-1)),
				want, got)
		}
	}
	return out
}

// ShrinkRecovery minimizes a diverging op sequence ddmin-style, exactly
// like ShrinkIVM: drop ever-smaller chunks while the "recover" leg keeps
// diverging. budget <= 0 means DefaultShrinkBudget checks.
func ShrinkRecovery(seed int64, cfg RecoverConfig, ops []RecoverOp, budget int) ([]RecoverOp, *Divergence, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	checks := 0
	reproduces := func(candidate []RecoverOp) (*Divergence, bool) {
		if checks >= budget {
			return nil, false
		}
		checks++
		out := ReplayRecovery(seed, cfg, candidate)
		return out.Divergence, out.Divergence != nil
	}

	cur := ops
	var last *Divergence
	if d, ok := reproduces(cur); ok {
		last = d
	} else {
		return cur, nil, checks
	}
	for size := len(cur) / 2; size >= 1; {
		removedAny := false
		for start := 0; start+size <= len(cur); {
			candidate := append(append([]RecoverOp(nil), cur[:start]...), cur[start+size:]...)
			if d, ok := reproduces(candidate); ok {
				cur, last = candidate, d
				removedAny = true
				continue
			}
			start += size
		}
		if !removedAny {
			size /= 2
		} else if size > len(cur)/2 {
			size = len(cur) / 2
		}
		if checks >= budget {
			break
		}
	}
	return cur, last, checks
}
