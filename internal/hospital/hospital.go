// Package hospital provides the running example of the paper (Example
// 1.1): the insurance-report DTD, the XML constraints, the AIG σ0 of
// Fig. 2 built over the four source databases DB1..DB4, and a small
// hand-written dataset. The larger, parameterized datasets of Table 1
// live in the datagen package.
//
// Everything downstream — the aig tests, the specializer, the mediator,
// the examples and the benchmark harness — evaluates this grammar.
package hospital

import (
	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/dtd"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

// DTDText is the report DTD D of Example 1.1.
const DTDText = `
<!ELEMENT report (patient*)>
<!ELEMENT patient (SSN, pname, treatments, bill)>
<!ELEMENT treatments (treatment*)>
<!ELEMENT treatment (trId, tname, procedure)>
<!ELEMENT procedure (treatment*)>
<!ELEMENT bill (item*)>
<!ELEMENT item (trId, price)>
<!ELEMENT SSN (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT trId (#PCDATA)>
<!ELEMENT tname (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

// ConstraintsText is the key and inclusion constraint of Example 1.1.
const ConstraintsText = `
patient(item.trId -> item)
patient(treatment.trId [= item.trId)
`

// Schema parses the report DTD.
func Schema() *dtd.DTD { return dtd.MustParse(DTDText) }

// Constraints parses the report constraints.
func Constraints() []xconstraint.Constraint {
	cs, err := xconstraint.ParseAll(ConstraintsText)
	if err != nil {
		panic(err)
	}
	return cs
}

// The queries Q1..Q4 of Fig. 2. Q2 is the multi-source query over DB1,
// DB2 and DB4 that the specializer decomposes.
const (
	Q1 = `select distinct p.SSN, p.pname, p.policy from DB1:patient p, DB1:visitInfo i
	      where p.SSN = i.SSN and i.date = $v.date`
	Q2 = `select t.trId, t.tname from DB1:visitInfo i, DB2:cover c, DB4:treatment t
	      where i.SSN = $v.SSN and i.date = $v.date and t.trId = i.trId
	      and c.trId = i.trId and c.policy = $v.policy`
	Q3 = `select p.trId2 as trId, t.tname from DB4:procedure p, DB4:treatment t
	      where p.trId1 = $v.trId and t.trId = p.trId2`
	Q4 = `select trId, price from DB3:billing where trId in $V`
)

// Sigma0 builds the AIG σ0 of Fig. 2 (without the compiled constraint
// rules; the specializer adds those). WithConstraints controls whether
// the XML constraints are attached.
func Sigma0(withConstraints bool) *aig.AIG {
	a := aig.New(Schema())

	// Semantic attributes (Fig. 2 top).
	a.Inh["report"] = aig.Attr(aig.StringMember("date"))
	a.Inh["patient"] = aig.Attr(
		aig.StringMember("date"), aig.StringMember("SSN"),
		aig.StringMember("pname"), aig.StringMember("policy"))
	a.Inh["treatments"] = aig.Attr(
		aig.StringMember("date"), aig.StringMember("SSN"), aig.StringMember("policy"))
	a.Syn["treatments"] = aig.Attr(aig.SetMember("trIdS", "trId:string"))
	a.Syn["treatment"] = aig.Attr(aig.SetMember("trIdS", "trId:string"))
	a.Syn["procedure"] = aig.Attr(aig.SetMember("trIdS", "trId:string"))
	a.Inh["treatment"] = aig.Attr(aig.StringMember("trId"), aig.StringMember("tname"))
	a.Inh["procedure"] = aig.Attr(aig.StringMember("trId"))
	a.Inh["bill"] = aig.Attr(aig.SetMember("trIdS", "trId:string"))
	a.Inh["item"] = aig.Attr(aig.StringMember("trId"), aig.ScalarMember("price", relstore.KindInt))
	a.Inh["SSN"] = aig.Attr(aig.StringMember("val"))
	a.Inh["pname"] = aig.Attr(aig.StringMember("val"))
	a.Inh["trId"] = aig.Attr(aig.StringMember("val"))
	a.Inh["tname"] = aig.Attr(aig.StringMember("val"))
	a.Inh["price"] = aig.Attr(aig.ScalarMember("val", relstore.KindInt))
	a.Syn["trId"] = aig.Attr(aig.StringMember("val"))

	// report -> patient*
	a.Rules["report"] = &aig.Rule{
		Elem: "report",
		Inh: map[string]*aig.InhRule{
			"patient": {
				Child:       "patient",
				Query:       sqlmini.MustParse(Q1),
				QueryParams: aig.ParamMap("v", aig.InhOf("report", "")),
				Copies:      []aig.CopyAssign{aig.Copy("date", aig.InhOf("report", "date"))},
			},
		},
	}

	// patient -> SSN, pname, treatments, bill
	a.Rules["patient"] = &aig.Rule{
		Elem: "patient",
		Inh: map[string]*aig.InhRule{
			"SSN":   {Child: "SSN", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("patient", "SSN"))}},
			"pname": {Child: "pname", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("patient", "pname"))}},
			"treatments": {Child: "treatments",
				Copies: aig.CopyAll(aig.InhSide, "patient", "date", "SSN", "policy")},
			"bill": {Child: "bill",
				Copies: []aig.CopyAssign{aig.Copy("trIdS", aig.SynOf("treatments", "trIdS"))}},
		},
	}

	// treatments -> treatment*
	a.Rules["treatments"] = &aig.Rule{
		Elem: "treatments",
		Inh: map[string]*aig.InhRule{
			"treatment": {
				Child:       "treatment",
				Query:       sqlmini.MustParse(Q2),
				QueryParams: aig.ParamMap("v", aig.InhOf("treatments", "")),
			},
		},
		Syn: aig.Syn1("trIdS", aig.CollectChildren{Child: "treatment", Member: "trIdS"}),
	}

	// treatment -> trId, tname, procedure
	a.Rules["treatment"] = &aig.Rule{
		Elem: "treatment",
		Inh: map[string]*aig.InhRule{
			"trId":      {Child: "trId", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("treatment", "trId"))}},
			"tname":     {Child: "tname", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("treatment", "tname"))}},
			"procedure": {Child: "procedure", Copies: []aig.CopyAssign{aig.Copy("trId", aig.InhOf("treatment", "trId"))}},
		},
		Syn: aig.Syn1("trIdS", aig.UnionOf{Terms: []aig.SynExpr{
			aig.CollectionOf{Src: aig.SynOf("procedure", "trIdS")},
			aig.SingletonOf{Srcs: []aig.SourceRef{aig.SynOf("trId", "val")}},
		}}),
	}

	// procedure -> treatment*
	a.Rules["procedure"] = &aig.Rule{
		Elem: "procedure",
		Inh: map[string]*aig.InhRule{
			"treatment": {
				Child:       "treatment",
				Query:       sqlmini.MustParse(Q3),
				QueryParams: aig.ParamMap("v", aig.InhOf("procedure", "")),
			},
		},
		Syn: aig.Syn1("trIdS", aig.CollectChildren{Child: "treatment", Member: "trIdS"}),
	}

	// trId -> S
	a.Rules["trId"] = &aig.Rule{
		Elem:    "trId",
		TextSrc: aig.InhOf("trId", "val"),
		Syn:     aig.Syn1("val", aig.ScalarOf{Src: aig.InhOf("trId", "val")}),
	}

	// bill -> item*
	a.Rules["bill"] = &aig.Rule{
		Elem: "bill",
		Inh: map[string]*aig.InhRule{
			"item": {
				Child:       "item",
				Query:       sqlmini.MustParse(Q4),
				QueryParams: aig.ParamMap("V", aig.InhOf("bill", "trIdS")),
			},
		},
	}

	// item -> trId, price
	a.Rules["item"] = &aig.Rule{
		Elem: "item",
		Inh: map[string]*aig.InhRule{
			"trId":  {Child: "trId", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("item", "trId"))}},
			"price": {Child: "price", Copies: []aig.CopyAssign{aig.Copy("val", aig.InhOf("item", "price"))}},
		},
	}

	// Remaining text elements: SSN, pname, tname, price emit their single
	// inherited scalar.
	for _, elem := range []string{"SSN", "pname", "tname", "price"} {
		a.Rules[elem] = &aig.Rule{Elem: elem, TextSrc: aig.InhOf(elem, "val")}
	}

	if withConstraints {
		a.Constraints = Constraints()
	}
	return a
}

// RootInh builds the AIG's attribute — the value of Inh(report) — for the
// given report date.
func RootInh(a *aig.AIG, date string) *aig.AttrValue {
	v := aig.NewAttrValue(a.Inh["report"])
	if err := v.SetScalar("date", relstore.String(date)); err != nil {
		panic(err)
	}
	return v
}

// TinyCatalog builds a small hand-written instance of DB1..DB4 exercising
// every feature: multiple patients on multiple dates, insurance policies
// covering different treatments, a two-level procedure hierarchy, and a
// billing table with prices for every treatment.
func TinyCatalog() *relstore.Catalog {
	cat := relstore.NewCatalog()

	db1 := relstore.NewDatabase("DB1")
	patient := db1.CreateTable("patient", relstore.MustSchema("SSN:string", "pname:string", "policy:string"))
	visit := db1.CreateTable("visitInfo", relstore.MustSchema("SSN:string", "trId:string", "date:string"))
	for _, r := range [][]any{
		{"s1", "alice", "gold"},
		{"s2", "bob", "silver"},
		{"s3", "carol", "gold"},
	} {
		must(patient.InsertValues(r...))
	}
	for _, r := range [][]any{
		{"s1", "t1", "d1"},
		{"s1", "t2", "d1"},
		{"s2", "t1", "d2"},
		{"s2", "t3", "d1"},
		{"s3", "t3", "d1"},
	} {
		must(visit.InsertValues(r...))
	}
	cat.Add(db1)

	db2 := relstore.NewDatabase("DB2")
	cover := db2.CreateTable("cover", relstore.MustSchema("policy:string", "trId:string"))
	for _, r := range [][]any{
		{"gold", "t1"}, {"gold", "t2"}, {"gold", "t3"},
		{"silver", "t1"}, {"silver", "t3"},
	} {
		must(cover.InsertValues(r...))
	}
	cat.Add(db2)

	db3 := relstore.NewDatabase("DB3")
	billing := db3.CreateTable("billing", relstore.MustSchema("trId:string", "price:int"))
	for _, r := range [][]any{
		{"t1", 100}, {"t2", 250}, {"t3", 70}, {"t4", 999}, {"t5", 40},
	} {
		must(billing.InsertValues(r...))
	}
	cat.Add(db3)

	db4 := relstore.NewDatabase("DB4")
	treatment := db4.CreateTable("treatment", relstore.MustSchema("trId:string", "tname:string"))
	for _, r := range [][]any{
		{"t1", "xray"}, {"t2", "mri"}, {"t3", "cast"}, {"t4", "surgery"}, {"t5", "scan"},
	} {
		must(treatment.InsertValues(r...))
	}
	procedure := db4.CreateTable("procedure", relstore.MustSchema("trId1:string", "trId2:string"))
	// t2's procedure consists of t4, whose procedure consists of t5.
	for _, r := range [][]any{
		{"t2", "t4"}, {"t4", "t5"},
	} {
		must(procedure.InsertValues(r...))
	}
	cat.Add(db4)

	return cat
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// EnvFor builds an evaluation environment over a catalog, with parameter
// cardinality hints for the planner.
func EnvFor(cat *relstore.Catalog) *aig.Env {
	return &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
}
