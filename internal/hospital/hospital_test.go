package hospital

import (
	"testing"

	"github.com/aigrepro/aig/internal/sqlmini"
	"github.com/aigrepro/aig/internal/xconstraint"
)

func TestSchemaAndConstraints(t *testing.T) {
	d := Schema()
	if d.Root != "report" || !d.IsRecursive() {
		t.Errorf("schema: root=%q recursive=%v", d.Root, d.IsRecursive())
	}
	cs := Constraints()
	if len(cs) != 2 || cs[0].Kind != xconstraint.Key || cs[1].Kind != xconstraint.Inclusion {
		t.Errorf("constraints = %v", cs)
	}
	for _, c := range cs {
		if err := c.ValidateAgainst(d); err != nil {
			t.Errorf("constraint %v invalid against the schema: %v", c, err)
		}
	}
}

func TestTinyCatalogShape(t *testing.T) {
	cat := TinyCatalog()
	wantTables := map[string][]string{
		"DB1": {"patient", "visitInfo"},
		"DB2": {"cover"},
		"DB3": {"billing"},
		"DB4": {"procedure", "treatment"},
	}
	for dbName, tables := range wantTables {
		db, err := cat.Database(dbName)
		if err != nil {
			t.Fatal(err)
		}
		got := db.TableNames()
		if len(got) != len(tables) {
			t.Errorf("%s tables = %v, want %v", dbName, got, tables)
			continue
		}
		for i := range tables {
			if got[i] != tables[i] {
				t.Errorf("%s tables = %v, want %v", dbName, got, tables)
			}
		}
	}
}

func TestSigma0VariantsValidate(t *testing.T) {
	cat := TinyCatalog()
	schemas := sqlmini.CatalogSchemas{Catalog: cat}
	with := Sigma0(true)
	without := Sigma0(false)
	if err := with.Validate(schemas); err != nil {
		t.Errorf("Sigma0(true): %v", err)
	}
	if err := without.Validate(schemas); err != nil {
		t.Errorf("Sigma0(false): %v", err)
	}
	if len(with.Constraints) != 2 || len(without.Constraints) != 0 {
		t.Errorf("constraint attachment wrong: %d / %d", len(with.Constraints), len(without.Constraints))
	}
}

func TestRootInh(t *testing.T) {
	a := Sigma0(false)
	v := RootInh(a, "d7")
	got, err := v.Scalar("date")
	if err != nil || got.AsString() != "d7" {
		t.Errorf("RootInh date = %v, %v", got, err)
	}
}

func TestEnvForWiring(t *testing.T) {
	cat := TinyCatalog()
	env := EnvFor(cat)
	if env.Schemas == nil || env.Data == nil || env.Stats == nil {
		t.Error("EnvFor left providers nil")
	}
}
