package hospital_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/aigrepro/aig/internal/datagen"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/mediator"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/source"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

var update = flag.Bool("update", false, "rewrite the golden files from the conceptual evaluator")

// miniSize is a scaled-down datagen dataset for golden-file testing:
// the Table-1 scales produce multi-megabyte documents (Small ≈ 9 MB
// canonical for one report date) that are too large to commit and too
// slow for the conceptual evaluator in tier-1 tests, so the golden
// corpus pins the handwritten tiny catalog plus this generated mini
// scale instead.
var miniSize = datagen.Size{
	Name: "mini", Patient: 40, VisitInfo: 120, Cover: 40,
	Billing: 12, Treatment: 12, Procedure: 30,
	Policies: 4, Dates: 5, Levels: 4,
}

// goldenCases enumerates the pinned documents: catalog × report date.
func goldenCases() []struct {
	name string
	cat  *relstore.Catalog
	date string
} {
	return []struct {
		name string
		cat  *relstore.Catalog
		date string
	}{
		{"tiny-d1", hospital.TinyCatalog(), "d1"},
		{"tiny-d2", hospital.TinyCatalog(), "d2"},
		{"mini-d001", datagen.Generate(miniSize, 1), datagen.Date(0)},
		{"mini-d003", datagen.Generate(miniSize, 1), datagen.Date(2)},
	}
}

// TestGoldenDocuments evaluates the hospital AIG over each pinned
// catalog with both evaluators and compares the canonical serialization
// against the committed golden file. Run with -update to regenerate the
// files from the conceptual evaluator.
func TestGoldenDocuments(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			a, err := specialize.CompileConstraints(hospital.Sigma0(true))
			if err != nil {
				t.Fatal(err)
			}
			schemas := sqlmini.CatalogSchemas{Catalog: tc.cat}
			stats := sqlmini.CatalogStats{Catalog: tc.cat}
			a, err = specialize.DecomposeQueries(a, schemas, stats, sqlmini.PlanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			a, err = specialize.Unfold(a, 8)
			if err != nil {
				t.Fatal(err)
			}

			doc, err := a.Eval(hospital.EnvFor(tc.cat), hospital.RootInh(a, tc.date))
			if err != nil {
				t.Fatalf("conceptual evaluation: %v", err)
			}
			got := doc.Canonical() + "\n"

			path := filepath.Join("testdata", tc.name+".xml")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("conceptual document deviates from %s (len %d vs %d); run with -update if the change is intended",
					path, len(got), len(want))
			}

			// The mediator must land on the same golden document.
			med := mediator.New(source.RegistryFromCatalog(tc.cat), mediator.DefaultOptions())
			res, err := med.Evaluate(a, hospital.RootInh(a, tc.date))
			if err != nil {
				t.Fatalf("mediator evaluation: %v", err)
			}
			if medGot := res.Doc.Canonical() + "\n"; medGot != string(want) {
				t.Errorf("mediator document deviates from %s (len %d vs %d)", path, len(medGot), len(want))
			}
		})
	}
}
