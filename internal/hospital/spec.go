package hospital

// SpecText is σ0 written in the aigspec language — the text counterpart
// of Fig. 2. Parsing it must yield a grammar equivalent to Sigma0(true);
// the aigspec tests verify both produce identical documents.
const SpecText = `
# Attribute Integration Grammar σ0 (Fig. 2): the daily insurance report.

dtd
  <!ELEMENT report (patient*)>
  <!ELEMENT patient (SSN, pname, treatments, bill)>
  <!ELEMENT treatments (treatment*)>
  <!ELEMENT treatment (trId, tname, procedure)>
  <!ELEMENT procedure (treatment*)>
  <!ELEMENT bill (item*)>
  <!ELEMENT item (trId, price)>
  <!ELEMENT SSN (#PCDATA)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT trId (#PCDATA)>
  <!ELEMENT tname (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
end

inh report (date)
inh patient (date, SSN, pname, policy)
inh treatments (date, SSN, policy)
syn treatments (set trIdS(trId))
syn treatment (set trIdS(trId))
syn procedure (set trIdS(trId))
inh treatment (trId, tname)
inh procedure (trId)
inh bill (set trIdS(trId))
inh item (trId, price:int)
inh SSN (val)
inh pname (val)
inh trId (val)
inh tname (val)
inh price (val:int)
syn trId (val)

rule report
  child patient from query [v = inh(report)]:
    select distinct p.SSN, p.pname, p.policy
    from DB1:patient p, DB1:visitInfo i
    where p.SSN = i.SSN and i.date = $v.date;
  child patient set date = inh(report).date
end

rule patient
  child SSN set val = inh(patient).SSN
  child pname set val = inh(patient).pname
  child treatments copy date, SSN, policy from inh(patient)
  child bill set trIdS = syn(treatments).trIdS
end

rule treatments
  child treatment from query [v = inh(treatments)]:
    select t.trId, t.tname
    from DB1:visitInfo i, DB2:cover c, DB4:treatment t
    where i.SSN = $v.SSN and i.date = $v.date and t.trId = i.trId
    and c.trId = i.trId and c.policy = $v.policy;
  syn trIdS = collect(treatment.trIdS)
end

rule treatment
  child trId set val = inh(treatment).trId
  child tname set val = inh(treatment).tname
  child procedure set trId = inh(treatment).trId
  syn trIdS = union(syn(procedure).trIdS, singleton(syn(trId).val))
end

rule procedure
  child treatment from query [v = inh(procedure)]:
    select p.trId2 as trId, t.tname
    from DB4:procedure p, DB4:treatment t
    where p.trId1 = $v.trId and t.trId = p.trId2;
  syn trIdS = collect(treatment.trIdS)
end

rule trId
  text inh(trId).val
  syn val = inh(trId).val
end

rule bill
  child item from query [V = inh(bill).trIdS]:
    select trId, price from DB3:billing where trId in $V;
end

rule item
  child trId set val = inh(item).trId
  child price set val = inh(item).price
end

rule SSN
  text inh(SSN).val
end

rule pname
  text inh(pname).val
end

rule tname
  text inh(tname).val
end

rule price
  text inh(price).val
end

sources
  DB1:patient(SSN, pname, policy)
  DB1:visitInfo(SSN, trId, date)
  DB2:cover(policy, trId)
  DB3:billing(trId, price:int)
  DB4:treatment(trId, tname)
  DB4:procedure(trId1, trId2)
  # Relational constraints of §5: billing is keyed by treatment id, and
  # every treatment id a patient can acquire — from a visit or from a
  # procedure expansion — is billed. These premises let the certifier
  # prove both XML constraints below statically.
  key DB3:billing(trId)
  fkey DB1:visitInfo(trId) -> DB3:billing(trId)
  fkey DB4:procedure(trId2) -> DB3:billing(trId)
end

constraints
  patient(item.trId -> item)
  patient(treatment.trId [= item.trId)
end
`
