package hospital

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSpecFileInSync keeps examples/hospital/report.aig (the file the
// CLI examples in README use) identical to the embedded SpecText.
func TestSpecFileInSync(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Skip("caller information unavailable")
	}
	path := filepath.Join(filepath.Dir(self), "..", "..", "examples", "hospital", "report.aig")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if string(data) != SpecText {
		t.Errorf("%s is out of sync with hospital.SpecText", path)
	}
}
