package aigspec

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/relstore"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// TestSpecMatchesProgrammaticSigma0 is the language's acceptance test:
// the σ0 spec text must validate and evaluate to exactly the same
// document as the programmatically built grammar.
func TestSpecMatchesProgrammaticSigma0(t *testing.T) {
	a, err := Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	cat := hospital.TinyCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("parsed spec invalid: %v", err)
	}
	if len(a.Constraints) != 2 {
		t.Errorf("constraints = %v", a.Constraints)
	}

	env := hospital.EnvFor(cat)
	got, err := a.Eval(env, hospital.RootInh(a, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	ref := hospital.Sigma0(true)
	want, err := ref.Eval(env, hospital.RootInh(ref, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("spec-built grammar produced a different document:\n%s\n%s", want, got)
	}
}

func TestParseChoiceSpec(t *testing.T) {
	spec := `
dtd
  <!ELEMENT results (result*)>
  <!ELEMENT result (cheap | pricey)>
  <!ELEMENT cheap (#PCDATA)>
  <!ELEMENT pricey (#PCDATA)>
end

inh result (trId)
inh cheap (val)
inh pricey (val)

rule results
  child result from query []: select trId from DB:bands;
end

rule result
  cond query [v = inh(result)]: select band from DB:bands where trId = $v.trId;
  branch 1 child cheap set val = inh(result).trId
  branch 2 child pricey set val = inh(result).trId
end

rule cheap
  text inh(cheap).val
end

rule pricey
  text inh(pricey).val
end
`
	a, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cat := relstore.NewCatalog()
	db := relstore.NewDatabase("DB")
	bands := db.CreateTable("bands", relstore.MustSchema("trId:string", "band:int"))
	bands.MustInsert(relstore.Tuple{relstore.String("t1"), relstore.Int(1)})
	bands.MustInsert(relstore.Tuple{relstore.String("t2"), relstore.Int(2)})
	cat.Add(db)
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("choice spec invalid: %v", err)
	}
	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	doc, err := a.Eval(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Descendants("cheap")) != 1 || len(doc.Descendants("pricey")) != 1 {
		t.Errorf("choice evaluation wrong:\n%s", doc)
	}
}

func TestParseIterateSpec(t *testing.T) {
	spec := `
dtd
  <!ELEMENT doc (list)>
  <!ELEMENT list (entry*)>
  <!ELEMENT entry (#PCDATA)>
end

inh doc (set items(v))
inh list (set items(v))
inh entry (v)

rule doc
  child list set items = inh(doc).items
end

rule list
  child entry iterate inh(list).items
end

rule entry
  text inh(entry).v
end
`
	a, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cat := relstore.NewCatalog()
	if err := a.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("iterate spec invalid: %v", err)
	}
	env := &aig.Env{
		Schemas: sqlmini.CatalogSchemas{Catalog: cat},
		Data:    sqlmini.CatalogData{Catalog: cat},
		Stats:   sqlmini.CatalogStats{Catalog: cat},
	}
	inh := aig.NewAttrValue(a.Inh["doc"])
	if err := inh.SetCollection("items", []relstore.Tuple{{relstore.String("b")}, {relstore.String("a")}}); err != nil {
		t.Fatal(err)
	}
	doc, err := a.Eval(env, inh)
	if err != nil {
		t.Fatal(err)
	}
	entries := doc.Descendants("entry")
	if len(entries) != 2 || entries[0].StringValue() != "a" || entries[1].StringValue() != "b" {
		t.Errorf("iterate produced:\n%s", doc)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name string
		spec string
		want string
	}{
		{"no dtd", `inh a (x)`, "missing dtd"},
		{"unterminated dtd", "dtd\n<!ELEMENT a (#PCDATA)>", "unterminated dtd"},
		{"bad directive", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nwhatever", "unrecognized directive"},
		{"attr for unknown elem", "dtd\n<!ELEMENT a (#PCDATA)>\nend\ninh b (x)", "undeclared element"},
		{"attr missing parens", "dtd\n<!ELEMENT a (#PCDATA)>\nend\ninh a x", "needs (members)"},
		{"rule unknown elem", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nrule b\nend", "undeclared element"},
		{"dup rule", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nrule a\nend\nrule a\nend", "duplicate rule"},
		{"bad clause", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nrule a\nbogus clause\nend", "unrecognized rule clause"},
		{"bad source", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nrule a\ntext wrong\nend", "source must be"},
		{"sql without semi", "dtd\n<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>\nend\ninh b (v)\nrule a\nchild b from query []: select v from DB:t\nend", "unterminated SQL"},
		{"bad sql", "dtd\n<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>\nend\ninh b (v)\nrule a\nchild b from query []: not sql;\nend", "sqlmini"},
		{"bad branch", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nrule a\nbranch x child b set v = inh(a).v\nend", "bad branch number"},
		{"bad constraint", "dtd\n<!ELEMENT a (#PCDATA)>\nend\nconstraints\nnot a constraint\nend", "xconstraint"},
		{"bad member kind", "dtd\n<!ELEMENT a (#PCDATA)>\nend\ninh a (x:bogus)", "unknown kind"},
		{"collection member no fields", "dtd\n<!ELEMENT a (#PCDATA)>\nend\ninh a (set s)", "needs (fields)"},
	}
	for _, tc := range bad {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on junk did not panic")
		}
	}()
	MustParse("junk")
}
