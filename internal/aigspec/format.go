package aigspec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aigrepro/aig/internal/aig"
	"github.com/aigrepro/aig/internal/relstore"
)

// Format renders an AIG back into the specification language, such that
// Parse(Format(a)) is semantically equivalent to a. It serializes
// pre-specialization grammars; decomposed query chains (an internal
// artifact of the specializer) are not expressible in the language and
// make Format return an error.
func Format(a *aig.AIG) (string, error) {
	var b strings.Builder

	b.WriteString("dtd\n")
	for _, line := range strings.Split(strings.TrimSpace(a.DTD.String()), "\n") {
		b.WriteString("  " + line + "\n")
	}
	b.WriteString("end\n\n")

	types := a.DTD.Types()
	// Root first, for readability.
	sort.SliceStable(types, func(i, j int) bool {
		if (types[i] == a.DTD.Root) != (types[j] == a.DTD.Root) {
			return types[i] == a.DTD.Root
		}
		return types[i] < types[j]
	})

	for _, elem := range types {
		if decl := a.Inh[elem]; !decl.IsEmpty() {
			b.WriteString(formatDecl("inh", elem, decl))
		}
	}
	for _, elem := range types {
		if decl := a.Syn[elem]; !decl.IsEmpty() {
			b.WriteString(formatDecl("syn", elem, decl))
		}
	}
	b.WriteString("\n")

	for _, elem := range types {
		r := a.Rules[elem]
		if r == nil {
			continue
		}
		body, err := formatRule(r)
		if err != nil {
			return "", fmt.Errorf("aigspec: rule for %s: %v", elem, err)
		}
		if body == "" {
			continue
		}
		fmt.Fprintf(&b, "rule %s\n%send\n\n", elem, body)
	}

	if len(a.Sources) > 0 || len(a.SourceKeys) > 0 || len(a.SourceFKs) > 0 {
		b.WriteString("sources\n")
		srcNames := make([]string, 0, len(a.Sources))
		for s := range a.Sources {
			srcNames = append(srcNames, s)
		}
		sort.Strings(srcNames)
		for _, s := range srcNames {
			tables := make([]string, 0, len(a.Sources[s]))
			for t := range a.Sources[s] {
				tables = append(tables, t)
			}
			sort.Strings(tables)
			for _, t := range tables {
				cols := make([]string, len(a.Sources[s][t]))
				for i, c := range a.Sources[s][t] {
					if c.Kind == relstore.KindString {
						cols[i] = c.Name
					} else {
						cols[i] = c.String()
					}
				}
				fmt.Fprintf(&b, "  %s:%s(%s)\n", s, t, strings.Join(cols, ", "))
			}
		}
		keys := append([]aig.SourceKey(nil), a.SourceKeys...)
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			fmt.Fprintf(&b, "  key %s\n", k)
		}
		fks := append([]aig.SourceFK(nil), a.SourceFKs...)
		sort.Slice(fks, func(i, j int) bool { return fks[i].String() < fks[j].String() })
		for _, k := range fks {
			fmt.Fprintf(&b, "  fkey %s\n", k)
		}
		b.WriteString("end\n\n")
	}

	if len(a.Constraints) > 0 {
		b.WriteString("constraints\n")
		for _, c := range a.Constraints {
			b.WriteString("  " + c.String() + "\n")
		}
		b.WriteString("end\n")
	}
	return b.String(), nil
}

func formatDecl(side, elem string, decl aig.AttrDecl) string {
	parts := make([]string, len(decl.Members))
	for i, m := range decl.Members {
		switch m.Kind {
		case aig.Scalar:
			if m.ValueKind == relstore.KindString {
				parts[i] = m.Name
			} else {
				parts[i] = m.Name + ":" + m.ValueKind.String()
			}
		default:
			kw := "set"
			if m.Kind == aig.Bag {
				kw = "bag"
			}
			fields := make([]string, len(m.Fields))
			for j, f := range m.Fields {
				if f.Kind == relstore.KindString {
					fields[j] = f.Name
				} else {
					fields[j] = f.String()
				}
			}
			parts[i] = fmt.Sprintf("%s %s(%s)", kw, m.Name, strings.Join(fields, ", "))
		}
	}
	return fmt.Sprintf("%s %s (%s)\n", side, elem, strings.Join(parts, ", "))
}

func formatSrc(s aig.SourceRef) string {
	side := "inh"
	if s.Side == aig.SynSide {
		side = "syn"
	}
	out := fmt.Sprintf("%s(%s)", side, s.Elem)
	if s.Member != "" {
		out += "." + s.Member
	}
	return out
}

func formatParams(params map[string]aig.SourceRef) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s = %s", n, formatSrc(params[n]))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func formatInhClause(ir *aig.InhRule, star bool) (string, error) {
	if ir == nil {
		return "", nil
	}
	if len(ir.Chain) > 0 {
		return "", fmt.Errorf("decomposed query chains are not expressible in the specification language")
	}
	var b strings.Builder
	if ir.Query != nil {
		if ir.TargetCollection != "" {
			fmt.Fprintf(&b, "  child %s collection %s from query %s: %s;\n",
				ir.Child, ir.TargetCollection, formatParams(ir.QueryParams), ir.Query)
		} else {
			fmt.Fprintf(&b, "  child %s from query %s: %s;\n",
				ir.Child, formatParams(ir.QueryParams), ir.Query)
		}
	}
	if star && ir.Query == nil && len(ir.Copies) == 1 {
		fmt.Fprintf(&b, "  child %s iterate %s\n", ir.Child, formatSrc(ir.Copies[0].Src))
		return b.String(), nil
	}
	for _, c := range ir.Copies {
		fmt.Fprintf(&b, "  child %s set %s = %s\n", ir.Child, c.TargetMember, formatSrc(c.Src))
	}
	return b.String(), nil
}

func formatExpr(e aig.SynExpr) (string, error) {
	switch e := e.(type) {
	case aig.ScalarOf:
		return formatSrc(e.Src), nil
	case aig.CollectionOf:
		return formatSrc(e.Src), nil
	case aig.EmptyOf:
		return "empty", nil
	case aig.SingletonOf:
		parts := make([]string, len(e.Srcs))
		for i, s := range e.Srcs {
			parts[i] = formatSrc(s)
		}
		return "singleton(" + strings.Join(parts, ", ") + ")", nil
	case aig.UnionOf:
		parts := make([]string, len(e.Terms))
		for i, t := range e.Terms {
			p, err := formatExpr(t)
			if err != nil {
				return "", err
			}
			parts[i] = p
		}
		return "union(" + strings.Join(parts, ", ") + ")", nil
	case aig.CollectChildren:
		return fmt.Sprintf("collect(%s.%s)", e.Child, e.Member), nil
	default:
		return "", fmt.Errorf("unknown expression %T", e)
	}
}

func formatSyn(r *aig.SynRule, prefix string) (string, error) {
	if r == nil {
		return "", nil
	}
	members := make([]string, 0, len(r.Exprs))
	for m := range r.Exprs {
		members = append(members, m)
	}
	sort.Strings(members)
	var b strings.Builder
	for _, m := range members {
		expr, err := formatExpr(r.Exprs[m])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %ssyn %s = %s\n", prefix, m, expr)
	}
	return b.String(), nil
}

func formatRule(r *aig.Rule) (string, error) {
	var b strings.Builder
	if r.TextSrc != (aig.SourceRef{}) {
		fmt.Fprintf(&b, "  text %s\n", formatSrc(r.TextSrc))
	}
	children := make([]string, 0, len(r.Inh))
	for c := range r.Inh {
		children = append(children, c)
	}
	sort.Strings(children)
	for _, c := range children {
		star := false
		if ir := r.Inh[c]; ir != nil && ir.Query == nil && len(ir.Copies) == 1 && ir.Copies[0].TargetMember == "" {
			star = true
		}
		clause, err := formatInhClause(r.Inh[c], star)
		if err != nil {
			return "", err
		}
		b.WriteString(clause)
	}
	if r.Cond != nil {
		fmt.Fprintf(&b, "  cond query %s: %s;\n", formatParams(r.CondParams), r.Cond)
	}
	for i, br := range r.Branches {
		clause, err := formatInhClause(br.Inh, false)
		if err != nil {
			return "", err
		}
		for _, line := range strings.Split(strings.TrimSuffix(clause, "\n"), "\n") {
			if line == "" {
				continue
			}
			fmt.Fprintf(&b, "  branch %d %s\n", i+1, strings.TrimSpace(line))
		}
		synClause, err := formatSyn(br.Syn, fmt.Sprintf("branch %d ", i+1))
		if err != nil {
			return "", err
		}
		b.WriteString(synClause)
	}
	synClause, err := formatSyn(r.Syn, "")
	if err != nil {
		return "", err
	}
	b.WriteString(synClause)
	return b.String(), nil
}
