package aigspec

import (
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/srcpos"
)

// FuzzParse throws arbitrary text at the spec parser. Invariants: Parse
// never panics; errors carry valid positions when positioned at all; and
// any grammar that parses must survive the Format/Parse round trip (the
// formatter emits only parseable canonical text).
func FuzzParse(f *testing.F) {
	f.Add(hospital.SpecText)
	f.Add("dtd\n  <!ELEMENT a (#PCDATA)>\nend\n")
	f.Add("dtd\n  <!ELEMENT r (a | b)>\n  <!ELEMENT a (#PCDATA)>\n  <!ELEMENT b (#PCDATA)>\nend\n\nrule r\n  cond query []: select t.n from S:t t;\nend\n\nsources\n  S:t(n:int)\nend\n")
	f.Add("dtd\n  <!ELEMENT a (b*)>\n  <!ELEMENT b (#PCDATA)>\nend\ninh b (v)\nrule a\n  child b from query [p = inh(a)]: select t.v as v from S:t t;\nend\n")
	f.Add("dtd\n  <!ELEMENT a (#PCDATA)>\nend\nconstraints\n  a(b.v -> b)\nend\n")
	f.Add("inh a (x, set s(f1, f2:int), bag b(g))\n")
	f.Fuzz(func(t *testing.T, text string) {
		a, err := Parse(text)
		if err != nil {
			if p := srcpos.PosOf(err); p.Line < 0 || p.Col < 0 {
				t.Fatalf("negative error position %v for %q", p, text)
			}
			return
		}
		out, err := Format(a)
		if err != nil {
			t.Fatalf("parsed but does not format: %v\ninput: %q", err, text)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("canonical form does not reparse: %v\ncanonical: %q\ninput: %q", err, out, text)
		}
	})
}
