package aigspec

import (
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/srcpos"
)

// TestParseErrorPositions pins the line/column attribution of parse
// errors: every error Parse returns for a malformed spec must be a
// *srcpos.Error locating the offending construct, with positions in
// whole-file coordinates even for problems inside the dtd and
// constraints sections (whose bodies are parsed separately).
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want srcpos.Pos
		msg  string
	}{
		{
			"bad directive",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\nwhatever",
			srcpos.At(4, 1),
			"unrecognized directive",
		},
		{
			"dtd error shifted to file coordinates",
			// junk is on file line 3, column 3 (two spaces of indent).
			"dtd\n  <!ELEMENT a (#PCDATA)>\n  junk\nend",
			srcpos.At(3, 3),
			"expected <!ELEMENT",
		},
		{
			"dtd group error keeps its column",
			"dtd\n  <!ELEMENT a (b,|c)>\nend",
			srcpos.At(2, 18),
			"expected element name",
		},
		{
			"attr decl for unknown element",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\n\ninh b (x)",
			srcpos.At(5, 1),
			"undeclared element",
		},
		{
			"bad member kind points at the member",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\ninh a (ok, bad:bogus)",
			srcpos.At(4, 12),
			"unknown kind",
		},
		{
			"bad rule clause",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\nrule a\n  bogus clause\nend",
			srcpos.At(5, 3),
			"unrecognized rule clause",
		},
		{
			"bad sql inside rule",
			"dtd\n  <!ELEMENT a (b*)>\n  <!ELEMENT b (#PCDATA)>\nend\ninh b (v)\nrule a\n  child b from query []: not sql;\nend",
			srcpos.At(7, 3),
			"sqlmini",
		},
		{
			"constraint error shifted to file coordinates",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\nconstraints\n  not a constraint\nend",
			srcpos.At(5, 3),
			"xconstraint",
		},
		{
			"bad sources line",
			"dtd\n  <!ELEMENT a (#PCDATA)>\nend\nsources\n  nonsense\nend",
			srcpos.At(5, 3),
			"SOURCE:table",
		},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.msg)
		}
		if got := srcpos.PosOf(err); got != tc.want {
			t.Errorf("%s: error position = %v, want %v (error: %v)", tc.name, got, tc.want, err)
		}
	}
}

// TestParsedPositions checks that positions survive into the AST: rules,
// inherited rules, syn members, attribute members, constraints and DTD
// element types all point back at their defining lines.
func TestParsedPositions(t *testing.T) {
	spec := `dtd
  <!ELEMENT a (b*)>
  <!ELEMENT b (#PCDATA)>
end

inh a (x)
inh b (v, w:int)

rule a
  child b from query [p = inh(a)]: select t.v as v from S:t t;
end

rule b
  text inh(b).v
  syn v = inh(b).v
end

syn b (v)

sources
  S:t(v)
end

constraints
  a(b.v -> b)
end
`
	a, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DTD.Pos["b"]; got != srcpos.At(3, 13) {
		t.Errorf("DTD.Pos[b] = %v, want 3:13", got)
	}
	if got := a.Rules["a"].Pos; got != srcpos.At(9, 1) {
		t.Errorf("rule a Pos = %v, want 9:1", got)
	}
	ir := a.Rules["a"].Inh["b"]
	if ir.Pos != srcpos.At(10, 3) || ir.QueryPos != srcpos.At(10, 3) {
		t.Errorf("inh rule positions = %v / %v, want 10:3", ir.Pos, ir.QueryPos)
	}
	if got := a.Rules["b"].Syn.Pos["v"]; got != srcpos.At(15, 3) {
		t.Errorf("syn member pos = %v, want 15:3", got)
	}
	mx, _ := a.Inh["a"].Member("x")
	if mx.Pos != srcpos.At(6, 8) {
		t.Errorf("Inh(a).x pos = %v, want 6:8", mx.Pos)
	}
	mw, _ := a.Inh["b"].Member("w")
	if mw.Pos != srcpos.At(7, 11) {
		t.Errorf("Inh(b).w pos = %v, want 7:11", mw.Pos)
	}
	if len(a.Constraints) != 1 || a.Constraints[0].Pos != srcpos.At(25, 3) {
		t.Fatalf("constraint position = %v", a.Constraints[0].Pos)
	}
	if a.Sources == nil {
		t.Fatal("sources section not parsed")
	}
	if _, err := a.Sources.TableSchema("S", "t"); err != nil {
		t.Errorf("declared source lookup: %v", err)
	}
	if _, err := a.Sources.TableSchema("S", "nope"); err == nil {
		t.Error("lookup of undeclared table succeeded")
	}
}
