package aigspec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aigrepro/aig/internal/hospital"
	"github.com/aigrepro/aig/internal/specialize"
	"github.com/aigrepro/aig/internal/sqlmini"
)

// TestCanonicalFixtureCurrent keeps testdata/sigma0.canonical.aig — the
// checked-in canonical form of σ0 that CI's `aigfmt -l` gate runs over —
// in sync with what Format actually emits for hospital.SpecText.
func TestCanonicalFixtureCurrent(t *testing.T) {
	a, err := Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Format(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "sigma0.canonical.aig")
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("%s is stale; regenerate it with: go run ./cmd/aigfmt -w %s", path, filepath.Join("internal", "aigspec", path))
	}
}

// TestFormatRoundTripSigma0: serializing the programmatic σ0 and parsing
// the result yields a grammar that validates and produces the same
// document.
func TestFormatRoundTripSigma0(t *testing.T) {
	orig := hospital.Sigma0(true)
	text, err := Format(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing formatted spec: %v\n%s", err, text)
	}
	cat := hospital.TinyCatalog()
	if err := back.Validate(sqlmini.CatalogSchemas{Catalog: cat}); err != nil {
		t.Fatalf("round-tripped grammar invalid: %v", err)
	}
	env := hospital.EnvFor(cat)
	want, err := orig.Eval(env, hospital.RootInh(orig, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Eval(env, hospital.RootInh(back, "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("round trip changed the document:\n%s\n%s", want, got)
	}
	if len(back.Constraints) != 2 {
		t.Errorf("round trip lost constraints: %v", back.Constraints)
	}
}

// TestFormatIsIdempotent: Format(Parse(Format(a))) == Format(a).
func TestFormatIsIdempotent(t *testing.T) {
	orig := hospital.Sigma0(true)
	first, err := Format(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Format(back)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("Format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestFormatRoundTripSpecText: the shipped spec text survives
// parse-format-parse.
func TestFormatRoundTripSpecText(t *testing.T) {
	a, err := Parse(hospital.SpecText)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("re-parsing: %v\n%s", err, text)
	}
}

func TestFormatRejectsChains(t *testing.T) {
	cat := hospital.TinyCatalog()
	a := hospital.Sigma0(false)
	dec, err := specialize.DecomposeQueries(a,
		sqlmini.CatalogSchemas{Catalog: cat}, sqlmini.CatalogStats{Catalog: cat}, sqlmini.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(dec); err == nil || !strings.Contains(err.Error(), "chain") {
		t.Errorf("chains serialized without error: %v", err)
	}
}
